"""Setuptools shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only enables
legacy editable installs (`pip install -e . --no-use-pep517`) on the
offline toolchain used for reproduction runs.
"""
from setuptools import setup

setup()
