#!/usr/bin/env python
"""Repository quality gate.

Runs, in order:

1. ``ruff check`` over ``src``, ``tests``, ``benchmarks``, ``examples``
2. ``mypy`` over ``src/repro`` (strict on ``repro.analysis`` and
   ``repro.obs``, advisory elsewhere — see ``pyproject.toml``)
3. the profiler trace-schema self-check (``python -m repro.obs.selfcheck``:
   traces one launch, validates the exported Chrome trace against the
   schema, asserts wave-sum reconciliation and reconciles the
   hardware-counter set against the simulator's enumerators)
4. the perf-regression sentinel (``repro bench diff`` against the
   recorded ``BENCH_profile.json`` trajectory: every record resimulated,
   exact tolerance — any slowdown fails the gate with the responsible
   counter named)
5. the fault-injection smoke test (``repro tune`` under a seeded fault
   storm with a journal, then a ``--resume`` of the same journal: both
   must exit 0, exercising retry, quarantine, and crash-safe replay
   end to end)
6. the parallel-tuning smoke test (``repro tune --jobs 1`` vs
   ``--jobs 2`` with ``REPRO_JOBS_CAP=2`` so a real worker pool forks
   even on a one-core container: stdout must match byte for byte —
   the determinism contract of ``docs/TUNING.md``)
7. the batch-identity gate (``python -m repro.gpusim.batch``: every
   ``BENCH_profile.json`` record is resimulated through the scalar
   executor and the vectorized batch engine; the two SHA-256 report
   digests must be equal — the bit-identity contract of
   ``docs/SIMULATOR.md``)
8. the estimator-reconciliation gate (``repro estimate --reconcile``:
   every ``BENCH_profile.json`` record's plan is lowered to its
   access-plan IR, the codegen-time estimate is compared bit-for-bit
   against the resimulated hardware counters, and every distinct
   plan's CUDA/OpenCL/HIP sources are re-parsed and verified against
   the IR — any IR↔source or estimator↔counters mismatch fails)
9. the events/metrics lint (a seeded storm tune writes an ``--events``
   stream and a ``--metrics-out`` exposition; the stream is validated
   against the event catalog with ``python -m repro.obs.events``, the
   exposition and the exporters' own sample output with
   ``python -m repro.obs.export --lint``)
10. the explain smoke test (a seeded storm tune writes an ``--archive``
    trial archive; it must validate strictly with
    ``python -m repro.obs.archive``, ``repro explain --json`` over it
    must emit parseable JSON, and every exported Vega-Lite landscape
    spec must parse)
11. the cluster resilience smoke test (``repro cluster run`` under a
    seeded dropout + corruption + degradation storm with checkpoints,
    then the same campaign stopped early and ``--resume``\ d: the
    resumed final-grid digest must be bit-identical to the
    uninterrupted run's, and the event stream must validate strictly)
12. the tier-1 test suite (``pytest tests/``)

Static tools that are not installed are reported as *skipped* and do not
fail the gate — the container bakes in the runtime toolchain but not
necessarily the linters.  The test suite is mandatory: if pytest is
missing the gate fails.

Exit code: 0 when every step passed or was skipped, 1 otherwise.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run(label: str, cmd: list[str], *, required: bool, env: dict | None = None) -> str:
    """Run one gate step; returns 'ok' | 'skipped' | 'FAILED'."""
    if shutil.which(cmd[0]) is None:
        if required:
            print(f"[check] {label}: FAILED ({cmd[0]} not found and required)")
            return "FAILED"
        print(f"[check] {label}: skipped (not installed)")
        return "skipped"
    print(f"[check] {label}: {' '.join(cmd)}")
    proc = subprocess.run(cmd, cwd=REPO, env=env)
    status = "ok" if proc.returncode == 0 else "FAILED"
    print(f"[check] {label}: {status}")
    return status


def fault_smoke(env: dict) -> str:
    """Tune under a seeded fault storm, then resume the journal."""
    import tempfile

    label = "fault-smoke"
    with tempfile.TemporaryDirectory() as tmp:
        journal = str(Path(tmp) / "smoke.journal")
        base = [
            sys.executable, "-m", "repro.cli", "-q", "tune",
            "--kernel", "inplane_fullslice", "--order", "2",
            "--device", "gtx580", "--grid", "64,64,32",
            "--method", "auto",
            "--faults", "seed=7,launch=0.1,hang=0.02,throttle=0.05",
            "--journal", journal,
        ]
        for phase, cmd in (("storm", base), ("resume", base + ["--resume"])):
            print(f"[check] {label}/{phase}: {' '.join(cmd)}")
            proc = subprocess.run(cmd, cwd=REPO, env=env, capture_output=True)
            if proc.returncode != 0:
                sys.stdout.buffer.write(proc.stdout)
                sys.stderr.buffer.write(proc.stderr)
                print(f"[check] {label}: FAILED ({phase} exited "
                      f"{proc.returncode})")
                return "FAILED"
    print(f"[check] {label}: ok")
    return "ok"


def parallel_smoke(env: dict) -> str:
    """Tune the same sweep at --jobs 1 and --jobs 2; stdout must match."""
    label = "parallel-smoke"
    base = [
        sys.executable, "-m", "repro.cli", "-q", "tune",
        "--kernel", "inplane_fullslice", "--order", "2",
        "--device", "gtx580", "--grid", "64,64,32",
    ]
    penv = dict(env)
    penv["REPRO_JOBS_CAP"] = "2"  # force a real pool even on one core
    outputs = {}
    for jobs in ("1", "2"):
        cmd = base + ["--jobs", jobs]
        print(f"[check] {label}/jobs={jobs}: {' '.join(cmd)}")
        proc = subprocess.run(cmd, cwd=REPO, env=penv, capture_output=True)
        if proc.returncode != 0:
            sys.stdout.buffer.write(proc.stdout)
            sys.stderr.buffer.write(proc.stderr)
            print(f"[check] {label}: FAILED (jobs={jobs} exited "
                  f"{proc.returncode})")
            return "FAILED"
        outputs[jobs] = proc.stdout
    if outputs["1"] != outputs["2"]:
        print(f"[check] {label}: FAILED (--jobs 2 output diverged from "
              "--jobs 1 — determinism contract broken)")
        return "FAILED"
    print(f"[check] {label}: ok")
    return "ok"


def events_lint(env: dict) -> str:
    """Generate a real event stream + metrics export, validate both.

    One seeded storm tune with ``--events`` and ``--metrics-out`` is the
    fixture; the stream must parse strictly against the event catalog
    and the exposition must pass the Prometheus lint (alongside the
    exporters' built-in sample self-lint).
    """
    import tempfile

    label = "events-lint"
    with tempfile.TemporaryDirectory() as tmp:
        events = str(Path(tmp) / "gate.events")
        metrics = str(Path(tmp) / "gate.prom")
        steps = [
            ("tune", [
                sys.executable, "-m", "repro.cli", "-q", "tune",
                "--kernel", "inplane_fullslice", "--order", "2",
                "--device", "gtx580", "--grid", "64,64,32",
                "--method", "auto",
                "--faults", "seed=7,launch=0.1,hang=0.02,throttle=0.05",
                "--events", events, "--metrics-out", metrics,
            ]),
            ("stream", [sys.executable, "-m", "repro.obs.events", events]),
            ("export", [
                sys.executable, "-m", "repro.obs.export", "--lint", metrics,
            ]),
            ("sample", [sys.executable, "-m", "repro.obs.export", "--lint"]),
        ]
        for phase, cmd in steps:
            print(f"[check] {label}/{phase}: {' '.join(cmd)}")
            proc = subprocess.run(cmd, cwd=REPO, env=env, capture_output=True)
            if proc.returncode != 0:
                sys.stdout.buffer.write(proc.stdout)
                sys.stderr.buffer.write(proc.stderr)
                print(f"[check] {label}: FAILED ({phase} exited "
                      f"{proc.returncode})")
                return "FAILED"
    print(f"[check] {label}: ok")
    return "ok"


def explain_smoke(env: dict) -> str:
    """Archive a storm tune, then drive ``repro explain`` off it.

    The fixture is one seeded storm tune with ``--archive``; the archive
    must validate strictly against the schema
    (``python -m repro.obs.archive``), ``repro explain --json`` over it
    must parse as JSON, and every emitted Vega-Lite landscape spec must
    parse as JSON too.
    """
    import json
    import tempfile

    label = "explain-smoke"
    with tempfile.TemporaryDirectory() as tmp:
        archive = str(Path(tmp) / "gate.archive")
        land = str(Path(tmp) / "landscape")
        steps = [
            ("tune", [
                sys.executable, "-m", "repro.cli", "-q", "tune",
                "--kernel", "inplane_fullslice", "--order", "2",
                "--device", "gtx580", "--grid", "64,64,32",
                "--method", "auto",
                "--faults", "seed=7,launch=0.1,hang=0.02,throttle=0.05",
                "--archive", archive,
            ]),
            ("validate", [sys.executable, "-m", "repro.obs.archive", archive]),
            ("explain", [
                sys.executable, "-m", "repro.cli", "-q", "explain",
                "--archive", archive, "--json", "--landscape-out", land,
            ]),
        ]
        for phase, cmd in steps:
            print(f"[check] {label}/{phase}: {' '.join(cmd)}")
            proc = subprocess.run(cmd, cwd=REPO, env=env, capture_output=True)
            if proc.returncode != 0:
                sys.stdout.buffer.write(proc.stdout)
                sys.stderr.buffer.write(proc.stderr)
                print(f"[check] {label}: FAILED ({phase} exited "
                      f"{proc.returncode})")
                return "FAILED"
            if phase == "explain":
                explain_stdout = proc.stdout
        try:
            json.loads(explain_stdout)
        except json.JSONDecodeError as exc:
            print(f"[check] {label}: FAILED (explain --json unparseable: "
                  f"{exc})")
            return "FAILED"
        specs = sorted(Path(land).glob("*.vl.json"))
        if not specs:
            print(f"[check] {label}: FAILED (no Vega-Lite specs emitted)")
            return "FAILED"
        for spec in specs:
            try:
                json.loads(spec.read_text())
            except json.JSONDecodeError as exc:
                print(f"[check] {label}: FAILED (bad Vega-Lite spec "
                      f"{spec.name}: {exc})")
                return "FAILED"
    print(f"[check] {label}: ok ({len(specs)} landscape spec(s))")
    return "ok"


def cluster_smoke(env: dict) -> str:
    """Storm a resilient cluster campaign; kill/resume must be bit-exact.

    Three campaigns over the same seeded fault plan (dropout + corrupt +
    degrade) and the same ``--grid-seed`` initial condition:

    * ``full``    — all N steps in one process, with checkpoints;
    * ``partial`` — the same campaign stopped after k < N steps (the
      simulated crash: the last thing it leaves behind is its atomic
      checkpoint);
    * ``resume``  — ``--resume`` from the partial checkpoint to N steps.

    The resumed final-grid SHA-256 must equal the uninterrupted run's
    digest, and the event streams must validate strictly against the
    catalog (``python -m repro.obs.events``).
    """
    import json
    import tempfile

    label = "cluster-smoke"
    with tempfile.TemporaryDirectory() as tmp:
        full_ckpt = str(Path(tmp) / "full.ckpt")
        part_ckpt = str(Path(tmp) / "part.ckpt")
        events = str(Path(tmp) / "cluster.events")
        base = [
            sys.executable, "-m", "repro.cli", "-q", "cluster", "run",
            "--kernel", "inplane_fullslice", "--order", "2",
            "--device", "gtx580", "--grid", "24,12,32",
            "--gpus", "4",
            "--faults", "seed=11,corrupt=0.3,dropout=0.08,degrade=0.2",
            "--json",
        ]
        runs = (
            ("full", base + ["--steps", "6", "--checkpoint", full_ckpt,
                             "--every", "2", "--events", events]),
            ("partial", base + ["--steps", "3", "--checkpoint", part_ckpt,
                                "--every", "3"]),
            ("resume", base + ["--steps", "6", "--checkpoint", part_ckpt,
                               "--every", "3", "--resume"]),
        )
        digests = {}
        for phase, cmd in runs:
            print(f"[check] {label}/{phase}: {' '.join(cmd)}")
            proc = subprocess.run(cmd, cwd=REPO, env=env, capture_output=True)
            if proc.returncode != 0:
                sys.stdout.buffer.write(proc.stdout)
                sys.stderr.buffer.write(proc.stderr)
                print(f"[check] {label}: FAILED ({phase} exited "
                      f"{proc.returncode})")
                return "FAILED"
            try:
                digests[phase] = json.loads(proc.stdout)
            except json.JSONDecodeError as exc:
                print(f"[check] {label}: FAILED ({phase} --json "
                      f"unparseable: {exc})")
                return "FAILED"
        if digests["resume"]["digest"] != digests["full"]["digest"]:
            print(f"[check] {label}: FAILED (resumed grid digest "
                  f"{digests['resume']['digest'][:12]}... != uninterrupted "
                  f"{digests['full']['digest'][:12]}... — crash-safe "
                  "bit-identity broken)")
            return "FAILED"
        if digests["resume"]["resumed_from"] != 3:
            print(f"[check] {label}: FAILED (resume replayed from step "
                  f"{digests['resume']['resumed_from']}, expected 3)")
            return "FAILED"
        validate = [sys.executable, "-m", "repro.obs.events", events]
        print(f"[check] {label}/events: {' '.join(validate)}")
        proc = subprocess.run(validate, cwd=REPO, env=env, capture_output=True)
        if proc.returncode != 0:
            sys.stdout.buffer.write(proc.stdout)
            sys.stderr.buffer.write(proc.stderr)
            print(f"[check] {label}: FAILED (event stream invalid)")
            return "FAILED"
    print(f"[check] {label}: ok (resume digest matches full run)")
    return "ok"


def main() -> int:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")

    results = {
        "ruff": run(
            "ruff",
            ["ruff", "check", "src", "tests", "benchmarks", "examples"],
            required=False,
        ),
        "mypy": run("mypy", ["mypy"], required=False),
        "obs-selfcheck": run(
            "obs-selfcheck",
            [sys.executable, "-m", "repro.obs.selfcheck"],
            required=True,
            env=env,
        ),
        "bench-diff": run(
            "bench-diff",
            [
                sys.executable, "-m", "repro.cli", "-q", "bench", "diff",
                "--baseline", "BENCH_profile.json",
            ],
            required=True,
            env=env,
        ),
        "fault-smoke": fault_smoke(env),
        "parallel-smoke": parallel_smoke(env),
        "events-lint": events_lint(env),
        "explain-smoke": explain_smoke(env),
        "cluster-smoke": cluster_smoke(env),
        "batch-identity": run(
            "batch-identity",
            [
                sys.executable, "-m", "repro.gpusim.batch",
                "--baseline", "BENCH_profile.json",
            ],
            required=True,
            env=env,
        ),
        "estimate-reconcile": run(
            "estimate-reconcile",
            [
                sys.executable, "-m", "repro.cli", "-q", "estimate",
                "--reconcile", "--baseline", "BENCH_profile.json",
            ],
            required=True,
            env=env,
        ),
        "pytest": run(
            "pytest",
            [sys.executable, "-m", "pytest", "tests", "-q"],
            required=True,
            env=env,
        ),
    }

    print("[check] summary: " + "  ".join(f"{k}={v}" for k, v in results.items()))
    return 1 if "FAILED" in results.values() else 0


if __name__ == "__main__":
    sys.exit(main())
