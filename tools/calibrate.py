"""Calibration dashboard: prints the paper-shape metrics the simulator
must reproduce, for quick iteration on TimingParams."""
import repro
from repro.tuning.space import ParameterSpace

THREAD_ONLY = ParameterSpace(rx_values=(1,), ry_values=(1,))
FULL = ParameterSpace()

def tune(fam, order, dev, dtype="sp", space=FULL):
    from repro.tuning.exhaustive import exhaustive_tune
    from repro.kernels.factory import make_kernel
    spec = repro.symmetric(order)
    build = lambda cfg: make_kernel(fam, spec, cfg, dtype)
    return exhaustive_tune(build, repro.get_device(dev), (512,512,256), space)

for dev in ("gtx580","gtx680","c2070"):
    print(f"=== {dev} SP ===")
    for order in (2,4,8,12):
        nv = tune("nvstencil", order, dev, space=THREAD_ONLY)
        nv_rb = tune("nvstencil", order, dev, space=FULL)
        fs_t = tune("inplane_fullslice", order, dev, space=THREAD_ONLY)
        fs = tune("inplane_fullslice", order, dev, space=FULL)
        hz_t = tune("inplane_horizontal", order, dev, space=THREAD_ONLY)
        vt_t = tune("inplane_vertical", order, dev, space=THREAD_ONLY)
        print(f" o{order:2d}: nv={nv.best_mpoints:7.0f}{nv.best_config.label():>15}"
              f" | fs+RB={fs.best_mpoints:7.0f}{fs.best_config.label():>15}"
              f" speedup={fs.best_mpoints/nv.best_mpoints:.2f}"
              f" | fsT/nv={fs_t.best_mpoints/nv.best_mpoints:.2f}"
              f" hzT/nv={hz_t.best_mpoints/nv.best_mpoints:.2f}"
              f" vtT/nv={vt_t.best_mpoints/nv.best_mpoints:.2f}"
              f" | nvRB/nv={nv_rb.best_mpoints/nv.best_mpoints:.2f}")
print("=== gtx580 DP ===")
for order in (2,8,12):
    nv = tune("nvstencil", order, "gtx580", "dp", THREAD_ONLY)
    fs = tune("inplane_fullslice", order, "gtx580", "dp", FULL)
    print(f" o{order:2d}: nv={nv.best_mpoints:7.0f} fs+RB={fs.best_mpoints:7.0f} speedup={fs.best_mpoints/nv.best_mpoints:.2f}")
