#!/usr/bin/env python
"""Regenerate the golden codegen-digest manifest.

``tests/data/codegen_digests.json`` pins the SHA-256 of every translation
unit in the representative generation matrix (see
:mod:`repro.codegen.manifest`) so an *unintentional* change to any
emitter — a rewrite-order tweak, a float-formatting drift, a header
reshuffle — fails ``tests/test_codegen_determinism.py`` loudly.

When a codegen change is intentional, run this helper and commit the
updated manifest together with the change:

    PYTHONPATH=src python tools/regen_codegen_digests.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.codegen.manifest import MANIFEST_PATH, digest_matrix  # noqa: E402


def main() -> int:
    digests = digest_matrix()
    MANIFEST_PATH.parent.mkdir(parents=True, exist_ok=True)
    old = (
        json.loads(MANIFEST_PATH.read_text()) if MANIFEST_PATH.exists() else {}
    )
    changed = sorted(
        key for key in set(old) | set(digests)
        if old.get(key) != digests.get(key)
    )
    MANIFEST_PATH.write_text(json.dumps(digests, indent=1, sort_keys=True) + "\n")
    print(f"wrote {MANIFEST_PATH} ({len(digests)} cells, {len(changed)} changed)")
    for key in changed:
        print(f"  changed: {key}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
