#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from live harness runs.

Regenerates every table/figure and writes the paper-vs-measured record,
including the shape criteria each benchmark asserts.  Run from the repo
root: ``python tools/make_experiments_md.py``.
"""

from __future__ import annotations

import statistics
import sys
from pathlib import Path

from repro.harness import (
    fig7_variants,
    fig9_load_efficiency,
    fig10_breakdown,
    fig11_applications,
    fig12_modelbased,
    high_order_crossover,
    table4_autotune,
)
from repro.harness.experiments import PAPER_TABLE4


def code_block(text: str) -> str:
    return f"```text\n{text}\n```"


def main() -> None:
    out: list[str] = []
    w = out.append

    w("# EXPERIMENTS — paper vs. measured (simulated)")
    w("")
    w("All rates are MPoint/s on the paper's 512x512x256 grid.  'Measured'")
    w("means measured on this repository's transaction-level GPU simulator")
    w("(see DESIGN.md for the substitution rationale); absolute agreement")
    w("with the paper's silicon is not expected — *shape* agreement is the")
    w("reproduction criterion, and each benchmark in `benchmarks/` asserts")
    w("the shapes listed here.  Regenerate this file with")
    w("`python tools/make_experiments_md.py`.")
    w("")

    # ------------------------------------------------------------------
    w("## Tables I-III — specifications")
    w("")
    w("Exact reproduction: every cell of Table I (extent, 6r+2 memory")
    w("references, 7r+1 flops), Table II (8r+1 in-plane flops at equal data")
    w("references) and Table III (derived peak rates) regenerates from first")
    w("principles and matches the published values cell for cell")
    w("(`benchmarks/test_table1_specs.py` .. `test_table3_devices.py`).")
    w("")

    # ------------------------------------------------------------------
    w("## Fig 7 — in-plane variants, thread blocking only")
    w("")
    res = fig7_variants()
    w(code_block(res.render()))
    rows = res.rows
    fs = [r[5] for r in rows]
    hz = [r[4] for r in rows]
    vt = [r[3] for r in rows]
    w("")
    w(f"* full-slice speedup band: {min(fs):.2f}-{max(fs):.2f}x "
      "(paper: ~1.2-1.4x) — **shape holds** (best variant everywhere, "
      "largest at low order).")
    w(f"* horizontal band: {min(hz):.2f}-{max(hz):.2f}x, above nvstencil "
      "everywhere (paper: 'almost all cases') — **shape holds**.")
    w(f"* vertical band: {min(vt):.2f}-{max(vt):.2f}x — the weakest variant "
      "as in the paper, but the paper measures outright slowdowns (<1.0x) "
      "at orders 10-12 where we see ~parity. **Documented deviation**: the "
      "extra penalty real vertical kernels pay beyond bytes/transactions "
      "is not captured by a first-order memory model.")
    w("")

    # ------------------------------------------------------------------
    w("## Table IV — full auto-tuning (thread + register blocking)")
    w("")
    res = table4_autotune()
    w(code_block(res.render()))
    cells = {(r[0].lower(), r[1], r[2]): r for r in res.rows}
    sp_speed = [r[5] for r in res.rows if r[0] == "SP"]
    dp_speed = [r[5] for r in res.rows if r[0] == "DP"]
    ratios = []
    for key, row in cells.items():
        paper = PAPER_TABLE4[key]
        ratios.append(row[4] / paper[1])
    w("")
    w(f"* SP speedups {min(sp_speed):.2f}-{max(sp_speed):.2f}x "
      "(paper 1.34-1.96), DP "
      f"{min(dp_speed):.2f}-{max(dp_speed):.2f}x (paper 1.05-1.44): "
      "**who wins holds everywhere**; our factors sit ~0.2 below the "
      "paper's at the low-order end.")
    w(f"* absolute rates land at {min(ratios):.2f}-{max(ratios):.2f}x of the "
      "published numbers (median "
      f"{statistics.median(ratios):.2f}) — the right ballpark for a "
      "simulator anchored only to measured bandwidths.")
    w("* declining speedup with stencil order: **holds** (SP strictly; DP "
      "flattens on the C2070 whose DP throughput is ample).")
    w("* GTX680 shows the largest order-2 SP gain (paper: 1.96x): **holds**.")
    w("* tuned configurations land in the same family as the paper's "
      "(wide-TX or register-tiled tiles at low order, shrinking blocks and "
      "small register tiles at high order); exact tuples differ — expected, "
      "the simulator is not cycle-exact.")
    w("")

    # ------------------------------------------------------------------
    w("## Fig 8 — tuning surfaces")
    w("")
    w("Regenerated at the tuned (TX, TY) for orders 2 and 8 on the GTX580")
    w("(`benchmarks/test_fig8_surface.py`): a ridge where moderate register")
    w("tiling helps, with a cliff where register pressure spills — the same")
    w("morphology as the paper's surfaces.  The order-8 optimum uses a")
    w("small register tile (RX*RY <= 8), as in the paper's (32, 4, 1, 4).")
    w("")

    # ------------------------------------------------------------------
    w("## Fig 9 — global memory load efficiency")
    w("")
    res = fig9_load_efficiency()
    w(code_block(res.render()))
    w("")
    w("* full-slice efficiency above nvstencil at every order on every "
      "device: **shape holds** (the bench asserts it cell by cell).")
    w("")

    # ------------------------------------------------------------------
    w("## Fig 10 — breakdown of speedup factors")
    w("")
    res = fig10_breakdown()
    w(code_block(res.render()))
    nv_rb = statistics.mean(r[2] for r in res.rows) - 1
    fs_only = statistics.mean(r[3] for r in res.rows) - 1
    fs_rb = statistics.mean(r[4] for r in res.rows) - 1
    rb_on_fs = statistics.mean(r[4] / r[3] for r in res.rows) - 1
    w("")
    w(f"* mean gains: nvstencil+RB +{nv_rb:.0%} (paper ~+11%), full-slice "
      f"alone +{fs_only:.0%}, full-slice+RB +{fs_rb:.0%} (paper 36-42%), "
      f"register blocking on top of full-slice +{rb_on_fs:.0%} "
      "(paper ~18%).")
    w("* ordering (combined > either factor alone; RB helps the in-plane "
      "loading more than it helps nvstencil at high orders, where the "
      "forward pipeline's 2r+1 registers per element spill first): "
      "**shape holds**.  Our nvstencil+RB gain at *low* orders exceeds the "
      "paper's 11% average — the baseline's register headroom at r=1 is "
      "larger in our register model than on real silicon.")
    w("")

    # ------------------------------------------------------------------
    w("## Fig 11 / Table V — application stencils")
    w("")
    res = fig11_applications()
    w(code_block(res.render()))
    sp_rows = {(r[1], r[2]): r[5] for r in res.rows if r[0] == "SP"}
    w("")
    w("* Hyperthermia gains least on every device in SP (paper: 'small, may "
      "even slowdown') — its nine coefficient volumes are loaded "
      "identically by both methods: **shape holds**.")
    lap = statistics.mean(v for (d, a), v in sp_rows.items() if a == "laplacian")
    w(f"* Laplacian is a top gainer at ~{lap:.2f}x SP "
      "(paper: ~1.8x): **shape holds**.")
    w("* Table V input/output grid counts reproduced exactly.")
    w("")

    # ------------------------------------------------------------------
    w("## Fig 12 — model-based auto-tuning (beta = 5%)")
    w("")
    res = fig12_modelbased()
    w(code_block(res.render()))
    gaps = [1.0 - r[3] / r[2] for r in res.rows]
    w("")
    w(f"* gap to the exhaustive optimum: median {statistics.median(gaps):.1%},"
      f" mean {statistics.mean(gaps):.1%}, worst {max(gaps):.1%} "
      "(paper: ~2% typical, ~6% worst).  Most cells reproduce the paper's "
      "2% claim; two low-order cells are outliers where the model's "
      "occupancy-only latency-hiding term misranks ILP-heavy register-tiled "
      "configurations — precisely the blind spot section VI concedes.")
    w("* executed configurations: exactly the top 5% of the feasible space "
      "per cell: **procedure reproduced**.")
    w("")

    # ------------------------------------------------------------------
    w("## Section IV-C — high-order crossover on the C2070")
    w("")
    res = high_order_crossover()
    w(code_block(res.render()))
    w("")
    w("* the full-slice advantage persists far beyond order 12 in SP and "
      "collapses earlier in DP (paper: wins to ~order 32 SP / ~16 DP): "
      "**directional shape holds**; see the rendered table for the exact "
      "crossover orders measured on the simulator.")
    w("")

    # ------------------------------------------------------------------
    w("## Section V-B — prior-work context")
    w("")
    w("`benchmarks/test_prior_work_context.py` replays the paper's")
    w("bandwidth-ratio extrapolations: our tuned results exceed Nguyen et")
    w("al.'s GTX285 numbers extrapolated to the GTX580 (SP and DP), exceed")
    w("Patus' ~30 GFlop/s Laplacian on the C2050-class card by >2x, and")
    w("exceed Holewinski's 28.7 GFlop/s DP 7-point result — the same")
    w("qualitative claims the paper makes.")
    w("")

    # ------------------------------------------------------------------
    w("## Ablations (beyond the paper)")
    w("")
    w("| bench | design choice | result |")
    w("|---|---|---|")
    w("| `test_ablation_vectors` | vector loads (III-C-2) | fewer load instructions at identical bytes; small simulated gain |")
    w("| `test_ablation_alignment` | array padding target | misaligning the merged region start costs transactions every row |")
    w("| `test_ablation_model_effects` | L2 reuse / camping / scheduling | each effect moves performance in the expected direction; camping affects only split-loading kernels |")
    w("| `test_ablation_blocking` | naive vs 3D vs 2.5-D | the paper's blocking ladder, incl. the (1+2r/TZ) z-halo factor (11%/20% at orders 4/8, TZ=32) |")
    w("| `test_ablation_corners` | full-slice corner waste | exactly 4r^2 elements, independent of block size, growing share with order |")
    w("")
    text = "\n".join(out) + "\n"
    Path("EXPERIMENTS.md").write_text(text)
    print(f"wrote EXPERIMENTS.md ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    sys.exit(main())
