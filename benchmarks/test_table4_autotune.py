"""Table IV — fully auto-tuned full-slice in-plane method, SP and DP.

Paper shapes asserted:
* speedup over tuned nvstencil > 1 for every order/precision/device;
* SP speedups exceed DP speedups (the DP rows of Table IV are uniformly
  lower);
* the speedup declines from low to high stencil orders (the 4r^2
  redundant corner elements and shrinking blocks erode the advantage);
* GTX680 (Kepler) shows the largest SP gain at order 2, as in the paper's
  headline 1.96x;
* absolute MPoint/s lands within a factor-band of the published numbers
  (the substrate is a simulator, not the authors' silicon).
"""

from repro.harness import table4_autotune
from repro.harness.experiments import PAPER_TABLE4

from conftest import fresh


def test_table4(benchmark, save_render):
    result = benchmark.pedantic(
        fresh(table4_autotune), rounds=1, iterations=1, warmup_rounds=0
    )
    save_render(result, "table4.txt")

    cells = {(r[0].lower(), r[1], r[2]): r for r in result.rows}

    for (prec, dev, order), row in cells.items():
        mpoints, speedup = row[4], row[5]
        assert speedup > 1.0, f"{prec} {dev} order {order}"
        paper = PAPER_TABLE4[(prec, dev, order)]
        # Absolute rates within 2x of the published numbers in both
        # directions — the "right ballpark" criterion for a simulator.
        assert paper[1] / 2 < mpoints < paper[1] * 2, f"{prec} {dev} o{order}"

    for dev in ("gtx580", "gtx680", "c2070"):
        # SP speedups at or above DP speedups, order by order (one C2070
        # cell lands within noise of parity; allow a 2% tolerance).
        for order in (2, 4, 6, 8, 10, 12):
            assert cells[("sp", dev, order)][5] >= cells[("dp", dev, order)][5] - 0.02
        # Declining trend: low orders beat the order-12 speedup (strict in
        # SP; DP flattens on the Tesla whose DP throughput is ample).
        assert cells[("sp", dev, 2)][5] > cells[("sp", dev, 12)][5]
        assert cells[("dp", dev, 2)][5] >= cells[("dp", dev, 12)][5]

    # SP strictly above DP where the paper's gap is widest: Kepler order 2
    # (DP throughput is 1/24th of SP there).
    assert cells[("sp", "gtx680", 2)][5] > cells[("dp", "gtx680", 2)][5]

    # Kepler shows the largest order-2 SP speedup (paper: 1.96x).
    assert cells[("sp", "gtx680", 2)][5] == max(
        cells[("sp", dev, 2)][5] for dev in ("gtx580", "gtx680", "c2070")
    )
