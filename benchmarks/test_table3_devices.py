"""Table III — GPU specifications (derived vs published)."""

import pytest

from repro.harness import table3_devices


def test_table3(benchmark, save_render):
    result = benchmark(table3_devices)
    save_render(result, "table3.txt")
    published = {
        "GeForce GTX580": (192.4, 1581.0, 198.0),
        "GeForce GTX680": (192.3, 3090.0, 129.0),
        "Tesla C2070": (144.0, 1030.0, 515.0),
    }
    for name, pin_bw, sp, dp, _paper, _measured in result.rows:
        want = published[name]
        assert pin_bw == pytest.approx(want[0])
        assert sp == pytest.approx(want[1], rel=0.01)
        assert dp == pytest.approx(want[2], rel=0.01)
