"""Ablation — the simulator effects the paper's model ignores.

Section VI lists three known sources of model error: bank conflicts,
scheduling overhead and cache effects.  Our simulator additionally prices
partition camping.  This bench toggles each effect and verifies it moves
simulated performance in the expected direction — i.e. the model-vs-
simulator gap in Fig 12 is made of real, attributable physics.
"""

import dataclasses

from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.gpusim.timing import params_for
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric

GRID = (512, 512, 256)


def test_effect_toggles(benchmark, save_render):
    dev = get_device("gtx580")
    base_params = params_for(dev)
    nv = make_kernel("nvstencil", symmetric(4), BlockConfig(64, 8))
    fs = make_kernel("inplane_fullslice", symmetric(4), BlockConfig(64, 8))

    def run():
        rows = {}
        rows["baseline nv"] = simulate(nv, dev, GRID).mpoints_per_s
        rows["baseline fs"] = simulate(fs, dev, GRID).mpoints_per_s
        no_l2 = dataclasses.replace(base_params, l2_halo_reuse=0.0)
        rows["no L2 reuse nv"] = simulate(nv, dev, GRID, no_l2).mpoints_per_s
        no_camp = dataclasses.replace(base_params, partition_camping=1.0)
        rows["no camping nv"] = simulate(nv, dev, GRID, no_camp).mpoints_per_s
        no_sched = dataclasses.replace(base_params, sched_overhead_cycles=0.0)
        rows["no sched overhead nv"] = simulate(nv, dev, GRID, no_sched).mpoints_per_s
        return rows

    rows = benchmark(run)

    class R:
        def render(self):
            lines = ["Ablation: simulator effects (order 4, GTX580, (64,8))"]
            lines += [f"  {k:22s}: {v:9.1f} MPt/s" for k, v in rows.items()]
            return "\n".join(lines)

    save_render(R(), "ablation_model_effects.txt")

    # Cache effects help; removing them hurts.
    assert rows["no L2 reuse nv"] < rows["baseline nv"]
    # Partition camping hurts the baseline; removing it helps.
    assert rows["no camping nv"] > rows["baseline nv"]
    # Scheduling overhead is a small but real cost.
    assert rows["no sched overhead nv"] >= rows["baseline nv"]
    # Camping matters for the split-loading baseline far more than for the
    # merged full-slice kernel (which has no camped traffic at all).
    no_camp = dataclasses.replace(base_params, partition_camping=1.0)
    fs_no_camp = simulate(fs, dev, GRID, no_camp).mpoints_per_s
    assert abs(fs_no_camp - rows["baseline fs"]) / rows["baseline fs"] < 1e-9
