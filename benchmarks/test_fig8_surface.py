"""Fig 8 — auto-tuning performance surfaces over (RX, RY).

The paper plots order-2 and order-8 surfaces on the GTX580: a ridge of
good register-tiling configurations with a cliff where register pressure
spills or constraints bite.
"""

from repro.harness import fig8_surface

from conftest import fresh


def test_fig8_order2(benchmark, save_render):
    result = benchmark.pedantic(
        fresh(fig8_surface, order=2, device="gtx580"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_render(result, "fig8_order2.txt")
    rates = [row[4] for row in result.rows]
    best = max(rates)
    assert best > 0
    # Register tiling helps: the best point beats the (1, 1) corner.
    base = next(r[4] for r in result.rows if r[2] == 1 and r[3] == 1)
    assert best > base
    # And over-aggressive tiling falls off a cliff (spills/limits).
    assert min(rates) < 0.6 * best


def test_fig8_order8(benchmark, save_render):
    result = benchmark.pedantic(
        fresh(fig8_surface, order=8, device="gtx580"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_render(result, "fig8_order8.txt")
    rates = {(r[2], r[3]): r[4] for r in result.rows}
    best_cfg = max(rates, key=rates.get)
    # Paper's order-8 optimum used a small register tile (1 x 4): at high
    # order the per-element register state limits RX*RY.
    assert best_cfg[0] * best_cfg[1] <= 8
