"""Ablation — memory-level parallelism via vector loads (section III-C-2).

Switching the full-slice kernel's vector loads off must cost performance
(more load instructions, less data in flight per warp) while leaving the
transferred byte count unchanged — vectors are an instruction-count and
MLP play, not a bandwidth play.
"""

from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import InPlaneKernel
from repro.stencils.spec import symmetric

GRID = (512, 512, 256)


def test_vector_loads_help(benchmark, save_render):
    dev = get_device("gtx680")
    spec = symmetric(4)
    cfg = BlockConfig(256, 4, 1, 1)

    def run():
        vec = InPlaneKernel(spec, cfg, variant="fullslice", use_vectors=True)
        scalar = InPlaneKernel(spec, cfg, variant="fullslice", use_vectors=False)
        return simulate(vec, dev, GRID), simulate(scalar, dev, GRID)

    with_vec, without_vec = benchmark(run)

    class R:
        def render(self):
            return (
                "Ablation: vector loads (order 4, GTX680, (256,4,1,1))\n"
                f"  vec4 loads : {with_vec.mpoints_per_s:9.1f} MPt/s\n"
                f"  scalar     : {without_vec.mpoints_per_s:9.1f} MPt/s\n"
                f"  gain       : {with_vec.mpoints_per_s / without_vec.mpoints_per_s:.3f}x"
            )

    save_render(R(), "ablation_vectors.txt")

    assert with_vec.mpoints_per_s > without_vec.mpoints_per_s

    dev_obj = get_device("gtx680")
    wv = InPlaneKernel(spec, cfg, variant="fullslice", use_vectors=True)
    wo = InPlaneKernel(spec, cfg, variant="fullslice", use_vectors=False)
    mv = wv.block_workload(dev_obj, GRID).memory
    mo = wo.block_workload(dev_obj, GRID).memory
    assert mv.load_instructions < mo.load_instructions
    assert mv.load_transferred_bytes == mo.load_transferred_bytes
