"""Ablation — spatial blocking strategies (section III-B, Fig 3).

Quantifies the paper's blocking ladder on the simulator:

* naive (no reuse) << full 3D blocking << 2.5-D streaming;
* the 2.5-D bandwidth advantage over 3D blocking matches the paper's
  (1 + 2r/TZ) factor arithmetic: "4th and 8th order ... reductions in
  bandwidth of 11% and 25% ... if the block size is 32 in all dimensions".
"""

import pytest

from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.kernels.blocking3d import Blocking3DKernel
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric

GRID = (512, 512, 256)


def test_blocking_ladder(benchmark, save_render):
    dev = get_device("gtx580")
    cfg = BlockConfig(32, 8, 1, 2)
    spec = symmetric(8)

    def run():
        naive = simulate(make_kernel("naive", spec, cfg), dev, GRID)
        b3d = simulate(Blocking3DKernel(spec, cfg, tz=32), dev, GRID)
        nv = simulate(make_kernel("nvstencil", spec, cfg), dev, GRID)
        fs = simulate(make_kernel("inplane_fullslice", spec, cfg), dev, GRID)
        return naive, b3d, nv, fs

    naive, b3d, nv, fs = benchmark(run)

    class R:
        def render(self):
            return (
                "Ablation: blocking ladder (order 8, GTX580, (32,8,1,2))\n"
                f"  naive (no reuse)     : {naive.mpoints_per_s:9.1f} MPt/s\n"
                f"  full 3D blocking     : {b3d.mpoints_per_s:9.1f} MPt/s\n"
                f"  2.5-D forward-plane  : {nv.mpoints_per_s:9.1f} MPt/s\n"
                f"  2.5-D in-plane slice : {fs.mpoints_per_s:9.1f} MPt/s"
            )

    save_render(R(), "ablation_blocking.txt")

    assert naive.mpoints_per_s < b3d.mpoints_per_s < fs.mpoints_per_s
    assert nv.mpoints_per_s < fs.mpoints_per_s


def test_z_halo_bandwidth_factor(benchmark):
    """The (1 + 2r/TZ)^-1 reduction quoted in section III-B.

    At TZ = 32: order 4 -> 1/1.125 = 11% saved; order 8 -> 1/1.25 = 20%
    saved relative to 3D blocking (the paper rounds the latter to 25% of
    the 2.5-D baseline; we assert the factor itself).
    """

    def run():
        return {
            order: 1.0 - 1.0 / Blocking3DKernel(
                symmetric(order), BlockConfig(32, 8), tz=32
            ).z_halo_factor()
            for order in (4, 8)
        }

    savings = benchmark(run)
    assert savings[4] == pytest.approx(0.11, abs=0.01)
    assert savings[8] == pytest.approx(0.20, abs=0.01)
