"""Table I — stencil kernel specifications."""

from repro.harness import table1_specs
from repro.stencils.catalog import PAPER_TABLE1


def test_table1(benchmark, save_render):
    result = benchmark(table1_specs)
    save_render(result, "table1.txt")
    # Exact reproduction: every published cell regenerated from first
    # principles (6r+2 references, 7r+1 flops, (2r+1)^3 extent).
    for order, extent, mem, flops, p_mem, p_flops in result.rows:
        assert (mem, flops) == PAPER_TABLE1[order]
        side = order + 1
        assert extent == f"{side}x{side}x{side}"
