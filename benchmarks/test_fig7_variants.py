"""Fig 7 — in-plane loading variants vs nvstencil, thread blocking only.

Paper shapes asserted:
* full-slice is the best variant for every order on every GPU, with
  speedups in the ~1.1-1.4x band (paper: ~1.2-1.4x);
* horizontal beats nvstencil almost everywhere;
* vertical is the weakest in-plane variant and fades toward (or below)
  parity at high orders — the paper measures outright slowdowns there,
  which a first-order transaction model reproduces only as ~parity
  (documented deviation in EXPERIMENTS.md).
"""

from repro.harness import fig7_variants

from conftest import fresh


def test_fig7(benchmark, save_render):
    result = benchmark.pedantic(
        fresh(fig7_variants), rounds=1, iterations=1, warmup_rounds=0
    )
    save_render(result, "fig7.txt")

    for device, order, _nv, vertical, horizontal, fullslice in result.rows:
        label = f"{device} order {order}"
        # Full-slice consistently the best variant (paper's key result).
        assert fullslice >= horizontal >= vertical, label
        # Full-slice gains are real at every order.
        assert 1.05 <= fullslice <= 1.6, label
        # Horizontal outperforms nvstencil "in almost all cases".
        assert horizontal > 1.0, label
        # Vertical is the weakest variant (paper: loses at orders 10-12).
        assert vertical <= horizontal, label
        if order >= 10:
            assert vertical < 1.10, label

    # Highest full-slice speedup at low order (paper: >1.4x at order 2...
    # our band is lower; the *trend* across orders is what we assert).
    for device in ("gtx580", "gtx680", "c2070"):
        rows = [r for r in result.rows if r[0] == device]
        by_order = {r[1]: r[5] for r in rows}
        assert by_order[2] >= 1.1
