"""Fig 10 — breakdown of the speedup factors.

Paper shapes asserted:
* full-slice + register blocking is the best case everywhere;
* register blocking helps nvstencil much less than it helps full-slice
  in total effect (the paper: ~11% vs the combined full-slice gains);
* both the loading pattern and register blocking contribute — neither
  alone reaches the combined speedup.
"""

import statistics

from repro.harness import fig10_breakdown

from conftest import fresh


def test_fig10(benchmark, save_render):
    result = benchmark.pedantic(
        fresh(fig10_breakdown), rounds=1, iterations=1, warmup_rounds=0
    )
    save_render(result, "fig10.txt")

    for device, order, nv_rb, fs, fs_rb in result.rows:
        label = f"{device} order {order}"
        # The combined method dominates both single-factor cases.
        assert fs_rb >= fs, label
        assert fs_rb >= nv_rb * 0.999, label
        # The loading pattern alone already beats the baseline.
        assert fs > 1.0, label

    # Register blocking on nvstencil is the weakest lever on average
    # (paper: ~11% vs full-slice totals of 36-42%).
    nv_rb_gain = statistics.mean(r[2] - 1.0 for r in result.rows)
    fs_rb_gain = statistics.mean(r[4] - 1.0 for r in result.rows)
    assert fs_rb_gain > nv_rb_gain

    # Register blocking adds on top of full-slice (paper: ~18%).
    rb_on_fs = statistics.mean(r[4] / r[3] for r in result.rows)
    assert rb_on_fs > 1.05
