"""Section V-B — comparison with previous work.

The paper contextualizes its results against Nguyen et al. (3.5-D
blocking), Datta et al., Patus (Christen), Physis and Holewinski by
converting to GFlop/s and extrapolating by bandwidth ratios.  We regenerate
the same conversions from our tuned simulator results and assert the
qualitative claims: the tuned in-plane kernels land above the
bandwidth-extrapolated prior-work numbers the paper quotes.
"""

import pytest

from repro.gpusim.device import get_device
from repro.harness.runner import tune_family
from repro.metrics.efficiency import mpoints_to_gflops
from repro.stencils.spec import symmetric

from conftest import fresh


#: Prior-work results the paper quotes in section V-B.
PRIOR = {
    # (work, metric): value
    "nguyen_gtx285_sp_mpoints": 9234.0,
    "nguyen_gtx285_dp_mpoints": 4600.0,
    "christen_c2050_sp_gflops": 30.0,
    "physis_m2050_sp_gflops": 67.0,
    "holewinski_gtx580_dp_gflops": 28.7,
}


def _bw_scale(src: str, dst: str) -> float:
    return (
        get_device(dst).pin_bandwidth_gbs / get_device(src).pin_bandwidth_gbs
    )


def test_prior_work_context(benchmark, save_render):
    def run():
        rows = []
        sp = tune_family("inplane_fullslice", 2, "gtx580")
        dp = tune_family("inplane_fullslice", 2, "gtx580", dtype="dp")
        c2070_sp = tune_family("inplane_fullslice", 2, "c2070")
        flops = symmetric(2).flops_inplane

        rows.append(("ours gtx580 SP o2 MPt/s", sp.best_mpoints))
        rows.append(("ours gtx580 DP o2 MPt/s", dp.best_mpoints))
        rows.append(
            ("ours c2070 SP o2 GFlop/s", mpoints_to_gflops(c2070_sp.best_mpoints, flops))
        )
        rows.append(
            ("ours gtx580 DP o2 GFlop/s", mpoints_to_gflops(dp.best_mpoints, flops))
        )
        return rows

    rows = benchmark.pedantic(fresh(run), rounds=1, iterations=1, warmup_rounds=0)

    class R:  # minimal render shim reusing save_render
        def render(self):
            lines = ["Section V-B: prior-work context"]
            lines += [f"  {k}: {v:.1f}" for k, v in rows]
            lines += [f"  paper-quoted {k}: {v}" for k, v in PRIOR.items()]
            return "\n".join(lines)

    save_render(R(), "prior_work.txt")
    vals = dict(rows)

    # Nguyen's GTX285 SP result extrapolated to GTX580 by bandwidth:
    # the paper claims ~39% advantage; we assert ours is at least above
    # the extrapolation.
    nguyen_sp = PRIOR["nguyen_gtx285_sp_mpoints"] * _bw_scale("gtx285", "gtx580")
    assert vals["ours gtx580 SP o2 MPt/s"] > nguyen_sp

    nguyen_dp = PRIOR["nguyen_gtx285_dp_mpoints"] * _bw_scale("gtx285", "gtx580")
    assert vals["ours gtx580 DP o2 MPt/s"] > nguyen_dp

    # Christen's Patus Laplacian: ~30 GFlop/s on C2050; paper reports ~96
    # on the C2070-class card; ours must land far above 30.
    assert vals["ours c2070 SP o2 GFlop/s"] > PRIOR["christen_c2050_sp_gflops"] * 2

    # Holewinski's 7-point DP on GTX580: 28.7 GFlop/s; paper ~65.
    assert vals["ours gtx580 DP o2 GFlop/s"] > PRIOR["holewinski_gtx580_dp_gflops"]
