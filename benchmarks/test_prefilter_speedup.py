"""Micro-benchmark: tuner wall-clock with vs without the static
resource pre-filter on a Table IV-style sweep.

The analyzer's ``launch_failure`` rejects configurations the simulator's
executor would refuse, *before* a workload is priced.  This bench times
an order-8 full-slice exhaustive sweep (the Table IV cell where the
default space carries the largest share of unlaunchable configurations
on the GTX580's register file) both ways and asserts the acceptance
criteria: the optimum is bit-identical and a nonzero share of the space
was rejected statically.
"""

import time

from repro.gpusim.device import get_device
from repro.kernels.inplane import InPlaneKernel
from repro.stencils.spec import symmetric
from repro.tuning.exhaustive import exhaustive_tune

GRID = (512, 512, 256)
DEVICE = "gtx580"
ORDER = 8


def build(cfg):
    return InPlaneKernel(symmetric(ORDER), cfg)


def sweep(prefilter):
    device = get_device(DEVICE)
    start = time.perf_counter()
    result = exhaustive_tune(build, device, GRID, prefilter=prefilter)
    return result, time.perf_counter() - start


def test_prefilter_speedup(benchmark, save_render):
    without, t_without = sweep(prefilter=False)
    with_f, t_with = benchmark.pedantic(
        lambda: sweep(prefilter=True), rounds=1, iterations=1, warmup_rounds=0
    )

    # Optimum invariance — the filter may only remove configurations the
    # executor would have refused anyway.
    assert with_f.best_config == without.best_config
    assert with_f.best_mpoints == without.best_mpoints
    assert [e.config for e in with_f.entries] == [
        e.config for e in without.entries
    ]

    # A nonzero share of the order-8 space is statically rejectable, and
    # the static and simulated reject sets coincide exactly.
    rejected = with_f.info["rejected_static"]
    evaluated = len(with_f.entries)
    assert rejected > 0
    assert with_f.info["rejected_simulated"] == 0
    assert without.info["rejected_simulated"] == rejected

    share = rejected / (evaluated + rejected)
    lines = [
        f"prefilter micro-bench: {ORDER=} inplane_fullslice {DEVICE} {GRID}",
        f"  space: {evaluated + rejected} feasible configs, "
        f"{rejected} statically rejected ({share:.1%})",
        f"  optimum: {with_f.best_config} @ {with_f.best_mpoints:.1f} MPoint/s"
        " (identical with and without)",
        f"  wall-clock: {t_without:.3f}s without -> {t_with:.3f}s with"
        f" ({t_without / t_with:.2f}x)" if t_with > 0 else "",
    ]

    class _R:
        def render(self):
            return "\n".join(lines)

    save_render(_R(), "prefilter_speedup.txt")
