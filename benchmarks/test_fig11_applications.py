"""Fig 11 / Table V — real-world application stencils.

Paper shapes asserted:
* every application gains from the in-plane method except Hyperthermia,
  which is ~neutral (its nine coefficient volumes dominate traffic and
  are loaded identically by both methods);
* Laplacian — one input grid, one output — shows the largest or
  near-largest gain (paper: ~1.8x SP);
* Hyperthermia shows the smallest gain on every device;
* Hyperthermia's absolute rate is far below Laplacian's (it moves ~10x
  the data per point).
"""

from repro.harness import fig11_applications

from conftest import fresh


def test_fig11(benchmark, save_render):
    result = benchmark.pedantic(
        fresh(fig11_applications), rounds=1, iterations=1, warmup_rounds=0
    )
    save_render(result, "fig11.txt")

    for prec in ("SP", "DP"):
        for device in ("gtx580", "gtx680", "c2070"):
            rows = {
                r[2]: r for r in result.rows if r[0] == prec and r[1] == device
            }
            label = f"{prec} {device}"
            speedups = {app: r[5] for app, r in rows.items()}
            # Hyperthermia gains least in SP (the paper's headline app
            # shape).  In DP the single-grid kernels become double-
            # precision compute-bound and their ratios compress below
            # hyperthermia's on some devices, so DP only asserts the cap.
            ranked = sorted(speedups, key=speedups.get)
            if prec == "SP":
                assert ranked[0] == "hyperthermia", label
            assert speedups["hyperthermia"] < 1.35, label
            # Laplacian among the top gainers in SP (the paper's ~1.8x
            # headline); in DP on Kepler it turns compute-bound.
            if prec == "SP":
                assert speedups["laplacian"] >= 0.95 * max(speedups.values()), label
            # Single-grid stencils beat the coefficient-bound one by a lot
            # in absolute rate (it moves ~10x the data per point).
            assert rows["laplacian"][4] > 2.5 * rows["hyperthermia"][4], label
            # Everything else actually gains.
            for app in ("div", "grad", "upstream", "laplacian", "poisson"):
                assert speedups[app] > 1.0, f"{label} {app}"
