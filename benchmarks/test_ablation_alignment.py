"""Ablation — array-padding alignment choice (section III-C-2).

The full-slice kernel aligns the merged region start (x = -r) to the
transaction line.  Simulating the same kernel with interior-aligned
padding (the nvstencil choice) must cost transactions on every merged
row — the quantitative version of the paper's alignment discussion.
"""

from repro.gpusim.memory import MemoryStats
from repro.kernels.layout import GridLayout
from repro.kernels.loads import add_row_region

GRID = (512, 512, 256)


def _region_bytes(aligned_x: int, radius: int) -> float:
    layout = GridLayout(512, 512, 256, 4, aligned_x=aligned_x)
    stats = MemoryStats()
    add_row_region(
        stats,
        layout,
        x_start_rel=-radius,
        width_elems=64 + 2 * radius,
        rows=16,
        tile_stride=64,
        use_vectors=False,
    )
    return stats.load_transferred_bytes


def test_merged_region_alignment(benchmark, save_render):
    radius = 2

    def run():
        return _region_bytes(-radius, radius), _region_bytes(0, radius)

    aligned, interior_aligned = benchmark(run)

    class R:
        def render(self):
            return (
                "Ablation: merged-region alignment (order 4, 64-wide tile)\n"
                f"  aligned at -r : {aligned:9.1f} B/plane/block\n"
                f"  aligned at 0  : {interior_aligned:9.1f} B/plane/block\n"
                f"  penalty       : {interior_aligned / aligned:.3f}x"
            )

    save_render(R(), "ablation_alignment.txt")
    # Misaligning the merged start costs extra lines on (some) rows.
    assert interior_aligned > aligned
