"""Fig 9 — global memory load efficiency, full-slice vs nvstencil.

Paper shape: the full-slice method's load efficiency exceeds nvstencil's
for every stencil order on every GPU (better coalescing of the halo
loads), even though full-slice deliberately over-fetches 4r^2 corner
elements per plane.
"""

from repro.harness import fig9_load_efficiency

from conftest import fresh


def test_fig9(benchmark, save_render):
    result = benchmark.pedantic(
        fresh(fig9_load_efficiency), rounds=1, iterations=1, warmup_rounds=0
    )
    save_render(result, "fig9.txt")
    for device, order, nv, fs in result.rows:
        assert fs > nv, f"{device} order {order}"
        assert 0.0 < nv < 1.0
        assert 0.0 < fs <= 1.0
