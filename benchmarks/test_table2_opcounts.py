"""Table II — in-plane vs nvstencil operation counts."""

from repro.harness import table2_opcounts
from repro.stencils.catalog import PAPER_TABLE2


def test_table2(benchmark, save_render):
    result = benchmark(table2_opcounts)
    save_render(result, "table2.txt")
    for order, refs, f_inplane, f_nv, _paper in result.rows:
        assert (refs, f_inplane, f_nv) == PAPER_TABLE2[order]
        # The paper's structural claims: identical data references, the
        # in-plane method pays exactly r extra flops.
        assert f_inplane - f_nv == order // 2
