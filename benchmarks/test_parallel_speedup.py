"""Micro-benchmark: exhaustive-sweep wall-clock at ``--jobs 1`` vs
``--jobs 4``.

The sweep is embarrassingly parallel (``docs/TUNING.md``), so on a
machine with four real cores the pooled engine should cut wall-clock by
at least 2x while returning the bit-identical ranking.  On smaller
containers the determinism half of the claim is still asserted and the
speedup half is reported without a hard floor (a 1-core pool cannot
speed anything up; the gate's byte-identity smoke still runs there).
"""

import os
import time

from repro.gpusim.device import get_device
from repro.kernels.inplane import InPlaneKernel
from repro.stencils.spec import symmetric
from repro.tuning.exhaustive import exhaustive_tune
from repro.tuning.parallel import ParallelEvaluator

GRID = (512, 512, 256)
DEVICE = "gtx580"
ORDER = 8
JOBS = 4


def build(cfg):
    return InPlaneKernel(symmetric(ORDER), cfg)


def sweep(jobs):
    from repro.tuning.exhaustive import feasible_configs

    device = get_device(DEVICE)
    with ParallelEvaluator(device, jobs=jobs, worker_cap=JOBS) as evaluator:
        # Fork the pool (and pay its startup) before the clock starts;
        # the same ``build`` keeps the forked pool warm for the sweep.
        first = feasible_configs(build, device, GRID)[:1]
        evaluator.measure_batch(build, first, GRID)
        start = time.perf_counter()
        result = exhaustive_tune(build, device, GRID, evaluator=evaluator)
    return result, time.perf_counter() - start


def test_parallel_speedup(benchmark, save_render):
    serial, t1 = sweep(jobs=1)
    pooled, t4 = benchmark.pedantic(
        lambda: sweep(jobs=JOBS), rounds=1, iterations=1, warmup_rounds=0
    )

    # Determinism contract: the ranking is bit-identical at any jobs count.
    assert pooled.best == serial.best
    assert pooled.entries == serial.entries
    assert pooled.info["jobs"] == JOBS  # worker_cap bypasses the core clamp

    speedup = t1 / t4 if t4 > 0 else float("inf")
    cores = os.cpu_count() or 1
    if cores >= JOBS:
        # Four real cores: the pool must at least halve the wall-clock.
        assert speedup >= 2.0, (
            f"expected >= 2x at {JOBS} workers on {cores} cores, "
            f"got {speedup:.2f}x ({t1:.3f}s -> {t4:.3f}s)"
        )

    lines = [
        f"parallel micro-bench: {ORDER=} inplane_fullslice {DEVICE} {GRID}",
        f"  sweep: {len(serial.entries)} measured configs, "
        f"winner {serial.best_config} @ {serial.best_mpoints:.1f} MPoint/s"
        " (identical at both job counts)",
        f"  wall-clock: {t1:.3f}s at jobs=1 -> {t4:.3f}s at jobs={JOBS}"
        f" ({speedup:.2f}x on {cores} core(s))",
    ]

    class _R:
        def render(self):
            return "\n".join(lines)

    save_render(_R(), "parallel_speedup.txt")
