"""Ablation — shared-memory tile vs read-only cache (texture path).

The design question behind section V-B's Holewinski comparison: is the
shared tile worth its barriers and occupancy cost, or can the read-only
cache do the staging?  On the simulator the answer reproduces the era's
folklore: the texture path is competitive at low stencil orders (no
barriers, no smem footprint) and falls behind as the per-point cache-load
instruction count (4r+1) grows with the radius.
"""

from repro.harness.runner import tune_family

from conftest import fresh


def test_texture_vs_shared_tile(benchmark, save_render):
    def run():
        rows = []
        for order in (2, 4, 8, 12):
            tex = tune_family("texture", order, "gtx580")
            fs = tune_family("inplane_fullslice", order, "gtx580")
            rows.append((order, tex.best_mpoints, fs.best_mpoints))
        return rows

    rows = benchmark.pedantic(fresh(run), rounds=1, iterations=1, warmup_rounds=0)

    class R:
        def render(self):
            lines = ["Ablation: read-only cache vs shared-memory tile (GTX580, tuned)"]
            for order, tex, fs in rows:
                lines.append(
                    f"  order {order:2d}: texture {tex:9.1f}  "
                    f"full-slice {fs:9.1f}  ratio {tex / fs:.2f}"
                )
            return "\n".join(lines)

    save_render(R(), "ablation_texture.txt")

    ratios = {order: tex / fs for order, tex, fs in rows}
    # Competitive at order 2, clearly behind by order 12.
    assert ratios[2] > 0.9
    assert ratios[12] < 0.9
    # Monotone decline with order (instruction pressure grows with r).
    assert ratios[2] >= ratios[4] >= ratios[8] >= ratios[12]
