"""Benchmark-suite helpers.

Every bench regenerates one table/figure of the paper at full evaluation
scale (512 x 512 x 256), prints the paper-style rows, saves them under
``benchmarks/results/`` and asserts the reproduction's *shape* criteria.
pytest-benchmark times the regeneration itself (the tuning sweeps are the
expensive part, exactly as in the paper's methodology).

The suite also seeds the repository's performance trajectory: after each
bench, the winning configuration of every tuning run it performed is
re-simulated and recorded through the :mod:`repro.obs.telemetry`
exporter; at session end the consolidated ``BENCH_profile.json`` (device,
kernel, MPoint/s, cycles, frozen breakdown) is written at the repo root
so successive PRs produce diffable perf numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PROFILE_PATH = Path(__file__).parent.parent / "BENCH_profile.json"

#: Session-wide telemetry, keyed by tuning-cache key so re-runs overwrite.
_TELEMETRY: dict = {}


def _harvest_tune_cache(source: str) -> None:
    """Record the best config of every tuning run currently cached.

    ``fresh()`` clears the cache *before* each bench, so right after a
    bench it holds exactly that bench's tuning runs; re-simulating each
    winner (via :func:`repro.harness.runner.harvest_tuned_records`) costs
    one launch and yields the full profiler counter set.
    """
    from repro.harness.runner import harvest_tuned_records

    _TELEMETRY.update(harvest_tuned_records(source))


@pytest.fixture
def save_render(request):
    """Persist an experiment's render for inspection and print it."""

    def _save(result, filename: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / filename).write_text(text + "\n")
        _harvest_tune_cache(request.node.name)
        print()
        print(text)
        return text

    return _save


def pytest_sessionfinish(session, exitstatus):
    """Write the consolidated perf-trajectory document."""
    if not _TELEMETRY:
        return
    from repro.obs.telemetry import TelemetryCollector

    collector = TelemetryCollector()
    for record in _TELEMETRY.values():
        collector.add(record)
    collector.write(BENCH_PROFILE_PATH)


def fresh(func, *args, **kwargs):
    """Run an experiment with a cold tuning cache (for honest timing)."""
    from repro.harness import runner

    def call():
        runner._CACHE.clear()
        return func(*args, **kwargs)

    return call
