"""Benchmark-suite helpers.

Every bench regenerates one table/figure of the paper at full evaluation
scale (512 x 512 x 256), prints the paper-style rows, saves them under
``benchmarks/results/`` and asserts the reproduction's *shape* criteria.
pytest-benchmark times the regeneration itself (the tuning sweeps are the
expensive part, exactly as in the paper's methodology).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_render():
    """Persist an experiment's render for inspection and print it."""

    def _save(result, filename: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / filename).write_text(text + "\n")
        print()
        print(text)
        return text

    return _save


def fresh(func, *args, **kwargs):
    """Run an experiment with a cold tuning cache (for honest timing)."""
    from repro.harness import runner

    def call():
        runner._CACHE.clear()
        return func(*args, **kwargs)

    return call
