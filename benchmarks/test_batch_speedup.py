"""Micro-benchmark: sweep-evaluation throughput, scalar pipeline vs the
batch engine.

Both backends price the same prepared candidate set — every feasible
configuration of the default space, plans and workloads derived up front
on both sides, launch rejects included.  The serial side walks the full
scalar pipeline (occupancy, timing, counter derivation) once per config
on every pass; the batch side fingerprints each workload into its
:class:`~repro.gpusim.batch.BlockClass` and asks one shared
:class:`~repro.gpusim.batch.BatchEngine`.

The sweep runs ``PASSES`` times because that is the production shape:
``repro tune`` (exhaustive + model-based), ``repro bench diff`` and
``repro estimate --reconcile`` re-price overlapping candidate sets in
one session, and per-class memoization across those sweeps is half of
the engine's design (the other half being the vectorized first pass,
which also dedups repeated classes *within* a sweep).  The scalar
pipeline has no memo — it pays full price every pass.

Identity is asserted unconditionally: a full ``exhaustive_tune`` over
each backend must return bit-identical rankings.  The throughput floor
(>= 10x) is asserted only where at least two real cores suggest an
uncontended machine; constrained single-core CI boxes still assert
identity and report the measured ratio.
"""

import os
import time

from repro.errors import ResourceLimitError
from repro.gpusim.batch import BatchEngine, BlockClass
from repro.gpusim.device import get_device
from repro.gpusim.executor import DeviceExecutor
from repro.kernels.inplane import InPlaneKernel
from repro.stencils.spec import symmetric
from repro.tuning.exhaustive import exhaustive_tune, feasible_configs
from repro.tuning.vectorized import VectorTrialEvaluator

GRID = (512, 512, 256)
DEVICE = "gtx580"
ORDER = 8
TARGET_SPEEDUP = 10.0
PASSES = 5


def build(cfg):
    return InPlaneKernel(symmetric(ORDER), cfg)


def prepare():
    """Derive the candidate set both backends will price."""
    device = get_device(DEVICE)
    configs = feasible_configs(build, device, GRID)
    plans = [build(cfg) for cfg in configs]
    blocks = [p.block_workload(device, GRID) for p in plans]
    grids = [p.grid_workload(device, GRID) for p in plans]
    classes = [BlockClass.of(b, g) for b, g in zip(blocks, grids)]
    return device, plans, blocks, classes


def serial_passes(device, plans, blocks):
    executor = DeviceExecutor(device)
    start = time.perf_counter()
    rates = []
    for _ in range(PASSES):
        rates = []
        for plan, block in zip(plans, blocks):
            try:
                rates.append(executor.run(plan, GRID, block=block).mpoints_per_s)
            except ResourceLimitError:
                rates.append(None)
    return rates, time.perf_counter() - start


def batch_passes(device, classes):
    engine = BatchEngine(device)
    start = time.perf_counter()
    rates = []
    for _ in range(PASSES):
        rates = [
            None if s.launch_error is not None else s.mpoints_per_s
            for s in engine.scores(classes)
        ]
    return rates, time.perf_counter() - start


def test_batch_speedup(benchmark, save_render):
    device, plans, blocks, classes = prepare()
    serial_rates, serial_t = serial_passes(device, plans, blocks)
    batch_rates, batch_t = benchmark.pedantic(
        lambda: batch_passes(device, classes),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    # Identity contract first — per rate, and through the real tuner.
    assert batch_rates == serial_rates  # bit-exact, rejects aligned
    base = exhaustive_tune(build, device, GRID)
    fast = exhaustive_tune(
        build, device, GRID, evaluator=VectorTrialEvaluator(device)
    )
    assert fast.best == base.best
    assert fast.entries == base.entries

    speedup = serial_t / batch_t if batch_t > 0 else float("inf")
    cores = os.cpu_count() or 1
    if cores >= 2:
        # Constrained single-core CI boxes skip the floor, not the check.
        assert speedup >= TARGET_SPEEDUP, (
            f"expected >= {TARGET_SPEEDUP:.0f}x batch evaluation speedup, "
            f"got {speedup:.2f}x ({serial_t:.3f}s -> {batch_t:.3f}s)"
        )

    measured = sum(r is not None for r in serial_rates)
    lines = [
        f"batch micro-bench: {ORDER=} inplane_fullslice {DEVICE} {GRID}",
        f"  candidate set: {len(classes)} configs "
        f"({len(set(classes))} distinct classes, "
        f"{len(classes) - measured} launch rejects), "
        f"winner {base.best_config} @ {base.best_mpoints:.1f} MPoint/s "
        "(bit-identical on both backends)",
        f"  wall-clock over {PASSES} sweep passes: {serial_t:.3f}s scalar "
        f"-> {batch_t:.3f}s batched ({speedup:.2f}x, "
        f"target >= {TARGET_SPEEDUP:.0f}x)",
    ]

    class _R:
        def render(self):
            return "\n".join(lines)

    save_render(_R(), "batch_speedup.txt")
