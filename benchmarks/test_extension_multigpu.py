"""Extension — multi-GPU slab decomposition scaling.

The paper motivates stencil optimization with scaling simulations to
larger problems; this bench produces the era's canonical curves on the
simulator: strong scaling that saturates as the fixed per-step halo
exchange overtakes the shrinking kernel time, and weak scaling that holds
efficiency because per-GPU work stays constant.
"""

from repro.cluster import MultiGpuStencil, PCIE_GEN2_X16
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric

GRID = (512, 512, 256)
COUNTS = (1, 2, 4, 8, 16)


def test_multigpu_scaling(benchmark, save_render):
    sim = MultiGpuStencil(
        lambda: make_kernel("inplane_fullslice", symmetric(2), (64, 4, 4, 2)),
        "gtx580",
        link=PCIE_GEN2_X16,
    )

    def run():
        return (
            sim.strong_scaling(GRID, COUNTS),
            sim.weak_scaling((512, 512, 64), COUNTS),
        )

    strong, weak = benchmark(run)

    class R:
        def render(self):
            lines = ["Extension: multi-GPU slab decomposition (GTX580 x N, PCIe2 x16)"]
            lines.append("  strong scaling (512x512x256):")
            for p in strong:
                lines.append(
                    f"    {p.gpus:2d} GPUs: {p.mpoints_per_s:9.0f} MPt/s  "
                    f"speedup {p.speedup:5.2f}  eff {p.efficiency:5.1%}  "
                    f"(kernel {p.kernel_time_s*1e3:6.2f} ms, "
                    f"exchange {p.exchange_time_s*1e3:6.2f} ms)"
                )
            lines.append("  weak scaling (512x512x64 per GPU):")
            for p in weak:
                lines.append(
                    f"    {p.gpus:2d} GPUs: {p.mpoints_per_s:9.0f} MPt/s"
                )
            return "\n".join(lines)

    save_render(R(), "extension_multigpu.txt")

    speedups = [p.speedup for p in strong]
    effs = [p.efficiency for p in strong]
    # Strong scaling rises monotonically but with decaying efficiency —
    # the exchange does not shrink with GPU count.
    assert speedups == sorted(speedups)
    assert effs[0] == max(effs)
    assert effs[-1] < 0.9
    # Weak scaling sustains most of the single-GPU per-device rate.
    per_gpu = [p.mpoints_per_s / p.gpus for p in weak]
    assert per_gpu[-1] > 0.7 * per_gpu[0]
    # Exchange share grows with GPU count.
    share = [p.exchange_time_s / p.step_time_s for p in strong[1:]]
    assert share == sorted(share)
