"""Section IV-C — how far up the stencil order the full-slice win persists.

Paper: on the Tesla C2070, the full-slice method keeps its advantage up to
~32nd order for SP stencils and ~16th order for DP.  Shapes asserted: the
speedup declines with order; SP stays winning to a higher order than DP;
SP still wins at order 16+.
"""

from repro.harness import high_order_crossover

from conftest import fresh


def test_crossover(benchmark, save_render):
    result = benchmark.pedantic(
        fresh(high_order_crossover), rounds=1, iterations=1, warmup_rounds=0
    )
    save_render(result, "crossover.txt")

    sp = {r[1]: r[2] for r in result.rows if r[0] == "SP" and isinstance(r[1], int)}
    dp = {r[1]: r[2] for r in result.rows if r[0] == "DP" and isinstance(r[1], int)}
    sp_last = next(r[2] for r in result.rows if r[0] == "SP" and r[1] == "last winning order")
    dp_last = next(r[2] for r in result.rows if r[0] == "DP" and r[1] == "last winning order")

    # Declining trend in both precisions.
    assert sp[2] > sp[max(sp)]
    assert dp[2] > dp[max(dp)]
    # SP keeps winning at least as long as DP, and well past order 12.
    assert sp_last >= dp_last
    assert sp_last >= 16
