"""Fig 12 — model-based auto-tuning vs exhaustive search (beta = 5%).

Paper shapes asserted:
* the model-based procedure executes only ~5% of the space;
* the found configuration is within a modest gap of the exhaustive
  optimum — the paper reports ~2% typical / ~6% worst; our simulator
  reproduces <=4-5% for most cells with a couple of low-order outliers
  (recorded in EXPERIMENTS.md), so the bench asserts a median gap under
  5% and a hard cap of 25%.
"""

import statistics

from repro.harness import fig12_modelbased

from conftest import fresh


def test_fig12(benchmark, save_render):
    result = benchmark.pedantic(
        fresh(fig12_modelbased), rounds=1, iterations=1, warmup_rounds=0
    )
    save_render(result, "fig12.txt")

    gaps = []
    for device, order, exh, mb, gap_text, executed in result.rows:
        done, total = (int(v) for v in executed.split("/"))
        # Only the beta fraction was executed.
        assert done <= max(1, round(0.05 * total) + 1), f"{device} o{order}"
        assert mb <= exh * 1.0001
        gaps.append(1.0 - mb / exh)

    assert statistics.median(gaps) <= 0.05
    assert max(gaps) <= 0.25
    # The procedure is useful: most cells land within a few percent.
    assert sum(1 for g in gaps if g <= 0.06) >= len(gaps) * 2 / 3
