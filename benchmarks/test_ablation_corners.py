"""Ablation — the full-slice corner overhead (4r^2 per plane).

The paper attributes the speedup decline at high orders to the corner
elements the merged rectangle drags in.  This bench isolates that cost:
the fraction of the full-slice load volume that is corner waste grows
quadratically with the radius and shrinks with tile size — matching the
paper's observation that it "depends only on the radius of the stencil,
and not on the block size".
"""

from repro.gpusim.device import get_device
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import InPlaneKernel
from repro.stencils.catalog import redundant_corner_elems
from repro.stencils.spec import symmetric

GRID = (512, 512, 256)


def test_corner_overhead_scaling(benchmark, save_render):
    dev = get_device("gtx580")
    cfg = BlockConfig(32, 8, 1, 2)

    def run():
        rows = []
        for order in (2, 4, 8, 12):
            plan = InPlaneKernel(symmetric(order), cfg, variant="fullslice")
            loaded = plan.loaded_elems_per_plane()
            corners = redundant_corner_elems(order)
            rows.append((order, corners, corners / loaded))
        return rows

    rows = benchmark(run)

    class R:
        def render(self):
            lines = ["Ablation: full-slice corner overhead (tile 32x16)"]
            lines += [
                f"  order {o:2d}: {c:4d} corner elems = {f:6.2%} of plane loads"
                for o, c, f in rows
            ]
            return "\n".join(lines)

    save_render(R(), "ablation_corners.txt")

    fracs = [f for _, _, f in rows]
    assert fracs == sorted(fracs)  # grows with order
    assert rows[0][1] == 4 and rows[-1][1] == 4 * 36  # 4r^2 exactly

    # Independent of block size: same element count for a larger tile.
    big = InPlaneKernel(symmetric(8), BlockConfig(64, 8, 2, 2), variant="fullslice")
    small = InPlaneKernel(symmetric(8), cfg, variant="fullslice")
    hz_big = InPlaneKernel(symmetric(8), BlockConfig(64, 8, 2, 2), variant="horizontal")
    hz_small = InPlaneKernel(symmetric(8), cfg, variant="horizontal")
    assert (
        big.loaded_elems_per_plane() - hz_big.loaded_elems_per_plane()
        == small.loaded_elems_per_plane() - hz_small.loaded_elems_per_plane()
        == redundant_corner_elems(8)
    )
