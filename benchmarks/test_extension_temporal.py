"""Extension — temporal blocking (ghost zones) on top of the in-plane
method.

The paper's related work points at temporal blocking (Meng's ghost zones,
Nguyen's 3.5-D) as the complementary axis; this bench regenerates the
classic trade-off curve on the simulator:

* fusing T = 2 sweeps beats sweep-at-a-time for a bandwidth-bound
  low-order SP stencil;
* the per-sweep gain shrinks (and eventually reverses) as T grows —
  ghost loads grow with (tile + 2rT)^2 and the ghost pyramid inflates the
  compute;
* at high stencil order the whole scheme is worth less than at low order.
"""

from repro.errors import ResourceLimitError
from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.kernels.config import BlockConfig
from repro.kernels.temporal import TemporalInPlaneKernel
from repro.stencils.spec import symmetric

GRID = (512, 512, 256)
BLOCK = BlockConfig(32, 8, 1, 2)


def test_temporal_blocking_curve(benchmark, save_render):
    dev = get_device("gtx580")

    def run():
        out = {}
        for order in (2, 8):
            for t in (1, 2, 3, 4):
                plan = TemporalInPlaneKernel(
                    symmetric(order), BLOCK, time_steps=t
                )
                try:
                    out[(order, t)] = simulate(plan, dev, GRID).mpoints_per_s
                except ResourceLimitError:
                    # Ghost windows exceed shared memory: T is infeasible —
                    # the hard capacity wall that bounds temporal fusion.
                    out[(order, t)] = 0.0
        return out

    rates = benchmark(run)

    class R:
        def render(self):
            lines = ["Extension: temporal blocking, effective MPt/s per logical sweep"]
            for order in (2, 8):
                row = "  ".join(
                    f"T={t}:{rates[(order, t)]:9.1f}" for t in (1, 2, 3, 4)
                )
                lines.append(f"  order {order:2d}: {row}")
            return "\n".join(lines)

    save_render(R(), "extension_temporal.txt")

    # T=2 wins for the bandwidth-bound order-2 stencil.
    assert rates[(2, 2)] > rates[(2, 1)]
    # Marginal gain shrinks with T (concave curve with an optimum).
    g2 = rates[(2, 2)] / rates[(2, 1)]
    g3 = rates[(2, 3)] / rates[(2, 2)]
    g4 = rates[(2, 4)] / max(rates[(2, 3)], 1e-9)
    assert g2 > g3 > g4
    # High order benefits less from fusing (or cannot fuse at all: the
    # per-slice ghost windows blow the shared-memory budget).
    assert rates[(8, 3)] / rates[(8, 1)] < rates[(2, 3)] / rates[(2, 1)]
