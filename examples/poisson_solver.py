#!/usr/bin/env python3
"""Poisson solver: a multi-grid application stencil end to end.

Solves the discrete Poisson equation lap(u) = f with Jacobi iteration
using the section-V application kernel (2 input grids, 1 output), checks
convergence against an analytically known solution, and compares the
in-plane vs forward-plane kernels — same numbers, different simulated
cost.
"""

import numpy as np

import repro
from repro.kernels.multigrid import MultiGridKernel
from repro.stencils.applications import laplacian, poisson
from repro.stencils.reference import apply_expr


def manufactured_problem(n: int = 34):
    """u* = sin-free polynomial with known Laplacian, Dirichlet-style.

    We pick u*(x,y,z) = x^2 + 2 y^2 + 3 z^2 so lap(u*) = 12 exactly, even
    in the discrete 7-point operator — the Jacobi iteration must converge
    to u* given f = 12 and u*'s boundary values.
    """
    z, y, x = np.meshgrid(*(np.arange(n, dtype=np.float64),) * 3, indexing="ij")
    u_star = x * x + 2 * y * y + 3 * z * z
    f = np.full_like(u_star, 12.0)
    u0 = u_star.copy()
    u0[1:-1, 1:-1, 1:-1] = 0.0  # interior unknown, boundary = exact values
    return u0, f, u_star


def plans():
    """The kernel plans this example runs, for the lint regression test."""
    expr = poisson()
    grid = (512, 512, 256)
    return [
        (MultiGridKernel(expr, repro.BlockConfig(16, 4, 1, 2), "dp",
                         method="inplane"), grid),
        (MultiGridKernel(expr, repro.BlockConfig(64, 4, 1, 2), "sp",
                         method="forward"), grid),
        (MultiGridKernel(expr, repro.BlockConfig(64, 4, 1, 2), "sp",
                         method="inplane"), grid),
    ]


def main() -> None:
    expr = poisson()
    kern = MultiGridKernel(expr, repro.BlockConfig(16, 4, 1, 2), "dp",
                           method="inplane")

    u, f, u_star = manufactured_problem()
    err0 = np.abs(u - u_star)[1:-1, 1:-1, 1:-1].max()
    print(f"initial max error vs exact solution: {err0:.1f}")

    for sweep in range(1, 2001):
        u = kern.execute(u, f)[0]
        if sweep % 400 == 0:
            err = np.abs(u - u_star)[1:-1, 1:-1, 1:-1].max()
            lap_u = apply_expr(laplacian(), [u])[0]
            res = np.abs(lap_u - f)[2:-2, 2:-2, 2:-2].max()
            print(f"  sweep {sweep:5d}: max error {err:9.4f},"
                  f" residual {res:9.4f}")

    err = np.abs(u - u_star)[1:-1, 1:-1, 1:-1].max()
    assert err < err0 / 10, "Jacobi failed to converge"

    # Both schedules produce identical numerics; the simulator prices the
    # loading patterns differently (the paper's Fig 11 'Poisson' bar).
    fwd = MultiGridKernel(expr, repro.BlockConfig(64, 4, 1, 2), "sp",
                          method="forward")
    inp = MultiGridKernel(expr, repro.BlockConfig(64, 4, 1, 2), "sp",
                          method="inplane")
    print("\nsimulated cost per sweep on the paper grid (512x512x256):")
    for device in ("gtx580", "c2070"):
        rf = repro.simulate(fwd, device, (512, 512, 256))
        ri = repro.simulate(inp, device, (512, 512, 256))
        print(f"  {device}: forward {rf.mpoints_per_s:8.0f} MPt/s | "
              f"in-plane {ri.mpoints_per_s:8.0f} MPt/s | "
              f"speedup {ri.mpoints_per_s / rf.mpoints_per_s:.2f}x")


if __name__ == "__main__":
    main()
