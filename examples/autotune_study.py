#!/usr/bin/env python3
"""Auto-tuning study: exhaustive search, the performance model, and the
beta-cutoff procedure (sections IV-C and VI).

Reproduces the paper's tuning story for one stencil on one GPU:

* sweeps the full constrained (TX, TY, RX, RY) space exhaustively;
* prints the Fig 8-style performance surface at the optimal (TX, TY);
* ranks the space with the analytical model (Eqns (6)-(14)) and shows how
  the best-found configuration improves as the executed fraction beta
  grows — the economics of model-based tuning.
"""

import math

import repro
from repro.kernels.factory import make_kernel
from repro.tuning.exhaustive import exhaustive_tune, feasible_configs
from repro.tuning.modelbased import model_based_tune
from repro.tuning.perfmodel import ModelInputs, PaperModel

ORDER = 8
DEVICE = "gtx580"
GRID = (512, 512, 256)


def plans():
    """The kernel plans this example runs, for the lint regression test."""
    spec = repro.symmetric(ORDER)
    return [
        (make_kernel("inplane_fullslice", spec, (32, 4, 1, 4)), GRID),
        (make_kernel("inplane_fullslice", spec, (16, 16, 4, 1)), GRID),
    ]


def main() -> None:
    spec = repro.symmetric(ORDER)
    dev = repro.get_device(DEVICE)
    build = lambda cfg: make_kernel("inplane_fullslice", spec, cfg)

    # Exhaustive ground truth.
    exh = exhaustive_tune(build, dev, GRID)
    print(exh.summary())
    print("top five configurations:")
    for entry in exh.entries[:5]:
        print(f"  {entry.config.label():>16} {entry.mpoints_per_s:9.1f} MPt/s  "
              f"occ {entry.info['occupancy']:.0%}  "
              f"eff {entry.info['load_efficiency']:.0%}")

    # Fig 8-style surface at the winning (TX, TY).
    tx, ty = exh.best_config.tx, exh.best_config.ty
    print(f"\nperformance surface at TX={tx}, TY={ty} (MPt/s):")
    print("        " + "".join(f"RY={ry:<8}" for ry in (1, 2, 4, 8)))
    for rx in (1, 2, 4):
        cells = []
        for ry in (1, 2, 4, 8):
            try:
                cfg = repro.BlockConfig(tx, ty, rx, ry)
                rep = repro.simulate(build(cfg), dev, GRID)
                cells.append(f"{rep.mpoints_per_s:8.0f}")
            except repro.ReproError:
                cells.append(f"{'-':>8}")
        print(f"  RX={rx}  " + "  ".join(cells))

    # The model's view: predicted vs simulated for the exhaustive top five.
    model = PaperModel(dev)
    print("\nmodel predictions for the simulator's top five:")
    for entry in exh.entries[:5]:
        pred = model.predict(ModelInputs.from_plan(build(entry.config), dev, GRID))
        print(f"  {entry.config.label():>16} simulated {entry.mpoints_per_s:9.1f}"
              f"  model {pred.mpoints_per_s:9.1f}")

    # Beta economics: executed configurations vs achieved fraction of optimum.
    n_space = len(feasible_configs(build, dev, GRID))
    print(f"\nmodel-based tuning economics ({n_space} feasible configs):")
    for beta in (0.02, 0.05, 0.10, 0.25):
        res = model_based_tune(build, dev, GRID, beta=beta)
        frac = res.best_mpoints / exh.best_mpoints
        print(f"  beta {beta:4.0%}: executed {res.evaluated:3d}"
              f" ({math.ceil(beta * n_space):3d} budget)"
              f" -> {frac:6.1%} of the exhaustive optimum")


if __name__ == "__main__":
    main()
