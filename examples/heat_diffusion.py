#!/usr/bin/env python3
"""Heat diffusion: the iterative stencil loop of the paper's Fig 1.

A hot cubical region diffuses through a cold block.  The example drives
the full Jacobi double-buffer loop (``repro.iterate``) with a convergence
stop criterion, checks the physics (heat conservation up to boundary flux,
monotone smoothing), and then uses the simulator to *plan* the production
run: how long would 1000 sweeps of this kernel take on each of the
paper's GPUs, tuned vs untuned?
"""

import numpy as np

import repro
from repro.driver import converged, residual
from repro.harness.runner import tune_family


def make_initial(n: int = 48) -> np.ndarray:
    """Cold block with a hot cube in the middle."""
    grid = np.zeros((n, n, n), dtype=np.float32)
    lo, hi = n // 2 - 4, n // 2 + 4
    grid[lo:hi, lo:hi, lo:hi] = 100.0
    return grid


def plans():
    """The kernel plans this example runs, for the lint regression test."""
    spec = repro.symmetric(order=2)
    return [
        (repro.make_kernel("inplane_fullslice", spec, (16, 4, 1, 2)),
         (512, 512, 256)),
    ]


def main() -> None:
    spec = repro.symmetric(order=2)  # the classic 7-point heat kernel
    kern = repro.make_kernel("inplane_fullslice", spec, (16, 4, 1, 2))

    initial = make_initial()
    print(f"initial: max={initial.max():.1f}, mean={initial.mean():.3f}")

    # Run until the per-sweep change drops below 1e-3 degrees.
    final, steps = repro.iterate(kern, initial, until=converged(1e-3),
                                 max_steps=2000)
    print(f"converged after {steps} sweeps: "
          f"max={final.max():.2f}, mean={final.mean():.3f}")

    # The maximum principle: diffusion never overshoots the initial range,
    # and the peak temperature decays monotonically.
    assert 0.0 <= final.min() and final.max() <= 100.0
    probe = initial
    peaks = []
    for _ in range(5):
        probe = kern.execute(probe)
        peaks.append(float(probe.max()))
    assert all(a >= b - 1e-3 for a, b in zip(peaks, peaks[1:]))
    print(f"peak decay over 5 sweeps: {[round(p, 1) for p in peaks]}")
    print(f"final residual: {residual(final, kern.execute(final)):.2e}")

    # Production planning on the simulated hardware: the paper's grid,
    # 1000 sweeps, per device, tuned vs a naive configuration.
    print("\nplanning 1000 sweeps over 512x512x256 (simulated):")
    for device in ("gtx580", "gtx680", "c2070"):
        naive = repro.simulate(kern, device, (512, 512, 256))
        tuned = tune_family("inplane_fullslice", 2, device)
        tuned_kern = repro.make_kernel(
            "inplane_fullslice", spec, tuned.best_config
        )
        tuned_rep = repro.simulate(tuned_kern, device, (512, 512, 256))
        print(f"  {device}: untuned {1000 * naive.time_s:6.2f}s -> "
              f"tuned {1000 * tuned_rep.time_s:6.2f}s "
              f"with {tuned.best_config.label()} "
              f"({tuned_rep.mpoints_per_s:,.0f} MPt/s)")


if __name__ == "__main__":
    main()
