#!/usr/bin/env python3
"""Custom stencils through the textual DSL, end to end.

Defines a variable-coefficient anisotropic diffusion stencil the way a
Patus/Physis user would — as text — then runs the whole pipeline on it:
parse, verify numerics, tune both schedules on a simulated GPU, place the
winner on the roofline, and (because the in-plane method is ultimately a
CUDA technique) note where the generated-code path picks up for the
symmetric family.
"""

import numpy as np

import repro
from repro.harness.runner import FULL_SPACE, THREAD_ONLY_SPACE
from repro.kernels.multigrid import MultiGridKernel
from repro.metrics.roofline import roofline
from repro.stencils.reference import apply_expr
from repro.tuning.exhaustive import exhaustive_tune
from repro.workloads import random_grid

GRID = (512, 512, 256)

#: Anisotropic diffusion with a spatially varying conductivity volume kx,
#: stronger along x than y/z, plus a sink term.
SOURCE = """
t_next[i,j,k] = 0.55 * t[i,j,k]
              + kx[i,j,k] * t[i-1,j,k] + kx[i,j,k] * t[i+1,j,k]
              + 0.05 * t[i,j-1,k] + 0.05 * t[i,j+1,k]
              + 0.05 * t[i,j,k-1] + 0.05 * t[i,j,k+1]
              - 0.01 * s[i,j,k]
"""


def plans():
    """The kernel plans this example runs, for the lint regression test."""
    expr, _ = repro.parse_stencil(SOURCE, name="aniso_diffusion")
    return [
        (MultiGridKernel(expr, repro.BlockConfig(16, 4), "sp",
                         method=method), GRID)
        for method in ("forward", "inplane")
    ] + [
        (repro.make_kernel("inplane_fullslice", repro.symmetric(2),
                           (32, 4, 1, 4)), GRID),
    ]


def main() -> None:
    expr, inputs = repro.parse_stencil(SOURCE, name="aniso_diffusion")
    print(f"parsed {expr.name!r}: inputs {inputs}, "
          f"{len(expr.all_taps())} taps, radius {expr.radius()}, "
          f"{expr.mem_refs_per_point()} refs/pt")

    # Verify against the direct reference on random data.
    grids = [
        random_grid((12, 16, 20), seed=1),          # t
        random_grid((12, 16, 20), seed=2) * 0.1,    # kx
        random_grid((12, 16, 20), seed=3),          # s
    ]
    kern = MultiGridKernel(expr, repro.BlockConfig(16, 4), "sp", method="inplane")
    kern.validate_against(apply_expr(expr, grids), kern.execute(*grids))
    print("numerics verified against the direct reference")

    # Tune both schedules on the simulated GTX580.
    dev = repro.get_device("gtx580")
    fwd = exhaustive_tune(
        lambda cfg: MultiGridKernel(expr, cfg, "sp", method="forward"),
        dev, GRID, THREAD_ONLY_SPACE,
    )
    inp = exhaustive_tune(
        lambda cfg: MultiGridKernel(expr, cfg, "sp", method="inplane"),
        dev, GRID, FULL_SPACE,
    )
    print(f"forward baseline : {fwd.best_mpoints:9.0f} MPt/s at {fwd.best_config.label()}")
    print(f"in-plane tuned   : {inp.best_mpoints:9.0f} MPt/s at {inp.best_config.label()}")
    print(f"speedup          : {inp.best_mpoints / fwd.best_mpoints:.2f}x")

    # Where does the winner sit on the roofline?
    best = MultiGridKernel(expr, inp.best_config, "sp", method="inplane")
    print("roofline:", roofline(best, dev, GRID).summary())

    # The CUDA path exists for the symmetric family — show the handoff.
    from repro.codegen import generate_kernel
    cuda = generate_kernel(
        repro.make_kernel("inplane_fullslice", repro.symmetric(2), (32, 4, 1, 4))
    )
    print(f"\n(for symmetric kernels, `repro codegen` emits real CUDA — "
          f"e.g. {cuda.name}: {cuda.line_count()} lines)")


if __name__ == "__main__":
    main()
