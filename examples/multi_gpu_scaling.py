#!/usr/bin/env python3
"""Multi-GPU scaling: slab decomposition with halo exchange.

Scales the tuned in-plane kernel across 1-16 simulated GTX580s connected
over PCIe, the way a 2013 cluster node (or the paper's refs [6], [7])
would.  Shows three things:

1. the decomposition is numerically exact — slab sweeps plus halo
   exchanges reproduce the single-grid result bit-for-tolerance;
2. strong scaling saturates once the fixed per-step halo exchange rivals
   the shrinking per-slab kernel time;
3. overlapping communication with boundary-first computation buys back a
   measurable fraction of the lost efficiency.
"""

import numpy as np

import repro
from repro.cluster import MultiGpuStencil, PCIE_GEN2_X16, PCIE_P2P
from repro.stencils.reference import iterate_symmetric
from repro.workloads import hot_cube

GRID = (512, 512, 256)


def builder():
    return repro.make_kernel("inplane_fullslice", repro.symmetric(2), (64, 4, 4, 2))


def plans():
    """The kernel plans this example runs, for the lint regression test."""
    return [(builder(), GRID)]


def main() -> None:
    # 1. Exactness on a small grid anyone can verify quickly.
    sim = MultiGpuStencil(builder, "gtx580")
    small = hot_cube((32, 24, 24))
    multi = sim.run_steps(small, gpus=4, steps=5)
    single = iterate_symmetric(repro.symmetric(2), small, 5)
    print(f"4-GPU vs single-grid max error after 5 steps: "
          f"{np.abs(multi - single).max():.2e}")

    # 2. Strong scaling on the paper's grid.
    print(f"\nstrong scaling, {GRID} grid, PCIe2 x16, no overlap:")
    for p in sim.strong_scaling(GRID, (1, 2, 4, 8, 16)):
        bar = "#" * round(p.efficiency * 40)
        print(f"  {p.gpus:3d} GPUs  {p.mpoints_per_s:10,.0f} MPt/s  "
              f"eff {p.efficiency:6.1%} {bar}")

    # 3. What communication/computation overlap and a faster link buy.
    print("\n8-GPU step time under different interconnect assumptions:")
    for label, link, overlap in (
        ("PCIe2 x16, no overlap", PCIE_GEN2_X16, 0.0),
        ("PCIe2 x16, 80% overlap", PCIE_GEN2_X16, 0.8),
        ("PCIe P2P,  80% overlap", PCIE_P2P, 0.8),
    ):
        cost = MultiGpuStencil(builder, "gtx580", link=link, overlap=overlap)
        p = cost.step_cost(GRID, 8)
        print(f"  {label:24s}: {p.step_time_s * 1e3:6.2f} ms/step, "
              f"eff {p.efficiency:6.1%}")


if __name__ == "__main__":
    main()
