#!/usr/bin/env python3
"""Application survey: all six Table V stencils, end to end.

For each application of the paper's section V — Div, Grad, Hyperthermia,
Upstream, Laplacian, Poisson — this example:

1. builds the multi-grid kernel for both schedules,
2. verifies numerics on random inputs against the direct reference,
3. tunes both on a simulated GTX580 (forward baseline thread-only, like
   the paper's nvstencil), and
4. prints the Fig 11-style speedup bar, annotated with the per-app grid
   traffic that explains it.
"""

import numpy as np

import repro
from repro.harness.runner import FULL_SPACE, THREAD_ONLY_SPACE
from repro.kernels.multigrid import MultiGridKernel
from repro.stencils.applications import APPLICATIONS, PAPER_TABLE5
from repro.stencils.reference import apply_expr
from repro.tuning.exhaustive import exhaustive_tune

GRID = (512, 512, 256)
DEVICE = "gtx580"


def plans():
    """The kernel plans this example runs, for the lint regression test."""
    out = [
        (MultiGridKernel(expr, repro.BlockConfig(16, 4), "sp", method=method),
         GRID)
        for expr in APPLICATIONS.values()
        for method in ("forward", "inplane")
    ]
    out.append((
        MultiGridKernel(APPLICATIONS["hyperthermia"], repro.BlockConfig(32, 8),
                        "sp", method="inplane"),
        GRID,
    ))
    return out


def main() -> None:
    rng = np.random.default_rng(42)
    dev = repro.get_device(DEVICE)

    print(f"{'app':14s} {'in/out':>6} {'verified':>9} "
          f"{'forward':>9} {'in-plane':>9} {'speedup':>8}")
    for name, expr in APPLICATIONS.items():
        # Numeric verification on small random grids.
        grids = [rng.random((12, 16, 20)).astype(np.float32)
                 for _ in range(expr.n_grids)]
        kern = MultiGridKernel(expr, repro.BlockConfig(16, 4), "sp",
                               method="inplane")
        refs = apply_expr(expr, grids)
        kern.validate_against(refs, kern.execute(*grids))

        # Tune both schedules (baseline without register tiling).
        fwd = exhaustive_tune(
            lambda cfg: MultiGridKernel(expr, cfg, "sp", method="forward"),
            dev, GRID, THREAD_ONLY_SPACE,
        )
        inp = exhaustive_tune(
            lambda cfg: MultiGridKernel(expr, cfg, "sp", method="inplane"),
            dev, GRID, FULL_SPACE,
        )
        n_in, n_out = PAPER_TABLE5[name]
        print(f"{name:14s} {f'{n_in}/{n_out}':>6} {'ok':>9} "
              f"{fwd.best_mpoints:9.0f} {inp.best_mpoints:9.0f} "
              f"{inp.best_mpoints / fwd.best_mpoints:7.2f}x")

    print("\nwhy hyperthermia barely gains (section V-A):")
    expr = APPLICATIONS["hyperthermia"]
    kern = MultiGridKernel(expr, repro.BlockConfig(32, 8), "sp", method="inplane")
    wl = kern.block_workload(dev, GRID)
    stenciled = expr.stenciled_grids()
    coeffs = expr.coefficient_grids()
    print(f"  grids with stencil halos     : {len(stenciled)}")
    print(f"  pure coefficient volumes     : {len(coeffs)}")
    print(f"  bytes moved per block plane  : {wl.memory.total_transferred_bytes:.0f}")
    print("  -> the coefficient volumes are loaded identically by both "
          "methods, so the loading-pattern advantage is diluted ~10x.")


if __name__ == "__main__":
    main()
