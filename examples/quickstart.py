#!/usr/bin/env python3
"""Quickstart: define a stencil, run the in-plane kernel, tune it.

Walks the library's three layers in ~40 lines:

1. numerics — execute one sweep of the in-plane method and check it
   against the direct reference;
2. simulation — "launch" the same kernel on a simulated GTX580 and read
   the profiler-style report;
3. auto-tuning — find the best (TX, TY, RX, RY) with the model-based
   procedure (section VI: executes only ~5% of the space).
"""

import numpy as np

import repro


def plans():
    """The kernel plans this example runs, for the lint regression test."""
    spec = repro.symmetric(order=4)
    return [
        (repro.make_kernel("inplane_fullslice", spec, (32, 4, 1, 4)),
         (512, 512, 256)),
    ]


def main() -> None:
    # A 4th-order (radius-2) symmetric Jacobi stencil, Eqn (1).
    spec = repro.symmetric(order=4)
    print(f"order-{spec.order} stencil: {spec.mem_refs_per_point} refs/pt, "
          f"{spec.flops_forward} flops/pt forward, {spec.flops_inplane} in-plane")

    # 1. Numerics: the in-plane recurrence (Eqns (3)-(5)) must agree with
    #    direct evaluation up to float32 rounding.
    kern = repro.make_kernel("inplane_fullslice", spec, (32, 4, 1, 4))
    rng = np.random.default_rng(7)
    grid = rng.random((32, 64, 64)).astype(np.float32)  # [z, y, x]
    out = kern.execute(grid)
    ref = repro.apply_symmetric(spec, grid)
    print(f"max |in-plane - reference| = {np.abs(out - ref).max():.2e}")

    # 2. Simulation: one sweep over the paper's 512x512x256 grid.
    for device in ("gtx580", "gtx680", "c2070"):
        report = repro.simulate(kern, device, (512, 512, 256))
        print(report.summary())

    # 3. Auto-tuning: model-based with the paper's beta = 5% cutoff.
    best = repro.autotune("inplane_fullslice", spec, "gtx580",
                          grid_shape=(512, 512, 256), method="model", beta=0.05)
    print(best.summary())

    # Compare against the tuned nvstencil baseline (thread blocking only,
    # as in the paper's Table IV).
    from repro.harness.runner import tune_family
    baseline = tune_family("nvstencil", 4, "gtx580", register_blocking=False)
    print(f"speedup over tuned nvstencil: "
          f"{best.best_mpoints / baseline.best_mpoints:.2f}x")


if __name__ == "__main__":
    main()
