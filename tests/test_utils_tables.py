"""Tests for ASCII table/series formatting."""

import pytest

from repro.utils.tables import format_mapping, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(("a", "bb"), [(1, 2), (33, 4)])
        lines = text.splitlines()
        assert lines[0].strip().startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(("x",), [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = format_table(("x",), [(1.23456,)], float_fmt=".1f")
        assert "1.2" in text
        assert "1.23" not in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_empty_rows_ok(self):
        text = format_table(("a",), [])
        assert "a" in text


class TestFormatSeries:
    def test_pairs(self):
        text = format_series("s", [2, 4], [1.0, 2.0])
        assert "2=1.000" in text and "4=2.000" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1.0, 2.0])


class TestFormatMapping:
    def test_alignment(self):
        text = format_mapping("T", {"a": 1, "long_key": 2})
        lines = text.splitlines()
        assert lines[0] == "T"
        assert ":" in lines[1]

    def test_empty(self):
        assert "(empty)" in format_mapping("T", {})
