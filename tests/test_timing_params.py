"""Every TimingParams knob must move simulated cycles in its documented
direction — the executable spec of the calibration surface."""

import dataclasses

import pytest

from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.gpusim.timing import TimingParams, params_for
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric

GRID = (256, 256, 64)


def cycles(plan, device, **overrides):
    params = dataclasses.replace(params_for(device), **overrides)
    return simulate(plan, device, GRID, params).total_cycles


@pytest.fixture
def nv(gtx580):
    return make_kernel("nvstencil", symmetric(4), BlockConfig(64, 8))


@pytest.fixture
def fs(gtx580):
    return make_kernel("inplane_fullslice", symmetric(4), BlockConfig(32, 4, 2, 2))


class TestKnobDirections:
    def test_arith_efficiency_up_is_faster(self, nv, gtx580):
        assert cycles(nv, gtx580, arith_efficiency=0.9) <= cycles(
            nv, gtx580, arith_efficiency=0.4
        )

    def test_latency_exposure_up_is_slower(self, nv, gtx580):
        assert cycles(nv, gtx580, latency_exposure=1.5) > cycles(
            nv, gtx580, latency_exposure=0.2
        )

    def test_phase_straggler_hits_split_loading_only_more(self, nv, fs, gtx580):
        """Straggler cost scales with phases: 4-phase nvstencil must lose
        more than 1-phase full-slice when the knob rises."""
        nv_delta = cycles(nv, gtx580, phase_straggler=1.0) / cycles(
            nv, gtx580, phase_straggler=0.0
        )
        fs_delta = cycles(fs, gtx580, phase_straggler=1.0) / cycles(
            fs, gtx580, phase_straggler=0.0
        )
        assert nv_delta > fs_delta
        assert fs_delta == pytest.approx(1.0)

    def test_block_overlap_up_is_faster(self, nv, gtx580):
        assert cycles(nv, gtx580, block_overlap=0.9) <= cycles(
            nv, gtx580, block_overlap=0.1
        )

    def test_ilp_bonus_helps_register_tiled_kernels(self, fs, gtx580):
        assert cycles(fs, gtx580, ilp_bonus=1.0) <= cycles(fs, gtx580, ilp_bonus=0.0)

    def test_sync_cost_up_is_slower(self, nv, gtx580):
        assert cycles(nv, gtx580, sync_base_cycles=200.0) > cycles(
            nv, gtx580, sync_base_cycles=0.0
        )

    def test_sched_overhead_up_is_slower(self, nv, gtx580):
        assert cycles(nv, gtx580, sched_overhead_cycles=2000.0) > cycles(
            nv, gtx580, sched_overhead_cycles=0.0
        )

    def test_l2_reuse_up_is_faster(self, nv, gtx580):
        assert cycles(nv, gtx580, l2_halo_reuse=0.6) < cycles(
            nv, gtx580, l2_halo_reuse=0.0
        )

    def test_camping_up_slows_split_loading_only(self, nv, fs, gtx580):
        assert cycles(nv, gtx580, partition_camping=5.0) > cycles(
            nv, gtx580, partition_camping=1.0
        )
        assert cycles(fs, gtx580, partition_camping=5.0) == pytest.approx(
            cycles(fs, gtx580, partition_camping=1.0)
        )

    def test_spill_cost_only_bites_spilled_kernels(self, gtx580):
        lean = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4))
        fat = make_kernel("inplane_fullslice", symmetric(12), BlockConfig(32, 4, 4, 8))
        assert cycles(lean, gtx580, spill_bytes_per_reg=64.0) == pytest.approx(
            cycles(lean, gtx580, spill_bytes_per_reg=0.0)
        )
        assert cycles(fat, gtx580, spill_bytes_per_reg=64.0) > cycles(
            fat, gtx580, spill_bytes_per_reg=0.0
        )

    def test_addressing_cost_hits_scalar_loads_more(self, gtx580):
        from repro.kernels.inplane import InPlaneKernel

        vec = InPlaneKernel(symmetric(8), BlockConfig(32, 4), use_vectors=True)
        sca = InPlaneKernel(symmetric(8), BlockConfig(32, 4), use_vectors=False)
        vec_delta = cycles(vec, gtx580, load_addressing_instructions=8.0) / cycles(
            vec, gtx580, load_addressing_instructions=0.0
        )
        sca_delta = cycles(sca, gtx580, load_addressing_instructions=8.0) / cycles(
            sca, gtx580, load_addressing_instructions=0.0
        )
        assert sca_delta >= vec_delta


class TestGenerationParams:
    def test_distinct_per_generation(self):
        fermi = params_for(get_device("gtx580"))
        kepler = params_for(get_device("gtx680"))
        gt200 = params_for(get_device("gtx285"))
        assert fermi != kepler
        assert gt200.l2_halo_reuse == 0.0  # GT200 has no L2

    def test_params_are_frozen(self, gtx580):
        with pytest.raises(dataclasses.FrozenInstanceError):
            params_for(gtx580).arith_efficiency = 0.5  # type: ignore[misc]
