"""SymmetricStencil specification tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StencilDefinitionError
from repro.stencils.spec import (
    SymmetricStencil,
    default_coefficients,
    dtype_for,
    symmetric,
)


class TestConstruction:
    def test_radius(self):
        assert symmetric(8).radius == 4

    def test_extent_table1(self):
        assert symmetric(2).extent == (3, 3, 3)
        assert symmetric(12).extent == (13, 13, 13)

    def test_rejects_odd_order(self):
        with pytest.raises(StencilDefinitionError):
            symmetric(3)

    def test_rejects_non_positive(self):
        for order in (0, -2):
            with pytest.raises(StencilDefinitionError):
                symmetric(order)

    def test_rejects_wrong_coefficient_count(self):
        with pytest.raises(StencilDefinitionError):
            SymmetricStencil(order=4, coefficients=(1.0, 0.1))

    def test_custom_coefficients(self):
        spec = symmetric(2, coefficients=(0.4, 0.1))
        assert spec.coefficients == (0.4, 0.1)


class TestOperationCounts:
    """The derived counts must match the closed forms of Tables I/II."""

    @pytest.mark.parametrize("order", [2, 4, 6, 8, 10, 12])
    def test_points(self, order):
        assert symmetric(order).points == 6 * (order // 2) + 1

    @pytest.mark.parametrize(
        "order,refs,flops", [(2, 8, 8), (4, 14, 15), (6, 20, 22), (8, 26, 29)]
    )
    def test_table1_values(self, order, refs, flops):
        spec = symmetric(order)
        assert spec.mem_refs_per_point == refs
        assert spec.flops_forward == flops

    @pytest.mark.parametrize("order,flops", [(2, 9), (4, 17), (12, 49)])
    def test_table2_inplane_flops(self, order, flops):
        assert symmetric(order).flops_inplane == flops

    @given(order=st.integers(1, 30).map(lambda r: 2 * r))
    def test_inplane_costs_r_more_flops(self, order):
        spec = symmetric(order)
        assert spec.flops_inplane - spec.flops_forward == spec.radius


class TestDefaultCoefficients:
    @given(radius=st.integers(1, 20))
    def test_weights_sum_to_one(self, radius):
        coeffs = default_coefficients(radius)
        total = coeffs[0] + 6 * sum(coeffs[1:])
        assert total == pytest.approx(1.0)

    @given(radius=st.integers(1, 20))
    def test_all_weights_positive(self, radius):
        assert all(c > 0 for c in default_coefficients(radius))

    def test_rejects_bad_radius(self):
        with pytest.raises(StencilDefinitionError):
            default_coefficients(0)

    def test_constant_field_is_fixed_point(self, rng):
        """Weights summing to one keep a constant field constant —
        the stability property iterative examples rely on."""
        from repro.stencils.reference import apply_symmetric

        spec = symmetric(4)
        grid = np.full((12, 12, 12), 3.25, dtype=np.float64)
        out = apply_symmetric(spec, grid)
        np.testing.assert_allclose(out, grid, rtol=1e-12)


class TestDtypeFor:
    @pytest.mark.parametrize("name", ["sp", "float32", "single", "f4"])
    def test_sp_names(self, name):
        assert dtype_for(name) == np.dtype(np.float32)

    @pytest.mark.parametrize("name", ["dp", "float64", "double", "f8"])
    def test_dp_names(self, name):
        assert dtype_for(name) == np.dtype(np.float64)

    def test_unknown(self):
        with pytest.raises(StencilDefinitionError):
            dtype_for("fp16")
