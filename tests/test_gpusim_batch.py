"""Batch-engine tests: bit identity with the scalar pipeline.

The contract under test is the one ``tools/check.py``'s ``batch-identity``
gate enforces in CI: every quantity the vectorized engine produces —
occupancy, timing breakdown, the derived counter set, the headline rate —
is *bit-identical* (``==`` on floats, not ``approx``) to running the
scalar :func:`repro.gpusim.executor.simulate` per configuration.
"""

import pytest

from repro.errors import ResourceLimitError
from repro.gpusim.batch import BatchEngine, BlockClass, batch_reports, check_identity
from repro.gpusim.executor import simulate
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric
from repro.kernels.config import BlockConfig

GRID = (256, 256, 128)

#: Launchable configs spanning distinct occupancy limiters and smem shapes.
LIVE_CONFIGS = [(32, 4, 1, 4), (64, 2, 1, 1), (128, 4, 1, 2), (16, 8, 2, 2)]
#: Configs the scalar executor rejects (register file / shared memory).
DEAD_CONFIGS = [(64, 16, 2, 2), (64, 8, 4, 8)]


def plan_for(cfg, order=2, dtype="sp", family="inplane_fullslice"):
    return make_kernel(family, symmetric(order), BlockConfig(*cfg), dtype)


class TestReportIdentity:
    def test_reports_bit_identical_to_scalar(self, paper_device):
        plans = [plan_for(cfg) for cfg in LIVE_CONFIGS]
        batched = batch_reports([(p, GRID) for p in plans], paper_device)
        for plan, got in zip(plans, batched):
            want = simulate(plan, paper_device, GRID)
            assert not isinstance(got, Exception)
            assert got.mpoints_per_s == want.mpoints_per_s  # bit-exact
            assert got.time_s == want.time_s
            assert got.gflops == want.gflops
            assert got.bandwidth_gbs == want.bandwidth_gbs
            assert got.load_efficiency == want.load_efficiency
            assert got.counters.as_dict() == want.counters.as_dict()
            assert got.occupancy == want.occupancy
            assert got.total_cycles == want.total_cycles
            assert got.stages == want.stages
            assert got.active_blocks == want.active_blocks
            assert got.blocks == want.blocks
            assert got.breakdown == want.breakdown
            assert got.meta == want.meta

    def test_identity_across_dtypes_and_orders(self, gtx580):
        plans = [
            plan_for((32, 4, 1, 4), order=8),
            plan_for((32, 4, 1, 4), dtype="dp"),
            plan_for((64, 2, 1, 1), order=12, dtype="dp"),
        ]
        batched = batch_reports([(p, GRID) for p in plans], gtx580)
        for plan, got in zip(plans, batched):
            want = simulate(plan, gtx580, GRID)
            assert got.mpoints_per_s == want.mpoints_per_s
            assert got.counters.as_dict() == want.counters.as_dict()

    def test_profile_identity_gate(self):
        """The CI gate's own entry point over all trajectory records."""
        ok, summary = check_identity("BENCH_profile.json")
        assert ok, summary
        assert "identical: yes" in summary


class TestUnlaunchable:
    def test_error_messages_match_scalar(self, gtx580):
        for cfg in DEAD_CONFIGS:
            plan = plan_for(cfg)
            with pytest.raises(ResourceLimitError) as err:
                simulate(plan, gtx580, GRID)
            (got,) = batch_reports([(plan, GRID)], gtx580)
            assert isinstance(got, ResourceLimitError)
            assert str(got) == str(err.value)

    def test_mixed_batch_keeps_input_order(self, gtx580):
        cfgs = [LIVE_CONFIGS[0], DEAD_CONFIGS[0], LIVE_CONFIGS[1]]
        plans = [plan_for(c) for c in cfgs]
        out = batch_reports([(p, GRID) for p in plans], gtx580)
        assert not isinstance(out[0], Exception)
        assert isinstance(out[1], ResourceLimitError)
        assert not isinstance(out[2], Exception)
        assert out[0].mpoints_per_s == simulate(plans[0], gtx580, GRID).mpoints_per_s

    def test_scores_carry_launch_error(self, gtx580):
        engine = BatchEngine(gtx580)
        plan = plan_for(DEAD_CONFIGS[0])
        block = plan.block_workload(gtx580, GRID)
        grid = plan.grid_workload(gtx580, GRID)
        (score,) = engine.scores([BlockClass.of(block, grid)])
        assert score.launch_error is not None
        assert "registers" in score.launch_error
        assert score.mpoints_per_s == 0.0


class TestMemoization:
    def test_duplicate_classes_priced_once(self, gtx580, monkeypatch):
        engine = BatchEngine(gtx580)
        plan = plan_for(LIVE_CONFIGS[0])
        cls = BlockClass.of(
            plan.block_workload(gtx580, GRID), plan.grid_workload(gtx580, GRID)
        )
        calls = []
        real = BatchEngine._pipeline

        def counting(self, classes):
            calls.append(len(classes))
            return real(self, classes)

        monkeypatch.setattr(BatchEngine, "_pipeline", counting)
        first = engine.scores([cls, cls, cls])
        assert calls == [1]  # three requests, one distinct class priced
        again = engine.scores([cls])
        assert calls == [1]  # cache hit: no second pipeline pass
        assert first[0] == again[0]

    def test_outcomes_populate_score_cache(self, gtx580, monkeypatch):
        engine = BatchEngine(gtx580)
        plan = plan_for(LIVE_CONFIGS[1])
        cls = BlockClass.of(
            plan.block_workload(gtx580, GRID), plan.grid_workload(gtx580, GRID)
        )
        engine.outcomes([cls])
        calls = []
        monkeypatch.setattr(
            BatchEngine, "_pipeline",
            lambda self, classes: calls.append(len(classes)),
        )
        (score,) = engine.scores([cls])
        assert calls == []  # full pass already scored it
        assert score.mpoints_per_s == simulate(plan, gtx580, GRID).mpoints_per_s

    def test_shared_engine_across_report_calls(self, gtx580):
        engine = BatchEngine(gtx580)
        plan = plan_for(LIVE_CONFIGS[2])
        first = batch_reports([(plan, GRID)], gtx580, engine=engine)
        second = batch_reports([(plan, GRID)], gtx580, engine=engine)
        assert first[0].counters.as_dict() == second[0].counters.as_dict()
        assert len(engine._full) == 1


class TestBlockClass:
    def test_same_fingerprint_same_class(self, gtx580):
        a = plan_for(LIVE_CONFIGS[0])
        b = plan_for(LIVE_CONFIGS[0])
        ca = BlockClass.of(a.block_workload(gtx580, GRID), a.grid_workload(gtx580, GRID))
        cb = BlockClass.of(b.block_workload(gtx580, GRID), b.grid_workload(gtx580, GRID))
        assert ca == cb
        assert hash(ca) == hash(cb)

    def test_distinct_workloads_distinct_classes(self, gtx580):
        def class_of(cfg, order=2):
            p = plan_for(cfg, order=order)
            return BlockClass.of(
                p.block_workload(gtx580, GRID), p.grid_workload(gtx580, GRID)
            )

        assert class_of((32, 4, 1, 4)) != class_of((64, 2, 1, 1))
        # Same config, different stencil order: the fingerprint must split.
        assert class_of((32, 4, 1, 4)) != class_of((32, 4, 1, 4), order=8)
