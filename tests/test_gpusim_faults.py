"""Fault-injector tests: determinism, taxonomy, and zero perturbation."""

import numpy as np
import pytest

import repro.obs as obs
from repro.errors import (
    ConfigurationError,
    FaultInjectedError,
    KernelHangError,
)
from repro.gpusim.executor import DeviceExecutor
from repro.gpusim.faults import (
    FAULT_KINDS,
    STREAM_EXCHANGE,
    STREAM_LAUNCH,
    FaultPlan,
    flip_bit,
)
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric

GRID = (128, 128, 32)

STORM = dict(
    launch_failure_rate=0.1, hang_rate=0.05, throttle_rate=0.1, ecc_rate=0.05
)


@pytest.fixture
def plan():
    return make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4, 1, 2))


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=7, **STORM).schedule(200)
        b = FaultPlan(seed=7, **STORM).schedule(200)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=7, **STORM).schedule(200)
        b = FaultPlan(seed=8, **STORM).schedule(200)
        assert a != b

    def test_streams_independent(self):
        plan = FaultPlan(seed=7, **STORM)
        assert plan.schedule(200, STREAM_LAUNCH) != plan.schedule(
            200, STREAM_EXCHANGE
        )

    def test_event_for_is_pure(self):
        plan = FaultPlan(seed=3, **STORM)
        first = [plan.event_for(i) for i in range(50)]
        # Draw counters have no effect on the schedule.
        for _ in range(17):
            plan.next_index()
        assert [plan.event_for(i) for i in range(50)] == first

    def test_empirical_rates_match(self):
        plan = FaultPlan(seed=1, **STORM)
        events = plan.schedule(20000)
        counts = {k: 0 for k in FAULT_KINDS}
        for e in events:
            if e is not None:
                counts[e.kind] += 1
        assert counts["launch_failure"] / 20000 == pytest.approx(0.1, abs=0.01)
        assert counts["hang"] / 20000 == pytest.approx(0.05, abs=0.01)
        assert counts["throttle"] / 20000 == pytest.approx(0.1, abs=0.01)
        assert counts["ecc"] / 20000 == pytest.approx(0.05, abs=0.01)

    def test_burst_limits_injection(self):
        plan = FaultPlan(seed=2, launch_failure_rate=1.0, burst=10)
        events = plan.schedule(30)
        assert all(e is not None for e in events[:10])
        assert all(e is None for e in events[10:])

    def test_enabling_one_kind_does_not_shift_another(self):
        # One uniform draw per index: adding a disjoint rate slice must
        # not move the indices where an existing kind fires.
        lone = FaultPlan(seed=5, launch_failure_rate=0.1)
        both = FaultPlan(seed=5, launch_failure_rate=0.1, ecc_rate=0.3)
        lone_hits = {
            i for i, e in enumerate(lone.schedule(2000)) if e is not None
        }
        both_hits = {
            i for i, e in enumerate(both.schedule(2000))
            if e is not None and e.kind == "launch_failure"
        }
        assert lone_hits == both_hits

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(launch_failure_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(launch_failure_rate=0.7, hang_rate=0.7)
        with pytest.raises(ConfigurationError):
            FaultPlan(throttle_min=0.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(ecc_mode="zap")


class TestParse:
    def test_roundtrip(self):
        plan = FaultPlan.parse("seed=7, launch=0.1, hang=0.02, throttle=0.05")
        assert plan.seed == 7
        assert plan.launch_failure_rate == 0.1
        assert plan.hang_rate == 0.02
        assert plan.throttle_rate == 0.05
        assert "seed=7" in plan.describe()

    def test_all_keys(self):
        plan = FaultPlan.parse(
            "seed=3,ecc=0.1,ecc_mode=nan,burst=5,watchdog=1e9,"
            "throttle_min=1.5,throttle_max=2.0"
        )
        assert plan.ecc_mode == "nan"
        assert plan.burst == 5
        assert plan.watchdog_cycles == 1e9

    def test_bad_key_raises(self):
        with pytest.raises(ConfigurationError, match="bad fault spec entry"):
            FaultPlan.parse("frobnicate=1")

    def test_bad_value_raises(self):
        with pytest.raises(ConfigurationError, match="bad fault spec value"):
            FaultPlan.parse("launch=lots")


class TestExecutorFaults:
    def run_storm(self, plan, device, n=40, **kwargs):
        """Outcome-kind string per launch under a seeded storm."""
        executor = DeviceExecutor(device, faults=FaultPlan(seed=7, **kwargs))
        out = []
        for _ in range(n):
            try:
                report = executor.run(plan, GRID)
            except FaultInjectedError as exc:
                out.append(exc.kind)
            except KernelHangError as exc:
                out.append(exc.kind)
            else:
                faults = report.meta.get("faults", ())
                out.append(faults[0]["kind"] if faults else "clean")
        return out

    def test_fault_sequence_reproducible(self, plan, gtx580):
        kwargs = dict(STORM)
        a = self.run_storm(plan, gtx580, **kwargs)
        b = self.run_storm(plan, gtx580, **kwargs)
        assert a == b
        assert set(a) > {"clean"}  # the storm actually fired

    def test_launch_failure_raises(self, plan, gtx580):
        executor = DeviceExecutor(
            gtx580, faults=FaultPlan(launch_failure_rate=1.0)
        )
        with pytest.raises(FaultInjectedError) as exc:
            executor.run(plan, GRID)
        assert exc.value.kind == "launch_failure"

    def test_hang_raises(self, plan, gtx580):
        executor = DeviceExecutor(gtx580, faults=FaultPlan(hang_rate=1.0))
        with pytest.raises(KernelHangError) as exc:
            executor.run(plan, GRID)
        assert exc.value.kind == "hang"

    def test_watchdog_fires_without_faults(self, plan, gtx580):
        clean = DeviceExecutor(gtx580).run(plan, GRID)
        executor = DeviceExecutor(
            gtx580, watchdog_cycles=clean.total_cycles / 2
        )
        with pytest.raises(KernelHangError) as exc:
            executor.run(plan, GRID)
        assert exc.value.kind == "watchdog"

    def test_throttle_derates_time_not_cycles(self, plan, gtx580):
        clean = DeviceExecutor(gtx580).run(plan, GRID)
        executor = DeviceExecutor(gtx580, faults=FaultPlan(throttle_rate=1.0))
        report = executor.run(plan, GRID)
        assert report.total_cycles == clean.total_cycles
        factor = report.meta["faults"][0]["factor"]
        assert factor > 1.0
        assert report.time_s == pytest.approx(clean.time_s * factor)
        assert report.mpoints_per_s == pytest.approx(
            clean.mpoints_per_s / factor
        )

    def test_ecc_flags_meta(self, plan, gtx580):
        executor = DeviceExecutor(gtx580, faults=FaultPlan(ecc_rate=1.0))
        report = executor.run(plan, GRID)
        assert report.meta["faults"][0]["kind"] == "ecc"

    def test_no_plan_means_no_meta(self, plan, gtx580):
        report = DeviceExecutor(gtx580).run(plan, GRID)
        assert "faults" not in report.meta

    def test_zero_rate_plan_is_unperturbed(self, plan, gtx580):
        clean = DeviceExecutor(gtx580).run(plan, GRID)
        report = DeviceExecutor(gtx580, faults=FaultPlan(seed=9)).run(
            plan, GRID
        )
        assert report.time_s == clean.time_s
        assert report.total_cycles == clean.total_cycles

    def test_faults_observable_in_trace(self, plan, gtx580):
        executor = DeviceExecutor(gtx580, faults=FaultPlan(throttle_rate=1.0))
        with obs.tracing() as tracer:
            executor.run(plan, GRID)
        assert tracer.metrics.counter("sim.fault.throttle").value == 1
        instants = [
            s for s in tracer.host_spans() if s.name == "fault.throttle"
        ]
        assert instants and instants[0].args["kind"] == "throttle"


class TestArrayCorruption:
    def test_flip_bit_changes_one_element(self):
        import random

        arr = np.ones((4, 4, 4), dtype=np.float64)
        before = arr.copy()
        idx, bit = flip_bit(arr, random.Random(0))
        assert 0 <= idx < arr.size and 0 <= bit < 64
        assert (arr != before).sum() == 1

    def test_flip_bit_rejects_unsupported(self):
        import random

        with pytest.raises(ConfigurationError):
            flip_bit(np.ones(3, dtype=np.float16), random.Random(0))
        with pytest.raises(ConfigurationError):
            flip_bit(np.empty(0, dtype=np.float32), random.Random(0))

    def test_corrupt_nan_mode_plants_nan(self):
        plan = FaultPlan(ecc_rate=1.0, ecc_mode="nan")
        arr = np.ones((8, 8), dtype=np.float64)
        event = plan.corrupt(arr)
        assert event is not None and event.kind == "ecc"
        assert np.isnan(arr).sum() == 1

    def test_corrupt_flip_mode_changes_value(self):
        plan = FaultPlan(ecc_rate=1.0, ecc_mode="flip")
        arr = np.ones((8, 8), dtype=np.float64)
        event = plan.corrupt(arr)
        assert event is not None and event.kind == "ecc"
        assert not np.array_equal(arr, np.ones((8, 8)))

    def test_corrupt_reports_non_ecc_without_touching(self):
        plan = FaultPlan(launch_failure_rate=1.0)
        arr = np.ones(16, dtype=np.float32)
        event = plan.corrupt(arr)
        assert event is not None and event.kind == "launch_failure"
        assert np.array_equal(arr, np.ones(16, dtype=np.float32))

    def test_corrupt_is_reproducible(self):
        results = []
        for _ in range(2):
            plan = FaultPlan(seed=11, ecc_rate=0.5, ecc_mode="nan")
            arr = np.ones((4, 4), dtype=np.float64)
            for _ in range(10):
                plan.corrupt(arr)
            results.append(np.isnan(arr))
        assert np.array_equal(results[0], results[1])
