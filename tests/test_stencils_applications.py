"""Application-stencil definitions (Table V) and their numerics."""

import numpy as np
import pytest

from repro.stencils.applications import (
    APPLICATIONS,
    PAPER_TABLE5,
    divergence,
    gradient,
    hyperthermia,
    laplacian,
    poisson,
    upstream,
)
from repro.stencils.reference import apply_expr


def coordinate_grids(shape=(10, 10, 10)):
    """Return x, y, z coordinate arrays for [z, y, x] indexing."""
    lz, ly, lx = shape
    z, y, x = np.meshgrid(
        np.arange(lz, dtype=np.float64),
        np.arange(ly, dtype=np.float64),
        np.arange(lx, dtype=np.float64),
        indexing="ij",
    )
    return x, y, z


class TestTable5:
    """Grid counts must match the paper's Table V exactly."""

    @pytest.mark.parametrize("name", list(PAPER_TABLE5))
    def test_inputs_outputs(self, name):
        expr = APPLICATIONS[name]
        n_in, n_out = PAPER_TABLE5[name]
        assert expr.n_grids == n_in
        assert len(expr.outputs) == n_out

    def test_registry_order(self):
        assert list(APPLICATIONS) == [
            "div", "grad", "hyperthermia", "upstream", "laplacian", "poisson",
        ]

    def test_hyperthermia_nine_coefficient_volumes(self):
        """Section V-A: 9 of the grids are spatially varying coefficients."""
        expr = hyperthermia()
        assert len(expr.coefficient_grids()) == 9
        assert expr.stenciled_grids() == [0]


class TestGeometry:
    def test_div_per_grid_axes(self):
        expr = divergence()
        assert expr.halo_extent(0) == (1, 0, 0)  # U: x derivative
        assert expr.halo_extent(1) == (0, 1, 0)  # V: y derivative
        assert expr.halo_extent(2) == (0, 0, 1)  # W: z derivative

    def test_upstream_is_asymmetric_radius_2(self):
        expr = upstream()
        back, fwd = expr.z_extent(0)
        assert (back, fwd) == (2, 1)
        assert expr.radius() == 2

    def test_laplacian_radius_1(self):
        assert laplacian().radius() == 1

    def test_poisson_rhs_is_coefficient_like(self):
        expr = poisson()
        assert expr.halo_extent(1) == (0, 0, 0)


class TestNumerics:
    def test_divergence_of_linear_field_is_constant(self):
        """div(ax, by, cz) = a + b + c everywhere."""
        x, y, z = coordinate_grids()
        out = apply_expr(divergence(), [2.0 * x, 3.0 * y, 4.0 * z])[0]
        np.testing.assert_allclose(out[1:-1, 1:-1, 1:-1], 9.0, rtol=1e-12)

    def test_gradient_of_linear_field(self):
        x, y, z = coordinate_grids()
        f = 2.0 * x + 3.0 * y - 5.0 * z
        gx, gy, gz = apply_expr(gradient(), [f])
        inner = (slice(1, -1),) * 3
        np.testing.assert_allclose(gx[inner], 2.0, rtol=1e-12)
        np.testing.assert_allclose(gy[inner], 3.0, rtol=1e-12)
        np.testing.assert_allclose(gz[inner], -5.0, rtol=1e-12)

    def test_laplacian_of_harmonic_polynomial_is_zero(self):
        """lap(x^2 - y^2) = 0 for the discrete 7-point operator too."""
        x, y, z = coordinate_grids()
        out = apply_expr(laplacian(), [x * x - y * y])[0]
        inner = (slice(1, -1),) * 3
        np.testing.assert_allclose(out[inner], 0.0, atol=1e-9)

    def test_laplacian_of_quadratic(self):
        x, _, _ = coordinate_grids()
        out = apply_expr(laplacian(), [x * x])[0]
        inner = (slice(1, -1),) * 3
        np.testing.assert_allclose(out[inner], 2.0, rtol=1e-12)

    def test_poisson_fixed_point(self, rng):
        """If u solves the 7-point system exactly, one Jacobi step keeps it."""
        x, y, z = coordinate_grids()
        u = x * x + y * y + z * z
        f = np.full_like(u, 6.0)  # lap(u) = 6
        out = apply_expr(poisson(), [u, f])[0]
        inner = (slice(1, -1),) * 3
        np.testing.assert_allclose(out[inner], u[inner], rtol=1e-12)

    def test_poisson_jacobi_reduces_residual(self, rng):
        u = rng.random((10, 10, 10))
        f = np.zeros_like(u)
        expr = poisson()

        def residual(v):
            lap = apply_expr(laplacian(), [v])[0]
            return float(np.abs(lap[2:-2, 2:-2, 2:-2]).max())

        v = u
        for _ in range(30):
            v = apply_expr(expr, [v, f])[0]
        assert residual(v) < residual(u)

    def test_upstream_constant_field_fixed(self):
        """Advection of a constant field changes nothing (weights of the
        derivative part sum to zero)."""
        g = np.full((10, 10, 10), 7.5)
        out = apply_expr(upstream(), [g])[0]
        np.testing.assert_allclose(out, g, rtol=1e-12)

    def test_hyperthermia_matches_hand_evaluation(self, rng):
        expr = hyperthermia()
        grids = [rng.random((6, 6, 6)) for _ in range(10)]
        out = apply_expr(expr, grids)[0]
        t = grids[0]
        z = y = x = 3
        expected = (
            grids[1][z, y, x] * t[z, y, x]
            + grids[2][z, y, x] * t[z, y, x - 1]
            + grids[3][z, y, x] * t[z, y, x + 1]
            + grids[4][z, y, x] * t[z, y - 1, x]
            + grids[5][z, y, x] * t[z, y + 1, x]
            + grids[6][z, y, x] * t[z - 1, y, x]
            + grids[7][z, y, x] * t[z + 1, y, x]
            + grids[8][z, y, x]
            + grids[9][z, y, x] * t[z, y, x]
        )
        assert out[z, y, x] == pytest.approx(expected, rel=1e-12)
