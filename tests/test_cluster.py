"""Multi-GPU decomposition tests: exact numerics + cost-model shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    PCIE_GEN2_X16,
    LinkSpec,
    MultiGpuStencil,
    exchange_halos,
    merge_slabs,
    slab_extents,
    split_grid,
)
from repro.errors import ConfigurationError, GridShapeError
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.reference import iterate_symmetric
from repro.stencils.spec import symmetric


def plan_builder(order=2, block=(16, 4, 1, 2)):
    return lambda: make_kernel("inplane_fullslice", symmetric(order), block)


class TestDecompose:
    def test_split_covers_grid(self, rng):
        g = rng.random((20, 8, 8))
        slabs = split_grid(g, 3, radius=2)
        assert slabs[0].z_start == 0
        assert slabs[-1].z_stop == 20
        assert sum(s.owned for s in slabs) == 20

    def test_ghosts_only_at_interfaces(self, rng):
        slabs = split_grid(rng.random((16, 4, 4)), 4, radius=1)
        assert slabs[0].ghost_lo == 0 and slabs[0].ghost_hi == 1
        assert slabs[1].ghost_lo == 1 and slabs[1].ghost_hi == 1
        assert slabs[-1].ghost_lo == 1 and slabs[-1].ghost_hi == 0

    def test_single_part_has_no_ghosts(self, rng):
        slabs = split_grid(rng.random((8, 4, 4)), 1, radius=3)
        assert slabs[0].ghost_lo == slabs[0].ghost_hi == 0

    def test_merge_inverts_split(self, rng):
        g = rng.random((19, 6, 7))
        np.testing.assert_array_equal(merge_slabs(split_grid(g, 4, 2)), g)

    def test_exchange_counts_planes(self, rng):
        slabs = split_grid(rng.random((16, 4, 4)), 4, radius=2)
        assert exchange_halos(slabs) == 2 * 2 * 3  # r planes x 2 dirs x 3 ifaces

    def test_too_thin_rejected(self, rng):
        with pytest.raises(GridShapeError):
            split_grid(rng.random((8, 4, 4)), 4, radius=3)

    def test_bad_args(self, rng):
        g = rng.random((8, 4, 4))
        with pytest.raises(GridShapeError):
            split_grid(g, 0, 1)
        with pytest.raises(GridShapeError):
            split_grid(g, 2, 0)
        with pytest.raises(GridShapeError):
            merge_slabs([])


class TestSlabExtents:
    """The decomposition arithmetic both split_grid and the cost model use."""

    def test_matches_split_grid(self, rng):
        g = rng.random((19, 4, 4))
        extents = slab_extents(19, 4, 2)
        slabs = split_grid(g, 4, 2)
        assert [(s.owned, s.ghost_lo, s.ghost_hi) for s in slabs] == extents

    def test_uneven_remainder_goes_to_leading_slabs(self):
        # 19 = 5 + 5 + 5 + 4: remainder planes land on the leading slabs.
        assert [o for o, _, _ in slab_extents(19, 4, 2)] == [5, 5, 5, 4]
        assert sum(o for o, _, _ in slab_extents(19, 4, 2)) == 19

    def test_slabs_exactly_radius_thick(self):
        # The boundary case: every slab owns exactly ``radius`` planes.
        extents = slab_extents(6, 3, 2)
        assert [o for o, _, _ in extents] == [2, 2, 2]
        assert extents[0] == (2, 0, 2)
        assert extents[1] == (2, 2, 2)
        assert extents[2] == (2, 2, 0)

    def test_more_parts_than_planes_rejected(self):
        with pytest.raises(GridShapeError):
            slab_extents(4, 8, 1)

    def test_thinner_than_radius_rejected(self):
        with pytest.raises(GridShapeError):
            slab_extents(9, 4, 3)  # base slab of 2 < radius 3

    def test_bad_args_rejected(self):
        with pytest.raises(GridShapeError):
            slab_extents(8, 0, 1)
        with pytest.raises(GridShapeError):
            slab_extents(8, 2, 0)

    @settings(max_examples=25, deadline=None)
    @given(
        lz=st.integers(4, 96),
        parts=st.integers(1, 8),
        radius=st.integers(1, 4),
    )
    def test_extents_cover_and_respect_radius(self, lz, parts, radius):
        if lz // parts < radius:
            with pytest.raises(GridShapeError):
                slab_extents(lz, parts, radius)
            return
        extents = slab_extents(lz, parts, radius)
        assert sum(o for o, _, _ in extents) == lz
        assert all(o >= radius for o, _, _ in extents)
        assert max(o for o, _, _ in extents) - min(o for o, _, _ in extents) <= 1


class TestNumericEquivalence:
    @pytest.mark.parametrize("gpus", [1, 2, 3, 4, 7])
    def test_multi_gpu_equals_single_grid(self, gpus, rng):
        """The core invariant: slab sweeps + exchange == global sweeps."""
        sim = MultiGpuStencil(plan_builder(order=2), "gtx580")
        g = rng.random((24, 12, 16)).astype(np.float32)
        got = sim.run_steps(g, gpus=gpus, steps=3)
        want = iterate_symmetric(symmetric(2), g, 3)
        np.testing.assert_allclose(got, want, rtol=1e-4)

    @settings(max_examples=10, deadline=None)
    @given(
        gpus=st.integers(1, 4),
        steps=st.integers(1, 3),
        order=st.sampled_from([2, 4]),
        seed=st.integers(0, 1000),
    )
    def test_equivalence_property(self, gpus, steps, order, seed):
        rng = np.random.default_rng(seed)
        lz = 8 * gpus + order
        sim = MultiGpuStencil(plan_builder(order=order, block=(16, 2)), "c2070")
        g = rng.random((lz, 10, 16))
        got = sim.run_steps(g, gpus=gpus, steps=steps)
        want = iterate_symmetric(symmetric(order), g.astype(np.float32), steps)
        np.testing.assert_allclose(got, want, rtol=1e-4)


class TestCostModel:
    def test_link_transfer_time(self):
        link = LinkSpec(name="t", bandwidth_gbs=1.0, latency_us=100.0)
        assert link.transfer_time_s(1e9, 1) == pytest.approx(1.0001)

    def test_link_validation(self):
        with pytest.raises(ConfigurationError):
            PCIE_GEN2_X16.transfer_time_s(-1, 1)

    def test_overlap_validation(self):
        with pytest.raises(ConfigurationError):
            MultiGpuStencil(plan_builder(), "gtx580", overlap=1.5)

    def test_strong_scaling_monotone_then_saturating(self):
        sim = MultiGpuStencil(plan_builder(block=(32, 4, 1, 2)), "gtx580")
        points = sim.strong_scaling((256, 256, 128), (1, 2, 4, 8))
        speedups = [p.speedup for p in points]
        # More GPUs never slower here, but efficiency decays (exchange).
        assert speedups == sorted(speedups)
        assert points[0].efficiency == pytest.approx(1.0)
        assert points[-1].efficiency < points[1].efficiency

    def test_exchange_grows_with_interfaces(self):
        sim = MultiGpuStencil(plan_builder(), "gtx580")
        two = sim.step_cost((128, 128, 64), 2)
        eight = sim.step_cost((128, 128, 64), 8)
        assert eight.exchange_time_s >= two.exchange_time_s
        assert eight.kernel_time_s < two.kernel_time_s

    def test_weak_scaling_holds_efficiency_better(self):
        sim = MultiGpuStencil(plan_builder(block=(32, 4, 1, 2)), "gtx580")
        strong = sim.strong_scaling((128, 128, 128), (1, 4))
        weak = sim.weak_scaling((128, 128, 32), (1, 4))
        # Weak scaling keeps per-GPU work constant: better efficiency.
        weak_eff = weak[1].mpoints_per_s / (4 * weak[0].mpoints_per_s)
        assert weak_eff > strong[1].efficiency * 0.9

    def test_overlap_reduces_step_time(self):
        no = MultiGpuStencil(plan_builder(), "gtx580", overlap=0.0)
        full = MultiGpuStencil(plan_builder(), "gtx580", overlap=1.0)
        a = no.step_cost((128, 128, 64), 4)
        b = full.step_cost((128, 128, 64), 4)
        assert b.step_time_s < a.step_time_s
        assert b.step_time_s == pytest.approx(b.kernel_time_s)

    def test_too_many_gpus_rejected(self):
        sim = MultiGpuStencil(plan_builder(order=8), "gtx580")
        with pytest.raises(ConfigurationError):
            sim.step_cost((64, 64, 16), 8)  # slabs thinner than radius 4

    def test_straggler_uses_true_thickest_slab(self):
        """The straggler slab's thickness comes from slab_extents, not
        the old ``owned_max + 2*radius`` approximation.

        lz=19, gpus=3, r=1: owned planes are 7,6,6 but the 7-plane slab
        is an *end* slab with one ghost region (8 planes); the true
        straggler is a middle slab at 6+1+1=8 — the approximation
        would have priced 7+2=9.
        """
        from repro.gpusim.executor import DeviceExecutor

        sim = MultiGpuStencil(plan_builder(), "gtx580")
        plan = plan_builder()()
        radius = plan.halo_radius()
        extents = slab_extents(19, 3, radius)
        thickest = max(o + lo + hi for o, lo, hi in extents)
        approx = max(o for o, _, _ in extents) + 2 * radius
        assert thickest < approx  # the case the old heuristic overpriced
        point = sim.step_cost((32, 16, 19), 3)
        executor = DeviceExecutor(sim.device)
        want = executor.run(plan, (32, 16, thickest)).time_s
        assert point.kernel_time_s == pytest.approx(want)
        assert point.kernel_time_s < executor.run(plan, (32, 16, approx)).time_s

    def test_strong_scaling_simulates_baseline_once(self, monkeypatch):
        """strong_scaling prices the full grid exactly once, not per point."""
        from repro.gpusim.executor import DeviceExecutor

        shapes = []
        real_run = DeviceExecutor.run

        def counting_run(self, plan, grid_shape, *args, **kwargs):
            shapes.append(tuple(grid_shape))
            return real_run(self, plan, grid_shape, *args, **kwargs)

        monkeypatch.setattr(DeviceExecutor, "run", counting_run)
        sim = MultiGpuStencil(plan_builder(), "gtx580")
        full = (64, 64, 32)
        sim.strong_scaling(full, (1, 2, 4))
        assert shapes.count(full) == 1
        # One thick-slab simulation per multi-GPU point, nothing more.
        assert len(shapes) == 3


class TestHaloValidation:
    """Ghost-plane integrity guard against corrupted transfers."""

    def make_slabs(self, rng, parts=3, radius=2):
        slabs = split_grid(rng.random((18, 4, 4)), parts, radius)
        exchange_halos(slabs)
        return slabs

    def test_clean_exchange_validates(self, rng):
        from repro.cluster import validate_halos

        slabs = self.make_slabs(rng)
        validate_halos(slabs)  # no raise
        assert exchange_halos(slabs, validate=True) > 0

    def test_corrupted_ghost_detected(self, rng):
        from repro.cluster import validate_halos
        from repro.errors import HaloExchangeError

        slabs = self.make_slabs(rng)
        slabs[1].data[0, 2, 2] += 1.0  # lower ghost of the middle slab
        with pytest.raises(HaloExchangeError, match="slab 1: lower ghost"):
            validate_halos(slabs)

    def test_non_finite_ghost_detected(self, rng):
        from repro.cluster import validate_halos
        from repro.errors import HaloExchangeError

        slabs = self.make_slabs(rng)
        slabs[0].data[-1, 0, 0] = np.nan  # upper ghost of the first slab
        with pytest.raises(HaloExchangeError, match="slab 0: non-finite"):
            validate_halos(slabs)

    def test_fault_injected_exchange_caught(self, rng):
        from repro.errors import HaloExchangeError
        from repro.gpusim.faults import FaultPlan

        slabs = self.make_slabs(rng)
        plan = FaultPlan(seed=1, ecc_rate=1.0, ecc_mode="nan")
        with pytest.raises(HaloExchangeError):
            exchange_halos(slabs, faults=plan, validate=True)

    def test_run_steps_with_validation_stays_exact(self, rng):
        grid = rng.random((16, 8, 8)).astype(np.float32)
        stencil = MultiGpuStencil(plan_builder(), "gtx580")
        out = stencil.run_steps(grid, gpus=3, steps=2, validate=True)
        ref = iterate_symmetric(symmetric(2), grid, steps=2)
        np.testing.assert_allclose(out, ref, rtol=1e-4)
