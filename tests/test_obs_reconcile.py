"""Reconciliation tests: the reconstructed timeline must agree with the
analytic model's totals, and tuner traces must account for every config.

These are the profiler's trustworthiness guarantees — a timeline that
disagrees with ``SimReport`` would be worse than no timeline.
"""

from __future__ import annotations

import math

import pytest

import repro.obs as obs
from repro.gpusim.executor import DeviceExecutor
from repro.gpusim.report import BREAKDOWN_KEYS
from repro.kernels.factory import make_kernel
from repro.obs.schema import (
    CAT_SIM_COMPONENT,
    CAT_SIM_KERNEL,
    CAT_SIM_WAVE,
    CAT_TUNE_RUN,
    CAT_TUNE_TRIAL,
    COMPONENT_LANES,
)
from repro.stencils.spec import symmetric
from repro.tuning.exhaustive import exhaustive_tune
from repro.tuning.space import ParameterSpace

CASES = [
    ("gtx580", "inplane_fullslice", 2, (32, 4, 1, 2), "sp"),
    ("gtx580", "inplane_fullslice", 8, (32, 8, 1, 1), "sp"),
    ("gtx680", "inplane_fullslice", 4, (32, 4, 2, 2), "dp"),
    ("c2070", "inplane_classical", 4, (32, 4, 1, 1), "sp"),
    ("gtx680", "nvstencil", 2, (32, 8, 1, 1), "sp"),
]
# Large enough in-plane that every case needs several waves of blocks
# (the full-wave-vs-breakdown check is vacuous on single-wave launches).
GRID = (512, 512, 64)


def _traced_run(device, family, order, block, dtype):
    with obs.tracing() as tracer:
        plan = make_kernel(family, symmetric(order), block, dtype)
        report = DeviceExecutor(device).run(plan, GRID)
    return tracer, report


@pytest.mark.parametrize("device,family,order,block,dtype", CASES)
class TestTimelineReconciliation:
    def test_wave_sum_equals_total_cycles(self, device, family, order, block, dtype):
        tracer, report = _traced_run(device, family, order, block, dtype)
        kernel = tracer.device_spans(CAT_SIM_KERNEL)[0]
        waves = tracer.device_spans(CAT_SIM_WAVE)
        assert kernel.dur == report.total_cycles
        assert math.isclose(
            sum(w.dur for w in waves), report.total_cycles, rel_tol=1e-12
        )
        # Waves tile the kernel span: each begins where the previous ended.
        cursor = kernel.begin
        for w in waves:
            assert math.isclose(w.begin, cursor, rel_tol=1e-12, abs_tol=1e-9)
            cursor += w.dur

    def test_component_lanes_reconcile_with_breakdown(
        self, device, family, order, block, dtype
    ):
        """Full-wave component spans carry exactly the per-plane cycles
        that ``SimReport.breakdown`` publishes under the frozen keys."""
        tracer, report = _traced_run(device, family, order, block, dtype)
        waves = tracer.device_spans(CAT_SIM_WAVE)
        # The last wave is the remainder (fewer resident blocks, its own
        # per-plane cost); only the full waves must equal the breakdown.
        full_waves = waves[:-1]
        for wave in full_waves:
            for lane in ("mem", "compute", "exposed", "sync"):
                key = f"{lane}_cycles_per_plane"
                assert key in BREAKDOWN_KEYS
                assert math.isclose(
                    wave.args[key], report.breakdown[key], rel_tol=1e-12
                )
        comp = tracer.device_spans(CAT_SIM_COMPONENT)
        assert {s.tid.split(":", 1)[1] for s in comp} == set(COMPONENT_LANES)
        for lane in ("mem", "compute", "exposed", "sync"):
            lane_full = [
                s for s in comp
                if s.tid == f"component:{lane}"
                and s.args["wave"] < len(waves) - 1
            ]
            key = f"{lane}_cycles_per_plane"
            for span in lane_full:
                assert math.isclose(
                    span.args["per_plane"], report.breakdown[key], rel_tol=1e-12
                )

    def test_kernel_span_breakdown_matches_report(
        self, device, family, order, block, dtype
    ):
        tracer, report = _traced_run(device, family, order, block, dtype)
        kernel = tracer.device_spans(CAT_SIM_KERNEL)[0]
        assert kernel.args["breakdown"] == dict(report.breakdown)
        assert tuple(kernel.args["breakdown"]) == BREAKDOWN_KEYS
        assert kernel.args["mpoints_per_s"] == report.mpoints_per_s

    def test_wave_internal_reconciliation(self, device, family, order, block, dtype):
        """Inside every wave: planes x plane-cycles plus the scheduler
        overhead lane is exactly the wave duration (the last wave's
        duration is the residual, so this doubles as a check that the
        residual matches its own plane accounting)."""
        tracer, report = _traced_run(device, family, order, block, dtype)
        waves = tracer.device_spans(CAT_SIM_WAVE)
        comp = tracer.device_spans(CAT_SIM_COMPONENT)
        for w, wave in enumerate(waves):
            overhead = next(
                s for s in comp
                if s.tid == "component:overhead" and s.args["wave"] == w
            )
            assert math.isclose(
                wave.args["planes"] * wave.args["plane_cycles"] + overhead.dur,
                wave.dur, rel_tol=1e-9,
            )

    def test_cycle_counters_reconcile(self, device, family, order, block, dtype):
        """The cycle model overlaps mem and compute (the shorter stream
        hides behind the longer), so the lane counters must *bracket* the
        total: serial sum >= total >= fully-overlapped sum; and the
        headline counter equals the report exactly."""
        tracer, report = _traced_run(device, family, order, block, dtype)
        m = tracer.metrics.snapshot()["counters"]
        serial = (
            m["sim.mem_cycles"]
            + m["sim.compute_cycles"]
            + m["sim.latency_exposed_cycles"]
            + m["sim.sync_cycles"]
            + m["sim.sched_overhead_cycles"]
        )
        hidden = min(m["sim.mem_cycles"], m["sim.compute_cycles"])
        assert serial >= report.total_cycles - 1e-6
        assert serial - hidden <= report.total_cycles + 1e-6
        assert m["sim.cycles"] == report.total_cycles
        assert m["sim.kernels"] == 1


class TestTunerTrace:
    def test_one_trial_span_per_evaluated_config(self):
        space = ParameterSpace(
            tx_values=(32,), ty_values=(2, 4, 8), rx_values=(1, 2, 4),
            ry_values=(1, 2, 4),
        )
        spec = symmetric(4)

        def build(cfg):
            return make_kernel("inplane_fullslice", spec, cfg, "sp")

        from repro.gpusim.device import get_device
        from repro.tuning.exhaustive import feasible_configs

        device = get_device("gtx580")
        feasible = feasible_configs(build, device, GRID, space)
        with obs.tracing() as tracer:
            result = exhaustive_tune(build, device, GRID, space)

        trials = tracer.host_spans(CAT_TUNE_TRIAL)
        simulated = [s for s in trials if "mpoints_per_s" in s.args]
        rejected_static = [s for s in trials if s.instant]
        counters = tracer.metrics.snapshot()["counters"]
        assert len(simulated) == counters["tune.trials"]
        assert len(rejected_static) == counters.get("tune.rejected_static", 0)
        # Every feasible config surfaces as exactly one trial event.
        assert len(trials) == len(feasible)
        assert all(s.args["rejected"] == "static" for s in rejected_static)

        run = tracer.host_spans(CAT_TUNE_RUN)[0]
        assert run.args["evaluated"] == len(simulated)
        best = max(s.args["mpoints_per_s"] for s in simulated)
        assert math.isclose(best, result.best_mpoints, rel_tol=1e-12)

    def test_device_track_packs_trial_launches(self):
        """Each evaluated config is one kernel span on the device cursor,
        so the tuner's device track is as long as its launches combined."""
        space = ParameterSpace(
            tx_values=(32,), ty_values=(4, 8), rx_values=(1,), ry_values=(1,)
        )
        spec = symmetric(2)

        def build(cfg):
            return make_kernel("inplane_fullslice", spec, cfg, "sp")

        from repro.gpusim.device import get_device

        with obs.tracing() as tracer:
            exhaustive_tune(build, get_device("gtx680"), GRID, space)

        kernels = tracer.device_spans(CAT_SIM_KERNEL)
        assert len(kernels) >= 1
        for prev, nxt in zip(kernels, kernels[1:]):
            assert math.isclose(
                nxt.begin, prev.begin + prev.dur, rel_tol=1e-12, abs_tol=1e-9
            )
