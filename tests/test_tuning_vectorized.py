"""VectorTrialEvaluator tests: the batch backend is a pure substitution.

The evaluator's contract: same outcomes (status, bit-identical rate, same
``info`` keys), same winner and tie-breaks as the serial
:class:`~repro.tuning.evaluator.SimTrialEvaluator` loop — only faster.
"""

from repro.gpusim.batch import BatchEngine
from repro.gpusim.device import get_device
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric
from repro.tuning.evaluator import (
    STATUS_OK,
    STATUS_REJECTED_SIMULATED,
    STATUS_REJECTED_STATIC,
    SimTrialEvaluator,
    batch_capable,
)
from repro.tuning.exhaustive import evaluate_configs, exhaustive_tune, feasible_configs
from repro.tuning.modelbased import model_based_tune
from repro.tuning.space import ParameterSpace
from repro.tuning.vectorized import VectorTrialEvaluator

GRID = (256, 256, 128)
SMALL_SPACE = ParameterSpace(
    tx_values=(16, 32, 64), ty_values=(2, 4, 8), rx_values=(1, 2), ry_values=(1, 2)
)
#: Rejected by the scalar executor (register file / shared memory).
DEAD_CONFIGS = [BlockConfig(64, 16, 2, 2), BlockConfig(64, 8, 4, 8)]


def builder(order=2, dtype="sp"):
    spec = symmetric(order)
    return lambda cfg: make_kernel("inplane_fullslice", spec, cfg, dtype)


class TestProtocol:
    def test_is_batch_capable(self, gtx580):
        ev = VectorTrialEvaluator(gtx580)
        assert batch_capable(ev) is ev
        assert ev.jobs == 1

    def test_accepts_device_name(self):
        ev = VectorTrialEvaluator("gtx580")
        assert ev.device.name == "gtx580"

    def test_shared_engine_is_reused(self, gtx580):
        engine = BatchEngine(gtx580)
        ev = VectorTrialEvaluator(gtx580, engine=engine)
        ev.measure_batch(builder(), [BlockConfig(32, 4, 1, 4)], GRID)
        assert engine._scores  # memo landed on the injected engine


class TestOutcomeParity:
    def test_outcomes_match_serial_evaluator(self, paper_device):
        build = builder()
        configs = feasible_configs(build, paper_device, GRID, SMALL_SPACE)
        serial = SimTrialEvaluator(paper_device)
        vector = VectorTrialEvaluator(paper_device)
        batched = vector.measure_batch(build, configs, GRID)
        assert len(batched) == len(configs)
        for cfg, got in zip(configs, batched):
            plan = build(cfg)
            block = plan.block_workload(paper_device, GRID)
            want = serial.measure(cfg, plan, GRID, block)
            assert got.config == cfg
            assert got.status == want.status
            assert got.mpoints_per_s == want.mpoints_per_s  # bit-exact
            assert got.info == want.info

    def test_rejects_static_with_prefilter(self, gtx580):
        ev = VectorTrialEvaluator(gtx580, prefilter=True)
        outcomes = ev.measure_batch(builder(), DEAD_CONFIGS, GRID)
        assert [o.status for o in outcomes] == [STATUS_REJECTED_STATIC] * 2

    def test_rejects_simulated_without_prefilter(self, gtx580):
        ev = VectorTrialEvaluator(gtx580, prefilter=False)
        outcomes = ev.measure_batch(builder(), DEAD_CONFIGS, GRID)
        assert [o.status for o in outcomes] == [STATUS_REJECTED_SIMULATED] * 2

    def test_measure_single_matches_batch(self, gtx580):
        build = builder()
        cfg = BlockConfig(32, 4, 1, 4)
        plan = build(cfg)
        block = plan.block_workload(gtx580, GRID)
        ev = VectorTrialEvaluator(gtx580)
        single = ev.measure(cfg, plan, GRID, block)
        (batched,) = ev.measure_batch(build, [cfg], GRID)
        assert single.status == STATUS_OK
        assert single.mpoints_per_s == batched.mpoints_per_s
        assert single.info == batched.info


class TestTunerIdentity:
    def test_exhaustive_winner_identical(self, paper_device):
        base = exhaustive_tune(builder(), paper_device, GRID, SMALL_SPACE)
        fast = exhaustive_tune(
            builder(), paper_device, GRID, SMALL_SPACE,
            evaluator=VectorTrialEvaluator(paper_device),
        )
        assert fast.best_config == base.best_config
        assert fast.best_mpoints == base.best_mpoints  # bit-exact
        assert [e.config for e in fast.entries] == [e.config for e in base.entries]
        assert [e.mpoints_per_s for e in fast.entries] == [
            e.mpoints_per_s for e in base.entries
        ]

    def test_model_based_winner_identical(self, gtx580):
        base = model_based_tune(builder(), gtx580, GRID, beta=0.2, space=SMALL_SPACE)
        fast = model_based_tune(
            builder(), gtx580, GRID, beta=0.2, space=SMALL_SPACE,
            evaluator=VectorTrialEvaluator(gtx580),
        )
        assert fast.best_config == base.best_config
        assert fast.best_mpoints == base.best_mpoints
        assert [e.mpoints_per_s for e in fast.entries] == [
            e.mpoints_per_s for e in base.entries
        ]

    def test_autotune_accepts_evaluator(self, gtx580):
        import repro

        base = repro.autotune("inplane_fullslice", 2, gtx580, GRID, method="model")
        fast = repro.autotune(
            "inplane_fullslice", 2, gtx580, GRID, method="model",
            evaluator=VectorTrialEvaluator(gtx580),
        )
        assert fast.best_config == base.best_config
        assert fast.best_mpoints == base.best_mpoints


class TestStatsShape:
    """``stats['jobs']`` is always populated — serial and batch alike."""

    def test_serial_evaluate_configs_sets_jobs(self, gtx580):
        build = builder()
        configs = feasible_configs(build, gtx580, GRID, SMALL_SPACE)
        stats = {}
        evaluate_configs(build, configs, gtx580, GRID, stats=stats)
        assert stats["jobs"] == 1

    def test_batch_evaluate_configs_sets_jobs(self, gtx580):
        build = builder()
        configs = feasible_configs(build, gtx580, GRID, SMALL_SPACE)
        stats = {}
        evaluate_configs(
            build, configs, gtx580, GRID, stats=stats,
            evaluator=VectorTrialEvaluator(gtx580),
        )
        assert stats["jobs"] == 1

    def test_exhaustive_info_jobs_both_backends(self, gtx580):
        serial = exhaustive_tune(builder(), gtx580, GRID, SMALL_SPACE)
        batch = exhaustive_tune(
            builder(), gtx580, GRID, SMALL_SPACE,
            evaluator=VectorTrialEvaluator(gtx580),
        )
        assert serial.info["jobs"] == 1
        assert batch.info["jobs"] == 1
        assert set(serial.info) == set(batch.info)

    def test_model_based_info_jobs_both_backends(self, gtx580):
        serial = model_based_tune(builder(), gtx580, GRID, beta=0.2, space=SMALL_SPACE)
        batch = model_based_tune(
            builder(), gtx580, GRID, beta=0.2, space=SMALL_SPACE,
            evaluator=VectorTrialEvaluator(gtx580),
        )
        assert serial.info["jobs"] == 1
        assert batch.info["jobs"] == 1
        assert set(serial.info) == set(batch.info)
