"""Resource pre-checks: provable agreement with the executor, and tuner
optima invariance under the static pre-filter."""

import pytest

from repro.analysis.resources import (
    effective_registers,
    launch_failure,
    resource_diagnostics,
)
from repro.errors import ResourceLimitError
from repro.gpusim.device import get_device
from repro.gpusim.executor import DeviceExecutor
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import InPlaneKernel
from repro.stencils.spec import symmetric
from repro.tuning.exhaustive import exhaustive_tune, feasible_configs
from repro.tuning.modelbased import model_based_tune
from repro.tuning.space import default_space
from repro.tuning.stochastic import stochastic_tune

GRID = (512, 512, 64)


def build(order):
    spec = symmetric(order)
    return lambda cfg: InPlaneKernel(spec, cfg)


class TestLaunchFailureEquivalence:
    @pytest.mark.parametrize("order", (2, 8))
    @pytest.mark.parametrize("device_name", ("gtx580", "gtx680", "gtx285"))
    def test_static_verdict_equals_executor_verdict_over_default_space(
        self, order, device_name
    ):
        """For every feasible configuration of the default space, the
        static check and the executor agree on launchability — by
        construction (same compute_occupancy call), verified here."""
        device = get_device(device_name)
        builder = build(order)
        executor = DeviceExecutor(device)
        configs = feasible_configs(builder, device, GRID, default_space())
        assert configs
        disagreements = []
        statically_rejected = 0
        for cfg in configs:
            plan = builder(cfg)
            workload = plan.block_workload(device, GRID)
            static = launch_failure(workload, device)
            if static is not None:
                statically_rejected += 1
            try:
                executor.run(plan, GRID)
                dynamic = None
            except ResourceLimitError as exc:
                dynamic = str(exc)
            if (static is None) != (dynamic is None):
                disagreements.append((cfg, static, dynamic))
        assert not disagreements, disagreements[:3]
        if order == 8 and device_name == "gtx580":
            # The acceptance criterion's "nonzero share": the Table IV
            # high-order sweep does contain statically rejectable configs.
            assert statically_rejected > 0

    def test_diagnostics_error_verdict_matches_launch_failure(self):
        device = get_device("gtx580")
        builder = build(8)
        for cfg in feasible_configs(builder, device, GRID, default_space()):
            plan = builder(cfg)
            workload = plan.block_workload(device, GRID)
            diags = resource_diagnostics(plan, workload, device)
            has_error = any(d.severity.label == "error" for d in diags)
            assert has_error == (launch_failure(workload, device) is not None), cfg

    def test_spill_is_a_warning_not_a_failure(self):
        device = get_device("gtx580")
        plan = InPlaneKernel(symmetric(8), BlockConfig(16, 2, 4, 8))
        workload = plan.block_workload(device, GRID)
        assert workload.regs_per_thread > device.rules.max_regs_per_thread
        assert effective_registers(workload.regs_per_thread, device) == (
            device.rules.max_regs_per_thread
        )
        diags = resource_diagnostics(plan, workload, device)
        rules = {d.rule for d in diags}
        assert "RES-SPILL" in rules

    def test_halfwarp_warning(self):
        device = get_device("gtx580")
        plan = InPlaneKernel(symmetric(2), BlockConfig(24, 4))
        workload = plan.block_workload(device, GRID)
        rules = {d.rule for d in resource_diagnostics(plan, workload, device)}
        assert "RES-HALFWARP" in rules

    def test_threads_overflow_short_circuits(self):
        device = get_device("gtx580")
        plan = InPlaneKernel(symmetric(2), BlockConfig(256, 8))  # 2048 threads
        workload = plan.block_workload(device, GRID)
        diags = resource_diagnostics(plan, workload, device)
        assert [d.rule for d in diags if d.severity.label == "error"] == [
            "RES-THREADS"
        ]
        assert launch_failure(workload, device) is not None


class TestTunerPrefilterInvariance:
    """The acceptance criterion: the pre-filter must change NO chosen
    optimum while statically rejecting a nonzero share."""

    def test_exhaustive_identical_with_and_without(self):
        device = get_device("gtx580")
        builder = build(8)
        with_f = exhaustive_tune(builder, device, GRID, prefilter=True)
        without = exhaustive_tune(builder, device, GRID, prefilter=False)
        assert with_f.best_config == without.best_config
        assert with_f.best_mpoints == without.best_mpoints
        assert [e.config for e in with_f.entries] == [
            e.config for e in without.entries
        ]
        assert with_f.info["rejected_static"] > 0
        assert with_f.info["rejected_simulated"] == 0
        assert without.info["rejected_static"] == 0
        assert without.info["rejected_simulated"] == with_f.info["rejected_static"]

    def test_stochastic_walk_bit_identical(self):
        device = get_device("gtx580")
        builder = build(8)
        kw = dict(budget=25, seed=3)
        with_f = stochastic_tune(builder, device, GRID, prefilter=True, **kw)
        without = stochastic_tune(builder, device, GRID, prefilter=False, **kw)
        assert with_f.best_config == without.best_config
        assert [e.config for e in with_f.entries] == [
            e.config for e in without.entries
        ]

    def test_model_based_shortlist_unchanged(self):
        device = get_device("gtx580")
        builder = build(8)
        with_f = model_based_tune(builder, device, GRID, beta=0.25, prefilter=True)
        without = model_based_tune(builder, device, GRID, beta=0.25, prefilter=False)
        assert with_f.best_config == without.best_config
        assert [e.config for e in with_f.entries] == [
            e.config for e in without.entries
        ]
        # N is computed from the full space either way.
        assert with_f.space_size == without.space_size
