"""Timing-model behaviour tests.

These don't pin absolute cycle counts (calibration constants may move);
they verify the *mechanisms*: more bytes cost more time, camping costs
extra, spills cost extra, occupancy and wave structure behave per
Eqns (6)-(9), and per-generation parameters exist for every generation.
"""

import dataclasses

import pytest

from repro.gpusim.arch import Generation
from repro.gpusim.device import get_device
from repro.gpusim.memory import KIND_INTERIOR, KIND_WRITE, MemoryStats
from repro.gpusim.smem import SmemAccessProfile
from repro.gpusim.timing import (
    TimingParams,
    effective_load_bytes,
    params_for,
    time_kernel,
)
from repro.gpusim.workload import BlockWorkload, GridWorkload


def make_workload(
    *,
    threads=256,
    regs=32,
    smem=4096,
    elem=4,
    points=1024,
    flops=8.0,
    load_bytes=8192,
    camped=0.0,
    phases=1,
    ilp=1.0,
) -> BlockWorkload:
    stats = MemoryStats()
    stats.add_raw(
        kind=KIND_INTERIOR,
        instructions=load_bytes / 128,
        transactions=load_bytes / 128,
        requested_bytes=load_bytes,
    )
    stats.add_raw(
        kind=KIND_WRITE,
        instructions=points / 32,
        transactions=points * elem / 128,
        requested_bytes=points * elem,
    )
    stats.camped_bytes = camped
    stats.load_phases = phases
    return BlockWorkload(
        threads_per_block=threads,
        regs_per_thread=regs,
        smem_bytes=smem,
        elem_bytes=elem,
        points_per_plane=points,
        flops_per_point=flops,
        memory=stats,
        smem_profile=SmemAccessProfile(read_instructions=100, write_instructions=50),
        ilp=ilp,
    )


GRID = GridWorkload(blocks=256, planes=64, total_points=256 * 1024 * 64)


class TestMechanisms:
    def test_more_bytes_cost_more_cycles(self, gtx580):
        lo = time_kernel(make_workload(load_bytes=4096), GRID, gtx580)
        hi = time_kernel(make_workload(load_bytes=16384), GRID, gtx580)
        assert hi.total_cycles > lo.total_cycles

    def test_camping_costs_extra(self, gtx580):
        base = time_kernel(make_workload(), GRID, gtx580)
        camped = time_kernel(make_workload(camped=4096.0), GRID, gtx580)
        assert camped.total_cycles > base.total_cycles

    def test_more_phases_cost_extra(self, gtx580):
        lo = time_kernel(make_workload(phases=1), GRID, gtx580)
        hi = time_kernel(make_workload(phases=4), GRID, gtx580)
        assert hi.total_cycles > lo.total_cycles

    def test_spilled_registers_cost_extra(self, gtx580):
        fits = time_kernel(make_workload(regs=60), GRID, gtx580)
        spills = time_kernel(make_workload(regs=80), GRID, gtx580)
        assert spills.spilled_regs == 80 - gtx580.rules.max_regs_per_thread
        assert spills.total_cycles > fits.total_cycles

    def test_dp_arithmetic_slower_than_sp(self, gtx580):
        sp = time_kernel(
            make_workload(flops=40.0, load_bytes=1024), GRID, gtx580
        )
        dp = time_kernel(
            make_workload(flops=40.0, load_bytes=1024, elem=8), GRID, gtx580
        )
        assert dp.total_cycles > sp.total_cycles

    def test_ilp_never_hurts(self, gtx580):
        lo = time_kernel(make_workload(ilp=1.0), GRID, gtx580)
        hi = time_kernel(make_workload(ilp=8.0), GRID, gtx580)
        assert hi.total_cycles <= lo.total_cycles

    def test_l2_reuse_toggle(self, gtx580):
        wl = make_workload()
        wl.memory.halo_transferred_bytes = 4096
        on = time_kernel(wl, GRID, gtx580)
        off = time_kernel(
            wl, GRID, gtx580,
            dataclasses.replace(params_for(gtx580), l2_halo_reuse=0.0),
        )
        assert off.total_cycles > on.total_cycles


class TestWaveStructure:
    def test_stage_count_matches_eqn8(self, gtx580):
        result = time_kernel(make_workload(), GRID, gtx580)
        per_wave = gtx580.sm_count * result.occupancy.active_blocks
        assert result.stages == -(-GRID.blocks // per_wave)

    def test_single_wave_when_few_blocks(self, gtx580):
        grid = GridWorkload(blocks=4, planes=16, total_points=4 * 1024 * 16)
        result = time_kernel(make_workload(), grid, gtx580)
        assert result.stages == 1
        assert result.rem_blocks_per_sm >= 1

    def test_more_blocks_take_longer(self, gtx580):
        small = GridWorkload(blocks=64, planes=64, total_points=1)
        large = GridWorkload(blocks=1024, planes=64, total_points=1)
        wl = make_workload()
        assert (
            time_kernel(wl, large, gtx580).total_cycles
            > time_kernel(wl, small, gtx580).total_cycles
        )

    def test_prologue_planes_add_cost(self, gtx580):
        a = make_workload()
        b = dataclasses.replace(a, prologue_planes=24)
        assert (
            time_kernel(b, GRID, gtx580).total_cycles
            > time_kernel(a, GRID, gtx580).total_cycles
        )


class TestParams:
    def test_every_generation_has_params(self):
        for gen in Generation:
            dev_name = {"fermi": "gtx580", "kepler": "gtx680", "gt200": "gtx285"}[
                gen.value
            ]
            assert params_for(get_device(dev_name)) is not None

    def test_effective_load_bytes_includes_camping(self, gtx580):
        wl = make_workload(camped=1280.0)
        base = make_workload()
        assert effective_load_bytes(wl, gtx580) > effective_load_bytes(base, gtx580)

    def test_effective_load_bytes_discounts_halo(self, gtx580):
        wl = make_workload()
        wl.memory.halo_transferred_bytes = 4096
        wl2 = make_workload()
        wl2.memory.interior_transferred_bytes += 4096
        assert effective_load_bytes(wl, gtx580) < effective_load_bytes(wl2, gtx580)


class TestWorkloadValidation:
    def test_arith_instructions_default(self):
        wl = make_workload(flops=9.0)
        assert wl.arith_instructions == pytest.approx(6.0)

    def test_arith_instructions_override(self):
        wl = dataclasses.replace(make_workload(), arith_instructions_per_point=7.0)
        assert wl.arith_instructions == 7.0

    def test_rejects_bad_ilp(self):
        with pytest.raises(ValueError):
            make_workload(ilp=0.5)

    def test_rejects_bad_elem(self):
        with pytest.raises(ValueError):
            make_workload(elem=2)

    def test_grid_workload_rejects_empty(self):
        with pytest.raises(ValueError):
            GridWorkload(blocks=0, planes=1, total_points=1)
