"""Chrome trace exporter tests, including the deterministic golden trace.

The golden file pins the *device* track for one fixed launch: the
analytic cycle model is pure arithmetic, so the exported simulated
timeline must be bit-for-bit reproducible across runs and platforms.
Regenerate after an intentional cycle-model or schema change with::

    PYTHONPATH=src python tests/data/make_golden_trace.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.obs as obs
from repro.obs.chrome import to_chrome_trace, write_chrome_trace
from repro.obs.schema import TraceSchemaError, validate_trace

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"


def _golden_tracer() -> obs.Tracer:
    """Trace the fixed launch the golden file was generated from."""
    from repro.gpusim.executor import DeviceExecutor
    from repro.kernels.factory import make_kernel
    from repro.stencils.spec import symmetric

    with obs.tracing() as tracer:
        plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
        DeviceExecutor("gtx580").run(plan, (128, 128, 64))
    return tracer


class TestChromeExport:
    def test_golden_trace(self):
        got = to_chrome_trace(_golden_tracer(), device_only=True)
        want = json.loads(GOLDEN_PATH.read_text())
        assert got == want

    def test_golden_validates(self):
        validate_trace(json.loads(GOLDEN_PATH.read_text()))

    def test_full_export_validates(self):
        validate_trace(to_chrome_trace(_golden_tracer()))

    def test_device_only_drops_host_track(self):
        tracer = _golden_tracer()
        with tracer.span("host work", "harness.experiment"):
            pass
        doc = to_chrome_trace(tracer, device_only=True)
        assert all(ev["pid"] == 1 for ev in doc["traceEvents"])
        full = to_chrome_trace(tracer)
        assert any(ev["pid"] == 0 for ev in full["traceEvents"])

    def test_metadata_events(self):
        doc = to_chrome_trace(_golden_tracer())
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        names = {ev["args"]["name"] for ev in meta if ev["name"] == "process_name"}
        assert names == {"host (wall clock)", "simulated device (cycles)"}

    def test_args_jsonable(self, tmp_path):
        tracer = _golden_tracer()
        with tracer.span("odd args", "harness.experiment",
                         block=(32, 4), spec=object()):
            pass
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        json.loads(path.read_text())  # must round-trip


class TestSchemaValidation:
    def test_rejects_missing_top_level_key(self):
        with pytest.raises(TraceSchemaError):
            validate_trace({"traceEvents": []})

    def test_rejects_unknown_category(self):
        doc = to_chrome_trace(_golden_tracer())
        doc["traceEvents"][-1]["cat"] = "not.a.category"
        with pytest.raises(TraceSchemaError):
            validate_trace(doc)

    def test_rejects_negative_duration(self):
        doc = to_chrome_trace(_golden_tracer())
        complete = next(ev for ev in doc["traceEvents"] if ev["ph"] == "X")
        complete["dur"] = -1.0
        with pytest.raises(TraceSchemaError):
            validate_trace(doc)

    def test_rejects_kernel_span_with_wrong_breakdown(self):
        doc = to_chrome_trace(_golden_tracer())
        kernel = next(
            ev for ev in doc["traceEvents"] if ev.get("cat") == "sim.kernel"
        )
        kernel["args"]["breakdown"]["bogus_key"] = 1.0
        with pytest.raises(TraceSchemaError):
            validate_trace(doc)
