"""Public-API surface and CLI tests."""

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self, rng):
        """The README quickstart, executed."""
        spec = repro.symmetric(order=4)
        kern = repro.make_kernel("inplane_fullslice", spec, (32, 4, 1, 4))
        g = rng.random((16, 32, 32)).astype(np.float32)
        out = kern.execute(g)
        ref = repro.apply_symmetric(spec, g)
        np.testing.assert_allclose(out, ref, rtol=1e-4)

        report = repro.simulate(kern, "gtx580", (512, 512, 256))
        assert report.mpoints_per_s > 0

    def test_autotune_exhaustive(self):
        res = repro.autotune("inplane_fullslice", 2, "gtx580", grid_shape=(128, 128, 64))
        assert res.method == "exhaustive"
        assert res.best_mpoints > 0

    def test_autotune_model(self):
        res = repro.autotune(
            "inplane_fullslice", 2, "gtx580", grid_shape=(128, 128, 64),
            method="model", beta=0.1,
        )
        assert res.method == "model"

    def test_autotune_unknown_method(self):
        with pytest.raises(repro.TuningError):
            repro.autotune("inplane_fullslice", 2, "gtx580", method="magic")

    def test_error_hierarchy(self):
        for exc in (
            repro.ConfigurationError,
            repro.ResourceLimitError,
            repro.UnknownDeviceError,
            repro.StencilDefinitionError,
            repro.GridShapeError,
            repro.TuningError,
        ):
            assert issubclass(exc, repro.ReproError)


class TestCli:
    def test_list_devices(self, capsys):
        assert main(["list-devices"]) == 0
        out = capsys.readouterr().out
        assert "gtx580" in out and "gtx680" in out

    def test_list_kernels(self, capsys):
        assert main(["list-kernels"]) == 0
        assert "inplane_fullslice" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--kernel", "inplane_fullslice", "--order", "4",
            "--device", "gtx680", "--block", "32,4,1,2", "--grid", "256,256,64",
        ])
        assert code == 0
        assert "MPoint/s" in capsys.readouterr().out

    def test_tune_model(self, capsys):
        code = main([
            "tune", "--kernel", "inplane_fullslice", "--order", "2",
            "--device", "gtx580", "--grid", "128,128,64", "--method", "model",
        ])
        assert code == 0
        assert "model" in capsys.readouterr().out

    def test_experiment_table(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_to_file(self, tmp_path, capsys):
        out = tmp_path / "t2.csv"
        assert main(["experiment", "table2", "--out", str(out)]) == 0
        assert out.exists()

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["--version"])


class TestCliExtensions:
    def test_codegen_to_stdout(self, capsys):
        assert main(["codegen", "--order", "2", "--block", "32,4,1,2"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out and "#define RADIUS 1" in out

    def test_codegen_to_file_with_driver(self, tmp_path, capsys):
        out = tmp_path / "k.cu"
        code = main([
            "codegen", "--order", "4", "--block", "32,4,1,4",
            "--out", str(out), "--driver",
        ])
        assert code == 0
        text = out.read_text()
        assert "__global__" in text
        assert "std::swap(d_in, d_out)" in text

    def test_scaling_strong(self, capsys):
        assert main(["scaling", "--gpus", "1,2", "--grid", "128,128,64",
                     "--block", "32,4,1,2"]) == 0
        out = capsys.readouterr().out
        assert "strong scaling" in out
        assert "efficiency" in out

    def test_scaling_weak(self, capsys):
        assert main([
            "scaling", "--gpus", "1,2", "--grid", "128,128,32", "--weak",
            "--block", "32,4,1,2",
        ]) == 0
        assert "weak scaling" in capsys.readouterr().out

    def test_profile_compare(self, capsys):
        assert main([
            "profile", "--compare", "--order", "4", "--block", "32,4,1,2",
            "--grid", "256,256,64",
        ]) == 0
        out = capsys.readouterr().out
        assert "inplane_fullslice" in out
        assert "nvstencil" in out
        assert "camped" in out

    def test_profile_summary(self, capsys):
        assert main([
            "profile", "--order", "4", "--block", "32,4,1,2",
            "--grid", "256,256,64", "--top", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "simulated device timeline" in out
        assert "reconciles" in out
        assert "hot planes" in out


class TestCliExplain:
    """`repro tune --archive/--json` and the `repro explain` command."""

    TUNE = [
        "-q", "tune", "--kernel", "inplane_fullslice", "--order", "2",
        "--device", "gtx580", "--grid", "64,64,32", "--method", "model",
    ]

    def test_tune_json_ships_predicted_and_info_per_entry(self, capsys):
        import json

        assert main(self.TUNE + ["--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["method"] == "model"
        assert obj["entries"], "ranked entries must be present"
        for entry in obj["entries"]:
            assert entry["predicted"] is not None
            assert "occupancy" in entry["info"]
            assert "load_efficiency" in entry["info"]
        assert obj["best"] == obj["entries"][0]

    def test_tune_archive_then_explain(self, tmp_path, capsys):
        archive = str(tmp_path / "a.jsonl")
        assert main(self.TUNE + ["--archive", archive]) == 0
        capsys.readouterr()
        assert main(["-q", "explain", "--archive", archive]) == 0
        out = capsys.readouterr().out
        assert "archived trial(s)" in out
        assert "calibration" in out

    def test_explain_json_with_landscape_and_metrics(self, tmp_path, capsys):
        import json

        archive = str(tmp_path / "a.jsonl")
        land = tmp_path / "land"
        metrics = tmp_path / "calib.prom"
        assert main(self.TUNE + ["--archive", archive]) == 0
        capsys.readouterr()
        code = main([
            "-q", "explain", "--archive", archive, "--json",
            "--landscape-out", str(land), "--metrics-out", str(metrics),
        ])
        assert code == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["measured"] >= 1
        assert set(obj["calibration"]) == {"model", "estimate"}
        assert (land / "landscape.csv").exists()
        specs = list(land.glob("*.vl.json"))
        assert specs
        for spec in specs:
            json.loads(spec.read_text())
        from repro.obs.export import lint_prometheus

        assert lint_prometheus(metrics.read_text()) == []

    def test_explain_unusable_archive_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["-q", "explain", "--archive", missing]) == 2
        garbage = tmp_path / "bad.jsonl"
        garbage.write_text("not a header\n")
        assert main(["-q", "explain", "--archive", str(garbage)]) == 2

    def test_robust_tune_json_carries_session_and_stats(self, tmp_path, capsys):
        import json

        journal = str(tmp_path / "j.jsonl")
        code = main([
            "-q", "tune", "--kernel", "inplane_fullslice", "--order", "2",
            "--device", "gtx580", "--grid", "64,64,32", "--method", "auto",
            "--journal", journal, "--json",
        ])
        assert code == 0
        obj = json.loads(capsys.readouterr().out)
        assert "session" in obj and obj["session"].startswith("inplane")
        assert "stats" in obj
        assert obj["entries"]
