"""Coalescing-model tests: line spans, vector widths, MemoryStats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.memory import (
    KIND_HALO,
    KIND_INTERIOR,
    KIND_WRITE,
    MemoryStats,
    WarpAccess,
    best_vector_width,
    line_span,
)


class TestLineSpan:
    def test_aligned_exact_line(self):
        assert line_span(0, 128) == 1

    def test_aligned_two_lines(self):
        assert line_span(0, 129) == 2

    def test_misaligned_crosses_boundary(self):
        assert line_span(120, 16) == 2

    def test_misaligned_within_line(self):
        assert line_span(4, 16) == 1

    def test_tiny_access_one_line(self):
        assert line_span(0, 4) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_span(0, 0)

    @given(start=st.integers(0, 4096), span=st.integers(1, 4096))
    def test_bounds(self, start, span):
        n = line_span(start, span)
        # At least the ceiling of span/line, at most one extra for phase.
        assert n >= -(-span // 128)
        assert n <= -(-span // 128) + 1

    @given(start=st.integers(0, 4096), span=st.integers(1, 4096))
    def test_shift_by_whole_lines_invariant(self, start, span):
        assert line_span(start, span) == line_span(start + 128, span)


class TestBestVectorWidth:
    def test_full_vec4(self):
        assert best_vector_width(0, 128, 4) == 4

    def test_width_not_divisible(self):
        assert best_vector_width(0, 130, 4) == 2

    def test_odd_width_scalar(self):
        assert best_vector_width(0, 33, 4) == 1

    def test_misaligned_start(self):
        assert best_vector_width(4, 128, 4) == 1  # 4B phase: not even 8B aligned

    def test_8b_aligned_gives_vec2(self):
        assert best_vector_width(8, 128, 4) == 2

    def test_double_caps_at_two(self):
        assert best_vector_width(0, 128, 8) == 2

    @given(
        start=st.integers(0, 256),
        width=st.integers(1, 512),
        elem=st.sampled_from([4, 8]),
    )
    def test_returned_width_is_valid(self, start, width, elem):
        vec = best_vector_width(start, width, elem)
        assert vec in (1, 2, 4)
        if vec > 1:
            assert width % vec == 0
            assert start % (vec * elem) == 0


class TestWarpAccess:
    def test_validation(self):
        with pytest.raises(ValueError):
            WarpAccess(start_byte=0, span_bytes=0, useful_bytes=0)
        with pytest.raises(ValueError):
            WarpAccess(start_byte=0, span_bytes=4, useful_bytes=8)
        with pytest.raises(ValueError):
            WarpAccess(start_byte=0, span_bytes=4, useful_bytes=4, count=0)

    def test_transactions(self):
        acc = WarpAccess(start_byte=124, span_bytes=8, useful_bytes=8)
        assert acc.transactions_each(128) == 2


class TestMemoryStats:
    def test_load_accumulation(self):
        stats = MemoryStats()
        stats.add(WarpAccess(start_byte=0, span_bytes=128, useful_bytes=128, count=4))
        assert stats.load_transactions == 4
        assert stats.load_transferred_bytes == 512
        assert stats.requested_load_bytes == 512
        assert stats.load_efficiency == 1.0

    def test_halo_classified_separately(self):
        stats = MemoryStats()
        stats.add(
            WarpAccess(start_byte=0, span_bytes=4, useful_bytes=4, kind=KIND_HALO)
        )
        assert stats.halo_transferred_bytes == 128
        assert stats.interior_transferred_bytes == 0
        assert stats.load_efficiency == pytest.approx(4 / 128)

    def test_write_accounting(self):
        stats = MemoryStats()
        stats.add(
            WarpAccess(start_byte=0, span_bytes=128, useful_bytes=128, kind=KIND_WRITE)
        )
        assert stats.store_transactions == 1
        assert stats.load_transactions == 0
        assert stats.total_transferred_bytes == 128

    def test_add_raw_fractional(self):
        stats = MemoryStats()
        stats.add_raw(
            kind=KIND_INTERIOR, instructions=1.5, transactions=2.5, requested_bytes=100.0
        )
        assert stats.load_transferred_bytes == pytest.approx(320.0)

    def test_add_raw_camped(self):
        stats = MemoryStats()
        stats.add_raw(
            kind=KIND_HALO,
            instructions=1,
            transactions=2,
            requested_bytes=8,
            camped=True,
        )
        assert stats.camped_bytes == 256

    def test_add_raw_rejects_negative(self):
        stats = MemoryStats()
        with pytest.raises(ValueError):
            stats.add_raw(
                kind=KIND_INTERIOR, instructions=-1, transactions=0, requested_bytes=0
            )

    def test_merge(self):
        a, b = MemoryStats(), MemoryStats()
        a.add(WarpAccess(start_byte=0, span_bytes=128, useful_bytes=128))
        b.add(WarpAccess(start_byte=0, span_bytes=64, useful_bytes=64, kind=KIND_HALO))
        b.load_phases = 2
        a.merge(b)
        assert a.load_transactions == 2
        assert a.halo_transferred_bytes == 128
        assert a.load_phases == 2

    def test_merge_line_size_mismatch(self):
        a = MemoryStats(line_bytes=128)
        b = MemoryStats(line_bytes=32)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_efficiency_is_one(self):
        assert MemoryStats().load_efficiency == 1.0
