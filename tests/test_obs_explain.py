"""Explain-engine tests: ranking, rank statistics, landscape, calibration."""

import json

import pytest

from repro.obs.archive import ArchiveRecord
from repro.obs.explain import (
    calibrate,
    calibration_registry,
    dump_landscape,
    explain,
    landscape_csv,
    landscape_specs,
    measured_ranking,
    spearman,
    topk_regret,
)
from repro.obs.export import CALIBRATION_GAUGES, lint_prometheus, to_prometheus


def record(
    config,
    rate,
    *,
    status="ok",
    predicted=None,
    estimate_rate=None,
    counters=None,
):
    return ArchiveRecord(
        config=tuple(config),
        label=str(tuple(config)),
        status=status,
        mpoints_per_s=rate,
        attempts=1,
        faults=(),
        replayed=False,
        predicted=predicted,
        estimate=(
            {"mpoints_per_s": estimate_rate}
            if estimate_rate is not None else None
        ),
        estimate_error=None if estimate_rate is not None else "no estimate",
        counters=counters,
    )


class TestRanking:
    def test_best_rate_first_rejected_excluded(self):
        records = [
            record((16, 2, 1, 1), 100.0),
            record((32, 2, 1, 1), 300.0),
            record((64, 2, 1, 1), 0.0, status="rejected_static"),
            record((16, 4, 1, 1), 200.0),
        ]
        ranking = measured_ranking(records)
        assert [r.mpoints_per_s for r in ranking] == [300.0, 200.0, 100.0]

    def test_rate_ties_break_on_config_tuple(self):
        records = [
            record((32, 4, 1, 1), 100.0),
            record((16, 2, 1, 1), 100.0),
        ]
        assert [r.config for r in measured_ranking(records)] == [
            (16, 2, 1, 1), (32, 4, 1, 1),
        ]


class TestSpearman:
    def test_perfect_monotone_agreement(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_inversion(self):
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_use_average_ranks(self):
        # Hand-computed: x ranks (1, 2.5, 2.5, 4), y ranks (1, 2, 3, 4)
        # → rho = cov / sqrt(vx * vy) ≈ 0.9487.
        rho = spearman([1, 2, 2, 3], [1, 2, 3, 4])
        assert rho == pytest.approx(0.948683, abs=1e-5)

    def test_undefined_cases_return_none(self):
        assert spearman([], []) is None
        assert spearman([1.0], [2.0]) is None
        assert spearman([5, 5, 5], [1, 2, 3]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            spearman([1, 2], [1])


class TestTopkRegret:
    def test_zero_when_winner_in_topk(self):
        pairs = [(10.0, 100.0), (9.0, 90.0), (8.0, 80.0)]
        assert topk_regret(pairs, 1) == 0.0

    def test_regret_fraction_when_model_misses_winner(self):
        # Model's top-1 is the 80-rate config; true best is 100.
        pairs = [(10.0, 80.0), (5.0, 100.0)]
        assert topk_regret(pairs, 1) == pytest.approx(0.2)
        assert topk_regret(pairs, 2) == 0.0

    def test_undefined_cases(self):
        assert topk_regret([], 3) is None
        assert topk_regret([(1.0, 0.0)], 3) is None
        assert topk_regret([(1.0, 2.0)], 0) is None


class TestCalibration:
    def test_both_models_scored_separately(self):
        records = [
            record((16, 2, 1, 1), 100.0, predicted=90.0, estimate_rate=110.0),
            record((32, 2, 1, 1), 200.0, predicted=180.0, estimate_rate=190.0),
            record((64, 2, 1, 1), 300.0, predicted=310.0, estimate_rate=290.0),
        ]
        cal = calibrate(records, k=1)
        assert cal["model"]["n"] == 3
        assert cal["model"]["spearman"] == pytest.approx(1.0)
        assert cal["model"]["topk_regret"] == 0.0
        assert cal["estimate"]["spearman"] == pytest.approx(1.0)

    def test_records_without_scores_drop_out(self):
        records = [
            record((16, 2, 1, 1), 100.0, predicted=90.0),
            record((32, 2, 1, 1), 200.0),
        ]
        cal = calibrate(records)
        assert cal["model"]["n"] == 1
        assert cal["estimate"]["n"] == 0
        assert cal["estimate"]["spearman"] is None

    def test_registry_uses_known_gauges_and_lints(self):
        records = [
            record((16, 2, 1, 1), 100.0, predicted=90.0, estimate_rate=110.0),
            record((32, 2, 1, 1), 200.0, predicted=180.0, estimate_rate=190.0),
        ]
        reg = calibration_registry(calibrate(records))
        assert set(reg.gauges) == set(CALIBRATION_GAUGES)
        assert lint_prometheus(to_prometheus(reg.snapshot())) == []

    def test_undefined_stats_set_no_gauge(self):
        reg = calibration_registry(calibrate([]))
        assert reg.gauges == {}


class TestLandscape:
    def records(self):
        return [
            record((16, 2, 1, 1), 100.0, predicted=90.0),
            record((32, 2, 1, 1), 200.0),
            record((16, 2, 2, 1), 150.0),
            record((64, 2, 1, 1), 0.0, status="rejected_static"),
        ]

    def test_csv_one_row_per_record(self):
        import csv
        import io

        text = landscape_csv(self.records())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][:4] == ["tx", "ty", "rx", "ry"]
        assert len(rows) == 5
        assert rows[4][5] == "rejected_static"
        assert rows[4][6] == ""  # no rate for rejected configs
        assert rows[1][6] == repr(100.0)

    def test_one_spec_per_rxry_slice_measured_only(self):
        specs = landscape_specs(self.records())
        assert set(specs) == {"landscape_rx1_ry1", "landscape_rx2_ry1"}
        values = specs["landscape_rx1_ry1"]["data"]["values"]
        assert values == [
            {"tx": 16, "ty": 2, "mpoints_per_s": 100.0},
            {"tx": 32, "ty": 2, "mpoints_per_s": 200.0},
        ]
        assert specs["landscape_rx1_ry1"]["mark"] == "rect"

    def test_dump_writes_parseable_files(self, tmp_path):
        names = dump_landscape(self.records(), str(tmp_path / "out"))
        assert "landscape.csv" in names
        for name in names:
            if name.endswith(".vl.json"):
                spec = json.loads((tmp_path / "out" / name).read_text())
                assert spec["$schema"].endswith("vega-lite/v5.json")

    def test_dump_is_byte_stable(self, tmp_path):
        dump_landscape(self.records(), str(tmp_path / "a"))
        dump_landscape(self.records(), str(tmp_path / "b"))
        for name in ("landscape.csv", "landscape_rx1_ry1.vl.json"):
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes()


class TestExplainReport:
    def records(self):
        c_win = {"gld_transactions": 1000.0, "achieved_occupancy": 0.5}
        c_run = {"gld_transactions": 2000.0, "achieved_occupancy": 0.6}
        return [
            record((16, 2, 1, 1), 300.0, predicted=280.0, counters=c_win),
            record((32, 2, 1, 1), 200.0, predicted=220.0, counters=c_run),
            record((64, 2, 1, 1), 0.0, status="rejected_simulated"),
        ]

    def test_report_ranks_and_attributes(self):
        report = explain({"session": "s"}, self.records())
        assert report.total == 3
        assert report.measured == 2
        assert report.winner.config == (16, 2, 1, 1)
        assert report.diff is not None
        assert report.diff.speedup == pytest.approx(1.5)
        assert "fewer gld transactions" in report.diff.headline
        text = report.render()
        assert "session s" in text
        assert "#1 (16, 2, 1, 1)" in text

    def test_json_form_is_serializable_and_complete(self):
        report = explain({}, self.records(), top=2)
        obj = json.loads(json.dumps(report.to_json_obj()))
        assert len(obj["ranking"]) == 2
        assert obj["differential"]["winner"] == "(16, 2, 1, 1)"
        assert set(obj["calibration"]) == {"model", "estimate"}

    def test_single_measured_record_has_no_differential(self):
        report = explain({}, self.records()[:1])
        assert report.diff is None
        assert "calibration" in report.render()
