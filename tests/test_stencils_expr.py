"""StencilExpr (general tap expression) tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StencilDefinitionError
from repro.stencils.expr import OutputSpec, StencilExpr, Tap, symmetric_expr
from repro.stencils.spec import default_coefficients


def simple_expr() -> StencilExpr:
    taps = (
        Tap(grid=0, offset=(0, 0, 0), coeff=0.5),
        Tap(grid=0, offset=(1, 0, 0), coeff=0.25),
        Tap(grid=0, offset=(0, 0, -2), coeff=0.25),
    )
    return StencilExpr(name="t", n_grids=1, outputs=(OutputSpec("o", taps),))


class TestTapValidation:
    def test_requires_exactly_one_coefficient_kind(self):
        with pytest.raises(StencilDefinitionError):
            Tap(grid=0, offset=(0, 0, 0))
        with pytest.raises(StencilDefinitionError):
            Tap(grid=0, offset=(0, 0, 0), coeff=1.0, coeff_grid=1)

    def test_rejects_negative_grid(self):
        with pytest.raises(StencilDefinitionError):
            Tap(grid=-1, offset=(0, 0, 0), coeff=1.0)

    def test_rejects_bad_offset(self):
        with pytest.raises(StencilDefinitionError):
            Tap(grid=0, offset=(0, 0), coeff=1.0)  # type: ignore[arg-type]


class TestExprValidation:
    def test_tap_grid_out_of_range(self):
        taps = (Tap(grid=1, offset=(0, 0, 0), coeff=1.0),)
        with pytest.raises(StencilDefinitionError):
            StencilExpr(name="x", n_grids=1, outputs=(OutputSpec("o", taps),))

    def test_coeff_grid_out_of_range(self):
        taps = (Tap(grid=0, offset=(0, 0, 0), coeff_grid=3),)
        with pytest.raises(StencilDefinitionError):
            StencilExpr(name="x", n_grids=1, outputs=(OutputSpec("o", taps),))

    def test_needs_outputs(self):
        with pytest.raises(StencilDefinitionError):
            StencilExpr(name="x", n_grids=1, outputs=())

    def test_output_needs_taps(self):
        with pytest.raises(StencilDefinitionError):
            OutputSpec("o", ())


class TestGeometry:
    def test_halo_extent_per_axis(self):
        expr = simple_expr()
        assert expr.halo_extent(0) == (1, 0, 2)

    def test_radius(self):
        assert simple_expr().radius() == 2

    def test_z_extent_back_and_forward(self):
        expr = simple_expr()
        assert expr.z_extent(0) == (2, 0)

    def test_stenciled_vs_coefficient_grids(self):
        taps = (
            Tap(grid=0, offset=(1, 0, 0), coeff_grid=1),
            Tap(grid=2, offset=(0, 0, 0), coeff=1.0),
        )
        expr = StencilExpr(name="x", n_grids=3, outputs=(OutputSpec("o", taps),))
        assert expr.stenciled_grids() == [0]
        assert set(expr.coefficient_grids()) == {1, 2}

    def test_mem_refs_dedups_repeated_taps(self):
        taps = (
            Tap(grid=0, offset=(0, 0, 0), coeff=1.0),
            Tap(grid=0, offset=(0, 0, 0), coeff=2.0),
        )
        expr = StencilExpr(name="x", n_grids=1, outputs=(OutputSpec("o", taps),))
        # one distinct read + one write
        assert expr.mem_refs_per_point() == 2


class TestSymmetricLowering:
    @given(radius=st.integers(1, 6))
    def test_tap_count(self, radius):
        expr = symmetric_expr(2 * radius, default_coefficients(radius))
        assert len(expr.all_taps()) == 6 * radius + 1

    @given(radius=st.integers(1, 6))
    def test_extent_matches(self, radius):
        expr = symmetric_expr(2 * radius, default_coefficients(radius))
        assert expr.halo_extent(0) == (radius, radius, radius)
        assert expr.radius() == radius

    @given(radius=st.integers(1, 6))
    def test_mem_refs_match_closed_form(self, radius):
        expr = symmetric_expr(2 * radius, default_coefficients(radius))
        assert expr.mem_refs_per_point() == 6 * radius + 2
