"""Iterative-loop driver (Fig 1) and metric-conversion tests."""

import numpy as np
import pytest

from repro.driver import converged, iterate, residual
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.metrics.efficiency import (
    bandwidth_bound_mpoints,
    gflops_to_mpoints,
    mpoints_to_gflops,
    speedup,
)
from repro.stencils.reference import iterate_symmetric
from repro.stencils.spec import symmetric


@pytest.fixture
def plan():
    return make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4))


class TestIterate:
    def test_fixed_steps_match_reference(self, plan, rng):
        g = rng.random((10, 12, 14)).astype(np.float32)
        out, steps = iterate(plan, g, steps=4)
        assert steps == 4
        ref = iterate_symmetric(symmetric(2), g.astype(np.float32), 4)
        np.testing.assert_allclose(out, ref, rtol=1e-4)

    def test_zero_steps(self, plan, rng):
        g = rng.random((8, 8, 8)).astype(np.float32)
        out, steps = iterate(plan, g, steps=0)
        assert steps == 0
        np.testing.assert_array_equal(out, g)

    def test_convergence_criterion_stops_early(self, plan):
        g = np.full((10, 10, 10), 2.0, dtype=np.float32)
        g[5, 5, 5] = 2.001  # tiny perturbation diffuses away quickly
        out, steps = iterate(plan, g, until=converged(1e-5), max_steps=500)
        assert steps < 500
        assert residual(out, plan.execute(out)) < 1e-5

    def test_requires_some_stop_condition(self, plan, rng):
        with pytest.raises(ValueError):
            iterate(plan, rng.random((8, 8, 8)))

    def test_steps_and_until_combined(self, plan, rng):
        g = rng.random((8, 8, 8)).astype(np.float32)
        _, steps = iterate(plan, g, steps=3, until=lambda a, b: False)
        assert steps == 3

    def test_converged_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            converged(0.0)

    def test_residual_is_max_norm(self):
        a = np.zeros((2, 2, 2))
        b = np.zeros((2, 2, 2))
        b[1, 1, 1] = 0.5
        assert residual(a, b) == 0.5


class TestMetrics:
    def test_mpoints_gflops_roundtrip(self):
        assert gflops_to_mpoints(mpoints_to_gflops(1000.0, 8), 8) == pytest.approx(1000.0)

    def test_paper_conversion_example(self):
        """Section V-B style: ~96 GFlop/s at 8 flops/pt = 12000 MPt/s."""
        assert mpoints_to_gflops(12000.0, 8) == pytest.approx(96.0)

    def test_speedup(self):
        assert speedup(20.0, 10.0) == 2.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_bandwidth_roofline(self):
        """The sanity anchor: order-2 SP at 8 B/pt on 161 GB/s ~ 20e3."""
        assert bandwidth_bound_mpoints(161.0, 8.0) == pytest.approx(20125.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            mpoints_to_gflops(-1.0, 8)
        with pytest.raises(ValueError):
            gflops_to_mpoints(1.0, 0)
        with pytest.raises(ValueError):
            bandwidth_bound_mpoints(100.0, 0)
