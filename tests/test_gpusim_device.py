"""Device registry tests, including Table III cross-checks.

The derived peak rates must reproduce the paper's published Table III
numbers, which validates that SM counts, core counts and clocks were
entered as a consistent set rather than transcribed.
"""

import pytest

from repro.errors import UnknownDeviceError
from repro.gpusim.arch import Generation
from repro.gpusim.device import (
    PAPER_DEVICES,
    DeviceSpec,
    get_device,
    list_devices,
    register_device,
)


class TestRegistry:
    def test_paper_devices_present(self):
        names = list_devices()
        for name in ("gtx580", "gtx680", "c2070", "c2050", "gtx285"):
            assert name in names

    def test_alias_lookup(self):
        assert get_device("GeForce GTX580") is get_device("gtx580")
        assert get_device("Tesla C2070") is get_device("c2070")

    def test_case_and_separator_insensitive(self):
        assert get_device("GTX-580") is get_device("gtx580")
        assert get_device("gtx_680") is get_device("gtx680")

    def test_unknown_device(self):
        with pytest.raises(UnknownDeviceError):
            get_device("gtx9000")

    def test_register_device_roundtrip(self):
        spec = DeviceSpec(
            name="testdev",
            generation=Generation.FERMI,
            sm_count=1,
            cores_per_sm=32,
            shader_clock_mhz=1000.0,
            dp_ratio=0.5,
            pin_bandwidth_gbs=100.0,
            measured_bandwidth_gbs=80.0,
            registers_per_sm=32768,
            smem_per_sm=49152,
            max_threads_per_sm=1536,
            max_warps_per_sm=48,
            max_blocks_per_sm=8,
            max_threads_per_block=1024,
            dram_latency_cycles=600,
            l2_bytes=1,
        )
        assert register_device(spec) is spec
        assert get_device("testdev") is spec


class TestTable3:
    """Table III of the paper."""

    def test_gtx580_peaks(self):
        dev = get_device("gtx580")
        assert dev.peak_sp_gflops == pytest.approx(1581, rel=0.01)
        assert dev.peak_dp_gflops == pytest.approx(198, rel=0.01)
        assert dev.pin_bandwidth_gbs == pytest.approx(192.4)

    def test_gtx680_peaks(self):
        dev = get_device("gtx680")
        assert dev.peak_sp_gflops == pytest.approx(3090, rel=0.01)
        assert dev.peak_dp_gflops == pytest.approx(129, rel=0.01)

    def test_c2070_peaks(self):
        dev = get_device("c2070")
        assert dev.peak_sp_gflops == pytest.approx(1030, rel=0.01)
        assert dev.peak_dp_gflops == pytest.approx(515, rel=0.01)
        assert dev.pin_bandwidth_gbs == pytest.approx(144.0)

    def test_measured_bandwidths_section_iv_a(self):
        """Section IV-A: 161 / 150 / 117.5 GB/s measured."""
        assert get_device("gtx580").measured_bandwidth_gbs == 161.0
        assert get_device("gtx680").measured_bandwidth_gbs == 150.0
        assert get_device("c2070").measured_bandwidth_gbs == 117.5

    def test_measured_is_75_to_85_percent_of_pin(self):
        """Section IV-A: achieved bandwidth typically 75-85% of pin."""
        for dev in PAPER_DEVICES:
            ratio = dev.measured_bandwidth_gbs / dev.pin_bandwidth_gbs
            assert 0.75 <= ratio <= 0.86

    def test_core_counts(self):
        assert get_device("gtx580").cuda_cores == 512
        assert get_device("gtx680").cuda_cores == 1536
        assert get_device("c2070").cuda_cores == 448

    def test_sm_counts(self):
        assert get_device("gtx580").sm_count == 16
        assert get_device("gtx680").sm_count == 8
        assert get_device("c2070").sm_count == 14


class TestDerived:
    def test_bandwidth_per_sm_per_cycle(self, gtx580):
        expected = 161e9 / 16 / (1544e6)
        assert gtx580.bandwidth_per_sm_bytes_per_cycle == pytest.approx(expected)

    def test_dp_throughput_scaling(self, gtx580):
        assert gtx580.flops_per_sm_per_cycle(8) == pytest.approx(
            gtx580.flops_per_sm_per_cycle(4) / 8
        )

    def test_bad_element_size(self, gtx580):
        with pytest.raises(ValueError):
            gtx580.flops_per_sm_per_cycle(2)

    def test_c2050_matches_c2070_for_timing(self):
        """Section V-B: C2050 = C2070 except DRAM capacity."""
        a, b = get_device("c2050"), get_device("c2070")
        assert a.sm_count == b.sm_count
        assert a.measured_bandwidth_gbs == b.measured_bandwidth_gbs
        assert a.shader_clock_mhz == b.shader_clock_mhz
