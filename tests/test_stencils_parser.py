"""Stencil-DSL parser tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StencilDefinitionError
from repro.stencils.expr import symmetric_expr
from repro.stencils.parser import parse_stencil
from repro.stencils.reference import apply_expr
from repro.stencils.spec import default_coefficients, symmetric


class TestBasics:
    def test_seven_point(self):
        expr, inputs = parse_stencil(
            "out[i,j,k] = 0.4 * u[i,j,k] + 0.1 * u[i-1,j,k] + 0.1 * u[i+1,j,k]"
            " + 0.1 * u[i,j-1,k] + 0.1 * u[i,j+1,k]"
            " + 0.1 * u[i,j,k-1] + 0.1 * u[i,j,k+1]"
        )
        assert inputs == ["u"]
        assert expr.n_grids == 1
        assert len(expr.outputs[0].taps) == 7
        assert expr.radius() == 1

    def test_coefficient_before_or_after(self):
        a, _ = parse_stencil("o[i,j,k] = 2.0 * u[i,j,k]")
        b, _ = parse_stencil("o[i,j,k] = u[i,j,k] * 2.0")
        assert a.outputs[0].taps[0].coeff == b.outputs[0].taps[0].coeff == 2.0

    def test_negative_terms(self):
        expr, _ = parse_stencil("o[i,j,k] = u[i+1,j,k] - 2.0 * u[i,j,k] + u[i-1,j,k]")
        coeffs = sorted(t.coeff for t in expr.outputs[0].taps)
        assert coeffs == [-2.0, 1.0, 1.0]

    def test_leading_minus(self):
        expr, _ = parse_stencil("o[i,j,k] = -u[i,j,k]")
        assert expr.outputs[0].taps[0].coeff == -1.0

    def test_constant_folding(self):
        expr, _ = parse_stencil("o[i,j,k] = 0.5 * 0.5 * u[i,j,k]")
        assert expr.outputs[0].taps[0].coeff == pytest.approx(0.25)

    def test_scientific_notation(self):
        expr, _ = parse_stencil("o[i,j,k] = 2.5e-2 * u[i,j,k]")
        assert expr.outputs[0].taps[0].coeff == pytest.approx(0.025)

    def test_multi_offset(self):
        expr, _ = parse_stencil("o[i,j,k] = u[i-2,j+1,k-3]")
        assert expr.outputs[0].taps[0].offset == (-2, 1, -3)

    def test_coefficient_grid(self):
        expr, inputs = parse_stencil("o[i,j,k] = c[i,j,k] * u[i-1,j,k]")
        tap = expr.outputs[0].taps[0]
        assert inputs == ["c", "u"]
        assert tap.coeff_grid == 0 and tap.grid == 1
        assert tap.offset == (-1, 0, 0)

    def test_multiple_outputs(self):
        expr, inputs = parse_stencil(
            "gx[i,j,k] = 0.5 * f[i+1,j,k] - 0.5 * f[i-1,j,k]\n"
            "gy[i,j,k] = 0.5 * f[i,j+1,k] - 0.5 * f[i,j-1,k]"
        )
        assert inputs == ["f"]
        assert [o.name for o in expr.outputs] == ["gx", "gy"]

    def test_semicolon_separator(self):
        expr, _ = parse_stencil("a[i,j,k] = u[i,j,k]; b[i,j,k] = u[i,j,k]")
        assert len(expr.outputs) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",                                   # empty
            "o[i,j,k] = ",                        # no rhs
            "o[i,j,k] = 3.0",                     # pure constant
            "o[i,j,k] = u[i,j]",                  # 2D index
            "o[i,j,k] = u[j,i,k]",                # wrong index order
            "o[i+1,j,k] = u[i,j,k]",              # shifted output
            "o[i,j,k] = u[i-1.5,j,k]",            # fractional offset
            "o[i,j,k] = a[i-1,j,k] * b[i+1,j,k]", # no centre factor
            "o[i,j,k] = a[i,j,k] * b[i,j,k] * c[i,j,k]",  # 3 grids
            "o[i,j,k] = 2.0 * c[i,j,k] * u[i-1,j,k]",     # scaled coeff grid
            "o[i,j,k] = o[i-1,j,k]",              # in-place
            "o[i,j,k] = u[i,j,k]; o[i,j,k] = u[i,j,k]",   # double assign
            "o[i,j,k] u[i,j,k]",                  # no '='
            "o[i,j,k] = u[i,j,k] u[i,j,k]",       # missing operator
            "o[i,j,k] = $",                       # bad char
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(StencilDefinitionError):
            parse_stencil(bad)


class TestSemantics:
    def test_parsed_laplacian_matches_builtin(self, rng):
        from repro.stencils.applications import laplacian

        expr, _ = parse_stencil(
            "lap[i,j,k] = u[i-1,j,k] + u[i+1,j,k] + u[i,j-1,k] + u[i,j+1,k]"
            " + u[i,j,k-1] + u[i,j,k+1] - 6.0 * u[i,j,k]"
        )
        g = rng.random((8, 8, 8))
        got = apply_expr(expr, [g])[0]
        want = apply_expr(laplacian(), [g])[0]
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_parsed_runs_in_kernels(self, rng):
        from repro.kernels.config import BlockConfig
        from repro.kernels.multigrid import MultiGridKernel

        expr, _ = parse_stencil(
            "o[i,j,k] = 0.5 * u[i,j,k] + 0.25 * u[i-1,j,k] + 0.25 * u[i,j,k+1]"
        )
        plan = MultiGridKernel(expr, BlockConfig(16, 4), "sp", method="inplane")
        g = rng.random((8, 10, 16)).astype(np.float32)
        got = plan.execute(g)
        want = apply_expr(expr, [g])
        plan.validate_against(want, got)

    @settings(max_examples=15, deadline=None)
    @given(radius=st.integers(1, 3), seed=st.integers(0, 500))
    def test_roundtrip_symmetric(self, radius, seed):
        """Render an Eqn (1) stencil as DSL text, reparse, evaluate: must
        match the direct symmetric evaluation."""
        rng = np.random.default_rng(seed)
        coeffs = default_coefficients(radius)
        terms = [f"{coeffs[0]!r} * u[i,j,k]"]
        for m in range(1, radius + 1):
            c = repr(coeffs[m])
            terms += [
                f"{c} * u[i-{m},j,k]", f"{c} * u[i+{m},j,k]",
                f"{c} * u[i,j-{m},k]", f"{c} * u[i,j+{m},k]",
                f"{c} * u[i,j,k-{m}]", f"{c} * u[i,j,k+{m}]",
            ]
        expr, _ = parse_stencil("out[i,j,k] = " + " + ".join(terms))
        ref_expr = symmetric_expr(2 * radius, coeffs)
        g = rng.random((2 * radius + 3,) * 3)
        got = apply_expr(expr, [g])[0]
        want = apply_expr(ref_expr, [g])[0]
        np.testing.assert_allclose(got, want, rtol=1e-10)


class TestMultiLine:
    def test_continuation_lines(self):
        expr, inputs = parse_stencil(
            """
            o[i,j,k] = 0.5 * u[i,j,k]
                     + 0.25 * u[i-1,j,k]
                     + 0.25 * u[i+1,j,k]
            """
        )
        assert inputs == ["u"]
        assert len(expr.outputs[0].taps) == 3

    def test_multiple_multiline_outputs(self):
        expr, _ = parse_stencil(
            """
            a[i,j,k] = u[i,j,k]
                     + u[i-1,j,k]
            b[i,j,k] = u[i,j,k]
                     - u[i+1,j,k]
            """
        )
        assert [o.name for o in expr.outputs] == ["a", "b"]
        assert all(len(o.taps) == 2 for o in expr.outputs)
