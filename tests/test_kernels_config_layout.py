"""BlockConfig and GridLayout tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, GridShapeError
from repro.kernels.config import BlockConfig
from repro.kernels.layout import GridLayout, blocks_in_plane


class TestBlockConfig:
    def test_derived_quantities(self):
        cfg = BlockConfig(32, 4, 2, 8)
        assert cfg.threads == 128
        assert cfg.tile_x == 64
        assert cfg.tile_y == 32
        assert cfg.points_per_plane == 2048
        assert cfg.register_tile == 16

    def test_label_matches_table4_style(self):
        assert BlockConfig(256, 1, 1, 8).label() == "(256, 1, 1, 8)"

    def test_coalescing_friendly(self):
        assert BlockConfig(32, 4).coalescing_friendly
        assert not BlockConfig(24, 4).coalescing_friendly

    @pytest.mark.parametrize("bad", [(0, 1), (1, 0), (1, 1, 0, 1), (1, 1, 1, -1)])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigurationError):
            BlockConfig(*bad)

    def test_as_tuple_roundtrip(self):
        cfg = BlockConfig(64, 8, 2, 2)
        assert BlockConfig(*cfg.as_tuple()) == cfg

    def test_ordering_is_stable(self):
        assert BlockConfig(32, 1) < BlockConfig(64, 1)


class TestGridLayout:
    def test_pitch_is_line_multiple(self):
        layout = GridLayout(512, 512, 256, 4)
        assert layout.pitch_bytes % 128 == 0
        assert layout.pitch_elems >= 512

    def test_phase_of_aligned_x(self):
        layout = GridLayout(512, 512, 256, 4, aligned_x=-4)
        assert layout.phase_of(-4) == 0
        assert layout.phase_of(0) == 16

    def test_phase_row_invariant_by_construction(self):
        layout = GridLayout(100, 100, 100, 8)
        # pitch is a line multiple, so phases depend only on x.
        assert layout.pitch_bytes % layout.line_bytes == 0

    def test_row_transactions_aligned(self):
        layout = GridLayout(512, 512, 256, 4)
        assert layout.row_transactions(0, 32) == 1
        assert layout.row_transactions(0, 33) == 2

    def test_row_transactions_misaligned(self):
        layout = GridLayout(512, 512, 256, 4)
        assert layout.row_transactions(-1, 32) == 2

    def test_avg_row_transactions_between_min_and_max(self):
        layout = GridLayout(512, 512, 256, 4)
        avg = layout.avg_row_transactions(-1, 32, 48)
        assert 1.0 <= avg <= 2.0

    def test_avg_equals_exact_when_stride_line_multiple(self):
        layout = GridLayout(512, 512, 256, 4)
        # 64 elems * 4B = 256B: every tile has the same phase.
        assert layout.avg_row_transactions(0, 32, 64) == 1.0

    def test_vector_width_respects_tile_stride(self):
        layout = GridLayout(512, 512, 256, 4)
        # 16-elem stride = 64B: 16B-aligned on every tile.
        assert layout.vector_width_for(0, 32, 16) == 4
        # Width not divisible by 4 -> vec2.
        assert layout.vector_width_for(0, 34, 16) == 2

    def test_vector_width_double_caps_at_2(self):
        layout = GridLayout(512, 512, 256, 8)
        assert layout.vector_width_for(0, 32, 16) == 2

    def test_rejects_bad_shapes(self):
        with pytest.raises(GridShapeError):
            GridLayout(0, 1, 1, 4)
        with pytest.raises(GridShapeError):
            GridLayout(8, 8, 8, 3)

    @given(
        width=st.integers(1, 300),
        x0=st.integers(-12, 12),
        stride=st.integers(16, 256),
    )
    def test_avg_transactions_bounds(self, width, x0, stride):
        layout = GridLayout(512, 512, 64, 4)
        avg = layout.avg_row_transactions(x0, width, stride)
        lower = -(-width * 4 // 128)
        assert lower <= avg <= lower + 1


class TestBlocksInPlane:
    def test_exact_division(self):
        assert blocks_in_plane(512, 512, 64, 16) == 8 * 32

    def test_ceil_on_partial(self):
        assert blocks_in_plane(100, 100, 64, 16) == 2 * 7
