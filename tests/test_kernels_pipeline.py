"""Plane-pipeline correctness — the numerical core of the reproduction.

The in-plane recurrence (Eqns (3)-(5)) must agree with the forward-plane
schedule and with the direct reference; this is the executable version of
the paper's Eqn (4) identity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.pipeline import (
    expr_forward_sweep,
    expr_inplane_sweep,
    forward_sweep,
    inplane_sweep,
    max_pipeline_depth,
)
from repro.stencils.applications import APPLICATIONS
from repro.stencils.reference import apply_expr, apply_symmetric
from repro.stencils.spec import symmetric


class TestSymmetricSchedules:
    @pytest.mark.parametrize("order", [2, 4, 6, 8, 10, 12])
    def test_forward_matches_reference(self, order, rng):
        spec = symmetric(order)
        side = 2 * spec.radius + 5
        g = rng.random((side, side + 2, side + 4))
        np.testing.assert_allclose(
            forward_sweep(spec, g), apply_symmetric(spec, g), rtol=1e-12
        )

    @pytest.mark.parametrize("order", [2, 4, 6, 8, 10, 12])
    def test_inplane_matches_reference(self, order, rng):
        """The Eqn (4) identity, numerically: reassociation only."""
        spec = symmetric(order)
        side = 2 * spec.radius + 5
        g = rng.random((side, side + 2, side + 4))
        np.testing.assert_allclose(
            inplane_sweep(spec, g), apply_symmetric(spec, g), rtol=1e-10
        )

    def test_inplane_float32(self, rng):
        spec = symmetric(4)
        g = rng.random((12, 12, 12)).astype(np.float32)
        out = inplane_sweep(spec, g)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, apply_symmetric(spec, g), rtol=1e-4)

    def test_boundary_planes_untouched(self, rng):
        spec = symmetric(6)
        g = rng.random((12, 12, 12))
        out = inplane_sweep(spec, g)
        np.testing.assert_array_equal(out[:3], g[:3])
        np.testing.assert_array_equal(out[-3:], g[-3:])

    def test_minimal_grid(self, rng):
        """Exactly one interior point (the pipeline's edge case)."""
        spec = symmetric(4)
        g = rng.random((5, 5, 5))
        out = inplane_sweep(spec, g)
        ref = apply_symmetric(spec, g)
        assert out[2, 2, 2] == pytest.approx(ref[2, 2, 2], rel=1e-10)

    def test_pipeline_depth_is_radius(self):
        """Section III-C: 'a total of r output elements are cached'."""
        assert max_pipeline_depth(symmetric(8)) == 4

    @settings(max_examples=20, deadline=None)
    @given(
        radius=st.integers(1, 4),
        lz=st.integers(0, 4),
        ly=st.integers(0, 3),
        lx=st.integers(0, 3),
        seed=st.integers(0, 2**16),
    )
    def test_schedules_agree_on_random_shapes(self, radius, lz, ly, lx, seed):
        rng = np.random.default_rng(seed)
        spec = symmetric(2 * radius)
        shape = (2 * radius + 1 + lz, 2 * radius + 1 + ly, 2 * radius + 1 + lx)
        g = rng.standard_normal(shape)
        np.testing.assert_allclose(
            inplane_sweep(spec, g), forward_sweep(spec, g), rtol=1e-9, atol=1e-12
        )


class TestExpressionSchedules:
    @pytest.mark.parametrize("name", list(APPLICATIONS))
    def test_forward_matches_reference(self, name, rng):
        expr = APPLICATIONS[name]
        grids = [rng.random((9, 10, 11)) for _ in range(expr.n_grids)]
        got = expr_forward_sweep(expr, grids)
        want = apply_expr(expr, grids)
        for g, w in zip(got, want):
            np.testing.assert_allclose(g, w, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("name", list(APPLICATIONS))
    def test_inplane_matches_reference(self, name, rng):
        expr = APPLICATIONS[name]
        grids = [rng.random((9, 10, 11)) for _ in range(expr.n_grids)]
        got = expr_inplane_sweep(expr, grids)
        want = apply_expr(expr, grids)
        for g, w in zip(got, want):
            np.testing.assert_allclose(g, w, rtol=1e-10, atol=1e-12)

    def test_inplane_handles_asymmetric_z(self, rng):
        """Upstream's z-taps reach back 2 and forward 1 — the generalized
        pipeline depth equals the forward reach only."""
        expr = APPLICATIONS["upstream"]
        grids = [rng.random((10, 10, 10))]
        got = expr_inplane_sweep(expr, grids)[0]
        want = apply_expr(expr, grids)[0]
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_multi_output_order(self, rng):
        expr = APPLICATIONS["grad"]
        grids = [rng.random((8, 8, 8))]
        outs = expr_inplane_sweep(expr, grids)
        assert len(outs) == 3
        refs = apply_expr(expr, grids)
        for o, r in zip(outs, refs):
            np.testing.assert_allclose(o, r, rtol=1e-10)
