"""Exhaustive tuner tests."""

import pytest

from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric
from repro.tuning.exhaustive import exhaustive_tune, feasible_configs
from repro.tuning.space import ParameterSpace

GRID = (256, 256, 128)
SMALL_SPACE = ParameterSpace(
    tx_values=(16, 32, 64), ty_values=(2, 4, 8), rx_values=(1, 2), ry_values=(1, 2)
)


def builder(order=2, dtype="sp"):
    spec = symmetric(order)
    return lambda cfg: make_kernel("inplane_fullslice", spec, cfg, dtype)


class TestExhaustive:
    def test_returns_ranked_entries(self, gtx580):
        res = exhaustive_tune(builder(), gtx580, GRID, SMALL_SPACE)
        rates = [e.mpoints_per_s for e in res.entries]
        assert rates == sorted(rates, reverse=True)
        assert res.method == "exhaustive"

    def test_best_is_verifiable(self, gtx580):
        """The reported best rate is exactly what simulating it gives."""
        res = exhaustive_tune(builder(), gtx580, GRID, SMALL_SPACE)
        plan = builder()(res.best_config)
        assert simulate(plan, gtx580, GRID).mpoints_per_s == pytest.approx(
            res.best_mpoints
        )

    def test_best_beats_every_other_entry(self, gtx580):
        res = exhaustive_tune(builder(), gtx580, GRID, SMALL_SPACE)
        assert all(res.best_mpoints >= e.mpoints_per_s for e in res.entries)

    def test_evaluated_counts(self, gtx580):
        res = exhaustive_tune(builder(), gtx580, GRID, SMALL_SPACE)
        assert res.evaluated <= res.space_size
        assert res.evaluated == len(res.entries)

    def test_entries_carry_diagnostics(self, gtx580):
        res = exhaustive_tune(builder(), gtx580, GRID, SMALL_SPACE)
        assert "load_efficiency" in res.best.info
        assert "occupancy" in res.best.info

    def test_feasible_configs_shared_with_modelbased(self, gtx580):
        configs = feasible_configs(builder(), gtx580, GRID, SMALL_SPACE)
        assert len(configs) > 0

    def test_summary_text(self, gtx580):
        res = exhaustive_tune(builder(), gtx580, GRID, SMALL_SPACE)
        assert "exhaustive" in res.summary()
        assert res.best_config.label() in res.summary()

    def test_per_device_results_differ(self):
        a = exhaustive_tune(builder(), get_device("gtx580"), GRID, SMALL_SPACE)
        b = exhaustive_tune(builder(), get_device("c2070"), GRID, SMALL_SPACE)
        assert a.best_mpoints != b.best_mpoints

    def test_dp_slower_than_sp(self, gtx580):
        sp = exhaustive_tune(builder(dtype="sp"), gtx580, GRID, SMALL_SPACE)
        dp = exhaustive_tune(builder(dtype="dp"), gtx580, GRID, SMALL_SPACE)
        assert dp.best_mpoints < sp.best_mpoints
