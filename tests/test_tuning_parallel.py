"""Parallel tuning-engine tests: the ``--jobs N`` determinism contract.

The headline guarantee (docs/TUNING.md): every tuner driven through a
:class:`ParallelEvaluator` returns **bit-identical** results at any
worker count — clean or under a seeded fault storm — because outcomes
are reassembled in input order and every trial draws faults from its
own per-config stream.  ``worker_cap=4`` bypasses the cpu-count clamp so
a real 4-process pool forks even on one-core CI containers.
"""

import pickle

import numpy as np
import pytest

import repro.obs as obs
from repro.errors import TuningError
from repro.gpusim.device import get_device
from repro.gpusim.faults import FaultPlan
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.obs.schema import CAT_TUNE_WORKER
from repro.stencils.spec import symmetric
from repro.tuning.evaluator import batch_capable
from repro.tuning.exhaustive import exhaustive_tune, feasible_configs
from repro.tuning.modelbased import model_based_tune
from repro.tuning.parallel import FamilyKernelBuilder, ParallelEvaluator
from repro.tuning.perfmodel import ModelInputs, PaperModel
from repro.tuning.robust import RetryPolicy, RobustTuningSession, TrialJournal
from repro.tuning.space import ParameterSpace
from repro.tuning.stochastic import stochastic_tune

GRID = (64, 64, 32)
SPACE = ParameterSpace(
    tx_values=(16, 32, 64), ty_values=(1, 2, 4), rx_values=(1, 2), ry_values=(1, 2)
)
#: Per-launch fault rates low enough that six retries let every config through.
STORM = dict(launch_failure_rate=0.08, hang_rate=0.04, throttle_rate=0.06)
DEVICE = "gtx580"


def build(cfg: BlockConfig):
    return make_kernel("inplane_fullslice", symmetric(2), cfg)


def parallel(jobs, **kwargs):
    return ParallelEvaluator(
        get_device(DEVICE), jobs=jobs, worker_cap=4, **kwargs
    )


def feasible():
    return feasible_configs(build, get_device(DEVICE), GRID, SPACE)


class TestPredictBatch:
    def test_bit_identical_to_scalar_predict(self):
        device = get_device(DEVICE)
        model = PaperModel(device)
        configs = feasible_configs(build, device, GRID)
        inputs = [
            ModelInputs.from_plan(build(cfg), device, GRID) for cfg in configs
        ]
        batch = model.predict_batch(inputs)
        scalar = np.array([model.predict(i).mpoints_per_s for i in inputs])
        assert batch.dtype == np.float64
        assert (batch == scalar).all()  # bit-identical, not merely close


class TestFamilyKernelBuilder:
    def test_picklable(self):
        builder = FamilyKernelBuilder("inplane_fullslice", 2, "sp")
        clone = pickle.loads(pickle.dumps(builder))
        cfg = BlockConfig(32, 4, 1, 4)
        assert clone == builder
        assert clone(cfg).name == builder(cfg).name

    def test_builds_the_named_family(self):
        builder = FamilyKernelBuilder("inplane_fullslice", 2)
        cfg = BlockConfig(32, 4, 1, 4)
        assert builder(cfg).name == build(cfg).name


class TestEvaluatorValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(TuningError, match="jobs"):
            ParallelEvaluator(get_device(DEVICE), jobs=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(TuningError, match="chunk_size"):
            ParallelEvaluator(get_device(DEVICE), jobs=1, chunk_size=0)

    def test_worker_cap_clamps(self):
        assert parallel(jobs=64).jobs == 4

    def test_env_cap_overrides_core_clamp(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS_CAP", "3")
        ev = ParallelEvaluator(get_device(DEVICE), jobs=64)
        assert ev.jobs == 3

    def test_implements_batch_protocol(self):
        with parallel(jobs=1) as ev:
            assert batch_capable(ev) is ev


class TestCleanEquivalence:
    """jobs=4 must match jobs=1 AND the historical serial loop, fault-free."""

    def tune(self, method, evaluator=None):
        device = get_device(DEVICE)
        if method == "exhaustive":
            return exhaustive_tune(
                build, device, GRID, SPACE, evaluator=evaluator
            )
        if method == "model":
            return model_based_tune(
                build, device, GRID, beta=0.25, space=SPACE, evaluator=evaluator
            )
        return stochastic_tune(
            build, device, GRID, budget=12, seed=3, space=SPACE,
            evaluator=evaluator,
        )

    @pytest.mark.parametrize("method", ["exhaustive", "model", "stochastic"])
    def test_jobs4_matches_jobs1_and_serial(self, method):
        serial = self.tune(method)
        with parallel(jobs=1) as ev1:
            one = self.tune(method, evaluator=ev1)
        with parallel(jobs=4) as ev4:
            four = self.tune(method, evaluator=ev4)
        assert one.best == four.best == serial.best
        assert one.entries == four.entries == serial.entries
        assert one.evaluated == four.evaluated == serial.evaluated

    @pytest.mark.parametrize("method", ["exhaustive", "model", "stochastic"])
    def test_info_reports_worker_count(self, method):
        with parallel(jobs=4) as ev:
            result = self.tune(method, evaluator=ev)
        assert result.info["jobs"] == 4


class TestFaultStormEquivalence:
    """Same storm, same winner and same aggregated stats at any jobs count."""

    def storm_result(self, jobs, journal_path=None, resume=False):
        session = RobustTuningSession(
            DEVICE, GRID,
            faults=FaultPlan(seed=7, **STORM),
            policy=RetryPolicy(max_retries=6),
            journal_path=journal_path,
            resume=resume,
            jobs=jobs,
            worker_cap=4,
        )
        try:
            return session.run(build, method="exhaustive", space=SPACE)
        finally:
            session.close()

    def test_storm_winner_and_stats_identical(self):
        one = self.storm_result(jobs=1)
        four = self.storm_result(jobs=4)
        assert four.result.best == one.result.best
        assert four.result.entries == one.result.entries
        for key in ("live_trials", "retries", "quarantined_configs", "backoff_s"):
            assert four.stats[key] == one.stats[key], key
        assert one.stats["jobs"] == 1
        assert four.stats["jobs"] == 4

    def test_storm_journal_identical_and_resumable(self, tmp_path):
        j1, j4 = tmp_path / "one.journal", tmp_path / "four.journal"
        one = self.storm_result(jobs=1, journal_path=j1)
        four = self.storm_result(jobs=4, journal_path=j4)
        assert four.result.best == one.result.best
        # Workers never touch the journal; the parent appends in input
        # order, so the two files agree line for line past the header.
        lines1 = j1.read_text().splitlines()
        lines4 = j4.read_text().splitlines()
        assert lines1[1:] == lines4[1:]
        # A resumed parallel campaign replays every journaled trial.
        resumed = self.storm_result(jobs=4, journal_path=j4, resume=True)
        assert resumed.result.best == one.result.best
        assert resumed.stats["replayed"] == len(lines4) - 1
        assert resumed.stats["live_trials"] == 0


class TestJournalThroughParent:
    def test_batch_appends_fresh_outcomes_in_input_order(self, tmp_path):
        journal = TrialJournal.create(tmp_path / "t.journal", "k")
        configs = feasible()
        with parallel(jobs=4, journal=journal) as ev:
            outcomes = ev.measure_batch(build, configs, GRID)
        measured = [o.config for o in outcomes if o.status != "rejected_static"]
        reloaded = TrialJournal.resume(tmp_path / "t.journal", "k")
        assert len(reloaded) == len(measured)
        for cfg in measured:
            assert reloaded.get(cfg) is not None


class TestWorkerSpans:
    def test_pool_batches_emit_per_worker_lanes(self):
        configs = feasible()
        with obs.tracing() as tracer:
            with parallel(jobs=4, chunk_size=2) as ev:
                ev.measure_batch(build, configs, GRID)
        spans = tracer.host_spans(CAT_TUNE_WORKER)
        assert spans, "a pooled batch must emit tune.worker spans"
        # Every dispatched config is accounted to exactly one chunk span.
        assert sum(s.args["configs"] for s in spans) == len(configs)
        for span in spans:
            assert span.tid.startswith("worker:")
            assert span.args["pid"] > 0

    def test_inline_batches_emit_no_worker_spans(self):
        with obs.tracing() as tracer:
            with parallel(jobs=1) as ev:
                ev.measure_batch(build, feasible(), GRID)
        assert tracer.host_spans(CAT_TUNE_WORKER) == []


class TestPoolLifecycle:
    def test_close_is_idempotent(self):
        ev = parallel(jobs=4)
        ev.measure_batch(build, feasible()[:4], GRID)
        ev.close()
        ev.close()

    def test_batches_work_after_close(self):
        ev = parallel(jobs=4)
        configs = feasible()[:4]
        first = ev.measure_batch(build, configs, GRID)
        ev.close()
        again = ev.measure_batch(build, configs, GRID)  # pool re-forks
        ev.close()
        assert first == again
