"""Shared-memory bank-conflict model tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.arch import Generation, rules_for
from repro.gpusim.smem import (
    SmemAccessProfile,
    conflict_degree,
    dp_conflict_factor,
    padded_pitch_words,
)


class TestConflictDegree:
    def test_unit_stride_conflict_free(self):
        assert conflict_degree(1) == 1

    def test_broadcast_free(self):
        assert conflict_degree(0) == 1

    def test_bank_count_stride_fully_serializes(self):
        assert conflict_degree(32) == 32

    def test_even_stride(self):
        assert conflict_degree(2) == 2

    def test_odd_stride_conflict_free(self):
        # Odd strides are coprime with 32 banks.
        for stride in (1, 3, 5, 7, 33):
            assert conflict_degree(stride) == 1

    def test_sixteen_banks_gt200(self):
        # GT200 services shared memory per half-warp (16 lanes, 16 banks).
        assert conflict_degree(16, lanes=16, banks=16) == 16
        assert conflict_degree(17, lanes=16, banks=16) == 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            conflict_degree(1, lanes=0)
        with pytest.raises(ValueError):
            conflict_degree(1, banks=0)

    @given(stride=st.integers(0, 256))
    def test_degree_equals_gcd_formula(self, stride):
        """For 32 lanes on 32 banks, degree = gcd-based closed form."""
        got = conflict_degree(stride, lanes=32, banks=32)
        if stride == 0:
            assert got == 1
        else:
            # lanes spread over banks with period 32/gcd; each visited bank
            # receives lanes*gcd/32 distinct words (lanes == banks == 32).
            expected = math.gcd(stride, 32)
            assert got == expected


class TestPaddedPitch:
    def test_pads_multiples_of_banks(self):
        assert padded_pitch_words(32) == 33
        assert padded_pitch_words(64) == 65

    def test_leaves_non_multiples(self):
        assert padded_pitch_words(33) == 33
        assert padded_pitch_words(17) == 17

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            padded_pitch_words(0)

    @given(width=st.integers(1, 4096))
    def test_result_never_bank_aligned(self, width):
        assert padded_pitch_words(width) % 32 != 0

    def test_padding_makes_column_access_conflict_free(self):
        """The point of the padding: column access at the padded pitch."""
        pitch = padded_pitch_words(64)
        assert conflict_degree(pitch) == 1


class TestDpConflictFactor:
    def test_sp_free(self):
        assert dp_conflict_factor(4, rules_for(Generation.FERMI)) == 1.0

    def test_fermi_dp_serializes(self):
        assert dp_conflict_factor(8, rules_for(Generation.FERMI)) == 2.0

    def test_kepler_dp_has_wide_banks(self):
        assert dp_conflict_factor(8, rules_for(Generation.KEPLER)) == 1.0

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            dp_conflict_factor(16, rules_for(Generation.FERMI))


class TestProfile:
    def test_issue_cost(self):
        prof = SmemAccessProfile(
            read_instructions=10, write_instructions=5, conflict_factor=2.0
        )
        assert prof.issue_cost() == 30.0
