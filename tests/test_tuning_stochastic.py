"""Stochastic (simulated annealing) tuner tests."""

import pytest

from repro.errors import TuningError
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric
from repro.tuning.exhaustive import exhaustive_tune
from repro.tuning.stochastic import stochastic_tune

GRID = (512, 512, 256)


def builder(order=2):
    spec = symmetric(order)
    return lambda cfg: make_kernel("inplane_fullslice", spec, cfg)


class TestStochastic:
    def test_respects_budget(self, gtx580):
        res = stochastic_tune(builder(), gtx580, GRID, budget=12, seed=1)
        assert res.evaluated <= 12
        assert res.method == "stochastic"

    def test_deterministic_per_seed(self, gtx580):
        a = stochastic_tune(builder(), gtx580, GRID, budget=15, seed=3)
        b = stochastic_tune(builder(), gtx580, GRID, budget=15, seed=3)
        assert a.best_config == b.best_config
        assert a.best_mpoints == b.best_mpoints

    def test_different_seeds_explore_differently(self, gtx580):
        a = stochastic_tune(builder(), gtx580, GRID, budget=10, seed=1)
        b = stochastic_tune(builder(), gtx580, GRID, budget=10, seed=2)
        assert {e.config for e in a.entries} != {e.config for e in b.entries}

    def test_entries_sorted(self, gtx580):
        res = stochastic_tune(builder(), gtx580, GRID, budget=20, seed=5)
        rates = [e.mpoints_per_s for e in res.entries]
        assert rates == sorted(rates, reverse=True)

    def test_finds_reasonable_optimum(self, gtx580):
        """With a third of the space as budget, annealing lands within 15%
        of the exhaustive optimum."""
        exh = exhaustive_tune(builder(), gtx580, GRID)
        res = stochastic_tune(
            builder(), gtx580, GRID, budget=exh.space_size // 3, seed=7
        )
        assert res.best_mpoints >= 0.85 * exh.best_mpoints

    def test_model_based_beats_stochastic_at_equal_budget(self, gtx580):
        """The section VI pitch: model guidance beats blind search for the
        same number of executed configurations."""
        from repro.tuning.modelbased import model_based_tune

        mb = model_based_tune(builder(), gtx580, GRID, beta=0.05)
        st = stochastic_tune(builder(), gtx580, GRID, budget=mb.evaluated, seed=11)
        assert mb.best_mpoints >= st.best_mpoints * 0.95

    def test_budget_validation(self, gtx580):
        with pytest.raises(TuningError):
            stochastic_tune(builder(), gtx580, GRID, budget=0)

    def test_budget_one(self, gtx580):
        res = stochastic_tune(builder(), gtx580, GRID, budget=1, seed=0)
        assert res.evaluated == 1
