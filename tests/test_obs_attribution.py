"""Bottleneck-attribution engine tests.

The ranked limiter report must (a) rank exactly the five stall counters,
largest cycle share first; (b) explain each limiter from the counters
that drive it; (c) cross-reference only rule ids that actually exist in
the static-analysis catalog; and (d) merge with the roofline verdict
into the one-line headline.
"""

from __future__ import annotations

import pytest

from repro.analysis.rules import catalog
from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.gpusim.report import SimReport
from repro.kernels.factory import make_kernel
from repro.metrics.roofline import roofline
from repro.obs.attribution import (
    LIMITER_NAMES,
    AttributionReport,
    attribute,
    limiter_name,
    rank_limiters,
)
from repro.obs.counters import STALL_KEYS
from repro.stencils.spec import symmetric

GRID = (128, 128, 64)

CASES = [
    ("gtx580", "inplane_fullslice", 2, (32, 4, 1, 2), "sp"),
    ("gtx580", "inplane_fullslice", 10, (32, 4, 2, 2), "dp"),
    ("gtx680", "inplane_vertical", 4, (32, 4, 1, 2), "sp"),
    ("c2070", "nvstencil", 8, (32, 4, 1, 1), "sp"),
    ("c2070", "inplane_horizontal", 6, (64, 2, 1, 2), "dp"),
]


def _report(device, family, order, block, dtype):
    plan = make_kernel(family, symmetric(order), block, dtype)
    return simulate(plan, device, GRID)


@pytest.fixture(params=CASES, ids=lambda c: "-".join(map(str, c[:3])))
def report(request):
    return _report(*request.param)


class TestRanking:
    def test_all_five_limiters_ranked_by_share(self, report):
        limiters = rank_limiters(report.counters)
        assert len(limiters) == len(STALL_KEYS)
        assert {x.counter for x in limiters} == set(STALL_KEYS)
        shares = [x.share for x in limiters]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(1.0)
        assert all(x.name == LIMITER_NAMES[x.counter] for x in limiters)

    def test_limiter_name_agrees_on_both_forms(self, report):
        top = rank_limiters(report.counters)[0].name
        assert limiter_name(report.counters) == top
        assert limiter_name(report.counters.as_dict()) == top

    def test_hints_reference_real_analysis_rules(self, report):
        known = set(catalog())
        for lim in rank_limiters(report.counters):
            for hint in lim.hints:
                assert hint in known, f"{lim.counter} hints unknown rule {hint}"

    def test_details_are_counter_backed(self, report):
        by_counter = {x.counter: x for x in rank_limiters(report.counters)}
        c = report.counters
        assert f"{c['dram_bw_fraction']:.0%}" in by_counter["stall_mem_frac"].detail
        assert f"IPC {c['ipc']:.2f}" in by_counter["stall_compute_frac"].detail
        assert c.occupancy_limiter in by_counter["stall_latency_frac"].detail


class TestAttribute:
    def test_headline_without_roofline_leads_with_primary(self, report):
        rep = attribute(report)
        assert isinstance(rep, AttributionReport)
        assert rep.kernel == report.kernel_name
        assert rep.primary == rep.limiters[0]
        assert rep.headline.startswith(rep.primary.name)

    def test_roofline_headline_names_bound_and_next_limiter(self, report):
        point = next(
            roofline(p, get_device(device), GRID, report)
            for device, family, order, block, dtype in CASES
            for p in [make_kernel(family, symmetric(order), block, dtype)]
            if p.name == report.kernel_name and device == report.device_name
        )
        rep = attribute(report, point)
        bound = "bandwidth" if point.bandwidth_bound else "compute"
        assert rep.headline.startswith(f"{bound}-bound at ")
        if "next limiter:" in rep.headline:
            nxt = next(x for x in rep.limiters if x.name != bound)
            assert nxt.detail in rep.headline

    def test_render_lists_every_limiter_and_hints(self, report):
        text = attribute(report).render()
        for lim in rank_limiters(report.counters):
            assert lim.name in text
            for hint in lim.hints:
                assert hint in text

    def test_counterless_report_rejected(self, report):
        bare = SimReport(
            device_name=report.device_name,
            kernel_name=report.kernel_name,
            total_cycles=report.total_cycles,
            time_s=report.time_s,
            mpoints_per_s=report.mpoints_per_s,
            gflops=report.gflops,
            load_efficiency=report.load_efficiency,
            bandwidth_gbs=report.bandwidth_gbs,
            occupancy=report.occupancy,
            stages=report.stages,
            active_blocks=report.active_blocks,
            blocks=report.blocks,
        )
        with pytest.raises(ValueError, match="no counters"):
            attribute(bare)


class TestSummaryIntegration:
    """The flame summary prints the same primary limiter the report ranks."""

    def test_summary_limiter_line_matches_attribution(self, capsys):
        from repro import obs
        from repro.gpusim.executor import DeviceExecutor
        from repro.obs.summary import summarize

        plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
        with obs.tracing() as tracer:
            report = DeviceExecutor("gtx580").run(plan, GRID)
        text = summarize(tracer)
        rep = attribute(report)
        assert f"limiter: {rep.primary.name}" in text
        assert f"limited by {report.counters.occupancy_limiter}" in text
