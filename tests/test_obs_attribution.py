"""Bottleneck-attribution engine tests.

The ranked limiter report must (a) rank exactly the five stall counters,
largest cycle share first; (b) explain each limiter from the counters
that drive it; (c) cross-reference only rule ids that actually exist in
the static-analysis catalog; and (d) merge with the roofline verdict
into the one-line headline.
"""

from __future__ import annotations

import pytest

from repro.analysis.rules import catalog
from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.gpusim.report import SimReport
from repro.kernels.factory import make_kernel
from repro.metrics.roofline import roofline
from repro.obs.attribution import (
    LIMITER_NAMES,
    AttributionReport,
    attribute,
    limiter_name,
    rank_limiters,
)
from repro.obs.counters import STALL_KEYS
from repro.stencils.spec import symmetric

GRID = (128, 128, 64)

CASES = [
    ("gtx580", "inplane_fullslice", 2, (32, 4, 1, 2), "sp"),
    ("gtx580", "inplane_fullslice", 10, (32, 4, 2, 2), "dp"),
    ("gtx680", "inplane_vertical", 4, (32, 4, 1, 2), "sp"),
    ("c2070", "nvstencil", 8, (32, 4, 1, 1), "sp"),
    ("c2070", "inplane_horizontal", 6, (64, 2, 1, 2), "dp"),
]


def _report(device, family, order, block, dtype):
    plan = make_kernel(family, symmetric(order), block, dtype)
    return simulate(plan, device, GRID)


@pytest.fixture(params=CASES, ids=lambda c: "-".join(map(str, c[:3])))
def report(request):
    return _report(*request.param)


class TestRanking:
    def test_all_five_limiters_ranked_by_share(self, report):
        limiters = rank_limiters(report.counters)
        assert len(limiters) == len(STALL_KEYS)
        assert {x.counter for x in limiters} == set(STALL_KEYS)
        shares = [x.share for x in limiters]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(1.0)
        assert all(x.name == LIMITER_NAMES[x.counter] for x in limiters)

    def test_limiter_name_agrees_on_both_forms(self, report):
        top = rank_limiters(report.counters)[0].name
        assert limiter_name(report.counters) == top
        assert limiter_name(report.counters.as_dict()) == top

    def test_hints_reference_real_analysis_rules(self, report):
        known = set(catalog())
        for lim in rank_limiters(report.counters):
            for hint in lim.hints:
                assert hint in known, f"{lim.counter} hints unknown rule {hint}"

    def test_details_are_counter_backed(self, report):
        by_counter = {x.counter: x for x in rank_limiters(report.counters)}
        c = report.counters
        assert f"{c['dram_bw_fraction']:.0%}" in by_counter["stall_mem_frac"].detail
        assert f"IPC {c['ipc']:.2f}" in by_counter["stall_compute_frac"].detail
        assert c.occupancy_limiter in by_counter["stall_latency_frac"].detail


class TestAttribute:
    def test_headline_without_roofline_leads_with_primary(self, report):
        rep = attribute(report)
        assert isinstance(rep, AttributionReport)
        assert rep.kernel == report.kernel_name
        assert rep.primary == rep.limiters[0]
        assert rep.headline.startswith(rep.primary.name)

    def test_roofline_headline_names_bound_and_next_limiter(self, report):
        point = next(
            roofline(p, get_device(device), GRID, report)
            for device, family, order, block, dtype in CASES
            for p in [make_kernel(family, symmetric(order), block, dtype)]
            if p.name == report.kernel_name and device == report.device_name
        )
        rep = attribute(report, point)
        bound = "bandwidth" if point.bandwidth_bound else "compute"
        assert rep.headline.startswith(f"{bound}-bound at ")
        if "next limiter:" in rep.headline:
            nxt = next(x for x in rep.limiters if x.name != bound)
            assert nxt.detail in rep.headline

    def test_render_lists_every_limiter_and_hints(self, report):
        text = attribute(report).render()
        for lim in rank_limiters(report.counters):
            assert lim.name in text
            for hint in lim.hints:
                assert hint in text

    def test_counterless_report_rejected(self, report):
        bare = SimReport(
            device_name=report.device_name,
            kernel_name=report.kernel_name,
            total_cycles=report.total_cycles,
            time_s=report.time_s,
            mpoints_per_s=report.mpoints_per_s,
            gflops=report.gflops,
            load_efficiency=report.load_efficiency,
            bandwidth_gbs=report.bandwidth_gbs,
            occupancy=report.occupancy,
            stages=report.stages,
            active_blocks=report.active_blocks,
            blocks=report.blocks,
        )
        with pytest.raises(ValueError, match="no counters"):
            attribute(bare)


class TestSummaryIntegration:
    """The flame summary prints the same primary limiter the report ranks."""

    def test_summary_limiter_line_matches_attribution(self, capsys):
        from repro import obs
        from repro.gpusim.executor import DeviceExecutor
        from repro.obs.summary import summarize

        plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
        with obs.tracing() as tracer:
            report = DeviceExecutor("gtx580").run(plan, GRID)
        text = summarize(tracer)
        rep = attribute(report)
        assert f"limiter: {rep.primary.name}" in text
        assert f"limited by {report.counters.occupancy_limiter}" in text


def _counterset(**overrides):
    """A schema-complete CounterSet with chosen values overridden."""
    from repro.obs.counters import COUNTER_KEYS, CounterSet

    values = {k: 0.0 for k in COUNTER_KEYS}
    values.update(
        stall_mem_frac=0.4, stall_compute_frac=0.3, stall_latency_frac=0.2,
        stall_sync_frac=0.06, stall_sched_frac=0.04,
        achieved_occupancy=0.5, ipc=1.0, gld_efficiency=1.0,
        gst_efficiency=1.0, dram_bw_fraction=0.5,
    )
    values.update(overrides)
    return CounterSet(values=values, occupancy_limiter="registers")


class TestTieBreaking:
    """Equal stall shares must rank in STALL_KEYS order (stable sort)."""

    def test_all_equal_shares_rank_in_stall_key_order(self):
        equal = _counterset(**{k: 0.2 for k in STALL_KEYS})
        limiters = rank_limiters(equal)
        assert [x.counter for x in limiters] == list(STALL_KEYS)
        assert limiter_name(equal) == LIMITER_NAMES[STALL_KEYS[0]]

    def test_partial_tie_keeps_stall_key_order_within_the_tie(self):
        c = _counterset(
            stall_mem_frac=0.2, stall_compute_frac=0.3,
            stall_latency_frac=0.3, stall_sync_frac=0.1,
            stall_sched_frac=0.1,
        )
        ranked = [x.counter for x in rank_limiters(c)]
        # compute and latency tie at 0.3: compute first (STALL_KEYS order);
        # sync and sched tie at 0.1: sync first.
        assert ranked == [
            "stall_compute_frac", "stall_latency_frac", "stall_mem_frac",
            "stall_sync_frac", "stall_sched_frac",
        ]

    def test_rank_is_deterministic_across_calls(self):
        c = _counterset(**{k: 0.2 for k in STALL_KEYS})
        assert rank_limiters(c) == rank_limiters(c)


class TestDifferential:
    """Winner-vs-runner-up counter attribution (the `repro explain` core)."""

    def winner(self):
        return {"gld_transactions": 690.0, "achieved_occupancy": 0.48,
                "ipc": 1.2}

    def runner_up(self):
        return {"gld_transactions": 1000.0, "achieved_occupancy": 0.50,
                "ipc": 1.2}

    def diff(self, **kwargs):
        from repro.obs.attribution import differential

        defaults = dict(
            winner_label="W", runner_up_label="R",
            winner_rate=150.0, runner_up_rate=100.0,
        )
        defaults.update(kwargs)
        return differential(self.winner(), self.runner_up(), **defaults)

    def test_headline_names_the_trade(self):
        rep = self.diff()
        assert rep.speedup == pytest.approx(1.5)
        assert rep.headline == (
            "winner trades 4% lower achieved occupancy "
            "for 31% fewer gld transactions"
        )

    def test_deltas_rank_by_absolute_relative_change(self):
        rels = [abs(d.rel) for d in self.diff().deltas]
        assert rels == sorted(rels, reverse=True)

    def test_delta_ties_break_on_counter_name(self):
        from repro.obs.attribution import differential

        # Both counters move by exactly -50%: alphabetical order decides.
        rep = differential(
            {"b_counter": 1.0, "a_counter": 2.0},
            {"b_counter": 2.0, "a_counter": 4.0},
            winner_label="W", runner_up_label="R",
            winner_rate=2.0, runner_up_rate=1.0,
        )
        assert [d.counter for d in rep.deltas] == ["a_counter", "b_counter"]

    def test_zero_baseline_clamps_not_crashes(self):
        from repro.obs.attribution import differential

        rep = differential(
            {"local_spill_bytes": 64.0}, {"local_spill_bytes": 0.0},
            winner_label="W", runner_up_label="R",
            winner_rate=2.0, runner_up_rate=1.0,
        )
        assert rep.deltas[0].rel == 1.0
        assert not rep.deltas[0].improved

    def test_identical_counters_make_a_noise_headline(self):
        from repro.obs.attribution import differential

        same = {"ipc": 1.0, "gld_transactions": 10.0}
        rep = differential(
            same, dict(same), winner_label="W", runner_up_label="R",
            winner_rate=1.0, runner_up_rate=1.0,
        )
        assert "noise-level" in rep.headline

    def test_render_and_json_round_trip(self):
        import json

        rep = self.diff()
        text = rep.render()
        assert "W vs R (1.50x)" in text
        assert "gld_transactions" in text
        obj = json.loads(json.dumps(rep.to_json_obj()))
        assert obj["winner"] == "W"
        assert obj["deltas"][0]["improved"] is True

    def test_non_numeric_and_unshared_keys_skipped(self):
        from repro.obs.attribution import differential

        rep = differential(
            {"ipc": 1.0, "occupancy_limiter": "registers", "only_w": 1.0},
            {"ipc": 2.0, "occupancy_limiter": "smem"},
            winner_label="W", runner_up_label="R",
            winner_rate=1.0, runner_up_rate=1.0,
        )
        assert [d.counter for d in rep.deltas] == ["ipc"]
