"""MultiGridKernel tests: the section V application kernels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, StencilDefinitionError
from repro.gpusim.device import get_device
from repro.kernels.config import BlockConfig
from repro.kernels.multigrid import MultiGridKernel
from repro.stencils.applications import APPLICATIONS
from repro.stencils.reference import apply_expr

GRID = (256, 256, 64)
BLOCK = BlockConfig(32, 4, 1, 2)


def kernels_for(name, dtype="sp"):
    expr = APPLICATIONS[name]
    return (
        MultiGridKernel(expr, BLOCK, dtype, method="forward"),
        MultiGridKernel(expr, BLOCK, dtype, method="inplane"),
    )


class TestNumerics:
    @pytest.mark.parametrize("name", list(APPLICATIONS))
    @pytest.mark.parametrize("method", ["forward", "inplane"])
    def test_matches_reference(self, name, method, rng):
        expr = APPLICATIONS[name]
        plan = MultiGridKernel(expr, BLOCK, "sp", method=method)
        grids = [rng.random((10, 12, 14)).astype(np.float32) for _ in range(expr.n_grids)]
        refs = apply_expr(expr, grids)
        plan.validate_against(refs, plan.execute(*grids))

    def test_dp_precision(self, rng):
        expr = APPLICATIONS["poisson"]
        plan = MultiGridKernel(expr, BLOCK, "dp", method="inplane")
        grids = [rng.random((8, 8, 8)) for _ in range(2)]
        out = plan.execute(*grids)
        refs = apply_expr(expr, grids)
        np.testing.assert_allclose(out[0], refs[0], rtol=1e-12)

    def test_wrong_grid_count(self, rng):
        plan = MultiGridKernel(APPLICATIONS["div"], BLOCK)
        with pytest.raises(StencilDefinitionError):
            plan.execute(rng.random((8, 8, 8)))


class TestWorkloads:
    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            MultiGridKernel(APPLICATIONS["div"], BLOCK, method="sideways")

    def test_hyperthermia_traffic_mostly_method_independent(self, gtx580):
        """Section V-A: the coefficient volumes dominate and are loaded
        identically by both methods, capping the achievable speedup."""
        fwd, inp = kernels_for("hyperthermia")
        f = fwd.block_workload(gtx580, GRID).memory.load_transferred_bytes
        i = inp.block_workload(gtx580, GRID).memory.load_transferred_bytes
        assert abs(f - i) / f < 0.15

    def test_laplacian_traffic_differs_more_than_hyperthermia(self, gtx580):
        fwd_l, inp_l = kernels_for("laplacian")
        fwd_h, inp_h = kernels_for("hyperthermia")

        def rel_gap(fwd, inp):
            f = fwd.block_workload(gtx580, GRID).memory
            i = inp.block_workload(gtx580, GRID).memory
            fe = f.load_transferred_bytes + f.camped_bytes * 2
            ie = i.load_transferred_bytes + i.camped_bytes * 2
            return (fe - ie) / fe

        assert rel_gap(fwd_l, inp_l) > rel_gap(fwd_h, inp_h)

    def test_grad_has_three_store_regions(self, gtx580):
        _, inp = kernels_for("grad")
        lap_inp = kernels_for("laplacian")[1]
        g = inp.block_workload(gtx580, GRID)
        l = lap_inp.block_workload(gtx580, GRID)
        assert g.memory.store_transferred_bytes == pytest.approx(
            3 * l.memory.store_transferred_bytes
        )

    def test_div_loads_three_grids(self, gtx580):
        fwd, _ = kernels_for("div")
        lap = kernels_for("laplacian")[0]
        assert (
            fwd.block_workload(gtx580, GRID).memory.requested_load_bytes
            > 2.3 * lap.block_workload(gtx580, GRID).memory.requested_load_bytes
        )

    def test_forward_has_more_phases_than_inplane(self, gtx580):
        fwd, inp = kernels_for("laplacian")
        assert (
            fwd.block_workload(gtx580, GRID).memory.load_phases
            > inp.block_workload(gtx580, GRID).memory.load_phases
        )

    def test_halo_radius_from_expr(self):
        _, inp = kernels_for("upstream")
        assert inp.halo_radius() == 2

    def test_flops_include_inplane_updates(self):
        fwd, inp = kernels_for("laplacian")
        assert inp.flops_per_point() == fwd.flops_per_point() + 1  # one +z tap

    def test_simulation_end_to_end(self, paper_device):
        from repro.gpusim.executor import simulate

        _, inp = kernels_for("poisson")
        rep = simulate(inp, paper_device, GRID)
        assert rep.mpoints_per_s > 0
        assert 0 < rep.load_efficiency <= 1.0
