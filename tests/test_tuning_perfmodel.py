"""Paper performance-model tests (Eqns (6)-(14))."""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.device import get_device
from repro.gpusim.timing import TimingParams, params_for
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric
from repro.tuning.perfmodel import ModelInputs, PaperModel

GRID = (512, 512, 256)


def inputs_for(cfg, order=2, dtype="sp", device="gtx580"):
    dev = get_device(device)
    plan = make_kernel("inplane_fullslice", symmetric(order), BlockConfig(*cfg), dtype)
    return ModelInputs.from_plan(plan, dev, GRID)


class TestEquations:
    def test_eqn6_blocks(self):
        m = inputs_for((32, 4, 1, 4))
        blks = (m.lx * m.ly) / ((m.tx * m.rx) * (m.ty * m.ry))
        assert blks == 512 * 512 / (32 * 16)

    def test_eqn7_actblks_respects_all_limits(self):
        dev = get_device("gtx580")
        model = PaperModel(dev)
        m = inputs_for((32, 4, 1, 4))
        pred = model.predict(m)
        assert pred.act_blks >= 1
        assert pred.act_blks <= dev.max_blocks_per_sm
        assert pred.act_blks * m.warp_blk <= dev.max_warps_per_sm
        assert pred.act_blks * m.k_r * m.tx * m.ty <= dev.registers_per_sm

    def test_eqn8_stages(self):
        dev = get_device("gtx580")
        pred = PaperModel(dev).predict(inputs_for((32, 4, 1, 4)))
        blks = 512 * 512 / (32 * 16)
        assert pred.stages == math.ceil(blks / (dev.sm_count * pred.act_blks))

    def test_eqn9_remainder_bounded(self):
        pred = PaperModel(get_device("gtx580")).predict(inputs_for((32, 4, 1, 4)))
        assert 1 <= pred.rem_blks <= pred.act_blks

    def test_eqn10_memory_time_components(self):
        dev = get_device("gtx580")
        m = inputs_for((32, 4, 1, 4))
        pred = PaperModel(dev).predict(m)
        bw_sm = dev.measured_bandwidth_gbs * 1e9 / dev.sm_count
        expected = dev.dram_latency_cycles / dev.clock_hz + m.bytes_blk / bw_sm
        assert pred.t_m == pytest.approx(expected)

    def test_eqn11_compute_time(self):
        dev = get_device("gtx580")
        m = inputs_for((32, 4, 1, 4))
        pred = PaperModel(dev).predict(m)
        assert pred.t_c == pytest.approx(
            m.ops * m.rx * m.ry * m.warp_blk / dev.clock_hz
        )

    def test_unlaunchable_predicts_zero(self):
        dev = get_device("gtx580")
        m = ModelInputs(
            lx=512, ly=512, tx=1024, ty=1, rx=1, ry=1,
            k_r=63, k_s=0, ops=8, bytes_blk=1.0,
        )
        assert PaperModel(dev).predict(m).mpoints_per_s == 0.0


class TestModelBehaviour:
    def test_k_r_capped_at_architecture(self):
        m = inputs_for((32, 4, 4, 8), order=8)
        dev = get_device("gtx580")
        assert m.k_r <= dev.rules.max_regs_per_thread

    def test_spills_charged_as_bytes(self):
        small = inputs_for((32, 4, 1, 1), order=8)
        monster = inputs_for((32, 4, 4, 8), order=8)
        per_point_small = small.bytes_blk / (32 * 4)
        per_point_big = monster.bytes_blk / (32 * 4 * 32)
        assert per_point_big > per_point_small

    def test_more_bandwidth_more_performance(self):
        m = inputs_for((32, 4, 1, 4))
        fast = PaperModel(get_device("gtx580")).predict(m).mpoints_per_s
        slow = PaperModel(get_device("c2070")).predict(m).mpoints_per_s
        assert fast > slow

    def test_higher_order_predicted_slower(self):
        dev = get_device("gtx580")
        lo = PaperModel(dev).predict(inputs_for((32, 4, 1, 4), order=2))
        hi = PaperModel(dev).predict(inputs_for((32, 4, 1, 4), order=12))
        assert hi.mpoints_per_s < lo.mpoints_per_s

    def test_rank_correlation_with_simulator(self, gtx580):
        """The model's purpose is ranking: it must correlate strongly with
        the simulator over the feasible space (the property the section VI
        procedure relies on)."""
        from scipy.stats import spearmanr

        from repro.tuning.exhaustive import evaluate_configs, feasible_configs
        from repro.tuning.space import ParameterSpace

        spec = symmetric(2)
        build = lambda cfg: make_kernel("inplane_fullslice", spec, cfg)
        space = ParameterSpace()
        configs = feasible_configs(build, gtx580, GRID, space)
        sims = {e.config: e.mpoints_per_s for e in evaluate_configs(build, configs, gtx580, GRID)}
        model = PaperModel(gtx580)
        pairs = [
            (sims[cfg], model.predict(ModelInputs.from_plan(build(cfg), gtx580, GRID)).mpoints_per_s)
            for cfg in configs
            if cfg in sims
        ]
        rho = spearmanr([p[0] for p in pairs], [p[1] for p in pairs]).statistic
        assert rho > 0.7

    def test_predict_plan_convenience(self, gtx580):
        plan = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4))
        pred = PaperModel(gtx580).predict_plan(plan, GRID)
        assert pred.mpoints_per_s > 0


class TestSpillConstantSingleSource:
    """``ModelInputs.from_plan`` charges spills with the simulator's
    calibration constant — ``TimingParams.spill_bytes_per_reg`` — not a
    private copy, so a recalibration moves model and simulator together."""

    def spilling_plan(self):
        # rx=4, ry=8 at order 8 pushes regs/thread far over the cap.
        return make_kernel(
            "inplane_fullslice", symmetric(8), BlockConfig(32, 4, 4, 8)
        )

    def test_custom_params_rescale_spill_bytes(self, gtx580):
        plan = self.spilling_plan()
        workload = plan.block_workload(gtx580, GRID)
        cap = gtx580.rules.max_regs_per_thread
        spilled = workload.regs_per_thread - cap
        assert spilled > 0, "fixture must actually spill"
        base = ModelInputs.from_plan(plan, gtx580, GRID)
        default = params_for(gtx580)
        doubled = ModelInputs.from_plan(
            plan, gtx580, GRID,
            params=dataclasses.replace(
                default, spill_bytes_per_reg=2 * default.spill_bytes_per_reg
            ),
        )
        extra = spilled * workload.threads_per_block * default.spill_bytes_per_reg
        assert doubled.bytes_blk - base.bytes_blk == extra

    def test_default_matches_simulator_constant(self, gtx580):
        plan = self.spilling_plan()
        explicit = ModelInputs.from_plan(
            plan, gtx580, GRID, params=params_for(gtx580)
        )
        assert ModelInputs.from_plan(plan, gtx580, GRID) == explicit


class TestPredictBatchIdentity:
    """``predict_batch`` is bit-identical to ``predict`` per input —
    including every masked/degenerate row (satellite of the batch core)."""

    def assert_bitwise(self, device, inputs):
        model = PaperModel(device)
        got = model.predict_batch(inputs)
        assert got.dtype == np.float64
        for i, m in enumerate(inputs):
            want = model.predict(m).mpoints_per_s
            assert got[i] == want, (i, m)

    def test_default_space_sweep(self, paper_device):
        """Every feasible config of the default space, bit for bit."""
        from repro.tuning.exhaustive import feasible_configs

        build = lambda cfg: make_kernel("inplane_fullslice", symmetric(2), cfg)
        configs = feasible_configs(build, paper_device, GRID)
        inputs = [
            ModelInputs.from_plan(build(cfg), paper_device, GRID)
            for cfg in configs
        ]
        assert len(inputs) > 20  # the sweep must actually cover the space
        self.assert_bitwise(paper_device, inputs)

    def test_degenerate_rows(self, gtx580):
        degenerate = [
            # k_s == 0: "no shared memory" — the truthiness branch.
            ModelInputs(lx=512, ly=512, tx=32, ty=4, rx=1, ry=4,
                        k_r=20, k_s=0, ops=8.0, bytes_blk=4096.0),
            # k_s < 0: nonsensical but representable; must floor-divide
            # (→ unlaunchable) exactly like the scalar path, not clamp.
            ModelInputs(lx=512, ly=512, tx=32, ty=4, rx=1, ry=4,
                        k_r=20, k_s=-512, ops=8.0, bytes_blk=4096.0),
            # k_r == 0: exercises the max(1, ...) divisor guard (live row
            # — a zero register footprint never limits occupancy).
            ModelInputs(lx=512, ly=512, tx=32, ty=4, rx=1, ry=1,
                        k_r=0, k_s=1024, ops=8.0, bytes_blk=4096.0),
            # Huge k_r: register file admits no block.
            ModelInputs(lx=512, ly=512, tx=32, ty=4, rx=1, ry=1,
                        k_r=10**6, k_s=1024, ops=8.0, bytes_blk=4096.0),
            # warp_blk > max_warps_per_sm: warp limit admits no block.
            ModelInputs(lx=4096, ly=4096, tx=2048, ty=1, rx=1, ry=1,
                        k_r=1, k_s=0, ops=1.0, bytes_blk=64.0),
            # Giant smem footprint: smem limit admits no block.
            ModelInputs(lx=512, ly=512, tx=32, ty=4, rx=1, ry=1,
                        k_r=20, k_s=10**9, ops=8.0, bytes_blk=4096.0),
        ]
        scores = PaperModel(gtx580).predict_batch(degenerate)
        assert scores[0] > 0.0 and scores[2] > 0.0  # the live rows
        assert list(scores[[1, 3, 4, 5]]) == [0.0] * 4  # the masked rows
        self.assert_bitwise(gtx580, degenerate)

    def test_empty_input(self, gtx580):
        out = PaperModel(gtx580).predict_batch([])
        assert out.shape == (0,) and out.dtype == np.float64

    @settings(max_examples=60, deadline=None)
    @given(
        tx=st.sampled_from([16, 32, 64, 256, 1024, 2048]),
        ty=st.integers(min_value=1, max_value=32),
        rx=st.sampled_from([1, 2, 4]),
        ry=st.sampled_from([1, 2, 4, 8]),
        k_r=st.sampled_from([0, 1, 20, 63, 255, 10**5]),
        k_s=st.sampled_from([-4096, 0, 16, 1024, 49152, 10**8]),
        ops=st.floats(min_value=0.5, max_value=500.0),
        bytes_blk=st.floats(min_value=1.0, max_value=1e7),
        device=st.sampled_from(["gtx580", "gtx680", "c2070"]),
    )
    def test_property_batch_equals_scalar(
        self, tx, ty, rx, ry, k_r, k_s, ops, bytes_blk, device
    ):
        m = ModelInputs(
            lx=512, ly=512, tx=tx, ty=ty, rx=rx, ry=ry,
            k_r=k_r, k_s=k_s, ops=ops, bytes_blk=bytes_blk,
        )
        dev = get_device(device)
        model = PaperModel(dev)
        # Mix the probe row with a live row and a dead row so compression
        # actually reorders/partitions the batch around it.
        anchor_live = ModelInputs(
            lx=512, ly=512, tx=32, ty=4, rx=1, ry=4,
            k_r=20, k_s=1024, ops=8.0, bytes_blk=4096.0,
        )
        anchor_dead = ModelInputs(
            lx=512, ly=512, tx=32, ty=4, rx=1, ry=1,
            k_r=10**6, k_s=0, ops=8.0, bytes_blk=4096.0,
        )
        batch = model.predict_batch([anchor_live, m, anchor_dead])
        assert batch[0] == model.predict(anchor_live).mpoints_per_s
        assert batch[1] == model.predict(m).mpoints_per_s
        assert batch[2] == 0.0
