"""Paper performance-model tests (Eqns (6)-(14))."""

import math

import pytest

from repro.gpusim.device import get_device
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric
from repro.tuning.perfmodel import ModelInputs, PaperModel

GRID = (512, 512, 256)


def inputs_for(cfg, order=2, dtype="sp", device="gtx580"):
    dev = get_device(device)
    plan = make_kernel("inplane_fullslice", symmetric(order), BlockConfig(*cfg), dtype)
    return ModelInputs.from_plan(plan, dev, GRID)


class TestEquations:
    def test_eqn6_blocks(self):
        m = inputs_for((32, 4, 1, 4))
        blks = (m.lx * m.ly) / ((m.tx * m.rx) * (m.ty * m.ry))
        assert blks == 512 * 512 / (32 * 16)

    def test_eqn7_actblks_respects_all_limits(self):
        dev = get_device("gtx580")
        model = PaperModel(dev)
        m = inputs_for((32, 4, 1, 4))
        pred = model.predict(m)
        assert pred.act_blks >= 1
        assert pred.act_blks <= dev.max_blocks_per_sm
        assert pred.act_blks * m.warp_blk <= dev.max_warps_per_sm
        assert pred.act_blks * m.k_r * m.tx * m.ty <= dev.registers_per_sm

    def test_eqn8_stages(self):
        dev = get_device("gtx580")
        pred = PaperModel(dev).predict(inputs_for((32, 4, 1, 4)))
        blks = 512 * 512 / (32 * 16)
        assert pred.stages == math.ceil(blks / (dev.sm_count * pred.act_blks))

    def test_eqn9_remainder_bounded(self):
        pred = PaperModel(get_device("gtx580")).predict(inputs_for((32, 4, 1, 4)))
        assert 1 <= pred.rem_blks <= pred.act_blks

    def test_eqn10_memory_time_components(self):
        dev = get_device("gtx580")
        m = inputs_for((32, 4, 1, 4))
        pred = PaperModel(dev).predict(m)
        bw_sm = dev.measured_bandwidth_gbs * 1e9 / dev.sm_count
        expected = dev.dram_latency_cycles / dev.clock_hz + m.bytes_blk / bw_sm
        assert pred.t_m == pytest.approx(expected)

    def test_eqn11_compute_time(self):
        dev = get_device("gtx580")
        m = inputs_for((32, 4, 1, 4))
        pred = PaperModel(dev).predict(m)
        assert pred.t_c == pytest.approx(
            m.ops * m.rx * m.ry * m.warp_blk / dev.clock_hz
        )

    def test_unlaunchable_predicts_zero(self):
        dev = get_device("gtx580")
        m = ModelInputs(
            lx=512, ly=512, tx=1024, ty=1, rx=1, ry=1,
            k_r=63, k_s=0, ops=8, bytes_blk=1.0,
        )
        assert PaperModel(dev).predict(m).mpoints_per_s == 0.0


class TestModelBehaviour:
    def test_k_r_capped_at_architecture(self):
        m = inputs_for((32, 4, 4, 8), order=8)
        dev = get_device("gtx580")
        assert m.k_r <= dev.rules.max_regs_per_thread

    def test_spills_charged_as_bytes(self):
        small = inputs_for((32, 4, 1, 1), order=8)
        monster = inputs_for((32, 4, 4, 8), order=8)
        per_point_small = small.bytes_blk / (32 * 4)
        per_point_big = monster.bytes_blk / (32 * 4 * 32)
        assert per_point_big > per_point_small

    def test_more_bandwidth_more_performance(self):
        m = inputs_for((32, 4, 1, 4))
        fast = PaperModel(get_device("gtx580")).predict(m).mpoints_per_s
        slow = PaperModel(get_device("c2070")).predict(m).mpoints_per_s
        assert fast > slow

    def test_higher_order_predicted_slower(self):
        dev = get_device("gtx580")
        lo = PaperModel(dev).predict(inputs_for((32, 4, 1, 4), order=2))
        hi = PaperModel(dev).predict(inputs_for((32, 4, 1, 4), order=12))
        assert hi.mpoints_per_s < lo.mpoints_per_s

    def test_rank_correlation_with_simulator(self, gtx580):
        """The model's purpose is ranking: it must correlate strongly with
        the simulator over the feasible space (the property the section VI
        procedure relies on)."""
        from scipy.stats import spearmanr

        from repro.tuning.exhaustive import evaluate_configs, feasible_configs
        from repro.tuning.space import ParameterSpace

        spec = symmetric(2)
        build = lambda cfg: make_kernel("inplane_fullslice", spec, cfg)
        space = ParameterSpace()
        configs = feasible_configs(build, gtx580, GRID, space)
        sims = {e.config: e.mpoints_per_s for e in evaluate_configs(build, configs, gtx580, GRID)}
        model = PaperModel(gtx580)
        pairs = [
            (sims[cfg], model.predict(ModelInputs.from_plan(build(cfg), gtx580, GRID)).mpoints_per_s)
            for cfg in configs
            if cfg in sims
        ]
        rho = spearmanr([p[0] for p in pairs], [p[1] for p in pairs]).statistic
        assert rho > 0.7

    def test_predict_plan_convenience(self, gtx580):
        plan = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4))
        pred = PaperModel(gtx580).predict_plan(plan, GRID)
        assert pred.mpoints_per_s > 0
