"""Trial-archive tests: schema, determinism contract, reconciliation.

The load-bearing guarantees (docs/OBSERVABILITY.md "Explain & landscape
export"):

* the archive is **byte-identical at any ``--jobs`` count**, clean or
  under a seeded fault storm, and a ``--resume`` replays to the same
  bytes at any jobs count;
* archived ``counters`` reconcile **exactly** with a fresh
  :func:`repro.gpusim.executor.simulate` of the same config — the
  archive re-derives, it never copies a perturbed measurement;
* with no archive installed, tuning results are untouched
  (zero perturbation).
"""

import json

import pytest

from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.gpusim.faults import FaultPlan
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.obs.archive import (
    ArchiveError,
    ArchiveRecord,
    TrialArchive,
    archive_stream,
    current_archive,
    derive_record,
    disable_archive_in_process,
    main as archive_main,
    read_archive,
    validate_archive,
)
from repro.obs.events import read_events
from repro.stencils.spec import symmetric
from repro.tuning.evaluator import STATUS_OK, TrialOutcome
from repro.tuning.exhaustive import exhaustive_tune
from repro.tuning.parallel import FamilyKernelBuilder, ParallelEvaluator
from repro.tuning.robust import RobustTuningSession
from repro.tuning.space import ParameterSpace

GRID = (64, 64, 32)
DEVICE = "gtx580"
SPACE = ParameterSpace(
    tx_values=(16, 32), ty_values=(2, 4), rx_values=(1, 2), ry_values=(1,)
)
STORM = "seed=7,launch=0.1,hang=0.02,throttle=0.05"


def build(cfg: BlockConfig):
    return make_kernel("inplane_fullslice", symmetric(2), cfg)


def archive_tune(path, *, jobs=None, session="t"):
    device = get_device(DEVICE)
    with TrialArchive(path, session=session) as arc, archive_stream(arc):
        if jobs is None:
            result = exhaustive_tune(build, device, GRID, SPACE)
        else:
            fbuild = FamilyKernelBuilder("inplane_fullslice", 2, "sp")
            with ParallelEvaluator(device, jobs=jobs, worker_cap=4) as ev:
                result = exhaustive_tune(
                    fbuild, device, GRID, SPACE, evaluator=ev
                )
    return result


class TestSchemaRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "a.jsonl"
        archive_tune(path)
        header, records = read_archive(path, strict=True)
        assert header["archive"] == "repro.obs.archive"
        assert header["version"] == 1
        assert header["session"] == "t"
        assert records, "an exhaustive sweep must archive every config"
        for r in records:
            clone = ArchiveRecord.from_obj(json.loads(json.dumps(r.to_obj())))
            assert clone == r

    def test_records_cover_every_evaluated_config(self, tmp_path):
        path = tmp_path / "a.jsonl"
        result = archive_tune(path)
        _header, records = read_archive(path)
        measured = [r for r in records if r.measured]
        assert len(measured) == len(result.entries)
        assert {r.label for r in measured} == {
            e.config.label() for e in result.entries
        }

    def test_measured_record_carries_all_derivations(self, tmp_path):
        path = tmp_path / "a.jsonl"
        archive_tune(path)
        record = next(r for r in read_archive(path)[1] if r.measured)
        assert record.predicted is not None and record.predicted > 0
        assert record.estimate is not None
        assert record.estimate["mpoints_per_s"] > 0
        assert record.estimate_error is None
        assert record.counters is not None
        assert record.counters["gld_transactions"] > 0

    def test_torn_final_line_tolerated_unless_strict(self, tmp_path):
        path = tmp_path / "a.jsonl"
        archive_tune(path)
        whole = read_archive(path)[1]
        path.write_text(path.read_text() + '{"config": [16, 2')
        assert len(read_archive(path)[1]) == len(whole)
        with pytest.raises(ArchiveError, match="corrupt"):
            read_archive(path, strict=True)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"stream": "repro.obs.events", "version": 1}\n')
        with pytest.raises(ArchiveError, match="header"):
            read_archive(path)

    def test_bad_status_rejected(self, tmp_path):
        path = tmp_path / "a.jsonl"
        archive_tune(path)
        lines = path.read_text().splitlines()
        obj = json.loads(lines[1])
        obj["status"] = "exploded"
        path.write_text("\n".join([lines[0], json.dumps(obj)]) + "\n")
        with pytest.raises(ArchiveError, match="status"):
            read_archive(path)

    def test_validator_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.jsonl"
        archive_tune(good)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert archive_main([str(good)]) == 0
        assert "ok" in capsys.readouterr().out
        assert archive_main([str(good), str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
        assert validate_archive(good) == len(read_archive(good)[1])


class TestDeterminismContract:
    def test_jobs_1_vs_4_byte_identical(self, tmp_path):
        p1, p4 = tmp_path / "j1.jsonl", tmp_path / "j4.jsonl"
        archive_tune(p1, jobs=1)
        archive_tune(p4, jobs=4)
        assert p1.read_bytes() == p4.read_bytes()

    def test_storm_jobs_and_resume_byte_identical(self, tmp_path):
        faults = FaultPlan.parse(STORM)
        device = get_device(DEVICE)
        fbuild = FamilyKernelBuilder("inplane_fullslice", 2, "sp")

        def storm(jobs, name, *, resume=False, journal="journal.jsonl"):
            path = tmp_path / name
            session = RobustTuningSession(
                device, GRID, faults=faults,
                journal_path=tmp_path / journal, resume=resume,
                jobs=jobs, worker_cap=4,
                archive_path=path, session_key="storm",
            )
            session.run(fbuild, method="exhaustive", space=SPACE)
            return path.read_bytes()

        fresh1 = storm(1, "s1.jsonl", journal="journal1.jsonl")
        fresh4 = storm(4, "s4.jsonl", journal="journal4.jsonl")
        assert fresh1 == fresh4
        resumed1 = storm(1, "r1.jsonl", resume=True, journal="journal1.jsonl")
        resumed4 = storm(4, "r4.jsonl", resume=True, journal="journal1.jsonl")
        assert resumed1 == resumed4
        # Fresh vs resumed may differ only in the honest `replayed` flag.
        fresh = [json.loads(x) for x in fresh1.decode().splitlines()[1:]]
        resumed = [json.loads(x) for x in resumed1.decode().splitlines()[1:]]
        assert len(fresh) == len(resumed)
        for f, r in zip(fresh, resumed):
            diff = {k for k in f if f[k] != r[k]}
            assert diff <= {"replayed"}

    def test_no_archive_means_zero_perturbation(self, tmp_path):
        device = get_device(DEVICE)
        with_archive = archive_tune(tmp_path / "a.jsonl")
        plain = exhaustive_tune(build, device, GRID, SPACE)
        assert plain.best.config == with_archive.best.config
        assert plain.best.mpoints_per_s == with_archive.best.mpoints_per_s
        assert [e.mpoints_per_s for e in plain.entries] == [
            e.mpoints_per_s for e in with_archive.entries
        ]

    def test_workers_never_capture(self):
        disable_archive_in_process()
        assert current_archive() is None


class TestReconciliation:
    def test_archived_counters_match_fresh_simulation_exactly(self, tmp_path):
        path = tmp_path / "a.jsonl"
        archive_tune(path)
        for record in read_archive(path)[1]:
            if not record.measured:
                continue
            report = simulate(build(BlockConfig(*record.config)), DEVICE, GRID)
            assert record.counters == report.counters.as_dict()

    def test_faulted_storm_counters_still_reconcile(self, tmp_path):
        # Fault injection perturbs measurement, never the derivations:
        # even records measured under a storm archive clean-launch
        # counters that a fault-free resimulation reproduces bit-for-bit.
        faults = FaultPlan.parse(STORM)
        device = get_device(DEVICE)
        fbuild = FamilyKernelBuilder("inplane_fullslice", 2, "sp")
        path = tmp_path / "storm.jsonl"
        session = RobustTuningSession(
            device, GRID, faults=faults, journal_path=tmp_path / "j.jsonl",
            archive_path=path, session_key="storm",
        )
        session.run(fbuild, method="exhaustive", space=SPACE)
        records = read_archive(path)[1]
        assert any(r.attempts > 1 for r in records), "storm should retry"
        for record in records:
            if record.counters is None:
                continue
            report = simulate(build(BlockConfig(*record.config)), DEVICE, GRID)
            assert record.counters == report.counters.as_dict()

    def test_derive_record_is_pure_of_measurement(self):
        device = get_device(DEVICE)
        cfg = BlockConfig(32, 4, 1, 1)
        live = TrialOutcome(config=cfg, status=STATUS_OK, mpoints_per_s=123.0)
        replayed = TrialOutcome(
            config=cfg, status=STATUS_OK, mpoints_per_s=123.0, replayed=True
        )
        a = derive_record(live, build=build, device=device, grid_shape=GRID)
        b = derive_record(replayed, build=build, device=device, grid_shape=GRID)
        assert a.counters == b.counters
        assert a.predicted == b.predicted
        assert a.estimate == b.estimate


class TestArchiveEvents:
    def test_session_emits_archive_start_and_finished(self, tmp_path):
        device = get_device(DEVICE)
        fbuild = FamilyKernelBuilder("inplane_fullslice", 2, "sp")
        archive = tmp_path / "a.jsonl"
        events = tmp_path / "e.jsonl"
        session = RobustTuningSession(
            device, GRID, journal_path=tmp_path / "j.jsonl",
            archive_path=archive, events_path=events, session_key="ev",
        )
        session.run(fbuild, method="exhaustive", space=SPACE)
        stream = read_events(events, strict=True)[1]
        names = [e.name for e in stream]
        assert "archive.start" in names
        assert "archive.finished" in names
        finished = next(e for e in stream if e.name == "archive.finished")
        assert dict(finished.fields)["records"] == len(
            read_archive(archive)[1]
        )
