"""Tiling coverage validation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.kernels.config import BlockConfig
from repro.kernels.validate import (
    check_exact_cover,
    divides_evenly,
    halo_fits,
    tile_origins,
)


class TestTileOrigins:
    def test_count(self):
        origins = tile_origins(64, 32, BlockConfig(16, 4, 2, 2))
        assert len(origins) == 2 * 4

    def test_first_origin_is_zero(self):
        assert tile_origins(64, 64, BlockConfig(16, 16))[0] == (0, 0)


class TestExactCover:
    def test_exact_tiling(self):
        check_exact_cover(64, 32, BlockConfig(16, 8))

    def test_partial_tiles_still_cover_once(self):
        check_exact_cover(50, 30, BlockConfig(16, 8))

    @settings(max_examples=30, deadline=None)
    @given(
        lx=st.integers(1, 64),
        ly=st.integers(1, 48),
        tx=st.integers(1, 4).map(lambda v: 8 * v),
        ty=st.integers(1, 8),
        ry=st.integers(1, 4),
    )
    def test_cover_property(self, lx, ly, tx, ty, ry):
        """Axis-aligned ceil tiling always covers each point exactly once."""
        check_exact_cover(lx, ly, BlockConfig(tx, ty, 1, ry))


class TestPredicates:
    def test_divides_evenly(self):
        assert divides_evenly(512, 512, BlockConfig(32, 4, 1, 4))
        assert not divides_evenly(500, 512, BlockConfig(32, 4, 1, 4))

    def test_halo_fits(self):
        assert halo_fits(9, 9, 9, 4)
        assert not halo_fits(8, 9, 9, 4)
