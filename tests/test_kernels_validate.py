"""Tiling coverage validation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.kernels.config import BlockConfig
from repro.kernels.validate import (
    check_exact_cover,
    divides_evenly,
    halo_fits,
    tile_origins,
)


class TestTileOrigins:
    def test_count(self):
        origins = tile_origins(64, 32, BlockConfig(16, 4, 2, 2))
        assert len(origins) == 2 * 4

    def test_first_origin_is_zero(self):
        assert tile_origins(64, 64, BlockConfig(16, 16))[0] == (0, 0)


class TestExactCover:
    def test_exact_tiling(self):
        check_exact_cover(64, 32, BlockConfig(16, 8))

    def test_partial_tiles_still_cover_once(self):
        check_exact_cover(50, 30, BlockConfig(16, 8))

    @settings(max_examples=30, deadline=None)
    @given(
        lx=st.integers(1, 64),
        ly=st.integers(1, 48),
        tx=st.integers(1, 4).map(lambda v: 8 * v),
        ty=st.integers(1, 8),
        ry=st.integers(1, 4),
    )
    def test_cover_property(self, lx, ly, tx, ty, ry):
        """Axis-aligned ceil tiling always covers each point exactly once."""
        check_exact_cover(lx, ly, BlockConfig(tx, ty, 1, ry))


class TestPredicates:
    def test_divides_evenly(self):
        assert divides_evenly(512, 512, BlockConfig(32, 4, 1, 4))
        assert not divides_evenly(500, 512, BlockConfig(32, 4, 1, 4))

    def test_halo_fits(self):
        assert halo_fits(9, 9, 9, 4)
        assert not halo_fits(8, 9, 9, 4)


class TestEdgeCases:
    """Edge cases added with the static-analysis framework: degenerate
    blocks, stencil reach beyond the tile, and the rule-id contract of
    check_exact_cover's failure modes."""

    @pytest.mark.parametrize("bad", [(0, 4), (32, 0), (32, 4, 0, 1), (32, 4, 1, -1)])
    def test_zero_sized_blocks_rejected_with_rule(self, bad):
        with pytest.raises(ConfigurationError) as err:
            BlockConfig(*bad)
        assert err.value.rule == "CFG-POSITIVE"

    def test_non_divisible_grid_still_covers_exactly(self):
        # Partial edge tiles clip against the plane; coverage stays exact.
        check_exact_cover(500, 300, BlockConfig(32, 4, 1, 4))
        assert not divides_evenly(500, 300, BlockConfig(32, 4, 1, 4))

    def test_register_tiled_plans_cover_exactly(self):
        for rx, ry in ((2, 1), (1, 8), (4, 4)):
            check_exact_cover(512, 512, BlockConfig(16, 4, rx, ry))

    def test_radius_larger_than_tile_is_a_halo_problem_not_a_cover_problem(self):
        # A radius-8 stencil on an 8-wide tile covers fine; the halo
        # predicate is what refuses it on a small grid.
        block = BlockConfig(8, 1)
        check_exact_cover(64, 64, block)
        assert not halo_fits(8, 64, 64, 8)
        assert halo_fits(17, 64, 64, 8)

    def test_single_point_plane(self):
        check_exact_cover(1, 1, BlockConfig(16, 16))

    def test_overlap_rule_id(self, monkeypatch):
        import repro.kernels.validate as validate

        monkeypatch.setattr(
            validate, "tile_origins", lambda lx, ly, block: [(0, 0), (0, 0)]
        )
        with pytest.raises(ConfigurationError) as err:
            validate.check_exact_cover(16, 8, BlockConfig(16, 8))
        assert err.value.rule == "COV-TILE-OVERLAP"

    def test_gap_rule_id(self, monkeypatch):
        import repro.kernels.validate as validate

        monkeypatch.setattr(
            validate, "tile_origins", lambda lx, ly, block: [(0, 0)]
        )
        with pytest.raises(ConfigurationError) as err:
            validate.check_exact_cover(32, 8, BlockConfig(16, 8))
        assert err.value.rule == "COV-TILE-GAP"
