"""Codegen-time estimator tests: exact against the counters, pure under faults.

Three properties carry the subsystem:

1. **Exactness by construction** — the estimate for any (plan, device,
   grid) equals the counters the simulated profiler derives for the same
   launch, bit for bit, because both price the identical reconstructed
   workload.
2. **Purity under fault injection** — faults perturb the *measurement*
   (derated time, retries), never the prediction: the estimate from a
   plan's IR is unchanged by any fault plan, mirroring the regression
   sentinel's skip-faulted contract.
3. **Whole-trajectory reconciliation** — every record of
   ``BENCH_profile.json`` reconciles, which ``tools/check.py`` enforces
   as a repository gate.
"""

import json

import pytest

from repro.analysis.estimate import (
    EXACT_FIELDS,
    HEADER_PREFIX,
    estimate_ir,
    estimate_plan,
    parse_header,
    prediction_header,
    reconcile_profile,
)
from repro.analysis.planir import lower_plan
from repro.codegen import (
    generate_hip_kernel,
    generate_kernel,
    generate_opencl_kernel,
)
from repro.errors import ResourceLimitError
from repro.gpusim.executor import DeviceExecutor, simulate
from repro.gpusim.faults import FaultPlan
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import InPlaneKernel
from repro.kernels.nvstencil import NvStencilKernel
from repro.stencils.spec import symmetric

GRID = (512, 512, 256)


def make(order=4, block=(32, 4, 2, 2), dtype="sp", variant="fullslice"):
    return InPlaneKernel(symmetric(order), BlockConfig(*block), dtype, variant=variant)


class TestExactness:
    @pytest.mark.parametrize("plan", [
        make(),
        make(order=8, dtype="dp", variant="horizontal"),
        make(order=2, variant="vertical"),
        NvStencilKernel(symmetric(4), BlockConfig(32, 8)),
    ], ids=lambda p: p.name)
    def test_estimate_equals_profiler_counters(self, plan, paper_device):
        est = estimate_plan(plan, paper_device, GRID)
        rep = simulate(plan, paper_device, GRID)
        for field in EXACT_FIELDS:
            assert getattr(est, field) == rep.counters[field], field
        assert est.limiter == rep.counters.occupancy_limiter
        assert est.mpoints_per_s == rep.mpoints_per_s
        assert est.total_cycles == rep.total_cycles

    def test_estimate_from_ir_equals_estimate_from_plan(self):
        plan = make(order=6)
        assert estimate_ir(lower_plan(plan, GRID)) == estimate_plan(plan)

    def test_unlaunchable_plan_raises_like_the_executor(self):
        plan = make(block=(64, 32))  # 2048 threads > device limit
        with pytest.raises(ResourceLimitError):
            estimate_plan(plan, "gtx580")


class TestFaultPurity:
    """Satellite: the estimator is a pure function of the plan."""

    def test_throttle_perturbs_measurement_not_prediction(self, gtx580):
        plan = make()
        est = estimate_plan(plan, gtx580, GRID)
        clean = DeviceExecutor(gtx580).run(plan, GRID)
        faulted = DeviceExecutor(
            gtx580, faults=FaultPlan(throttle_rate=1.0)
        ).run(plan, GRID)
        # The fault derated the measured rate...
        assert faulted.mpoints_per_s < clean.mpoints_per_s
        assert faulted.meta["faults"][0]["kind"] == "throttle"
        # ...but the counters and the estimate describe the clean launch.
        for field in EXACT_FIELDS:
            assert getattr(est, field) == faulted.counters[field], field
        assert est.mpoints_per_s == clean.mpoints_per_s

    def test_estimate_ignores_any_fault_plan(self, gtx580):
        # Same plan, estimate recomputed after a faulted run: identical.
        plan = make(order=8, dtype="dp")
        before = estimate_plan(plan, gtx580, GRID)
        DeviceExecutor(gtx580, faults=FaultPlan(ecc_rate=1.0)).run(plan, GRID)
        assert estimate_plan(plan, gtx580, GRID) == before


class TestPredictionHeader:
    @pytest.mark.parametrize("emit", [
        generate_kernel, generate_opencl_kernel, generate_hip_kernel,
    ], ids=lambda e: e.__name__)
    def test_every_backend_carries_a_parsable_header(self, emit):
        plan = make()
        src = emit(plan)
        payload = parse_header(src.text)
        assert payload is not None
        assert payload["kernel"] == src.ir.kernel
        assert payload["device"] == "gtx580"

    def test_header_values_match_the_estimate(self):
        plan = make(order=8)
        payload = parse_header(generate_kernel(plan).text)
        est = estimate_plan(plan, "gtx580")
        for field in EXACT_FIELDS:
            assert payload[field] == getattr(est, field), field
        assert payload["limiter"] == est.limiter

    def test_header_round_trip_is_full_precision(self):
        ir = lower_plan(make(order=6, dtype="dp"))
        line = prediction_header(ir)
        assert line.startswith(HEADER_PREFIX)
        payload = json.loads(line[len(HEADER_PREFIX):])
        assert payload == parse_header(line)

    def test_unlaunchable_ir_yields_unavailable_header(self):
        ir = lower_plan(make(block=(64, 32)))
        line = prediction_header(ir)
        payload = parse_header(line)
        assert "unavailable" in payload
        assert payload["kernel"] == ir.kernel

    def test_no_header_parses_to_none(self):
        assert parse_header("int main() { return 0; }") is None

    def test_tampered_header_raises(self):
        with pytest.raises(ValueError):
            parse_header(f"{HEADER_PREFIX} {{truncated")


class TestReconcile:
    def test_bench_profile_reconciles_exactly(self):
        report = reconcile_profile("BENCH_profile.json", verify_sources=False)
        assert report.total == report.compared + report.skipped_faulted
        assert report.compared > 0
        assert report.failures == ()
        assert report.errors == ()
        assert report.exit_code() == 0

    def test_faulted_records_are_skipped(self, tmp_path, gtx580):
        plan = make(order=2, block=(32, 4, 1, 4))
        rep = simulate(plan, gtx580, (64, 64, 32))
        from repro.obs.telemetry import TelemetryCollector, record_from_report
        import dataclasses

        clean = record_from_report(rep, order=2, source="test")
        faulted = dataclasses.replace(
            clean,
            mpoints_per_s=clean.mpoints_per_s / 7.0,  # a derated measurement
            faulted=True,
            source="test-faulted",
        )
        collector = TelemetryCollector()
        collector.add(clean)
        collector.add(faulted)
        path = tmp_path / "profile.json"
        collector.write(path)

        report = reconcile_profile(path, verify_sources=False)
        assert report.total == 2
        assert report.compared == 1
        assert report.skipped_faulted == 1
        assert report.exit_code() == 0

    def test_source_verification_leg_runs(self, tmp_path, gtx580):
        plan = make(order=2, block=(32, 4, 1, 4))
        rep = simulate(plan, gtx580, (64, 64, 32))
        from repro.obs.telemetry import TelemetryCollector

        collector = TelemetryCollector()
        collector.add_report(rep, order=2, source="test")
        path = tmp_path / "profile.json"
        collector.write(path)
        report = reconcile_profile(path, verify_sources=True)
        assert report.source_failures == ()
        assert report.exit_code() == 0

    def test_report_renders_and_serializes(self):
        report = reconcile_profile("BENCH_profile.json", verify_sources=False)
        text = report.render()
        assert "0 counter mismatch(es)" in text
        obj = report.to_json_obj()
        assert obj["compared"] == report.compared
        assert obj["failures"] == []
