"""Live monitoring: stream byte-identity, ``repro top``, crash reports.

The two headline acceptance properties of the event plane:

* a seeded storm campaign writes a **byte-identical** event stream at
  any ``--jobs`` (trial events are derived from outcomes in input order,
  volatile pool events never reach the file);
* ``repro top --json`` reports trial/retry/quarantine counts that
  exactly match the session's journal — the monitor never disagrees
  with what a ``--resume`` would replay.
"""

import json

import pytest

from repro.cli import main
from repro.gpusim.faults import FaultPlan
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.obs.live import (
    SessionSnapshot,
    follow_session,
    read_journal_counts,
    render_snapshot,
    snapshot_session,
)
from repro.stencils.spec import symmetric
from repro.tuning.robust import RetryPolicy, RobustTuningSession
from repro.tuning.space import ParameterSpace

GRID = (128, 128, 32)
SPACE = ParameterSpace(
    tx_values=(16, 32), ty_values=(2, 4), rx_values=(1,), ry_values=(1, 2)
)
STORM = dict(launch_failure_rate=0.08, hang_rate=0.04, throttle_rate=0.06)


def build(cfg: BlockConfig):
    return make_kernel("inplane_fullslice", symmetric(2), cfg)


def run_storm_session(gtx580, tmp_path, tag, jobs=None):
    journal = tmp_path / f"{tag}.journal"
    events = tmp_path / f"{tag}.events"
    session = RobustTuningSession(
        gtx580, GRID,
        faults=FaultPlan(seed=7, **STORM),
        policy=RetryPolicy(max_retries=6),
        journal_path=journal,
        session_key="storm-live-test",
        events_path=events,
        jobs=jobs,
        worker_cap=4,
    )
    try:
        sres = session.run(build, method="exhaustive", space=SPACE)
    finally:
        session.close()
    return journal, events, sres


class TestStreamByteIdentity:
    def test_jobs_do_not_change_the_stream(self, gtx580, tmp_path):
        # The parallel engine's guarantee is jobs-count invariance
        # (jobs=1 matches jobs=4; per-config fault streams mean jobs=None
        # is a *different, also deterministic* campaign — see
        # RobustTuningSession's jobs docstring), and the event stream
        # must inherit it byte for byte.
        _, one, _ = run_storm_session(gtx580, tmp_path, "one", jobs=1)
        _, four, _ = run_storm_session(gtx580, tmp_path, "four", jobs=4)
        assert one.read_bytes() == four.read_bytes()
        # And each lane is individually reproducible.
        _, one2, _ = run_storm_session(gtx580, tmp_path, "one2", jobs=1)
        _, serial, _ = run_storm_session(gtx580, tmp_path, "serial")
        _, serial2, _ = run_storm_session(gtx580, tmp_path, "serial2")
        assert one.read_bytes() == one2.read_bytes()
        assert serial.read_bytes() == serial2.read_bytes()

    def test_stream_validates_and_has_no_volatile_events(self, gtx580, tmp_path):
        from repro.obs.events import read_events, validate_stream

        _, events, sres = run_storm_session(gtx580, tmp_path, "v", jobs=2)
        count = validate_stream(events)
        assert count > 0
        _header, parsed = read_events(events)
        names = {e.name for e in parsed}
        assert not any(n.startswith("pool.") for n in names)
        assert "session.start" in names and "session.finished" in names
        # One terminal trial event per evaluated configuration.
        terminal = [
            e for e in parsed
            if e.name in ("trial.measured", "trial.rejected",
                          "trial.quarantined")
        ]
        assert len(terminal) == len(list(SPACE.candidates()))
        quarantined = [e for e in parsed if e.name == "trial.quarantined"]
        assert len(quarantined) == sres.stats["quarantined_configs"]


class TestTopMatchesJournal:
    def _journal_truth(self, journal):
        """Independent tally straight off the journal records."""
        counts = {"ok": 0, "rejected_static": 0, "rejected_simulated": 0,
                  "quarantined": 0}
        retries = 0
        for line in journal.read_text().splitlines()[1:]:
            obj = json.loads(line)
            counts[obj["status"]] += 1
            retries += obj.get("attempts", 1) - 1
        return counts, retries

    def test_top_json_counts_equal_journal(self, gtx580, tmp_path, capsys):
        journal, events, sres = run_storm_session(gtx580, tmp_path, "t")
        truth, retries = self._journal_truth(journal)

        assert main([
            "-q", "top", "--journal", str(journal), "--events", str(events),
            "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trials"] == truth
        assert doc["retries"] == retries
        assert doc["completed"] == sum(truth.values())
        assert doc["journal_trials"] == sum(truth.values())
        assert doc["session"] == "storm-live-test"
        assert doc["finished"] is True
        assert doc["crashed"] is None
        assert doc["source"] == "journal+events"
        assert doc["sweep"] == {
            "method": "exhaustive",
            "space_size": len(list(SPACE.candidates())),
        }
        # the monitor agrees with the session's own accounting too
        assert doc["retries"] == sres.stats["retries"]
        assert doc["trials"]["quarantined"] == sres.stats[
            "quarantined_configs"
        ]

    def test_top_panel_renders_without_tty(self, gtx580, tmp_path, capsys):
        journal, events, _ = run_storm_session(gtx580, tmp_path, "p")
        assert main([
            "-q", "top", "--journal", str(journal), "--events", str(events),
        ]) == 0
        out = capsys.readouterr().out
        assert "storm-live-test [finished]" in out
        assert "ladder  : exhaustive (won)" in out
        assert "best    :" in out

    def test_top_without_sources_exits_two(self):
        assert main(["-q", "top"]) == 2

    def test_snapshot_tolerates_in_flight_torn_tails(self, gtx580, tmp_path):
        journal, events, _ = run_storm_session(gtx580, tmp_path, "torn")
        # Chop both files mid-line: the shape `repro top` sees when it
        # polls while the session is writing (or after a kill -9).
        for path in (journal, events):
            data = path.read_text().splitlines()
            path.write_text("\n".join(data[:-1]) + '\n{"config": [16,')
        snap = snapshot_session(journal, events)
        assert snap.completed > 0
        assert snap.session == "storm-live-test"
        assert not snap.finished  # the finish line was torn away
        render_snapshot(snap)  # renders without raising


class TestCrashForensics:
    ARGS = [
        "-q", "tune", "--kernel", "inplane_fullslice", "--order", "2",
        "--device", "gtx580", "--grid", "64,64,32", "--method", "auto",
        "--no-register-blocking", "--retries", "0",
        "--faults", "launch=1.0",
    ]

    def test_failed_session_leaves_crash_report_and_top_sees_it(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "c.journal"
        events = tmp_path / "c.events"
        assert main(self.ARGS + [
            "--journal", str(journal), "--events", str(events),
        ]) == 1

        report_path = events.with_name(events.name + ".crash.json")
        report = json.loads(report_path.read_text())
        assert report["report"] == "repro.obs.flight"
        assert report["reason"] == "TuningError"
        assert report["error"]["type"] == "TuningError"
        assert any(e["event"] == "session.crash" for e in report["events"])

        capsys.readouterr()
        assert main([
            "-q", "top", "--journal", str(journal), "--events", str(events),
            "--json",
        ]) == 1  # a crashed session is signalled via the exit code
        doc = json.loads(capsys.readouterr().out)
        assert "all tuning tiers failed" in doc["crashed"]
        assert doc["tiers"]  # the ladder was walked before the crash
        assert all(state == "failed" for _tier, state in doc["tiers"])


class TestFollow:
    def test_follow_stops_on_finish_and_computes_throughput(
        self, gtx580, tmp_path
    ):
        journal, events, _ = run_storm_session(gtx580, tmp_path, "f")
        panels, ticks = [], iter(range(100))
        snaps = list(follow_session(
            journal, events, interval_s=0.0,
            emit=panels.append, clock=lambda: float(next(ticks)),
            sleep=lambda _s: None,
        ))
        assert len(snaps) == 1  # finished session: one snapshot, no loop
        assert snaps[0].finished
        assert "finished" in panels[0]

    def test_follow_respects_refresh_budget(self, tmp_path):
        # No artifacts at all: an endless "session not started" wait,
        # bounded only by the refresh budget.
        panels = []
        snaps = list(follow_session(
            tmp_path / "absent.journal", None, interval_s=0.0,
            refreshes=3, emit=panels.append, clock=lambda: 0.0,
            sleep=lambda _s: None,
        ))
        assert len(snaps) == 3 == len(panels)
        assert all(s.completed == 0 for s in snaps)

    def test_render_empty_snapshot(self):
        text = render_snapshot(SessionSnapshot())
        assert "? [running]" in text
        assert "0 trial(s)" in text

    def test_journal_reader_skips_foreign_lines(self, tmp_path):
        path = tmp_path / "j.journal"
        path.write_text(
            '{"journal": "repro.tuning.robust", "version": 1, '
            '"session": "k"}\n'
            '{"config": [32, 4], "status": "ok", "mpoints_per_s": 5.0, '
            '"attempts": 2, "faults": ["hang"]}\n'
            "not json at all\n"
            '{"config": [16, 4], "status": "quarantined", "attempts": 4, '
            '"faults": ["launch_failure"]}\n'
        )
        snap = read_journal_counts(path)
        assert snap.trials["ok"] == 1
        assert snap.trials["quarantined"] == 1
        assert snap.retries == 1 + 3
        assert snap.faults == {"hang": 1, "launch_failure": 1}
        assert snap.best_config == "(32, 4)"
