"""Cluster fault plane: deterministic, seeded, zero-perturbation when off."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpusim.faults import ClusterFaultPlan


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigurationError):
            ClusterFaultPlan(link_corrupt_rate=1.5)
        with pytest.raises(ConfigurationError):
            ClusterFaultPlan(dropout_rate=-0.1)

    def test_degrade_band_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            ClusterFaultPlan(degrade_min=0.5)
        with pytest.raises(ConfigurationError):
            ClusterFaultPlan(degrade_min=4.0, degrade_max=2.0)

    def test_corrupt_mode_is_closed(self):
        with pytest.raises(ConfigurationError):
            ClusterFaultPlan(corrupt_mode="scramble")

    def test_fault_rate_sums_families(self):
        plan = ClusterFaultPlan(
            link_corrupt_rate=0.1, link_degrade_rate=0.2, dropout_rate=0.3
        )
        assert plan.fault_rate == pytest.approx(0.6)
        assert ClusterFaultPlan().fault_rate == 0.0


class TestDeterminism:
    """Every draw is a pure function of (seed, entity, step[, attempt])."""

    def test_dropout_is_reproducible(self):
        a = ClusterFaultPlan(seed=7, dropout_rate=0.3)
        b = ClusterFaultPlan(seed=7, dropout_rate=0.3)
        draws = [(g, s) for g in range(4) for s in range(32)]
        assert [a.gpu_dropout(g, s) for g, s in draws] == [
            b.gpu_dropout(g, s) for g, s in draws
        ]
        assert any(a.gpu_dropout(g, s) for g, s in draws)

    def test_seed_changes_the_schedule(self):
        a = ClusterFaultPlan(seed=1, dropout_rate=0.3)
        b = ClusterFaultPlan(seed=2, dropout_rate=0.3)
        draws = [(g, s) for g in range(4) for s in range(64)]
        assert [a.gpu_dropout(g, s) for g, s in draws] != [
            b.gpu_dropout(g, s) for g, s in draws
        ]

    def test_zero_rates_never_fire(self):
        plan = ClusterFaultPlan(seed=3)
        for step in range(16):
            assert not plan.gpu_dropout(0, step)
            assert not plan.link_corrupt(0, step)
            assert plan.link_degrade_factor(0, step) == 1.0
            arr = np.ones((2, 3, 3))
            assert not plan.corrupt_ghosts(arr, 0, step)
            assert np.array_equal(arr, np.ones((2, 3, 3)))

    def test_corruption_redraws_per_attempt(self):
        """A retried exchange re-draws: some corrupt (link, step) clears
        on a later attempt, which is what lets the retry ladder succeed."""
        plan = ClusterFaultPlan(seed=5, link_corrupt_rate=0.5)
        cleared = any(
            plan.link_corrupt(link, step, attempt=0)
            and not plan.link_corrupt(link, step, attempt=1)
            for link in range(3)
            for step in range(32)
        )
        assert cleared

    def test_degrade_ignores_attempts(self):
        """Degradation prices the step, so it is drawn per (link, step)
        only — there is no attempt axis to key on."""
        plan = ClusterFaultPlan(seed=5, link_degrade_rate=0.8)
        for step in range(8):
            first = plan.link_degrade_factor(1, step)
            assert plan.link_degrade_factor(1, step) == first

    def test_degrade_factor_stays_in_band(self):
        plan = ClusterFaultPlan(
            seed=9, link_degrade_rate=1.0, degrade_min=2.0, degrade_max=8.0
        )
        factors = [plan.link_degrade_factor(0, s) for s in range(64)]
        assert all(2.0 <= f <= 8.0 for f in factors)
        assert len(set(factors)) > 1


class TestCorruption:
    def test_flip_mode_changes_bytes(self):
        plan = ClusterFaultPlan(seed=2, link_corrupt_rate=1.0)
        arr = np.ones((2, 4, 4), dtype=np.float32)
        before = arr.tobytes()
        assert plan.corrupt_ghosts(arr, 0, 0)
        assert arr.tobytes() != before

    def test_nan_mode_plants_one_nan(self):
        plan = ClusterFaultPlan(seed=2, link_corrupt_rate=1.0, corrupt_mode="nan")
        arr = np.ones((2, 4, 4), dtype=np.float32)
        assert plan.corrupt_ghosts(arr, 0, 0)
        assert np.isnan(arr).sum() == 1

    def test_payload_draw_is_deterministic(self):
        a = np.ones((2, 4, 4), dtype=np.float32)
        b = np.ones((2, 4, 4), dtype=np.float32)
        ClusterFaultPlan(seed=2, link_corrupt_rate=1.0).corrupt_ghosts(a, 1, 3)
        ClusterFaultPlan(seed=2, link_corrupt_rate=1.0).corrupt_ghosts(b, 1, 3)
        assert a.tobytes() == b.tobytes()


class TestSpec:
    def test_parse_roundtrip(self):
        plan = ClusterFaultPlan.parse(
            "seed=7,corrupt=0.2,degrade=0.1,dropout=0.05,"
            "degrade_min=3,degrade_max=5,corrupt_mode=nan"
        )
        assert plan.seed == 7
        assert plan.link_corrupt_rate == 0.2
        assert plan.link_degrade_rate == 0.1
        assert plan.dropout_rate == 0.05
        assert plan.degrade_min == 3.0
        assert plan.degrade_max == 5.0
        assert plan.corrupt_mode == "nan"

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            ClusterFaultPlan.parse("bogus=1")

    def test_parse_rejects_malformed_entries(self):
        with pytest.raises(ConfigurationError):
            ClusterFaultPlan.parse("corrupt")
        with pytest.raises(ConfigurationError):
            ClusterFaultPlan.parse("corrupt=lots")

    def test_describe_names_active_families(self):
        plan = ClusterFaultPlan(seed=7, dropout_rate=0.05)
        text = plan.describe()
        assert "seed=7" in text
        assert "dropout=0.05" in text
        assert "corrupt" not in text
