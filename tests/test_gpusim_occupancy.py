"""Occupancy calculator tests (Eqn (7) with hardware granularities)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ResourceLimitError
from repro.gpusim.device import get_device
from repro.gpusim.occupancy import compute_occupancy


class TestBasics:
    def test_unconstrained_small_kernel_hits_block_limit(self, gtx580):
        occ = compute_occupancy(gtx580, 64, 10, 1024)
        assert occ.active_blocks == gtx580.max_blocks_per_sm
        assert occ.limiter == "blocks"

    def test_register_limited(self, gtx580):
        # 63 regs x 512 threads ~ 32K regs: one block fills the file.
        occ = compute_occupancy(gtx580, 512, 63, 0)
        assert occ.limiter == "registers"
        assert occ.active_blocks == 1

    def test_smem_limited(self, gtx580):
        occ = compute_occupancy(gtx580, 64, 8, 20 * 1024)
        assert occ.limiter == "smem"
        assert occ.active_blocks == 2

    def test_warp_limited(self, gtx580):
        occ = compute_occupancy(gtx580, 1024, 8, 0)
        # 32 warps/block, 48 warps max -> 1 block.
        assert occ.active_blocks == 1
        assert occ.warps_per_block == 32

    def test_occupancy_fraction(self, gtx580):
        occ = compute_occupancy(gtx580, 256, 63, 0)
        assert occ.occupancy == pytest.approx(
            occ.active_warps / gtx580.max_warps_per_sm
        )

    def test_warps_rounding(self, gtx580):
        occ = compute_occupancy(gtx580, 48, 16, 0)
        assert occ.warps_per_block == 2  # 48 threads -> 2 warps


class TestErrors:
    def test_zero_threads(self, gtx580):
        with pytest.raises(ResourceLimitError):
            compute_occupancy(gtx580, 0, 10, 0)

    def test_too_many_threads(self, gtx580):
        with pytest.raises(ResourceLimitError):
            compute_occupancy(gtx580, 2048, 10, 0)

    def test_block_exceeds_register_file(self, gtx580):
        with pytest.raises(ResourceLimitError):
            compute_occupancy(gtx580, 1024, 63, 0)

    def test_block_exceeds_smem(self, gtx580):
        with pytest.raises(ResourceLimitError):
            compute_occupancy(gtx580, 64, 8, 64 * 1024)

    def test_negative_resources(self, gtx580):
        with pytest.raises(ResourceLimitError):
            compute_occupancy(gtx580, 64, -1, 0)


class TestProperties:
    @given(
        threads=st.integers(1, 1024),
        regs=st.integers(1, 63),
        smem=st.integers(0, 48 * 1024),
    )
    def test_invariants(self, threads, regs, smem):
        dev = get_device("gtx580")
        try:
            occ = compute_occupancy(dev, threads, regs, smem)
        except ResourceLimitError:
            return
        # Resident resources never exceed SM limits.
        assert occ.active_blocks * occ.regs_per_block <= dev.registers_per_sm
        assert occ.active_blocks * occ.smem_per_block <= dev.smem_per_sm
        assert occ.active_warps <= dev.max_warps_per_sm
        assert occ.active_blocks <= dev.max_blocks_per_sm
        assert 0.0 < occ.occupancy <= 1.0

    @given(threads=st.integers(1, 1024), regs=st.integers(1, 62))
    def test_more_registers_never_increases_occupancy(self, threads, regs):
        dev = get_device("gtx580")
        try:
            lo = compute_occupancy(dev, threads, regs, 0)
            hi = compute_occupancy(dev, threads, regs + 1, 0)
        except ResourceLimitError:
            return
        assert hi.active_blocks <= lo.active_blocks

    @given(smem=st.integers(0, 40 * 1024))
    def test_more_smem_never_increases_occupancy(self, smem):
        dev = get_device("gtx680")
        lo = compute_occupancy(dev, 128, 32, smem)
        hi = compute_occupancy(dev, 128, 32, smem + 4096)
        assert hi.active_blocks <= lo.active_blocks


class TestKeplerDifferences:
    def test_kepler_allows_more_warps(self):
        fermi = compute_occupancy(get_device("gtx580"), 256, 30, 0)
        kepler = compute_occupancy(get_device("gtx680"), 256, 30, 0)
        assert kepler.active_warps >= fermi.active_warps

    def test_register_allocation_granularity_applied(self, gtx580):
        # 10 regs x 32 lanes = 320, rounded to the 64-register chunk.
        occ = compute_occupancy(gtx580, 32, 10, 0)
        assert occ.regs_per_block % gtx580.rules.register_alloc_granularity == 0
        assert occ.regs_per_block >= 320
