"""Diagnostics data model, report presentation, and the rule catalog."""

import json

import pytest

from repro.analysis import catalog
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.rules import COV_TILE_GAP, RES_SPILL


def _diag(rule="X-RULE", severity=Severity.ERROR, hint=""):
    return Diagnostic(
        rule=rule, severity=severity, location="plan", message="boom", hint=hint
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert max([Severity.INFO, Severity.ERROR]) is Severity.ERROR

    def test_labels(self):
        assert Severity.ERROR.label == "error"
        assert Severity.WARNING.label == "warning"
        assert Severity.INFO.label == "info"


class TestDiagnostic:
    def test_render_without_hint(self):
        assert _diag().render() == "error[X-RULE] plan: boom"

    def test_render_with_hint(self):
        text = _diag(hint="fix it").render()
        assert text.splitlines() == [
            "error[X-RULE] plan: boom", "    hint: fix it",
        ]

    def test_as_dict_round_trips_through_json(self):
        d = json.loads(json.dumps(_diag(hint="h").as_dict()))
        assert d == {
            "rule": "X-RULE", "severity": "error", "location": "plan",
            "message": "boom", "hint": "h",
        }


class TestRuleCatalog:
    def test_ids_are_unique_and_well_formed(self):
        cat = catalog()
        assert len(cat) >= 30
        for rule_id, rule in cat.items():
            assert rule.id == rule_id
            assert rule_id == rule_id.upper()
            assert "-" in rule_id
            assert rule.summary

    def test_rule_diag_carries_severity(self):
        d = COV_TILE_GAP.diag("loc", "msg")
        assert d.severity is Severity.ERROR
        assert RES_SPILL.diag("loc", "msg").severity is Severity.WARNING


class TestAnalysisReport:
    def test_empty_report_is_ok(self):
        report = AnalysisReport(subject="s")
        assert report.ok
        assert report.exit_code() == 0
        assert "0 error(s)" in report.render()

    def test_warnings_do_not_fail(self):
        report = AnalysisReport(subject="s")
        report.add(_diag(severity=Severity.WARNING))
        assert report.ok and report.exit_code() == 0
        assert report.warnings and not report.errors

    def test_errors_fail(self):
        report = AnalysisReport(subject="s")
        report.add(_diag())
        assert not report.ok
        assert report.exit_code() == 1

    def test_suppression_drops_matching_rules(self):
        report = AnalysisReport(subject="s", suppressed=("X-RULE",))
        report.extend([_diag(), _diag(rule="KEPT", severity=Severity.INFO)])
        assert report.rules_fired() == ["KEPT"]
        assert report.ok

    def test_render_orders_by_severity(self):
        report = AnalysisReport(subject="s")
        report.add(_diag(rule="NOTE", severity=Severity.INFO))
        report.add(_diag(rule="ERR", severity=Severity.ERROR))
        text = report.render()
        assert text.index("ERR") < text.index("NOTE")
        assert text.startswith("lint s:")

    def test_to_json_shape(self):
        report = AnalysisReport(subject="s", suppressed=("Q",))
        report.add(_diag())
        data = json.loads(report.to_json())
        assert data["subject"] == "s"
        assert data["ok"] is False
        assert data["suppressed"] == ["Q"]
        assert len(data["diagnostics"]) == 1

    def test_merge_respects_suppression(self):
        a = AnalysisReport(subject="a", suppressed=("X-RULE",))
        b = AnalysisReport(subject="b")
        b.add(_diag())
        b.add(_diag(rule="OTHER"))
        a.merge(b)
        assert a.rules_fired() == ["OTHER"]


def test_duplicate_rule_registration_rejected():
    from repro.analysis.rules import _rule

    with pytest.raises(ValueError):
        _rule("COV-TILE-GAP", Severity.ERROR, "dup")
