"""Unit and property tests for integer helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.maths import ceil_div, clamp, is_power_of_two, round_up


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 7) == 0

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 3)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_is_smallest_sufficient_multiple(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or q == 0


class TestRoundUp:
    def test_already_aligned(self):
        assert round_up(128, 64) == 128

    def test_rounds(self):
        assert round_up(65, 64) == 128

    def test_zero(self):
        assert round_up(0, 64) == 0

    @given(st.integers(0, 10**8), st.integers(1, 10**4))
    def test_result_is_aligned_and_minimal(self, v, g):
        r = round_up(v, g)
        assert r % g == 0
        assert r >= v
        assert r - v < g


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("v", [1, 2, 4, 8, 1024, 2**30])
    def test_powers(self, v):
        assert is_power_of_two(v)

    @pytest.mark.parametrize("v", [0, -2, 3, 6, 12, 2**30 + 1])
    def test_non_powers(self, v):
        assert not is_power_of_two(v)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)
