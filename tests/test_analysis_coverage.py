"""Race/coverage verifier: sweep-line vs brute-force paint, register
tiling, temporal ghosts, slab decompositions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_plan, analyze_slabs
from repro.analysis.coverage import (
    check_rect_cover,
    plan_tile_rects,
    register_tile_cover,
    slab_diagnostics,
    temporal_diagnostics,
    tile_cover_diagnostics,
)
from repro.cluster.decompose import split_grid
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import InPlaneKernel
from repro.kernels.temporal import TemporalInPlaneKernel
from repro.stencils.spec import symmetric


def paint_cover(lx, ly, rects):
    """O(area) ground truth: literally paint every rectangle."""
    covered = np.zeros((ly, lx), dtype=int)
    for x0, y0, w, h in rects:
        covered[max(y0, 0):max(y0 + h, 0), max(x0, 0):max(x0 + w, 0)] += 1
    return int((covered == 0).sum()), int(np.maximum(covered - 1, 0).sum())


class TestSweepLine:
    def test_exact_tiling(self):
        rects = [(x, y, 8, 4) for x in range(0, 32, 8) for y in range(0, 16, 4)]
        result = check_rect_cover(32, 16, rects)
        assert result.exact

    def test_partial_edge_tiles_are_clipped_not_flagged(self):
        # 10x6 plane with 8x4 tiles: edge tiles overhang but clip clean.
        rects = [(0, 0, 8, 4), (8, 0, 8, 4), (0, 4, 8, 4), (8, 4, 8, 4)]
        assert check_rect_cover(10, 6, rects).exact

    def test_gap_counted_exactly(self):
        result = check_rect_cover(8, 8, [(0, 0, 8, 4)])
        assert result.gap_points == 32
        assert result.overlap_points == 0
        assert result.first_gap is not None

    def test_overlap_counted_exactly(self):
        result = check_rect_cover(8, 4, [(0, 0, 8, 4), (4, 0, 8, 4)])
        assert result.overlap_points == 16
        assert result.gap_points == 0
        assert result.first_overlap is not None

    @settings(max_examples=60, deadline=None)
    @given(
        lx=st.integers(4, 24),
        ly=st.integers(4, 24),
        rects=st.lists(
            st.tuples(
                st.integers(-4, 24), st.integers(-4, 24),
                st.integers(1, 12), st.integers(1, 12),
            ),
            min_size=0, max_size=12,
        ),
    )
    def test_agrees_with_paint_on_random_rectangles(self, lx, ly, rects):
        expected_gap, expected_overlap = paint_cover(lx, ly, rects)
        result = check_rect_cover(lx, ly, rects)
        assert (result.gap_points, result.overlap_points) == (
            expected_gap, expected_overlap,
        )


class TestTileCover:
    def plan(self, tx=32, ty=4, rx=1, ry=4):
        return InPlaneKernel(symmetric(2), BlockConfig(tx, ty, rx, ry))

    def test_healthy_launch_is_exact(self):
        assert tile_cover_diagnostics(self.plan(), (512, 512, 64)) == []

    def test_stride_below_tile_is_a_race(self):
        diags = tile_cover_diagnostics(self.plan(), (512, 512, 64), 24, None)
        assert [d.rule for d in diags] == ["COV-TILE-OVERLAP"]

    def test_stride_above_tile_is_a_gap(self):
        diags = tile_cover_diagnostics(self.plan(), (512, 512, 64), 40, None)
        assert [d.rule for d in diags] == ["COV-TILE-GAP"]

    def test_non_divisible_grid_warns_partial(self):
        diags = tile_cover_diagnostics(self.plan(), (500, 500, 64))
        assert [d.rule for d in diags] == ["COV-PARTIAL-TILE"]

    def test_rect_count_matches_launch_grid(self):
        plan = self.plan()
        rects = plan_tile_rects(plan, (512, 512, 64))
        assert len(rects) == (512 // 32) * (512 // 16)


class TestRegisterTile:
    def test_correct_stride_is_bijective(self):
        assert register_tile_cover(32, 4).exact

    def test_wrong_stride_breaks_bijection(self):
        result = register_tile_cover(32, 4, stride=24)
        assert not result.exact
        assert result.gap_points > 0 and result.overlap_points > 0

    def test_plan_level_injection(self):
        plan = InPlaneKernel(symmetric(2), BlockConfig(32, 4, 4, 1))
        report = analyze_plan(plan, stride_x=24)
        assert "COV-REGTILE" in report.rules_fired()
        assert not report.ok


class TestTemporalGhost:
    def test_correct_ghost_is_clean(self):
        plan = TemporalInPlaneKernel(symmetric(2), BlockConfig(32, 4), time_steps=3)
        assert temporal_diagnostics(plan) == []

    def test_short_ghost_is_a_hazard(self):
        class ShortGhost(TemporalInPlaneKernel):
            def ghost(self):
                return self.spec.radius * self.time_steps - 1

        plan = ShortGhost(symmetric(2), BlockConfig(32, 4), time_steps=3)
        diags = temporal_diagnostics(plan)
        assert [d.rule for d in diags] == ["COV-TEMPORAL-GHOST"]
        report = analyze_plan(plan)
        assert not report.ok

    def test_non_temporal_plans_are_exempt(self):
        plan = InPlaneKernel(symmetric(2), BlockConfig(32, 4))
        assert temporal_diagnostics(plan) == []


class TestSlabs:
    def slabs(self, n=4, lz=64, radius=2):
        grid = np.zeros((lz, 8, 8), dtype=np.float32)
        return split_grid(grid, n, radius)

    def test_split_grid_is_clean(self):
        assert slab_diagnostics(self.slabs(), 64, 2) == []
        assert analyze_slabs(self.slabs(), 64, 2).ok

    def test_short_interior_ghost_flagged(self):
        slabs = self.slabs(radius=1)
        diags = slab_diagnostics(slabs, 64, radius=2)
        assert diags
        assert {d.rule for d in diags} == {"COV-SLAB-GHOST"}

    def test_gap_between_slabs_flagged(self):
        slabs = self.slabs()
        broken = [
            s if s.index != 1 else type(s)(
                index=s.index, z_start=s.z_start + 2, z_stop=s.z_stop,
                ghost_lo=s.ghost_lo, ghost_hi=s.ghost_hi, data=s.data,
            )
            for s in slabs
        ]
        rules = {d.rule for d in slab_diagnostics(broken, 64, 2)}
        assert "COV-SLAB-GAP" in rules

    def test_overlapping_slabs_flagged(self):
        slabs = self.slabs()
        broken = [
            s if s.index != 1 else type(s)(
                index=s.index, z_start=s.z_start - 2, z_stop=s.z_stop,
                ghost_lo=s.ghost_lo, ghost_hi=s.ghost_hi, data=s.data,
            )
            for s in slabs
        ]
        rules = {d.rule for d in slab_diagnostics(broken, 64, 2)}
        assert "COV-SLAB-OVERLAP" in rules

    def test_truncated_domain_flagged(self):
        rules = {d.rule for d in slab_diagnostics(self.slabs(lz=64), 80, 2)}
        assert "COV-SLAB-GAP" in rules
