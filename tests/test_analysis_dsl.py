"""DSL semantic checks and error-to-diagnostic bridging."""

from repro.analysis import analyze_expr, analyze_source
from repro.analysis.dsl import diagnostic_from_error, expr_diagnostics, source_diagnostics
from repro.analysis.rules import DSL_PARSE
from repro.errors import StencilDefinitionError
from repro.stencils.applications import APPLICATIONS
from repro.stencils.expr import OutputSpec, StencilExpr, Tap
from repro.stencils.parser import parse_stencil


def expr_of(*taps, n_grids=1, name="t"):
    return StencilExpr(
        name=name, n_grids=n_grids,
        outputs=(OutputSpec(name="out", taps=tuple(taps)),),
    )


CENTRE = Tap(grid=0, offset=(0, 0, 0), coeff=0.5)


class TestExprDiagnostics:
    def test_paper_applications_have_no_error_level_findings(self):
        for expr in APPLICATIONS.values():
            assert analyze_expr(expr).ok, expr.name

    def test_missing_centre_tap(self):
        expr = expr_of(Tap(grid=0, offset=(1, 0, 0), coeff=1.0))
        assert "DSL-NO-CENTRE" in {d.rule for d in expr_diagnostics(expr)}

    def test_duplicate_tap(self):
        expr = expr_of(CENTRE, Tap(grid=0, offset=(0, 0, 0), coeff=0.25))
        assert "DSL-DUP-TAP" in {d.rule for d in expr_diagnostics(expr)}

    def test_zero_coefficient(self):
        expr = expr_of(CENTRE, Tap(grid=0, offset=(1, 0, 0), coeff=0.0))
        assert "DSL-ZERO-COEFF" in {d.rule for d in expr_diagnostics(expr)}

    def test_pointwise_program(self):
        assert "DSL-POINTWISE" in {
            d.rule for d in expr_diagnostics(expr_of(CENTRE))
        }

    def test_asymmetric_z_reach(self):
        expr = expr_of(
            CENTRE,
            Tap(grid=0, offset=(0, 0, -2), coeff=1.0),
            Tap(grid=0, offset=(0, 0, 1), coeff=1.0),
        )
        assert "DSL-ASYM-Z" in {d.rule for d in expr_diagnostics(expr)}

    def test_upstream_is_the_canonical_asymmetric_case(self):
        report = analyze_expr(APPLICATIONS["upstream"])
        assert "DSL-ASYM-Z" in report.rules_fired()


class TestSourceDiagnostics:
    GOOD = "out[i,j,k] = 0.5*u[i,j,k] + 0.25*u[i-1,j,k] + 0.25*u[i+1,j,k]"

    def test_valid_source_parses_clean(self):
        expr, diags = source_diagnostics(self.GOOD, "good")
        assert expr is not None
        assert analyze_source(self.GOOD).ok

    def test_syntax_error_becomes_one_diagnostic(self):
        expr, diags = source_diagnostics("out = %%% nonsense", "bad")
        assert expr is None
        assert [d.rule for d in diags] == ["DSL-PARSE"]
        assert not analyze_source("out = %%% nonsense").ok

    def test_rule_tagged_errors_keep_their_id(self):
        try:
            parse_stencil(self.GOOD)  # establishes the parser works at all
            raise StencilDefinitionError("synthetic", rule="DSL-UNDEF-GRID")
        except StencilDefinitionError as exc:
            diag = diagnostic_from_error(exc, "loc", DSL_PARSE)
        assert diag.rule == "DSL-UNDEF-GRID"
        assert diag.severity.label == "error"

    def test_unknown_rule_falls_back(self):
        diag = diagnostic_from_error(ValueError("plain"), "loc", DSL_PARSE)
        assert diag.rule == "DSL-PARSE"

    def test_undef_grid_raises_with_rule(self):
        try:
            expr_of(CENTRE, Tap(grid=3, offset=(1, 0, 0), coeff=1.0))
        except StencilDefinitionError as exc:
            assert exc.rule == "DSL-UNDEF-GRID"
        else:
            raise AssertionError("expected StencilDefinitionError")
