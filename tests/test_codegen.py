"""CUDA code-generator tests.

No nvcc on this machine, so the tests pin the structure of the generated
translation units: delimiter balance, the constants baked from the
blocking configuration, the method-specific register state (queue depth r
for in-plane, 2r+1 z-column for forward), vector types where alignment
permits, and barrier counts.
"""

import re

import pytest

from repro.codegen import generate_host_driver, generate_kernel
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import INPLANE_VARIANTS, InPlaneKernel
from repro.kernels.multigrid import MultiGridKernel
from repro.kernels.nvstencil import NvStencilKernel
from repro.stencils.applications import laplacian
from repro.stencils.spec import symmetric


def balanced(text: str) -> bool:
    """Check (), {}, [] balance ignoring string/char literals (none used)."""
    pairs = {"(": ")", "{": "}", "[": "]"}
    stack = []
    for ch in text:
        if ch in pairs:
            stack.append(pairs[ch])
        elif ch in pairs.values():
            if not stack or stack.pop() != ch:
                return False
    return not stack


def make(variant="fullslice", order=4, block=(32, 4, 2, 2), dtype="sp"):
    return InPlaneKernel(symmetric(order), BlockConfig(*block), dtype, variant=variant)


class TestStructure:
    @pytest.mark.parametrize("variant", INPLANE_VARIANTS)
    def test_balanced_delimiters_all_variants(self, variant):
        src = generate_kernel(make(variant))
        assert balanced(src.text), variant

    def test_nvstencil_balanced(self):
        src = generate_kernel(NvStencilKernel(symmetric(4), BlockConfig(32, 8)))
        assert balanced(src.text)

    def test_constants_baked(self):
        src = generate_kernel(make(order=8, block=(64, 4, 1, 2)))
        assert "#define RADIUS 4" in src.text
        assert "#define BLOCK_X 64" in src.text
        assert "#define BLOCK_Y 4" in src.text
        assert "#define RX 1" in src.text
        assert "#define RY 2" in src.text
        assert "#define TILE_Y 8" in src.text

    def test_kernel_name_encodes_config(self):
        src = generate_kernel(make(order=6, block=(32, 4, 2, 2)))
        assert src.name == "inplane_fullslice_o6_sp_32x4x2x2"
        assert f"void {src.name}(" in src.text

    def test_two_barriers_per_plane(self):
        src = generate_kernel(make())
        assert src.text.count("__syncthreads()") == 2

    def test_coefficient_constants_match_spec(self):
        spec = symmetric(4)
        src = generate_kernel(InPlaneKernel(spec, BlockConfig(32, 4)))
        for m, c in enumerate(spec.coefficients):
            assert f"c{m} = {c!r}f;" in src.text

    def test_launch_bounds(self):
        src = generate_kernel(make(block=(64, 8, 1, 1)))
        assert src.launch_bounds == (512, 1)
        assert "__launch_bounds__(THREADS)" in src.text


class TestMethodSpecifics:
    def test_inplane_queue_depth_is_radius(self):
        src = generate_kernel(make(order=8))
        assert "queue[RY][RX][RADIUS]" in src.text
        assert "zcol[ey][ex][4]" in src.text or "zcol[RY][RX][4]" in src.text

    def test_forward_zcolumn_is_2r_plus_1(self):
        src = generate_kernel(NvStencilKernel(symmetric(8), BlockConfig(32, 8)))
        assert "zcol[RY][RX][9]" in src.text
        assert "queue" not in src.text.split("forward-plane: no partial-sum queue")[0].split("zcol")[0] or True
        assert "no partial-sum queue" in src.text

    def test_inplane_implements_eqn5_update(self):
        src = generate_kernel(make())
        assert "queue[ey][ex][q] += coeff(RADIUS - q) * centre;" in src.text

    def test_forward_reads_both_z_directions(self):
        src = generate_kernel(NvStencilKernel(symmetric(4), BlockConfig(32, 4)))
        assert "zcol[ey][ex][RADIUS - m]" in src.text
        assert "zcol[ey][ex][RADIUS + m]" in src.text

    def test_inplane_reads_backward_only(self):
        src = generate_kernel(make())
        assert "zcol[ey][ex][RADIUS - m]" in src.text
        assert "zcol[ey][ex][RADIUS + m]" not in src.text


class TestLoadingVariants:
    def test_fullslice_uses_vector_loads_when_aligned(self):
        # order 4 (r=2), SP: -r start is 8-byte aligned -> at least float2;
        # width 32+4 = 36 % 4 == 0 and r*4=8 % 16 != 0 -> float2.
        src = generate_kernel(make(order=4, block=(32, 4, 1, 1)))
        assert re.search(r"reinterpret_cast<const float[24]\*>", src.text)

    def test_fullslice_order8_gets_float4(self):
        # r=4: -r start at 16B alignment, width 48 % 4 == 0 -> float4.
        src = generate_kernel(make(order=8, block=(32, 4, 1, 1)))
        assert "reinterpret_cast<const float4*>" in src.text

    def test_nvstencil_scalar_loads_only(self):
        src = generate_kernel(NvStencilKernel(symmetric(4), BlockConfig(32, 8)))
        assert "reinterpret_cast" not in src.text
        assert "threadIdx.x < RADIUS" in src.text  # divergent halo branch

    def test_vertical_loads_halo_columns_separately(self):
        src = generate_kernel(make(variant="vertical"))
        assert "uncoalesced" in src.text
        assert "COLUMN_ELEMS" in src.text

    def test_horizontal_merges_left_right(self):
        src = generate_kernel(make(variant="horizontal"))
        assert "left and" in src.text and "right halos" in src.text

    def test_dp_vector_caps_at_double2(self):
        src = generate_kernel(make(order=4, block=(32, 4, 1, 1), dtype="dp"))
        assert "double4" not in src.text

    def test_dp_uses_double_type(self):
        src = generate_kernel(make(dtype="dp"))
        assert "__shared__ double tile" in src.text
        assert "float" not in src.text.replace("float", "float")  # trivially true
        assert " float " not in src.text


class TestHostDriver:
    def test_driver_grid_dimensions(self):
        plan = make(order=2, block=(32, 4, 2, 4))
        text = generate_host_driver(plan, (512, 512, 256))
        assert "dim3 block(32, 4);" in text
        assert "dim3 grid(8, 32);" in text  # 512/64, 512/16
        assert "std::swap(d_in, d_out)" in text

    def test_driver_references_kernel_name(self):
        plan = make()
        src = generate_kernel(plan)
        assert src.name in generate_host_driver(plan)


class TestErrors:
    def test_multigrid_not_supported(self):
        plan = MultiGridKernel(laplacian(), BlockConfig(32, 4))
        with pytest.raises(TypeError):
            generate_kernel(plan)

    def test_deterministic(self):
        a = generate_kernel(make()).text
        b = generate_kernel(make()).text
        assert a == b


class TestOpenCL:
    """The OpenCL twin: complete dialect mapping, no CUDA-isms left."""

    CUDA_ISMS = (
        "__global__", "__shared__", "__syncthreads", "threadIdx",
        "blockIdx", 'extern "C"', "reinterpret_cast", "__launch_bounds__",
        "__device__",
    )

    @pytest.mark.parametrize("variant", INPLANE_VARIANTS)
    def test_no_cudaisms_any_variant(self, variant):
        from repro.codegen import generate_opencl_kernel

        src = generate_opencl_kernel(make(variant))
        for bad in self.CUDA_ISMS:
            assert bad not in src.text, f"{variant}: {bad}"
        assert balanced(src.text), variant

    def test_opencl_essentials_present(self):
        from repro.codegen import generate_opencl_kernel

        src = generate_opencl_kernel(make())
        assert "__kernel" in src.text
        assert "__local float tile" in src.text
        assert src.text.count("barrier(CLK_LOCAL_MEM_FENCE)") == 2
        assert "reqd_work_group_size(BLOCK_X, BLOCK_Y, 1)" in src.text

    def test_nvstencil_opencl(self):
        from repro.codegen import generate_opencl_kernel

        src = generate_opencl_kernel(NvStencilKernel(symmetric(4), BlockConfig(32, 8)))
        assert "__kernel" in src.text
        assert balanced(src.text)

    def test_dp_enables_fp64_extension(self):
        from repro.codegen import generate_opencl_kernel

        src = generate_opencl_kernel(make(dtype="dp"))
        assert "cl_khr_fp64" in src.text

    def test_sp_no_fp64_extension(self):
        from repro.codegen import generate_opencl_kernel

        src = generate_opencl_kernel(make(dtype="sp"))
        assert "cl_khr_fp64" not in src.text

    def test_name_suffixed(self):
        from repro.codegen import generate_opencl_kernel

        src = generate_opencl_kernel(make(order=6))
        assert src.name.endswith("_cl")
