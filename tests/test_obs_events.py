"""Event-stream plane: catalog, sinks, flight recorder, disabled cost.

The load-bearing guarantees: emission is a no-op (one contextvar lookup)
when no sink is installed, streams tolerate the torn final line an
abrupt kill leaves, volatile engine events never reach a persistent
stream, and the flight recorder's ring dumps a bounded crash report.
"""

import json
import time

import pytest

from repro.obs.events import (
    EVENT_CATALOG,
    EVENT_SPECS,
    EVENTS_SCHEMA_VERSION,
    Event,
    EventSchemaError,
    FlightRecorder,
    JsonlEventSink,
    MemoryEventSink,
    TeeEventSink,
    current_sink,
    disable_events_in_process,
    emit,
    event_stream,
    main,
    read_events,
    suppress_events,
    validate_event,
    validate_stream,
)


class TestCatalog:
    def test_catalog_is_complete_and_documented(self):
        assert len(EVENT_SPECS) == len(EVENT_CATALOG)
        for spec in EVENT_SPECS:
            assert spec.doc  # every event explains itself
            assert "." in spec.name  # plane-qualified names

    def test_only_pool_events_are_volatile(self):
        volatile = {s.name for s in EVENT_SPECS if s.volatile}
        assert volatile == {
            "pool.start", "pool.dispatch", "pool.chunk", "pool.stop"
        }

    def test_validate_event_enforces_fields(self):
        ok = validate_event(
            {"event": "trial.measured", "seq": 0,
             "config": "(32, 4, 1, 1)", "mpoints_per_s": 1.0, "attempts": 1}
        )
        assert ok.name == "trial.measured"
        with pytest.raises(EventSchemaError, match="unknown event"):
            validate_event({"event": "trial.exploded", "seq": 0})
        with pytest.raises(EventSchemaError, match="missing field"):
            validate_event({"event": "trial.measured", "seq": 0})
        with pytest.raises(EventSchemaError, match="seq"):
            validate_event(
                {"event": "pool.stop", "seq": -1}
            )

    def test_event_roundtrips_with_sorted_keys(self):
        event = Event("cache.put", 3, (("entries", 2), ("key", "k")))
        obj = event.to_obj()
        assert list(obj) == ["event", "seq", "entries", "key"]
        assert Event.from_obj(obj) == event


class TestSinks:
    def test_no_sink_by_default_and_emit_is_noop(self):
        assert current_sink() is None
        assert emit("cache.miss", key="k") is None

    def test_memory_sink_sequences_and_rejects_uncatalogued(self):
        sink = MemoryEventSink()
        with event_stream(sink):
            emit("cache.miss", key="a")
            emit("cache.hit", key="a")
            with pytest.raises(EventSchemaError, match="uncatalogued"):
                emit("made.up")
        assert [e.seq for e in sink.events] == [0, 1]
        assert current_sink() is None  # context restored

    def test_volatile_events_filtered_unless_opted_in(self):
        quiet, loud = MemoryEventSink(), MemoryEventSink(include_volatile=True)
        for sink in (quiet, loud):
            with event_stream(sink):
                emit("pool.start", workers=4)
                emit("cache.miss", key="k")
        assert [e.name for e in quiet.events] == ["cache.miss"]
        assert [e.name for e in loud.events] == ["pool.start", "cache.miss"]
        # The filtered emission must not burn a sequence number — the
        # persistent stream's seqs stay dense (byte-identity across jobs).
        assert quiet.events[0].seq == 0

    def test_suppress_and_process_disable(self):
        sink = MemoryEventSink()
        with event_stream(sink):
            with suppress_events():
                emit("cache.miss", key="hidden")
            emit("cache.miss", key="seen")
        assert [dict(e.fields)["key"] for e in sink.events] == ["seen"]

        with event_stream(MemoryEventSink()) as outer:
            disable_events_in_process()
            emit("cache.miss", key="k")
        assert outer.events == []

    def test_tee_fans_out_with_independent_policies(self):
        stream, flight = MemoryEventSink(), FlightRecorder(capacity=8)
        with event_stream(TeeEventSink([stream, flight])):
            emit("pool.start", workers=2)
            emit("cache.miss", key="k")
        assert [e.name for e in stream.events] == ["cache.miss"]
        assert [e.name for e in flight.events] == ["pool.start", "cache.miss"]


class TestJsonlStream:
    def test_roundtrip_with_header(self, tmp_path):
        path = tmp_path / "s.events"
        sink = JsonlEventSink(path, session="k1")
        with event_stream(sink):
            emit("sweep.start", method="exhaustive", device="gtx580",
                 space_size=10)
            emit("sweep.finished", method="exhaustive", evaluated=10)
        sink.close()
        header, events = read_events(path, strict=True)
        assert header == {
            "stream": "repro.obs.events",
            "version": EVENTS_SCHEMA_VERSION,
            "session": "k1",
        }
        assert [e.name for e in events] == ["sweep.start", "sweep.finished"]
        assert validate_stream(path) == 2

    def test_torn_final_line_tolerated_but_interior_corruption_raises(
        self, tmp_path
    ):
        path = tmp_path / "s.events"
        sink = JsonlEventSink(path)
        with event_stream(sink):
            emit("cache.miss", key="a")
            emit("cache.hit", key="a")
        sink.close()
        with open(path, "a") as fh:
            fh.write('{"event": "cache.pu')  # killed mid-append
        _header, events = read_events(path)
        assert [e.name for e in events] == ["cache.miss", "cache.hit"]

        lines = path.read_text().splitlines()
        lines[1] = "{corrupt"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(EventSchemaError, match="corrupt event record"):
            read_events(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "s.events"
        path.write_text('{"stream": "something.else", "version": 1}\n')
        with pytest.raises(EventSchemaError, match="stream header"):
            read_events(path)
        path.write_text("")
        with pytest.raises(EventSchemaError, match="empty"):
            read_events(path)

    def test_cli_validator(self, tmp_path, capsys):
        good = tmp_path / "good.events"
        JsonlEventSink(good).close()
        bad = tmp_path / "bad.events"
        bad.write_text("nope\n")
        assert main([str(good)]) == 0
        assert "ok (0 event(s))" in capsys.readouterr().out
        assert main([str(good), str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestFlightRecorder:
    def test_ring_keeps_last_capacity_and_counts_dropped(self, tmp_path):
        flight = FlightRecorder(capacity=4)
        with event_stream(flight):
            for i in range(10):
                emit("cache.miss", key=f"k{i}")
        report_path = flight.dump(
            tmp_path / "crash.json", reason="TuningError",
            error=ValueError("boom"), session="s",
        )
        report = json.loads(report_path.read_text())
        assert report["report"] == "repro.obs.flight"
        assert report["dropped"] == 6
        assert [e["key"] for e in report["events"]] == [
            "k6", "k7", "k8", "k9"
        ]
        assert report["error"] == {"type": "ValueError", "message": "boom"}
        assert report["session"] == "s"

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


def test_disabled_overhead():
    """Emission with no sink must stay a cheap constant-time no-op.

    Pins the design contract rather than a wall-clock number prone to CI
    noise: 100k disabled emissions in well under a second means the
    per-call cost is microseconds — the contextvar-lookup fast path, not
    an accidental dict build or catalog check.
    """
    assert current_sink() is None
    n = 100_000
    start = time.perf_counter()
    for _ in range(n):
        emit("cache.miss", key="k")
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0, f"{n} disabled emits took {elapsed:.2f}s"
