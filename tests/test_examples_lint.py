"""Regression: every plan the examples construct must lint clean.

Each example module exposes ``plans()`` returning the (plan, grid_shape)
pairs its ``main()`` drives.  Running the static analyzer over all of
them pins down two things at once: the examples never ship a broken
configuration, and the analyzer never regresses into false-positive
errors on known-good plans (warnings and notes are fine — several
examples deliberately use untuned blocks).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_plan
from repro.gpusim.device import get_device

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    name = f"_example_{path.stem}"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_every_example_declares_plans():
    assert EXAMPLE_FILES, "examples/ directory is empty?"
    for path in EXAMPLE_FILES:
        module = _load(path)
        assert hasattr(module, "plans"), f"{path.name} lacks a plans() hook"
        assert module.plans(), f"{path.name}.plans() returned nothing"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_plans_lint_clean(path):
    device = get_device("gtx580")
    for plan, grid_shape in _load(path).plans():
        report = analyze_plan(plan, device=device, grid_shape=grid_shape)
        assert report.ok, (
            f"{path.name}: {plan.name} has error-level findings:\n"
            + "\n".join(d.render() for d in report.errors)
        )
