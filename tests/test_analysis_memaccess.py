"""Static memory lint cross-validated against the brute-force enumerators.

The acceptance bar of the analyzer's MEM- family: its closed-form verdicts
must agree EXACTLY with the counting/enumerating ground truth in
``repro.gpusim.smem`` and ``repro.gpusim.trace`` — not approximately, not
on examples, but property-tested over randomized configurations.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.memaccess import (
    analytic_conflict_degree,
    pitch_conflict_diagnostics,
    region_diagnostics,
    smem_tile_diagnostics,
)
from repro.gpusim.device import get_device
from repro.gpusim.memory import MemoryStats
from repro.gpusim.smem import conflict_degree, padded_pitch_words
from repro.gpusim.trace import average_region_trace
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import InPlaneKernel
from repro.kernels.layout import GridLayout
from repro.kernels.loads import add_row_region
from repro.stencils.spec import symmetric
from repro.utils.maths import ceil_div


class TestBankConflictClosedForm:
    @settings(max_examples=300, deadline=None)
    @given(
        stride=st.integers(-96, 96),
        lanes=st.sampled_from((1, 8, 16, 32, 64)),
        banks=st.sampled_from((16, 32)),
    )
    def test_agrees_exactly_with_brute_force(self, stride, lanes, banks):
        assert analytic_conflict_degree(
            stride, lanes=lanes, banks=banks
        ) == conflict_degree(stride, lanes=lanes, banks=banks)

    def test_broadcast_is_free(self):
        assert analytic_conflict_degree(0) == 1

    def test_bank_count_stride_is_worst_case(self):
        assert analytic_conflict_degree(32) == 32

    def test_pitch_verdict_matches_brute_force_for_all_widths(self):
        for width in range(1, 257):
            pitch = padded_pitch_words(width)
            flagged = bool(pitch_conflict_diagnostics(pitch, "t"))
            assert flagged == (conflict_degree(pitch) > 1)
            # The padding policy always kills the catastrophic case.
            assert conflict_degree(pitch) < 32

    def test_unpadded_multiple_of_banks_flags(self):
        diags = pitch_conflict_diagnostics(32, "t")
        assert [d.rule for d in diags] == ["MEM-BANK-CONFLICT"]
        assert "32" in diags[0].message


class TestSmemTileLint:
    def test_default_layout_policy(self):
        # The library's +1-word padding dodges the worst case by
        # construction; whatever mild degree remains must match the brute
        # force on the actual pitch.
        for order in (2, 4, 8):
            for tx, ty in ((16, 4), (32, 4), (64, 2)):
                plan = InPlaneKernel(symmetric(order), BlockConfig(tx, ty))
                r = plan.halo_radius()
                width = ((plan.block.tile_x + 2 * r) * plan.elem_bytes + 3) // 4
                pitch = padded_pitch_words(width)
                diags = smem_tile_diagnostics(plan)
                flagged = any(d.rule == "MEM-BANK-CONFLICT" for d in diags)
                assert flagged == (conflict_degree(pitch) > 1)

    def test_dp_on_fermi_notes_bank_splitting(self):
        plan = InPlaneKernel(symmetric(2), BlockConfig(32, 4), dtype="dp")
        diags = smem_tile_diagnostics(plan, get_device("gtx580"))
        assert "MEM-DP-BANKS" in {d.rule for d in diags}

    def test_dp_note_needs_a_device(self):
        plan = InPlaneKernel(symmetric(2), BlockConfig(32, 4), dtype="dp")
        assert "MEM-DP-BANKS" not in {
            d.rule for d in smem_tile_diagnostics(plan)
        }


layouts = st.builds(
    GridLayout,
    lx=st.sampled_from((128, 256, 512)),
    ly=st.just(64),
    lz=st.just(8),
    elem_bytes=st.sampled_from((4, 8)),
    aligned_x=st.sampled_from((-4, -2, -1, 0)),
)


class TestRegionRecordsAgainstTrace:
    @settings(max_examples=80, deadline=None)
    @given(
        layout=layouts,
        x_start_rel=st.integers(-4, 4),
        width=st.integers(1, 68),
        stride=st.sampled_from((16, 24, 32, 48, 64)),
    )
    def test_recorded_row_transactions_match_enumerator(
        self, layout, x_start_rel, width, stride
    ):
        """The RegionRecord geometry the analyzer lints from must carry the
        same phase-averaged transaction count the lane-by-lane enumerator
        produces — otherwise every verdict downstream is built on sand."""
        stats = MemoryStats(line_bytes=layout.line_bytes)
        add_row_region(
            stats, layout,
            x_start_rel=x_start_rel, width_elems=width, rows=1,
            tile_stride=stride, use_vectors=False,
        )
        (record,) = stats.regions
        _, tx, _ = average_region_trace(
            layout,
            x_start_rel=x_start_rel, width_elems=width, rows=1,
            tile_stride=stride, vec_width=1,
        )
        assert math.isclose(record.avg_row_transactions, tx, rel_tol=1e-12)

    @settings(max_examples=80, deadline=None)
    @given(
        layout=layouts,
        x_start_rel=st.integers(-4, 4),
        width=st.integers(1, 68),
        stride=st.sampled_from((16, 32, 64)),
    )
    def test_misaligned_verdict_agrees_with_enumerator(
        self, layout, x_start_rel, width, stride
    ):
        """MEM-MISALIGNED fires iff the enumerated average exceeds the
        aligned floor — the analyzer's verdict IS the brute-force verdict."""
        stats = MemoryStats(line_bytes=layout.line_bytes)
        add_row_region(
            stats, layout,
            x_start_rel=x_start_rel, width_elems=width, rows=1,
            tile_stride=stride, use_vectors=False,
        )

        class FakeWorkload:
            memory = stats

        diags = region_diagnostics(FakeWorkload(), "t")
        flagged = any(d.rule == "MEM-MISALIGNED" for d in diags)

        _, tx, _ = average_region_trace(
            layout,
            x_start_rel=x_start_rel, width_elems=width, rows=1,
            tile_stride=stride, vec_width=1,
        )
        floor = ceil_div(width * layout.elem_bytes, layout.line_bytes)
        assert flagged == (tx > floor + 1e-9)


class TestStripLint:
    def test_nvstencil_column_strips_flagged(self):
        from repro.kernels.nvstencil import NvStencilKernel

        plan = NvStencilKernel(symmetric(4), BlockConfig(32, 4))
        device = get_device("gtx580")
        wl = plan.block_workload(device, (512, 512, 64))
        rules = {d.rule for d in region_diagnostics(wl, plan.name)}
        assert "MEM-UNCOALESCED-STRIP" in rules

    def test_fullslice_has_no_strips(self):
        plan = InPlaneKernel(symmetric(4), BlockConfig(32, 4))
        device = get_device("gtx580")
        wl = plan.block_workload(device, (512, 512, 64))
        rules = {d.rule for d in region_diagnostics(wl, plan.name)}
        assert "MEM-UNCOALESCED-STRIP" not in rules
