"""Perf-regression sentinel tests (``repro bench diff``).

The acceptance contract: on an unchanged tree the diff against the
recorded trajectory is empty and exits 0; with an injected model
perturbation it exits nonzero and names the counter responsible for the
slowdown.  Both directions are exercised here, against the real
``BENCH_profile.json`` (v1) and a v2 baseline written by the test.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.gpusim import timing
from repro.gpusim.device import Generation
from repro.gpusim.executor import simulate
from repro.kernels.factory import make_kernel
from repro.obs.counters import COUNTER_KEYS
from repro.obs.regress import (
    CounterDelta,
    RecordDiff,
    diff_baseline,
    plan_for_record,
    resimulate_record,
)
from repro.obs.telemetry import (
    PROFILE_SCHEMA_VERSION,
    TelemetryCollector,
    load_profile,
    record_from_report,
)
from repro.stencils.spec import symmetric

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_profile.json"

#: A small, fast trajectory the tests own (order matters for determinism).
LAUNCHES = [
    ("gtx580", "inplane_fullslice", 4, (32, 4, 1, 2), "sp", "unit"),
    ("gtx680", "inplane_vertical", 2, (32, 4, 1, 1), "sp", "unit"),
    ("c2070", "nvstencil", 8, (32, 4, 1, 1), "dp", "unit"),
]


def _v2_baseline(tmp_path: Path) -> Path:
    coll = TelemetryCollector()
    for device, family, order, block, dtype, source in LAUNCHES:
        plan = make_kernel(family, symmetric(order), block, dtype)
        report = simulate(plan, device, (128, 128, 64))
        coll.add_report(report, order=order, source=source)
    return coll.write(tmp_path / "baseline.json")


def _perturb_fermi_scheduler(monkeypatch):
    """Slow every Fermi launch down: 4x block-scheduling overhead."""
    params = dict(timing._GENERATION_PARAMS)
    params[Generation.FERMI] = dataclasses.replace(
        params[Generation.FERMI],
        sched_overhead_cycles=params[Generation.FERMI].sched_overhead_cycles * 4,
    )
    monkeypatch.setattr(timing, "_GENERATION_PARAMS", params)


class TestProfileCompat:
    def test_repo_baseline_is_v1_and_loads(self):
        doc = json.loads(BASELINE.read_text())
        assert doc["schema_version"] == 1  # migration fixture: keep it v1
        records = load_profile(BASELINE)
        assert len(records) == len(doc["records"]) > 0
        assert all(r.counters == {} for r in records)
        assert all(r.grid == (512, 512, 256) for r in records)

    def test_v2_roundtrip_carries_counters_and_grid(self, tmp_path):
        path = _v2_baseline(tmp_path)
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION
        records = load_profile(path)
        assert len(records) == len(LAUNCHES)
        for r in records:
            assert set(r.counters) == set(COUNTER_KEYS) | {"occupancy_limiter"}
            assert r.grid == (128, 128, 64)

    def test_unsupported_schema_version_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 99, "records": []}))
        with pytest.raises(ValueError, match="unsupported profile schema_version"):
            load_profile(bad)


class TestResimulation:
    def test_plan_for_record_rebuilds_every_baseline_kernel(self):
        for record in load_profile(BASELINE):
            plan = plan_for_record(record)
            assert plan.name == record.kernel

    def test_resimulated_record_is_bit_identical(self):
        record = load_profile(BASELINE)[0]
        again = resimulate_record(record)
        assert again.mpoints_per_s == record.mpoints_per_s
        assert again.total_cycles == record.total_cycles
        assert again.breakdown == record.breakdown


class TestDiffCleanTree:
    def test_repo_baseline_diffs_clean(self):
        report = diff_baseline(BASELINE)
        assert report.total == len(load_profile(BASELINE))
        assert report.diffs == () and report.errors == ()
        assert report.exit_code() == 0
        assert "0 regression(s)" in report.render()

    def test_v2_baseline_diffs_clean(self, tmp_path):
        report = diff_baseline(_v2_baseline(tmp_path))
        assert report.diffs == () and report.exit_code() == 0

    def test_cli_exit_zero_and_json_shape(self, tmp_path, capsys):
        path = _v2_baseline(tmp_path)
        assert main(["-q", "bench", "diff", "--baseline", str(path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["regressions"] == 0 and doc["diffs"] == []
        assert doc["total"] == len(LAUNCHES)


class TestDiffPerturbedTree:
    def test_regression_names_the_responsible_counter(self, tmp_path, monkeypatch):
        path = _v2_baseline(tmp_path)  # honest numbers first
        _perturb_fermi_scheduler(monkeypatch)
        report = diff_baseline(path)
        assert report.exit_code() == 1
        regressions = report.regressions
        # gtx580 and c2070 are Fermi-generation: both must regress; the
        # Kepler record must not.
        assert {d.record.device for d in regressions} == {"gtx580", "c2070"}
        for d in regressions:
            assert d.responsible is not None
            # The injected slowdown is scheduling overhead; the sentinel
            # must attribute it to the counter that actually moved.
            assert d.responsible.name == "stall_sched_frac"
            assert d.responsible.current > d.responsible.baseline
            assert "stall_sched_frac" in d.render()

    def test_cli_exit_nonzero_names_counter(self, tmp_path, monkeypatch, capsys):
        path = _v2_baseline(tmp_path)
        _perturb_fermi_scheduler(monkeypatch)
        assert main(["-q", "bench", "diff", "--baseline", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "stall_sched_frac" in out

    def test_tolerance_flag_suppresses_small_regressions(self, tmp_path, monkeypatch):
        path = _v2_baseline(tmp_path)
        _perturb_fermi_scheduler(monkeypatch)
        report = diff_baseline(path, tolerance=0.5)  # 50%: swallows the hit
        assert report.regressions == ()
        assert report.exit_code() == 0
        assert report.diffs  # still reported as changed, just not failing

    def test_v1_baseline_perturbation_is_unexplained(self, tmp_path, monkeypatch):
        # v1 records carry no counters and their per-plane breakdown does
        # not include scheduling overhead, so the slowdown is real but
        # unattributable — the sentinel must say so rather than guess.
        records = load_profile(BASELINE)
        doc = {
            "schema_version": 1,
            "tool": "repro.obs",
            "records": [
                {k: v for k, v in dataclasses.asdict(r).items()
                 if k not in ("counters", "grid")}
                for r in records[:4]
                if r.device in ("gtx580", "c2070")
            ],
        }
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(doc))
        _perturb_fermi_scheduler(monkeypatch)
        report = diff_baseline(path)
        assert report.exit_code() == 1
        assert report.regressions
        assert all(d.responsible is None for d in report.regressions)
        assert "unexplained" in report.render()

    def test_errors_set_exit_nonzero(self, tmp_path):
        coll = TelemetryCollector()
        plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
        report = simulate(plan, "gtx580", (128, 128, 64))
        rec = record_from_report(report, order=4, source="unit")
        coll.add(dataclasses.replace(rec, kernel="bogus.family[order4,sp](x)"))
        path = coll.write(tmp_path / "broken.json")
        report = diff_baseline(path)
        assert report.errors and report.exit_code() == 1
        assert "ERROR" in report.render()


class TestRecordDiffSemantics:
    def _diff(self, rel, deltas=(), tolerance=0.0):
        plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
        report = simulate(plan, "gtx580", (128, 128, 64))
        rec = record_from_report(report, order=4, source="unit")
        return RecordDiff(
            record=rec,
            baseline_mpoints=1000.0,
            current_mpoints=1000.0 * (1 + rel),
            deltas=tuple(deltas),
            tolerance=tolerance,
        )

    def test_tolerance_gates_the_verdict(self):
        assert self._diff(-0.05).regressed
        assert not self._diff(-0.05, tolerance=0.10).regressed
        assert self._diff(+0.05).improved
        assert not self._diff(+0.05, tolerance=0.10).improved

    def test_responsible_skips_headline_echo_fields(self):
        deltas = [
            CounterDelta("gflops", 10.0, 9.0),          # headline echo
            CounterDelta("total_cycles", 1e6, 1.1e6),   # headline echo
            CounterDelta("stall_sched_frac", 0.001, 0.004),
            CounterDelta("ipc", 0.40, 0.39),
        ]
        d = self._diff(-0.04, deltas)
        assert d.responsible.name == "stall_sched_frac"
        assert "stall_sched_frac" in d.render()

    def test_headline_only_moves_are_flagged_unexplained(self):
        d = self._diff(-0.04, [CounterDelta("gflops", 10.0, 9.6)])
        assert d.responsible is None
        assert "unexplained" in d.render()

    def test_zero_baseline_delta_has_finite_rel(self):
        delta = CounterDelta("local_spill_bytes", 0.0, 128.0)
        assert delta.rel == 128.0
        assert "->" in delta.render()


class TestFaultedRecords:
    """v3 ``faulted`` flag: degraded measurements never diff as regressions."""

    def _mixed_baseline(self, tmp_path: Path) -> Path:
        from repro.gpusim.device import get_device
        from repro.gpusim.executor import DeviceExecutor
        from repro.gpusim.faults import FaultPlan

        coll = TelemetryCollector()
        plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2))
        clean = simulate(plan, "gtx580", (128, 128, 64))
        coll.add_report(clean, order=4, source="a-clean")
        executor = DeviceExecutor(
            get_device("gtx580"), faults=FaultPlan(throttle_rate=1.0)
        )
        throttled = executor.run(plan, (128, 128, 64))
        coll.add_report(throttled, order=4, source="b-storm")
        return coll.write(tmp_path / "mixed.json")

    def test_faulted_flag_roundtrips(self, tmp_path):
        path = self._mixed_baseline(tmp_path)
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION == 3
        records = load_profile(path)
        assert [r.faulted for r in records] == [False, True]

    def test_old_versions_default_to_unfaulted(self):
        # The repo baseline predates the flag; every record loads clean.
        assert all(not r.faulted for r in load_profile(BASELINE))

    def test_diff_skips_faulted_records(self, tmp_path):
        path = self._mixed_baseline(tmp_path)
        report = diff_baseline(path)
        # The throttled record resimulates slower than the current tree
        # runs it, but it is skipped, not reported as a regression.
        assert report.skipped == 1
        assert report.diffs == () and report.errors == ()
        assert report.exit_code() == 0
        assert "1 faulted skipped" in report.render()
        assert report.to_json_obj()["skipped_faulted"] == 1

    def test_clean_reports_mention_no_skips(self, tmp_path):
        report = diff_baseline(_v2_baseline(tmp_path))
        assert report.skipped == 0
        assert "faulted skipped" not in report.render()
