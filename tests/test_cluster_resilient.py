"""Resilient cluster engine: recovery ladder, checkpoints, bit-identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CheckpointState,
    ClusterPolicy,
    MultiGpuStencil,
    ResilientClusterStencil,
    grid_digest,
    load_checkpoint,
    save_checkpoint,
)
from repro.errors import CheckpointError, ClusterError, ConfigurationError
from repro.gpusim.faults import ClusterFaultPlan
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric

STORM = ClusterFaultPlan(
    seed=11, link_corrupt_rate=0.3, dropout_rate=0.08, link_degrade_rate=0.2
)


def plan_builder(order=2, block=(16, 4, 1, 2)):
    return lambda: make_kernel("inplane_fullslice", symmetric(order), block)


@pytest.fixture
def engine():
    return ResilientClusterStencil(MultiGpuStencil(plan_builder(), "gtx580"))


class TestPolicy:
    def test_delay_is_deterministic_and_jittered(self):
        policy = ClusterPolicy(seed=3)
        assert policy.delay_s("k", 0) == ClusterPolicy(seed=3).delay_s("k", 0)
        base = policy.backoff_base_s
        for attempt in range(4):
            expect = base * policy.backoff_factor**attempt
            got = policy.delay_s("k", attempt)
            assert expect * (1 - policy.jitter) <= got <= expect * (1 + policy.jitter)

    def test_zero_jitter_is_pure_exponential(self):
        policy = ClusterPolicy(jitter=0.0, backoff_base_s=1.0, backoff_factor=3.0)
        assert [policy.delay_s("k", a) for a in range(3)] == [1.0, 3.0, 9.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterPolicy(max_exchange_retries=-1)
        with pytest.raises(ConfigurationError):
            ClusterPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            ClusterPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            ClusterPolicy(min_gpus=0)


class TestCleanPath:
    def test_byte_identical_to_plain_run_steps(self, engine, rng):
        """With no fault plan the resilient path performs exactly the
        plain engine's operations — byte-identical output."""
        g = rng.random((24, 12, 16))
        got = engine.run_campaign(g, 3, 4, cost_points=False)
        want = engine.base.run_steps(g, 3, 4)
        assert got.grid.tobytes() == want.tobytes()
        assert got.exchange_retries == 0
        assert got.quarantined == ()
        assert got.alive == (0, 1, 2)

    def test_zero_steps_returns_input_grid(self, engine, rng):
        g = rng.random((16, 8, 8)).astype(np.float32)
        got = engine.run_campaign(g, 2, 0, cost_points=False)
        assert np.array_equal(got.grid, g)

    def test_cost_points_price_the_fleet(self, engine, rng):
        got = engine.run_campaign(rng.random((24, 12, 16)), 3, 1)
        assert len(got.points) == 1
        assert got.points[0].gpus == 3


class TestStormNumerics:
    def test_storm_stays_exact(self, engine, rng):
        """Quarantine + re-decomposition + retries never change numerics:
        the surviving fleet's grid equals the single-grid sweep."""
        g = rng.random((24, 12, 16))
        got = engine.run_campaign(g, 4, 6, faults=STORM, cost_points=False)
        want = engine.base.run_steps(g, 1, 6)
        assert np.array_equal(got.grid, want)
        assert got.quarantined  # the storm actually bit
        assert got.exchange_retries > 0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500), gpus=st.integers(2, 4))
    def test_storm_property(self, seed, gpus):
        rng = np.random.default_rng(seed)
        g = rng.random((20, 8, 8))
        engine = ResilientClusterStencil(
            MultiGpuStencil(plan_builder(), "gtx580"),
            policy=ClusterPolicy(max_exchange_retries=6),
        )
        faults = ClusterFaultPlan(
            seed=seed, link_corrupt_rate=0.25, dropout_rate=0.1
        )
        try:
            got = engine.run_campaign(
                g, gpus, 4, faults=faults, cost_points=False
            )
        except ClusterError:
            return  # the whole fleet died — a legal storm outcome
        want = engine.base.run_steps(g, 1, 4)
        assert np.array_equal(got.grid, want)

    def test_total_dropout_raises_cluster_error(self, engine, rng):
        faults = ClusterFaultPlan(seed=1, dropout_rate=1.0)
        with pytest.raises(ClusterError, match="survive"):
            engine.run_campaign(
                rng.random((16, 8, 8)), 3, 2, faults=faults, cost_points=False
            )

    def test_min_gpus_floor_is_enforced(self, rng):
        engine = ResilientClusterStencil(
            MultiGpuStencil(plan_builder(), "gtx580"),
            policy=ClusterPolicy(min_gpus=4),
        )
        faults = ClusterFaultPlan(seed=11, dropout_rate=0.08)
        with pytest.raises(ClusterError, match="minimum 4"):
            engine.run_campaign(
                rng.random((24, 12, 16)), 4, 6, faults=faults, cost_points=False
            )

    def test_unrecoverable_corruption_raises(self, rng):
        """corrupt_rate=1.0 re-corrupts every retry: ladder exhausted."""
        engine = ResilientClusterStencil(
            MultiGpuStencil(plan_builder(), "gtx580"),
            policy=ClusterPolicy(max_exchange_retries=2),
        )
        faults = ClusterFaultPlan(seed=1, link_corrupt_rate=1.0)
        with pytest.raises(ClusterError, match="3 attempt"):
            engine.run_campaign(
                rng.random((16, 8, 8)), 2, 1, faults=faults, cost_points=False
            )

    def test_degraded_link_prices_higher(self, engine, rng):
        g = rng.random((24, 12, 16))
        clean = engine.run_campaign(g, 4, 6, cost_points=False)
        stormy = engine.run_campaign(
            g, 4, 6,
            faults=ClusterFaultPlan(seed=11, link_degrade_rate=1.0),
            cost_points=False,
        )
        assert stormy.exchange_time_s > clean.exchange_time_s
        # Degradation is pricing-only: the numbers are untouched.
        assert stormy.grid.tobytes() == clean.grid.tobytes()


class TestCheckpointFile:
    def make_state(self, rng, step=3):
        return CheckpointState(
            session="s", step=step, grid=rng.random((8, 4, 4)),
            alive=(0, 2), quarantined=(1,), exchange_retries=5, backoff_s=1.5,
        )

    def test_roundtrip(self, tmp_path, rng):
        state = self.make_state(rng)
        path = save_checkpoint(tmp_path / "g.ckpt", state)
        back = load_checkpoint(path, "s")
        assert np.array_equal(back.grid, state.grid)
        assert back.step == 3
        assert back.alive == (0, 2)
        assert back.quarantined == (1,)
        assert back.exchange_retries == 5
        assert back.backoff_s == 1.5

    def test_atomic_publish_leaves_no_tempfiles(self, tmp_path, rng):
        save_checkpoint(tmp_path / "g.ckpt", self.make_state(rng))
        save_checkpoint(tmp_path / "g.ckpt", self.make_state(rng, step=4))
        assert [p.name for p in tmp_path.iterdir()] == ["g.ckpt"]
        assert load_checkpoint(tmp_path / "g.ckpt", "s").step == 4

    def test_missing_file_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.ckpt", "s")

    def test_foreign_session_refused(self, tmp_path, rng):
        path = save_checkpoint(tmp_path / "g.ckpt", self.make_state(rng))
        with pytest.raises(CheckpointError, match="belongs to session"):
            load_checkpoint(path, "other")

    def test_truncated_payload_refused(self, tmp_path, rng):
        path = save_checkpoint(tmp_path / "g.ckpt", self.make_state(rng))
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])
        with pytest.raises(CheckpointError, match="torn write"):
            load_checkpoint(path, "s")

    def test_corrupted_payload_refused(self, tmp_path, rng):
        path = save_checkpoint(tmp_path / "g.ckpt", self.make_state(rng))
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="SHA-256"):
            load_checkpoint(path, "s")

    def test_garbage_header_refused(self, tmp_path):
        path = tmp_path / "g.ckpt"
        path.write_bytes(b"not json\n\x00\x01")
        with pytest.raises(CheckpointError, match="unreadable header"):
            load_checkpoint(path, "s")
        path.write_bytes(b"no newline at all")
        with pytest.raises(CheckpointError, match="no header line"):
            load_checkpoint(path, "s")


class TestResume:
    def run(self, engine, g, steps, **kw):
        return engine.run_campaign(
            g, 4, steps, faults=STORM, cost_points=False, **kw
        )

    def test_kill_and_resume_is_bit_identical(self, engine, tmp_path, rng):
        """The tentpole invariant: stop after k steps, resume to N, and
        the final grid is bit-identical to the uninterrupted run."""
        g = rng.random((24, 12, 16))
        full = self.run(engine, g, 6, checkpoint_path=tmp_path / "a.ckpt",
                        checkpoint_every=2)
        self.run(engine, g, 3, checkpoint_path=tmp_path / "b.ckpt",
                 checkpoint_every=3)
        res = self.run(engine, g, 6, checkpoint_path=tmp_path / "b.ckpt",
                       checkpoint_every=3, resume=True)
        assert res.resumed_from == 3
        assert res.grid.tobytes() == full.grid.tobytes()
        assert res.digest() == full.digest()
        assert res.exchange_retries == full.exchange_retries
        assert res.backoff_s == pytest.approx(full.backoff_s)
        assert res.quarantined == full.quarantined

    def test_resume_at_final_step_is_a_noop(self, engine, tmp_path, rng):
        g = rng.random((24, 12, 16))
        full = self.run(engine, g, 4, checkpoint_path=tmp_path / "c.ckpt",
                        checkpoint_every=2)
        res = self.run(engine, g, 4, checkpoint_path=tmp_path / "c.ckpt",
                       resume=True)
        assert res.resumed_from == 4
        assert res.grid.tobytes() == full.grid.tobytes()

    def test_resume_beyond_requested_steps_refused(self, engine, tmp_path, rng):
        g = rng.random((24, 12, 16))
        self.run(engine, g, 4, checkpoint_path=tmp_path / "d.ckpt",
                 checkpoint_every=2)
        with pytest.raises(CheckpointError, match="beyond"):
            self.run(engine, g, 2, checkpoint_path=tmp_path / "d.ckpt",
                     resume=True)

    def test_resume_requires_a_path(self, engine, rng):
        with pytest.raises(ConfigurationError, match="requires a checkpoint"):
            engine.run_campaign(rng.random((16, 8, 8)), 2, 2, resume=True)

    def test_session_key_excludes_steps(self, engine):
        """--steps k then --resume --steps N must share the checkpoint."""
        key = engine.session_key((24, 12, 16), 4, STORM)
        assert "steps" not in key
        assert "gpus=4" in key
        assert STORM.describe() in key
        assert engine.session_key((24, 12, 16), 4, None).endswith("clean")

    def test_checkpoint_session_binds_campaign_identity(
        self, engine, tmp_path, rng
    ):
        g = rng.random((24, 12, 16))
        self.run(engine, g, 4, checkpoint_path=tmp_path / "e.ckpt",
                 checkpoint_every=2)
        with pytest.raises(CheckpointError, match="belongs to session"):
            # Different fault plan => different session => refused.
            engine.run_campaign(
                g, 4, 6, faults=None, cost_points=False,
                checkpoint_path=tmp_path / "e.ckpt", resume=True,
            )


class TestObservability:
    def test_campaign_emits_catalogued_events(self, engine, tmp_path, rng):
        from repro.obs.events import JsonlEventSink, event_stream, read_events

        g = rng.random((24, 12, 16))
        path = tmp_path / "run.events"
        sink = JsonlEventSink(path)
        try:
            with event_stream(sink):
                self_run = engine.run_campaign(
                    g, 4, 6, faults=STORM, cost_points=False,
                    checkpoint_path=tmp_path / "f.ckpt", checkpoint_every=2,
                )
        finally:
            sink.close()
        _header, events = read_events(path, strict=True)
        names = [e.name for e in events]
        assert names[0] == "cluster.run.start"
        assert names[-1] == "cluster.run.finished"
        assert "cluster.gpu.quarantined" in names
        assert "cluster.redecompose" in names
        assert "cluster.exchange.retry" in names
        assert names.count("cluster.checkpoint.written") == \
            self_run.checkpoints_written

    def test_gauges_track_fleet_health(self, engine, rng):
        from repro.obs import tracing

        g = rng.random((24, 12, 16))
        with tracing() as tracer:
            result = engine.run_campaign(
                g, 4, 6, faults=STORM, cost_points=False
            )
        gauges = tracer.metrics.gauges
        assert gauges["cluster.gpus_alive"].value == len(result.alive)
        assert gauges["cluster.exchange_retries"].value == \
            result.exchange_retries

    def test_digest_matches_helper(self, engine, rng):
        g = rng.random((16, 8, 8))
        result = engine.run_campaign(g, 2, 2, cost_points=False)
        assert result.digest() == grid_digest(result.grid)

    def test_summary_mentions_recovery(self, engine, rng):
        result = engine.run_campaign(
            rng.random((24, 12, 16)), 4, 6, faults=STORM, cost_points=False
        )
        text = result.summary()
        assert "quarantined" in text
        assert "retr" in text


class TestCliExitCodes:
    """`repro cluster run` exit codes are stable: 0 ok / 1 fleet / 2 spec."""

    ARGS = [
        "-q", "cluster", "run", "--grid", "24,12,32", "--gpus", "4",
    ]

    def main(self, argv):
        from repro.cli import main

        return main(argv)

    def test_storm_campaign_exits_zero(self, tmp_path, capsys):
        ckpt = str(tmp_path / "g.ckpt")
        argv = self.ARGS + [
            "--steps", "6", "--faults", "seed=11,corrupt=0.3,dropout=0.08",
            "--checkpoint", ckpt, "--every", "2",
        ]
        assert self.main(argv) == 0
        assert "sha256" in capsys.readouterr().out
        assert self.main(argv + ["--resume"]) == 0

    def test_json_digest_matches_resume(self, tmp_path, capsys):
        import json

        ckpt = str(tmp_path / "g.ckpt")
        argv = self.ARGS + [
            "--faults", "seed=11,corrupt=0.3,dropout=0.08",
            "--checkpoint", ckpt, "--json",
        ]
        assert self.main(argv + ["--steps", "6", "--every", "2"]) == 0
        full = json.loads(capsys.readouterr().out)
        assert self.main(argv + ["--steps", "3", "--every", "3"]) == 0
        capsys.readouterr()
        assert self.main(
            argv + ["--steps", "6", "--every", "3", "--resume"]
        ) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["resumed_from"] == 3
        assert resumed["digest"] == full["digest"]

    def test_dead_fleet_exits_one(self):
        assert self.main(self.ARGS + [
            "--steps", "2", "--faults", "seed=3,dropout=1.0",
        ]) == 1

    def test_unrecoverable_corruption_exits_one(self):
        assert self.main(self.ARGS + [
            "--steps", "1", "--faults", "corrupt=1.0", "--max-retries", "1",
        ]) == 1

    def test_bad_fault_spec_exits_two(self):
        assert self.main(self.ARGS + ["--faults", "frobnicate=1"]) == 2

    def test_missing_resume_checkpoint_exits_two(self, tmp_path):
        assert self.main(self.ARGS + [
            "--steps", "2", "--checkpoint", str(tmp_path / "absent.ckpt"),
            "--resume",
        ]) == 2

    def test_corrupt_checkpoint_exits_two(self, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"not a checkpoint\njunk")
        assert self.main(self.ARGS + [
            "--steps", "2", "--checkpoint", str(bad), "--resume",
        ]) == 2

    def test_impossible_decomposition_exits_two(self):
        assert self.main([
            "-q", "cluster", "run", "--grid", "16,16,4", "--gpus", "8",
            "--steps", "1",
        ]) == 2
