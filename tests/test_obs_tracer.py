"""Tracer and metrics-registry unit tests, including the disabled-tracer
overhead smoke test the acceptance criteria require (< 5% on a small
sweep)."""

from __future__ import annotations

import time

import pytest

import repro.obs as obs
from repro.gpusim.executor import DeviceExecutor
from repro.kernels.factory import make_kernel
from repro.obs.metrics import MetricsRegistry, validate_metric_name
from repro.obs.tracer import maybe_span
from repro.stencils.spec import symmetric

GRID = (96, 96, 48)


def _plan(order=2, block=(32, 4, 1, 2)):
    return make_kernel("inplane_fullslice", symmetric(order), block, "sp")


class TestTracer:
    def test_disabled_by_default(self):
        assert obs.current_tracer() is None

    def test_tracing_scopes_the_tracer(self):
        with obs.tracing() as tracer:
            assert obs.current_tracer() is tracer
            with obs.tracing() as inner:
                assert obs.current_tracer() is inner
            assert obs.current_tracer() is tracer
        assert obs.current_tracer() is None

    def test_host_span_nesting_and_args(self):
        tracer = obs.Tracer()
        with tracer.span("outer", "tune.run") as outer:
            with tracer.span("inner", "tune.trial", config="(32, 4, 1, 2)") as sp:
                sp.args["mpoints_per_s"] = 123.0
        assert outer.depth == 0 and outer.dur > 0
        inner = tracer.host_spans("tune.trial")[0]
        assert inner.depth == 1
        assert inner.args == {"config": "(32, 4, 1, 2)", "mpoints_per_s": 123.0}
        # The inner span closes first, so it cannot outlast the outer one.
        assert inner.begin >= outer.begin
        assert inner.begin + inner.dur <= outer.begin + outer.dur

    def test_span_closes_on_exception(self):
        tracer = obs.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom", "tune.trial"):
                raise RuntimeError("boom")
        assert tracer.spans[0].dur > 0

    def test_instant_marker(self):
        tracer = obs.Tracer()
        sp = tracer.instant("reject", "tune.trial", rejected="static")
        assert sp.instant and sp.dur == 0.0

    def test_device_cursor_packs_launches_back_to_back(self):
        tracer = obs.Tracer()
        assert tracer.alloc_cycles(100.0) == 0.0
        assert tracer.alloc_cycles(50.0) == 100.0
        assert tracer.alloc_cycles(1.0) == 150.0

    def test_maybe_span_disabled_is_inert(self):
        with maybe_span(None, "x", "tune.trial") as sp:
            assert sp is None

    def test_simulate_untraced_records_nothing(self):
        tracer = obs.Tracer()
        DeviceExecutor("gtx580").run(_plan(), GRID)
        assert tracer.spans == []


class TestMetrics:
    def test_naming_convention(self):
        assert validate_metric_name("sim.bytes_moved") == "sim.bytes_moved"
        for bad in ("BytesMoved", "sim", "sim.", ".sim", "sim.Bytes", "sim bytes"):
            with pytest.raises(ValueError):
                validate_metric_name(bad)

    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("sim.cycles")
        c.inc(2.0)
        c.inc()
        assert reg.counter("sim.cycles").value == 3.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("sim.occupancy").set(0.5)
        h = reg.histogram("sim.plane_cycles")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap["gauges"]["sim.occupancy"] == 0.5
        assert snap["histograms"]["sim.plane_cycles"] == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
            "p50": 2.0, "p95": 3.0, "p99": 3.0,
        }

    def test_empty_histogram_summary(self):
        assert MetricsRegistry().histogram("a.b").summary()["count"] == 0


class TestDisabledOverhead:
    def test_disabled_overhead(self):
        """The disabled instrumentation path (one contextvar lookup per
        launch) must cost < 5% of a small simulation sweep.

        Baseline: the same sweep with the executor's tracer lookup
        monkeypatched to a constant ``None`` — i.e. the pre-instrumentation
        code path.  Using min-of-5 timings on both sides keeps scheduler
        noise out of the ratio.
        """
        import repro.gpusim.executor as executor_mod

        executor = DeviceExecutor("gtx580")
        plans = [_plan(order, block)
                 for order in (2, 4) for block in ((32, 4, 1, 2), (32, 8, 2, 1))]

        def sweep():
            for plan in plans:
                executor.run(plan, GRID)

        def timed():
            t0 = time.perf_counter()
            sweep()
            return time.perf_counter() - t0

        def measure(repeats=7):
            """Interleave instrumented and baseline timings so transient
            machine load hits both sides equally; min-of-N on each."""
            original = executor_mod.current_tracer
            real_times, base_times = [], []
            try:
                for _ in range(repeats):
                    executor_mod.current_tracer = original
                    real_times.append(timed())
                    executor_mod.current_tracer = lambda: None
                    base_times.append(timed())
            finally:
                executor_mod.current_tracer = original
            return min(real_times) / min(base_times) - 1.0

        sweep()  # warm caches before timing either side
        overhead = min(measure() for _ in range(3))
        assert overhead < 0.05, f"disabled-tracer overhead {overhead:.1%}"
