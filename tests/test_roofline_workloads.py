"""Roofline analysis and grid-generator tests."""

import numpy as np
import pytest

from repro.errors import GridShapeError
from repro.gpusim.device import get_device
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.metrics.roofline import roofline
from repro.stencils.reference import apply_expr
from repro.stencils.spec import symmetric
from repro.workloads import (
    checkerboard,
    coordinate_polynomial,
    hot_cube,
    plane_wave,
    random_grid,
)

GRID = (256, 256, 64)


class TestRoofline:
    def test_order2_sp_is_bandwidth_bound(self, gtx580):
        """Section V-B: 'the 2nd order SP stencil is bandwidth-limited'."""
        plan = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(64, 4, 1, 2))
        point = roofline(plan, gtx580, GRID)
        assert point.bandwidth_bound
        assert point.arithmetic_intensity < point.ridge_intensity

    def test_high_order_dp_on_kepler_is_compute_bound(self):
        """GTX680's 1/24 DP ratio makes the ridge tiny."""
        dev = get_device("gtx680")
        plan = make_kernel("inplane_fullslice", symmetric(12), BlockConfig(32, 8), "dp")
        point = roofline(plan, dev, GRID)
        assert not point.bandwidth_bound

    def test_achieved_below_ceiling(self, paper_device):
        plan = make_kernel("inplane_fullslice", symmetric(4), BlockConfig(32, 4, 1, 2))
        point = roofline(plan, paper_device, GRID)
        assert 0 < point.achieved_mpoints <= point.ceiling_mpoints * 1.001
        assert 0 < point.efficiency <= 1.0

    def test_reuses_given_report(self, gtx580):
        from repro.gpusim.executor import simulate

        plan = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4))
        rep = simulate(plan, gtx580, GRID)
        point = roofline(plan, gtx580, GRID, report=rep)
        assert point.achieved_mpoints == rep.mpoints_per_s

    def test_summary_names_the_bound(self, gtx580):
        plan = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4))
        assert "bandwidth-bound" in roofline(plan, gtx580, GRID).summary()

    def test_ridge_matches_device_ratio(self, gtx580):
        plan = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4))
        point = roofline(plan, gtx580, GRID)
        assert point.ridge_intensity == pytest.approx(
            gtx580.peak_sp_gflops / gtx580.measured_bandwidth_gbs, rel=1e-9
        )


class TestWorkloads:
    def test_random_grid_deterministic(self):
        a = random_grid((4, 5, 6), seed=9)
        b = random_grid((4, 5, 6), seed=9)
        np.testing.assert_array_equal(a, b)
        assert a.dtype == np.float32

    def test_hot_cube_bounds(self):
        g = hot_cube((16, 16, 16), temperature=50.0)
        assert g.max() == 50.0
        assert g.min() == 0.0
        assert g[8, 8, 8] == 50.0
        assert g[0, 0, 0] == 0.0

    def test_plane_wave_axis(self):
        g = plane_wave((8, 8, 32), wavelength=8.0, axis=2)
        # Constant across z and y, varying along x.
        assert np.allclose(g[0], g[5])
        assert not np.allclose(g[0, 0, :8], g[0, 0, 1:9])

    def test_plane_wave_periodicity(self):
        g = plane_wave((4, 4, 32), wavelength=8.0, axis=2)
        np.testing.assert_allclose(g[0, 0, :8], g[0, 0, 8:16], atol=1e-6)

    def test_checkerboard_alternates(self):
        g = checkerboard((8, 8, 8), cell=2)
        assert g[0, 0, 0] != g[0, 0, 2]
        assert set(np.unique(g)) == {0.0, 1.0}

    def test_polynomial_known_laplacian(self):
        from repro.stencils.applications import laplacian

        g = coordinate_polynomial((10, 10, 10), coeffs=(1.0, 2.0, 3.0))
        lap = apply_expr(laplacian(), [g])[0]
        np.testing.assert_allclose(lap[1:-1, 1:-1, 1:-1], 12.0, rtol=1e-12)

    @pytest.mark.parametrize("bad", [(0, 4, 4), (4, 4), (4, -1, 4)])
    def test_shape_validation(self, bad):
        with pytest.raises(GridShapeError):
            random_grid(bad)  # type: ignore[arg-type]

    def test_plane_wave_validation(self):
        with pytest.raises(GridShapeError):
            plane_wave((4, 4, 4), axis=3)
        with pytest.raises(GridShapeError):
            plane_wave((4, 4, 4), wavelength=0)

    def test_checkerboard_validation(self):
        with pytest.raises(GridShapeError):
            checkerboard((4, 4, 4), cell=0)
