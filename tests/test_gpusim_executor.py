"""Executor / SimReport tests."""

import pytest

from repro.gpusim.executor import DeviceExecutor, simulate
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric

GRID = (256, 256, 64)


@pytest.fixture
def plan():
    return make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4, 1, 4))


class TestSimReport:
    def test_fields_consistent(self, plan, gtx580):
        rep = DeviceExecutor(gtx580).run(plan, GRID)
        assert rep.device_name == "gtx580"
        assert rep.kernel_name == plan.name
        assert rep.time_s > 0
        assert rep.total_cycles == pytest.approx(
            rep.time_s * gtx580.clock_hz, rel=1e-9
        )
        volume = GRID[0] * GRID[1] * GRID[2]
        assert rep.mpoints_per_s == pytest.approx(volume / rep.time_s / 1e6)

    def test_gflops_matches_flop_count(self, plan, gtx580):
        rep = simulate(plan, gtx580, GRID)
        wl = plan.block_workload(gtx580, GRID)
        assert rep.gflops == pytest.approx(
            rep.mpoints_per_s * 1e6 * wl.flops_per_point / 1e9
        )

    def test_load_efficiency_in_unit_interval(self, plan, paper_device):
        rep = simulate(plan, paper_device, GRID)
        assert 0.0 < rep.load_efficiency <= 1.0

    def test_bandwidth_below_measured(self, plan, paper_device):
        rep = simulate(plan, paper_device, GRID)
        assert 0 < rep.bandwidth_gbs <= paper_device.measured_bandwidth_gbs * 1.001

    def test_device_by_name(self, plan):
        rep = simulate(plan, "gtx680", GRID)
        assert rep.device_name == "gtx680"

    def test_summary_contains_key_numbers(self, plan, gtx580):
        rep = simulate(plan, gtx580, GRID)
        text = rep.summary()
        assert "MPoint/s" in text and "gtx580" in text

    def test_breakdown_keys(self, plan, gtx580):
        rep = simulate(plan, gtx580, GRID)
        for key in (
            "mem_cycles_per_plane",
            "compute_cycles_per_plane",
            "exposed_cycles_per_plane",
            "sync_cycles_per_plane",
        ):
            assert key in rep.breakdown

    def test_meta_records_config(self, plan, gtx580):
        rep = simulate(plan, gtx580, GRID)
        assert rep.meta["grid_shape"] == GRID
        assert rep.meta["dtype"] == "sp"


class TestCrossDevice:
    def test_gtx580_fastest_sp_order2(self, plan):
        """Order-2 SP is bandwidth-bound: GTX580's higher measured
        bandwidth should put it ahead of the C2070 (as in Table IV)."""
        fast = simulate(plan, "gtx580", GRID)
        slow = simulate(plan, "c2070", GRID)
        assert fast.mpoints_per_s > slow.mpoints_per_s

    def test_dp_slower_than_sp(self, gtx580):
        sp = make_kernel("inplane_fullslice", symmetric(4), BlockConfig(32, 4), "sp")
        dp = make_kernel("inplane_fullslice", symmetric(4), BlockConfig(32, 4), "dp")
        assert (
            simulate(dp, gtx580, GRID).mpoints_per_s
            < simulate(sp, gtx580, GRID).mpoints_per_s
        )

    def test_higher_order_slower(self, gtx580):
        lo = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4))
        hi = make_kernel("inplane_fullslice", symmetric(12), BlockConfig(32, 4))
        assert (
            simulate(hi, gtx580, GRID).mpoints_per_s
            < simulate(lo, gtx580, GRID).mpoints_per_s
        )
