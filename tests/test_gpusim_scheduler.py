"""Greedy vs wave scheduling cross-validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gpusim.scheduler import (
    ScheduleResult,
    greedy_schedule,
    wave_schedule_makespan,
)


class TestGreedy:
    def test_single_wave(self):
        res = greedy_schedule(blocks=32, sm_count=16, slots_per_sm=2, block_cycles=100)
        assert res.makespan == 100
        assert res.utilization == pytest.approx(1.0)

    def test_exact_waves_match_analytic(self):
        greedy = greedy_schedule(96, 16, 2, 100).makespan
        wave = wave_schedule_makespan(96, 16, 2, 100)
        assert greedy == wave == 300

    def test_ragged_tail_blurs(self):
        """33 blocks on 32 slots: the greedy distributor starts the odd
        block the moment a slot frees — same makespan as the wave model
        here, but the busy time is concentrated on one SM."""
        res = greedy_schedule(33, 16, 2, 100)
        assert res.makespan == 200
        assert max(res.blocks_per_sm) == 3
        assert min(res.blocks_per_sm) == 2

    def test_block_counts_sum(self):
        res = greedy_schedule(77, 14, 3, 50)
        assert sum(res.blocks_per_sm) == 77

    def test_sched_overhead_added(self):
        a = greedy_schedule(32, 16, 2, 100).makespan
        b = greedy_schedule(32, 16, 2, 100, sched_overhead_cycles=10).makespan
        assert b == a + 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            greedy_schedule(0, 16, 2, 100)
        with pytest.raises(ConfigurationError):
            greedy_schedule(1, 16, 2, 0)
        with pytest.raises(ConfigurationError):
            wave_schedule_makespan(1, 0, 2, 100)


class TestCrossValidation:
    @settings(max_examples=80, deadline=None)
    @given(
        blocks=st.integers(1, 600),
        sm=st.integers(1, 16),
        slots=st.integers(1, 8),
        cycles=st.floats(1.0, 1e4),
    )
    def test_greedy_never_slower_than_waves(self, blocks, sm, slots, cycles):
        greedy = greedy_schedule(blocks, sm, slots, cycles).makespan
        wave = wave_schedule_makespan(blocks, sm, slots, cycles)
        assert greedy <= wave + 1e-6

    @settings(max_examples=80, deadline=None)
    @given(
        blocks=st.integers(1, 600),
        sm=st.integers(1, 16),
        slots=st.integers(1, 8),
    )
    def test_gap_bounded_by_one_block(self, blocks, sm, slots):
        """The wave model over-counts at most one block duration — its
        remainder-stage tail error, now quantified."""
        cycles = 100.0
        greedy = greedy_schedule(blocks, sm, slots, cycles).makespan
        wave = wave_schedule_makespan(blocks, sm, slots, cycles)
        assert wave - greedy <= cycles + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(
        blocks=st.integers(1, 400),
        sm=st.integers(1, 16),
        slots=st.integers(1, 4),
    )
    def test_exact_when_waves_divide(self, blocks, sm, slots):
        per_wave = sm * slots
        whole = max(1, (blocks // per_wave)) * per_wave
        greedy = greedy_schedule(whole, sm, slots, 100.0).makespan
        wave = wave_schedule_makespan(whole, sm, slots, 100.0)
        assert greedy == pytest.approx(wave)

    @settings(max_examples=40, deadline=None)
    @given(blocks=st.integers(1, 300), sm=st.integers(1, 16))
    def test_makespan_lower_bound(self, blocks, sm):
        """Never faster than perfect parallelism over all slots."""
        res = greedy_schedule(blocks, sm, 2, 100.0)
        assert res.makespan >= 100.0 * blocks / (sm * 2) - 1e-6
        assert res.makespan >= 100.0
