"""Model-based (beta-cutoff) tuner tests — the section VI procedure."""

import math

import pytest

from repro.errors import TuningError
from repro.gpusim.device import get_device
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric
from repro.tuning.exhaustive import exhaustive_tune, feasible_configs
from repro.tuning.modelbased import model_based_tune
from repro.tuning.space import ParameterSpace

GRID = (512, 512, 256)


def builder(order=2):
    spec = symmetric(order)
    return lambda cfg: make_kernel("inplane_fullslice", spec, cfg)


class TestProcedure:
    def test_executes_exactly_beta_fraction(self, gtx580):
        build = builder()
        configs = feasible_configs(build, gtx580, GRID)
        res = model_based_tune(build, gtx580, GRID, beta=0.05)
        assert res.space_size == len(configs)
        assert res.evaluated <= math.ceil(0.05 * len(configs))
        assert res.method == "model"

    def test_entries_carry_predictions(self, gtx580):
        res = model_based_tune(builder(), gtx580, GRID, beta=0.05)
        assert all(e.predicted is not None for e in res.entries)

    def test_beta_one_equals_exhaustive_best(self, gtx580):
        """Executing the whole ranked space must find the true optimum."""
        exh = exhaustive_tune(builder(), gtx580, GRID)
        mb = model_based_tune(builder(), gtx580, GRID, beta=1.0)
        assert mb.best_mpoints == pytest.approx(exh.best_mpoints)

    def test_larger_beta_never_worse(self, gtx580):
        lo = model_based_tune(builder(), gtx580, GRID, beta=0.05)
        hi = model_based_tune(builder(), gtx580, GRID, beta=0.25)
        assert hi.best_mpoints >= lo.best_mpoints

    @pytest.mark.parametrize("beta", [0.0, -0.1, 1.5])
    def test_invalid_beta(self, gtx580, beta):
        with pytest.raises(TuningError):
            model_based_tune(builder(), gtx580, GRID, beta=beta)

    @pytest.mark.parametrize("order", [2, 8, 12])
    def test_gap_to_exhaustive_reasonable(self, gtx580, order):
        """Fig 12's claim, reproduced loosely: the beta=5% result lands
        within a modest fraction of the exhaustive optimum."""
        exh = exhaustive_tune(builder(order), gtx580, GRID)
        mb = model_based_tune(builder(order), gtx580, GRID, beta=0.05)
        gap = 1.0 - mb.best_mpoints / exh.best_mpoints
        assert gap <= 0.25

    def test_minimum_one_candidate(self, gtx580):
        """Even a tiny beta executes at least one configuration."""
        res = model_based_tune(builder(), gtx580, GRID, beta=1e-9)
        assert res.evaluated >= 1
