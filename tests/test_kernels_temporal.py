"""Temporal-blocking (ghost zone) extension tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate
from repro.kernels.config import BlockConfig
from repro.kernels.temporal import TemporalInPlaneKernel
from repro.stencils.reference import iterate_symmetric
from repro.stencils.spec import symmetric

GRID = (256, 256, 64)
BLOCK = BlockConfig(32, 8, 1, 2)


class TestNumerics:
    @pytest.mark.parametrize("steps", [1, 2, 3])
    def test_fused_steps_equal_repeated_sweeps(self, steps, rng):
        plan = TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=steps)
        g = rng.random((12, 14, 16)).astype(np.float32)
        out = plan.execute(g)
        ref = iterate_symmetric(symmetric(2), g, steps)
        np.testing.assert_allclose(out, ref, rtol=1e-4)

    def test_rejects_zero_steps(self):
        with pytest.raises(ConfigurationError):
            TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=0)


class TestGeometry:
    def test_ghost_width(self):
        plan = TemporalInPlaneKernel(symmetric(4), BLOCK, time_steps=3)
        assert plan.ghost() == 6

    def test_t1_matches_fullslice_footprint(self):
        from repro.kernels.inplane import InPlaneKernel

        t1 = TemporalInPlaneKernel(symmetric(4), BLOCK, time_steps=1)
        fs = InPlaneKernel(symmetric(4), BLOCK, variant="fullslice")
        assert t1.loaded_elems_per_plane() == fs.loaded_elems_per_plane()
        assert t1.compute_inflation() == pytest.approx(1.0)

    def test_compute_inflation_grows_with_t(self):
        vals = [
            TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=t).compute_inflation()
            for t in (1, 2, 3, 4)
        ]
        assert vals == sorted(vals)
        assert vals[0] == pytest.approx(1.0)

    def test_loads_amortize_per_sweep(self, gtx580):
        """Per logical sweep, T=2 moves fewer global bytes than T=1."""
        t1 = TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=1)
        t2 = TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=2)
        b1 = t1.block_workload(gtx580, GRID).memory.total_transferred_bytes
        b2 = t2.block_workload(gtx580, GRID).memory.total_transferred_bytes
        assert b2 / 2 < b1

    def test_resources_grow_with_t(self, gtx580):
        w1 = TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=1).block_workload(gtx580, GRID)
        w3 = TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=3).block_workload(gtx580, GRID)
        assert w3.regs_per_thread > w1.regs_per_thread
        assert w3.smem_bytes > w1.smem_bytes


class TestPerformanceShape:
    def test_t2_wins_for_bandwidth_bound_stencil(self):
        """The classic temporal-blocking result: fusing two sweeps of a
        low-order SP stencil beats sweep-at-a-time on effective MPoint/s."""
        dev = get_device("gtx580")
        t1 = simulate(TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=1), dev, GRID)
        t2 = simulate(TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=2), dev, GRID)
        assert t2.mpoints_per_s > t1.mpoints_per_s

    def test_gain_collapses_at_high_order(self):
        """Ghost windows grow with r*T: at order 8, fusing two steps is
        already worth less than at order 2 (or infeasible outright)."""
        from repro.errors import ResourceLimitError

        dev = get_device("gtx580")

        def rate(order, t):
            try:
                return simulate(
                    TemporalInPlaneKernel(symmetric(order), BLOCK, time_steps=t),
                    dev, GRID,
                ).mpoints_per_s
            except ResourceLimitError:
                return 0.0

        gain_high = rate(8, 2) / rate(8, 1)
        gain_low = rate(2, 2) / rate(2, 1)
        assert gain_low > gain_high

    def test_mpoints_counts_logical_sweeps(self, gtx580):
        plan = TemporalInPlaneKernel(symmetric(2), BLOCK, time_steps=4)
        gw = plan.grid_workload(gtx580, GRID)
        assert gw.total_points == GRID[0] * GRID[1] * GRID[2] * 4
