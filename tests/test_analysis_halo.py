"""Out-of-bounds halo analysis."""

from repro.analysis import analyze_plan
from repro.analysis.halo import grid_halo_diagnostics, workload_halo_diagnostics
from repro.gpusim.device import get_device
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import InPlaneKernel
from repro.kernels.multigrid import MultiGridKernel
from repro.stencils.expr import OutputSpec, StencilExpr, Tap
from repro.stencils.spec import symmetric


def plan_of(order=2, tx=32, ty=4, rx=1, ry=1):
    return InPlaneKernel(symmetric(order), BlockConfig(tx, ty, rx, ry))


class TestGridHalo:
    def test_roomy_grid_is_clean(self):
        assert grid_halo_diagnostics(plan_of(), (64, 64, 64)) == []

    def test_grid_smaller_than_extent(self):
        # radius-4 stencil needs 9 planes; give it 8.
        diags = grid_halo_diagnostics(plan_of(order=8, tx=16, ty=1), (8, 64, 64))
        assert "HALO-GRID-SMALL" in {d.rule for d in diags}

    def test_tile_exceeding_plane(self):
        diags = grid_halo_diagnostics(plan_of(tx=128, ty=1), (64, 64, 64))
        assert "HALO-TILE-EXCEEDS" in {d.rule for d in diags}

    def test_tap_reaching_past_the_grid(self):
        expr = StencilExpr(
            name="longreach",
            n_grids=1,
            outputs=(
                OutputSpec(
                    name="out",
                    taps=(
                        Tap(grid=0, offset=(0, 0, 0), coeff=1.0),
                        Tap(grid=0, offset=(40, 0, 0), coeff=1.0),
                        Tap(grid=0, offset=(-40, 0, 0), coeff=1.0),
                    ),
                ),
            ),
        )
        plan = MultiGridKernel(expr, BlockConfig(16, 4))
        diags = grid_halo_diagnostics(plan, (32, 512, 512))
        oob = [d for d in diags if d.rule == "HALO-TAP-OOB"]
        # Both long taps overreach x=32; the centre tap is fine.
        assert len(oob) == 2

    def test_symmetric_plans_have_no_taps_to_check(self):
        # Symmetric kernels carry a spec, not an expr — only the extent
        # checks apply.
        assert grid_halo_diagnostics(plan_of(), (512, 512, 64)) == []


class TestWorkloadHalo:
    def test_healthy_workload_is_clean(self):
        device = get_device("gtx580")
        plan = plan_of()
        wl = plan.block_workload(device, (512, 512, 64))
        assert workload_halo_diagnostics(plan, wl, (512, 512, 64)) == []

    def test_short_shared_buffer_flagged(self):
        class ShortSmem(InPlaneKernel):
            def smem_tile_bytes(self, halo_x, halo_y):
                return 8  # declared buffer far below one bare tile plane

        device = get_device("gtx580")
        plan = ShortSmem(symmetric(2), BlockConfig(32, 4))
        wl = plan.block_workload(device, (512, 512, 64))
        diags = workload_halo_diagnostics(plan, wl, (512, 512, 64))
        assert "HALO-SMEM-SHORT" in {d.rule for d in diags}
        report = analyze_plan(plan, device=device, grid_shape=(512, 512, 64))
        assert not report.ok

    def test_prologue_swallowing_the_grid(self):
        device = get_device("gtx580")
        plan = plan_of(order=8, tx=16, ty=1)
        # lz=9 satisfies the 2r+1 extent, but an order-8 pipeline still
        # spends >= lz planes filling.
        wl = plan.block_workload(device, (512, 512, 9))
        if wl.prologue_planes >= 9:
            diags = workload_halo_diagnostics(plan, wl, (512, 512, 9))
            assert "HALO-PROLOGUE" in {d.rule for d in diags}
