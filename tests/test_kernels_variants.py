"""Kernel-variant tests: nvstencil, the four in-plane variants, naive, 3D.

Covers both contracts: numeric execution vs the reference, and the
structural properties of the declared workloads (the paper's qualitative
claims about each variant's traffic).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpusim.device import get_device
from repro.kernels.blocking3d import Blocking3DKernel
from repro.kernels.config import BlockConfig
from repro.kernels.factory import KERNEL_FAMILIES, make_kernel
from repro.kernels.inplane import INPLANE_VARIANTS, InPlaneKernel
from repro.kernels.naive import NaiveKernel
from repro.kernels.nvstencil import NvStencilKernel
from repro.stencils.catalog import redundant_corner_elems
from repro.stencils.reference import apply_symmetric
from repro.stencils.spec import symmetric

GRID = (256, 256, 64)
BLOCK = BlockConfig(32, 4, 1, 2)


def workload(family, order=4, block=BLOCK, dtype="sp", device="gtx580", **kw):
    plan = make_kernel(family, symmetric(order), block, dtype, **kw)
    return plan, plan.block_workload(get_device(device), GRID)


class TestNumericContract:
    @pytest.mark.parametrize("family", sorted(set(KERNEL_FAMILIES) - {"temporal"}))
    @pytest.mark.parametrize("order", [2, 6])
    def test_execute_matches_reference(self, family, order, rng):
        plan = make_kernel(family, symmetric(order), BLOCK)
        g = rng.random((16, 20, 24)).astype(np.float32)
        ref = apply_symmetric(symmetric(order), g)
        plan.validate_against(ref, plan.execute(g))

    def test_temporal_family_executes_fused_sweeps(self, rng):
        # The temporal family is multi-sweep by construction; covered in
        # depth by tests/test_kernels_temporal.py.
        plan = make_kernel("temporal", symmetric(2), BLOCK, time_steps=1)
        g = rng.random((12, 20, 24)).astype(np.float32)
        ref = apply_symmetric(symmetric(2), g)
        plan.validate_against(ref, plan.execute(g))

    @pytest.mark.parametrize("variant", INPLANE_VARIANTS)
    def test_all_inplane_variants_numerically_identical(self, variant, rng):
        """Loading variants change memory behaviour, never the numbers."""
        g = rng.random((14, 16, 18)).astype(np.float64)
        base = InPlaneKernel(symmetric(4), BLOCK, variant="fullslice").execute(g)
        other = InPlaneKernel(symmetric(4), BLOCK, variant=variant).execute(g)
        np.testing.assert_array_equal(base, other)

    def test_dp_execution(self, rng):
        plan = make_kernel("inplane_fullslice", symmetric(2), BLOCK, "dp")
        g = rng.random((10, 12, 14))
        out = plan.execute(g)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, apply_symmetric(symmetric(2), g), rtol=1e-12)


class TestWorkloadStructure:
    def test_nvstencil_has_four_load_phases(self):
        _, wl = workload("nvstencil")
        assert wl.memory.load_phases == 4

    def test_fullslice_single_phase(self):
        _, wl = workload("inplane_fullslice")
        assert wl.memory.load_phases == 1

    def test_variant_phase_ordering(self):
        phases = {
            v: workload(f"inplane_{v}")[1].memory.load_phases
            for v in INPLANE_VARIANTS
        }
        assert phases["fullslice"] < phases["horizontal"] < phases["vertical"] <= phases["classical"]

    def test_fullslice_loads_4r2_redundant_corners(self):
        order = 8
        fs = make_kernel("inplane_fullslice", symmetric(order), BLOCK)
        hz = make_kernel("inplane_horizontal", symmetric(order), BLOCK)
        assert (
            fs.loaded_elems_per_plane() - hz.loaded_elems_per_plane()
            == redundant_corner_elems(order)
        )

    def test_nvstencil_and_vertical_have_camped_strips(self):
        for fam in ("nvstencil", "inplane_vertical", "inplane_classical"):
            _, wl = workload(fam)
            assert wl.memory.camped_bytes > 0, fam

    def test_merged_variants_have_no_camping(self):
        for fam in ("inplane_fullslice", "inplane_horizontal"):
            _, wl = workload(fam)
            assert wl.memory.camped_bytes == 0, fam

    def test_inplane_fewer_load_instructions_than_nvstencil(self):
        _, nv = workload("nvstencil")
        _, fs = workload("inplane_fullslice")
        assert fs.memory.load_instructions < nv.memory.load_instructions

    def test_flop_counts_match_table2(self):
        _, nv = workload("nvstencil", order=8)
        _, fs = workload("inplane_fullslice", order=8)
        assert nv.flops_per_point == 29
        assert fs.flops_per_point == 33

    def test_equal_arithmetic_instructions(self):
        """The in-plane extra flops lower to the same instruction count."""
        _, nv = workload("nvstencil", order=8)
        _, fs = workload("inplane_fullslice", order=8)
        assert nv.arith_instructions == fs.arith_instructions == 25

    def test_register_tiling_scales_state(self):
        _, small = workload("inplane_fullslice", block=BlockConfig(32, 4))
        _, big = workload("inplane_fullslice", block=BlockConfig(32, 4, 2, 4))
        assert big.regs_per_thread > small.regs_per_thread
        assert big.ilp == 8.0

    def test_ilp_equals_register_tile(self):
        _, wl = workload("inplane_fullslice", block=BlockConfig(32, 4, 2, 2))
        assert wl.ilp == 4.0

    def test_smem_grows_with_radius(self):
        _, lo = workload("inplane_fullslice", order=2)
        _, hi = workload("inplane_fullslice", order=12)
        assert hi.smem_bytes > lo.smem_bytes

    def test_dp_doubles_bytes(self):
        # Wide tile so line quantization doesn't mask the 2x element size.
        wide = BlockConfig(128, 4, 1, 2)
        _, sp = workload("inplane_fullslice", block=wide, dtype="sp")
        _, dp = workload("inplane_fullslice", block=wide, dtype="dp")
        assert dp.memory.load_transferred_bytes > 1.7 * sp.memory.load_transferred_bytes

    def test_grid_workload_blocks_eqn6(self, gtx580):
        plan = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(32, 4, 2, 4))
        gw = plan.grid_workload(gtx580, GRID)
        assert gw.blocks == (256 // 64) * (256 // 16)
        assert gw.total_points == 256 * 256 * 64

    def test_oversized_tile_rejected(self, gtx580):
        plan = make_kernel("inplane_fullslice", symmetric(2), BlockConfig(512, 2, 4, 1))
        with pytest.raises(ConfigurationError):
            plan.block_workload(gtx580, (256, 256, 64))


class TestNaiveAndBlocking3D:
    def test_naive_reloads_every_plane(self):
        """No z reuse: ~(2r+1)x the load traffic of the streaming kernels."""
        _, naive = workload("naive", order=4)
        _, fs = workload("inplane_fullslice", order=4)
        assert naive.memory.load_transferred_bytes > 3 * fs.memory.load_transferred_bytes

    def test_naive_uses_no_smem(self):
        _, wl = workload("naive")
        assert wl.smem_bytes == 0

    def test_blocking3d_z_halo_factor(self):
        plan = Blocking3DKernel(symmetric(8), BLOCK, tz=32)
        assert plan.z_halo_factor() == pytest.approx(1.25)  # paper: 25% at order 8

    def test_blocking3d_more_traffic_than_25d(self, gtx580):
        b3d = Blocking3DKernel(symmetric(8), BLOCK, tz=16)
        fs = InPlaneKernel(symmetric(8), BLOCK, variant="fullslice")
        assert (
            b3d.block_workload(gtx580, GRID).memory.load_transferred_bytes
            > fs.block_workload(gtx580, GRID).memory.load_transferred_bytes
        )

    def test_blocking3d_rejects_bad_tz(self):
        with pytest.raises(ConfigurationError):
            Blocking3DKernel(symmetric(2), BLOCK, tz=0)


class TestFactory:
    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            make_kernel("nope", 2, (32, 4))

    def test_accepts_order_and_tuple(self):
        plan = make_kernel("nvstencil", 4, (32, 4))
        assert isinstance(plan, NvStencilKernel)
        assert plan.spec.order == 4

    def test_family_names(self):
        assert set(KERNEL_FAMILIES) == {
            "nvstencil", "naive", "blocking3d", "temporal", "texture",
            "inplane_classical", "inplane_vertical",
            "inplane_horizontal", "inplane_fullslice",
        }

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            InPlaneKernel(symmetric(2), BLOCK, variant="diagonal")

    def test_name_includes_order_and_dtype(self):
        plan = make_kernel("inplane_fullslice", 6, (32, 8), "dp")
        assert "order6" in plan.name and "dp" in plan.name


class TestTexturePath:
    def test_no_smem_no_barriers(self, gtx580):
        _, wl = workload("texture")
        assert wl.smem_bytes == 0
        assert wl.syncs_per_plane == 0

    def test_cache_load_instructions_grow_with_radius(self):
        _, lo = workload("texture", order=2)
        _, hi = workload("texture", order=12)
        assert hi.memory.load_instructions > 2 * lo.memory.load_instructions

    def test_dram_bytes_match_fullslice(self, gtx580):
        """The cache coalesces the footprint: same lines as the merged load."""
        _, tex = workload("texture", order=4)
        _, fs = workload("inplane_fullslice", order=4)
        assert tex.memory.load_transactions == fs.memory.load_transactions

    def test_numerics(self, rng):
        import numpy as np
        plan = make_kernel("texture", symmetric(4), BLOCK)
        g = rng.random((14, 16, 20)).astype(np.float32)
        ref = apply_symmetric(symmetric(4), g)
        plan.validate_against(ref, plan.execute(g))
