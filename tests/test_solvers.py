"""Jacobi Poisson solver integration tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solvers import JacobiPoissonSolver, SolveResult, jacobi_spectral_bound
from repro.workloads import coordinate_polynomial


def manufactured(n=18):
    """u* with lap(u*) = 12 everywhere; boundary from u*."""
    u_star = coordinate_polynomial((n, n, n), coeffs=(1.0, 2.0, 3.0))
    f = np.full_like(u_star, 12.0)
    u0 = u_star.copy()
    u0[1:-1, 1:-1, 1:-1] = 0.0
    return u0, f, u_star


class TestSolver:
    def test_converges_to_manufactured_solution(self):
        u0, f, u_star = manufactured()
        solver = JacobiPoissonSolver()
        result = solver.solve(f, u0, tol=1e-6, max_iterations=4000)
        assert result.converged
        err = np.abs(result.solution - u_star)[1:-1, 1:-1, 1:-1].max()
        assert err < 1e-3

    def test_residual_history_decreases(self):
        u0, f, _ = manufactured()
        result = JacobiPoissonSolver().solve(f, u0, tol=1e-9, max_iterations=400)
        hist = result.residual_history
        assert len(hist) >= 2
        assert hist[-1] < hist[0]

    def test_budget_exhaustion_reported(self):
        u0, f, _ = manufactured()
        result = JacobiPoissonSolver().solve(f, u0, tol=1e-30, max_iterations=30)
        assert not result.converged
        assert result.iterations == 30

    def test_forward_and_inplane_agree(self):
        u0, f, _ = manufactured(12)
        a = JacobiPoissonSolver(method="inplane").solve(f, u0, tol=1e-30, max_iterations=20)
        b = JacobiPoissonSolver(method="forward").solve(f, u0, tol=1e-30, max_iterations=20)
        np.testing.assert_allclose(a.solution, b.solution, rtol=1e-12)

    def test_weighted_jacobi_still_converges(self):
        u0, f, u_star = manufactured(14)
        result = JacobiPoissonSolver(weight=2.0 / 3.0).solve(
            f, u0, tol=1e-5, max_iterations=6000
        )
        assert result.converged

    def test_contraction_rate_matches_theory(self):
        """Measured per-sweep residual contraction approaches the Jacobi
        spectral radius — the solver really is plain Jacobi."""
        u0, f, _ = manufactured(16)
        solver = JacobiPoissonSolver()
        result = solver.solve(f, u0, tol=1e-30, max_iterations=600, check_every=100)
        hist = result.residual_history
        # Asymptotic contraction over the last 100-sweep window.
        rate = (hist[-1] / hist[-2]) ** (1 / 100)
        rho = jacobi_spectral_bound((16, 16, 16))
        assert rate == pytest.approx(rho, abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JacobiPoissonSolver(weight=0.0)
        u0, f, _ = manufactured(12)
        with pytest.raises(ConfigurationError):
            JacobiPoissonSolver().solve(f, u0, tol=0.0)
        with pytest.raises(ConfigurationError):
            JacobiPoissonSolver().solve(f, u0, max_iterations=0)

    def test_spectral_bound_validation(self):
        with pytest.raises(ConfigurationError):
            jacobi_spectral_bound((2, 8, 8))


class TestSolverGuards:
    """Divergence / non-finite detection under injected memory faults."""

    def test_clean_statuses(self):
        from repro.solvers import STATUS_CONVERGED, STATUS_MAX_ITERATIONS

        u0, f, _ = manufactured()
        good = JacobiPoissonSolver().solve(f, u0, tol=1e-6, max_iterations=4000)
        assert good.status == STATUS_CONVERGED
        assert good.faults == 0 and not good.diverged
        capped = JacobiPoissonSolver().solve(f, u0, tol=1e-30, max_iterations=30)
        assert capped.status == STATUS_MAX_ITERATIONS
        assert not capped.diverged

    def test_nan_injection_detected_as_non_finite(self):
        from repro.gpusim.faults import FaultPlan
        from repro.solvers import STATUS_NON_FINITE

        u0, f, _ = manufactured()
        plan = FaultPlan(seed=1, ecc_rate=1.0, ecc_mode="nan")
        result = JacobiPoissonSolver().solve(
            f, u0, tol=1e-6, max_iterations=200, check_every=10, faults=plan
        )
        assert result.status == STATUS_NON_FINITE
        assert result.diverged and not result.converged
        assert result.iterations == 10  # caught at the first check
        assert result.faults == 10  # one corruption per sweep

    def test_bit_flips_detected_as_divergence(self):
        from repro.gpusim.faults import FaultPlan
        from repro.solvers import STATUS_DIVERGED

        u0, f, _ = manufactured()
        plan = FaultPlan(seed=0, ecc_rate=0.3, ecc_mode="flip")
        result = JacobiPoissonSolver().solve(
            f, u0, tol=1e-6, max_iterations=200, check_every=5,
            faults=plan, divergence_factor=50.0,
        )
        assert result.status == STATUS_DIVERGED
        assert result.diverged
        assert result.faults > 0
        # Stopped early instead of burning the whole sweep budget.
        assert result.iterations < 200

    def test_fault_run_is_reproducible(self):
        from repro.gpusim.faults import FaultPlan

        u0, f, _ = manufactured()

        def run():
            plan = FaultPlan(seed=4, ecc_rate=0.3, ecc_mode="flip")
            return JacobiPoissonSolver().solve(
                f, u0, tol=1e-6, max_iterations=200, check_every=5,
                faults=plan, divergence_factor=50.0,
            )

        a, b = run(), run()
        assert a.status == b.status
        assert a.iterations == b.iterations
        assert a.residual_history == b.residual_history
