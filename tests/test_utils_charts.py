"""ASCII chart rendering tests."""

import pytest

from repro.utils.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_scaling_to_max(self):
        text = bar_chart("T", {"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_labels_aligned(self):
        text = bar_chart("T", {"x": 1.0, "longlabel": 2.0})
        a, b = text.splitlines()[1:]
        assert a.index("#") == b.index("#")

    def test_baseline_marker(self):
        text = bar_chart("T", {"a": 2.0, "b": 0.5}, width=10, baseline=1.0)
        short_bar = text.splitlines()[2]
        assert "|" in short_bar  # marker visible beyond the short bar

    def test_marker_over_bar_is_plus(self):
        text = bar_chart("T", {"a": 2.0}, width=10, baseline=1.0)
        assert "+" in text.splitlines()[1]

    def test_value_suffix(self):
        text = bar_chart("T", {"a": 1.5}, unit="x", float_fmt=".1f")
        assert "1.5x" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart("T", {})
        with pytest.raises(ValueError):
            bar_chart("T", {"a": -1.0})
        with pytest.raises(ValueError):
            bar_chart("T", {"a": 0.0})
        with pytest.raises(ValueError):
            bar_chart("T", {"a": 1.0}, width=2)


class TestGroupedBarChart:
    def test_one_block_per_group(self):
        text = grouped_bar_chart(
            "T", ["g1", "g2"], {"s1": [1.0, 2.0], "s2": [2.0, 1.0]}
        )
        assert "g1:" in text and "g2:" in text
        assert text.count("s1") == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("T", ["g1"], {"s": [1.0, 2.0]})

    def test_empty(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("T", [], {})
