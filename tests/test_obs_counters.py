"""Property tests: the hardware-counter analogue vs the gpusim enumerators.

Every counter in :mod:`repro.obs.counters` must agree EXACTLY with the
counting/enumerating ground truth it claims to summarize — the memory
transaction enumerators (:class:`repro.gpusim.memory.MemoryStats`), the
shared-memory conflict profile, the instruction-issue breakdown
(:func:`repro.gpusim.timing.issue_slots`) and the wave decomposition —
property-tested over randomized launch configurations so a counter can
never drift from the simulator it describes.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st
import pytest

from repro import obs
from repro.errors import ReproError
from repro.gpusim.device import get_device
from repro.gpusim.executor import DeviceExecutor, simulate
from repro.gpusim.smem import dp_conflict_factor
from repro.gpusim.timing import issue_slots, params_for, time_kernel, wave_geometry
from repro.kernels.factory import make_kernel
from repro.obs.counters import (
    COUNTER_KEYS,
    STALL_KEYS,
    CounterSchemaError,
    CounterSet,
    derive_counters,
    load_efficiency,
    shared_replay_slots,
    validate_counters,
)
from repro.stencils.spec import symmetric

GRID = (128, 128, 32)

launches = st.tuples(
    st.sampled_from(("gtx580", "gtx680", "c2070")),
    st.sampled_from(
        ("nvstencil", "inplane_fullslice", "inplane_vertical",
         "inplane_horizontal", "blocking3d")
    ),
    st.sampled_from((2, 4, 8, 10)),
    st.sampled_from((16, 32, 64)),   # TX
    st.sampled_from((2, 4, 8)),      # TY
    st.sampled_from((1, 2)),         # RX
    st.sampled_from((1, 2)),         # RY
    st.sampled_from(("sp", "dp")),
)


def _launch(params):
    """Build (device, plan, block, grid) for one sampled config or assume-out."""
    device, family, order, tx, ty, rx, ry, dtype = params
    dev = get_device(device)
    try:
        plan = make_kernel(family, symmetric(order), (tx, ty, rx, ry), dtype)
        block = plan.block_workload(dev, GRID)
        grid = plan.grid_workload(dev, GRID)
        timing = time_kernel(block, grid, dev)
    except ReproError:
        assume(False)
    return dev, plan, block, grid, timing


class TestCounterDerivations:
    """derive_counters vs first-principles simulator quantities."""

    @settings(max_examples=80, deadline=None)
    @given(params=launches)
    def test_transaction_counters_match_memory_enumerators(self, params):
        dev, plan, block, grid, timing = _launch(params)
        c = derive_counters(timing, block, grid, dev, params_for(dev))
        sweep = grid.planes * grid.blocks
        mem = block.memory
        # Per-sweep transaction totals are the enumerator counts, scaled.
        assert c["gld_transactions"] == mem.load_transactions * sweep
        assert c["gst_transactions"] == mem.store_transactions * sweep
        # Every transaction moves exactly one 128-byte line: the counter is
        # tied to the line-span enumerator through the transferred bytes.
        assert math.isclose(
            c["gld_transactions"] * mem.line_bytes,
            mem.load_transferred_bytes * sweep, rel_tol=1e-12,
        )
        assert math.isclose(
            c["gst_transactions"] * mem.line_bytes,
            mem.store_transferred_bytes * sweep, rel_tol=1e-12,
        )

    @settings(max_examples=80, deadline=None)
    @given(params=launches)
    def test_dram_and_efficiency_counters(self, params):
        dev, plan, block, grid, timing = _launch(params)
        tp = params_for(dev)
        c = derive_counters(timing, block, grid, dev, tp)
        mem = block.memory
        # DRAM bytes: the timing model's post-L2 effective stream, scaled
        # by the sweep — the same identity SimReport.bandwidth_gbs uses.
        assert c["dram_bytes"] == (
            timing.effective_bytes_per_plane * grid.planes * grid.blocks
        )
        time_s = timing.total_cycles / dev.clock_hz
        assert math.isclose(
            c["dram_bw_fraction"] * dev.measured_bandwidth_gbs * 1e9 * time_s,
            c["dram_bytes"], rel_tol=1e-12,
        )
        assert 0 < c["dram_bw_fraction"] <= 1.0 + 1e-12
        # Fig 9 load efficiency, recomputed from the enumerators.
        eff_stream = (
            mem.load_transferred_bytes
            + mem.camped_bytes * (tp.partition_camping - 1.0)
        )
        expected = (
            min(1.0, mem.requested_load_bytes / eff_stream) if eff_stream else 1.0
        )
        assert c["gld_efficiency"] == expected == load_efficiency(block, tp)
        if mem.store_transferred_bytes:
            assert c["gst_efficiency"] == min(
                1.0, mem.requested_store_bytes / mem.store_transferred_bytes
            )
        reuse = tp.l2_halo_reuse if dev.l2_bytes > 0 else 0.0
        assert c["l2_halo_hit_bytes"] == (
            mem.halo_transferred_bytes * reuse * grid.planes * grid.blocks
        )

    @settings(max_examples=80, deadline=None)
    @given(params=launches)
    def test_instruction_and_replay_counters(self, params):
        dev, plan, block, grid, timing = _launch(params)
        tp = params_for(dev)
        c = derive_counters(timing, block, grid, dev, tp)
        slots = issue_slots(block, dev, tp, timing.spilled_regs)
        assert c["inst_issued"] == (
            slots.total * timing.planes_per_block * grid.blocks
        )
        assert c["ipc"] == c["inst_issued"] / (timing.total_cycles * dev.sm_count)
        assert 0 < c["ipc"] <= dev.rules.issue_width + 1e-12
        # Replay rate from the bank-conflict enumerator: effective issue
        # slots (tile conflict profile x architectural DP factor) over the
        # raw shared-memory instruction count, minus one.
        prof = block.smem_profile
        base = float(prof.read_instructions + prof.write_instructions)
        conflict = dp_conflict_factor(block.elem_bytes, dev.rules)
        if base:
            assert c["shared_replay_rate"] == (
                (prof.issue_cost() * conflict - base) / base
            )
        else:
            assert c["shared_replay_rate"] == 0.0
        assert shared_replay_slots(block, dev) == (
            base, prof.issue_cost() * conflict - base
        )
        # Spill traffic: the spilled-register model, scaled by the sweep.
        spill_per_plane = (
            timing.spilled_regs * block.threads_per_block * tp.spill_bytes_per_reg
        )
        assert c["local_spill_bytes"] == (
            spill_per_plane * grid.planes * grid.blocks
        )

    @settings(max_examples=80, deadline=None)
    @given(params=launches)
    def test_stall_breakdown_reconciles_with_wave_geometry(self, params):
        dev, plan, block, grid, timing = _launch(params)
        c = derive_counters(timing, block, grid, dev, params_for(dev))
        assert math.isclose(
            sum(c[k] for k in STALL_KEYS), 1.0, rel_tol=1e-9
        )
        # Each share re-derives from the wave decomposition the timeline
        # reconstruction uses; none can drift from the priced cycles.
        planes = timing.planes_per_block
        comp = {"mem": 0.0, "compute": 0.0, "exposed": 0.0, "sync": 0.0,
                "sched": 0.0}
        for wave in wave_geometry(timing):
            comp["mem"] += wave.plane_cost.mem_cycles * planes
            comp["compute"] += wave.plane_cost.compute_cycles * planes
            comp["exposed"] += wave.plane_cost.exposed_cycles * planes
            comp["sync"] += wave.plane_cost.sync_cycles * planes
            comp["sched"] += wave.blocks_per_sm * timing.sched_overhead_cycles
        total = sum(comp.values())
        assert c["stall_mem_frac"] == comp["mem"] / total
        assert c["stall_compute_frac"] == comp["compute"] / total
        assert c["stall_latency_frac"] == comp["exposed"] / total
        assert c["stall_sync_frac"] == comp["sync"] / total
        assert c["stall_sched_frac"] == comp["sched"] / total

    @settings(max_examples=40, deadline=None)
    @given(params=launches)
    def test_executor_single_sources_counters(self, params):
        dev, plan, block, grid, timing = _launch(params)
        report = DeviceExecutor(dev).run(plan, GRID)
        tp = params_for(dev)
        independent = derive_counters(timing, block, grid, dev, tp)
        assert report.counters is not None
        assert report.counters.as_dict() == independent.as_dict()
        # Headline fields are read FROM the counters, not computed twice.
        assert report.load_efficiency == report.counters["gld_efficiency"]
        assert math.isclose(
            report.bandwidth_gbs * 1e9 * report.time_s,
            report.counters["dram_bytes"], rel_tol=1e-12,
        )
        assert report.counters["achieved_occupancy"] == report.occupancy.occupancy
        assert report.counters.occupancy_limiter == report.occupancy.limiter


class TestCounterSchema:
    """The frozen-schema contract of CounterSet / validate_counters."""

    @pytest.fixture
    def values(self):
        plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
        report = simulate(plan, "gtx580", GRID)
        return dict(report.counters.values), report.counters.occupancy_limiter

    def test_valid_set_roundtrips(self, values):
        vals, limiter = values
        cs = CounterSet(values=vals, occupancy_limiter=limiter)
        assert cs.as_dict()["occupancy_limiter"] == limiter
        assert tuple(k for k in cs.as_dict() if k != "occupancy_limiter") == (
            COUNTER_KEYS
        )
        validate_counters(vals, limiter)

    def test_missing_key_rejected(self, values):
        vals, limiter = values
        del vals["ipc"]
        with pytest.raises(CounterSchemaError, match="missing.*ipc"):
            CounterSet(values=vals, occupancy_limiter=limiter)

    def test_unknown_key_rejected(self, values):
        vals, limiter = values
        vals["warp_nonsense"] = 1.0
        with pytest.raises(CounterSchemaError, match="unknown.*warp_nonsense"):
            CounterSet(values=vals, occupancy_limiter=limiter)

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf"), True, "x"])
    def test_bad_values_rejected(self, values, bad):
        vals, limiter = values
        vals["ipc"] = bad
        with pytest.raises(CounterSchemaError, match="ipc"):
            validate_counters(vals, limiter)

    def test_empty_limiter_rejected(self, values):
        vals, _ = values
        with pytest.raises(CounterSchemaError, match="occupancy_limiter"):
            validate_counters(vals, "")


class TestTraceIntegration:
    """Counters flow into the trace spans and device metrics unchanged."""

    def test_kernel_span_and_metrics_single_source(self):
        plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
        with obs.tracing() as tracer:
            report = DeviceExecutor("gtx580").run(plan, GRID)
        (kernel,) = [
            e for e in tracer.spans if e.cat == "sim.kernel"
        ]
        assert kernel.args["counters"] == report.counters.as_dict()
        m = tracer.metrics.snapshot()["counters"]
        assert m["sim.bytes_moved"] == report.counters["dram_bytes"]
        assert m["sim.l2_halo_hit_bytes"] == report.counters["l2_halo_hit_bytes"]
        assert m["sim.spill_bytes"] == report.counters["local_spill_bytes"]
