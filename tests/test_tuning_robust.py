"""Resilient-session tests: retry, quarantine, journal resume, degradation.

The headline guarantees: a seeded fault storm that eventually lets every
configuration through returns the *same winner* as a fault-free run, and
a killed campaign resumes from its journal without re-running any
journaled trial.
"""

import json

import pytest

from repro.cli import main
from repro.errors import JournalError, TuningError
from repro.gpusim.device import get_device
from repro.gpusim.executor import DeviceExecutor
from repro.gpusim.faults import FaultPlan
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric
from repro.tuning.evaluator import (
    STATUS_OK,
    STATUS_QUARANTINED,
    SimTrialEvaluator,
    TrialOutcome,
)
from repro.tuning.exhaustive import exhaustive_tune
from repro.tuning.modelbased import model_based_tune
from repro.tuning.robust import (
    ResilientEvaluator,
    RetryPolicy,
    RobustTuningSession,
    TrialJournal,
)
from repro.tuning.space import ParameterSpace
from repro.tuning.stochastic import stochastic_tune

GRID = (128, 128, 32)
SPACE = ParameterSpace(
    tx_values=(16, 32, 64), ty_values=(1, 2, 4), rx_values=(1, 2), ry_values=(1, 2)
)
#: Storm with a >= 10% per-launch failure probability that still lets a
#: retried trial through (rates apply per launch, independently).
STORM = dict(launch_failure_rate=0.08, hang_rate=0.04, throttle_rate=0.06)


def build(cfg: BlockConfig):
    return make_kernel("inplane_fullslice", symmetric(2), cfg)


def storm_evaluator(device, seed=7, retries=6, journal=None, **kwargs):
    plan = FaultPlan(seed=seed, **(kwargs or STORM))
    return ResilientEvaluator(
        SimTrialEvaluator(device, executor=DeviceExecutor(device, faults=plan)),
        policy=RetryPolicy(max_retries=retries),
        journal=journal,
    )


class TestRetryPolicy:
    def test_delays_grow_and_jitter_deterministically(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, jitter=0.25)
        d0, d1, d2 = (policy.delay_s("k", a) for a in range(3))
        assert d0 < d1 < d2
        assert policy.delay_s("k", 1) == d1  # same seed, same delay
        assert RetryPolicy(seed=1).delay_s("k", 1) != RetryPolicy(
            seed=2
        ).delay_s("k", 1)

    def test_validation(self):
        with pytest.raises(TuningError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(TuningError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(TuningError):
            RetryPolicy(jitter=2.0)


class TestStormEqualsClean:
    """Same winner under a >= 10% fault storm as fault-free, per tuner."""

    @pytest.mark.parametrize("tier", ["exhaustive", "stochastic", "model"])
    def test_best_config_unchanged(self, gtx580, tier):
        plan = FaultPlan(seed=7, **STORM)
        assert plan.fault_rate >= 0.10

        def run(evaluator):
            if tier == "exhaustive":
                return exhaustive_tune(
                    build, gtx580, GRID, SPACE, evaluator=evaluator
                )
            if tier == "stochastic":
                return stochastic_tune(
                    build, gtx580, GRID, budget=12, seed=3, space=SPACE,
                    evaluator=evaluator,
                )
            return model_based_tune(
                build, gtx580, GRID, beta=0.2, space=SPACE, evaluator=evaluator
            )

        clean = run(None)
        resilient = storm_evaluator(gtx580)
        stormy = run(resilient)
        assert resilient.stats["retries"] > 0  # the storm actually hit
        assert stormy.best_config == clean.best_config
        assert stormy.best_mpoints == pytest.approx(clean.best_mpoints)


class TestResilientEvaluator:
    def test_watchdog_quarantines_immediately(self, gtx580):
        clean = DeviceExecutor(gtx580).run(build(BlockConfig(32, 4)), GRID)
        evaluator = ResilientEvaluator(
            SimTrialEvaluator(
                gtx580,
                executor=DeviceExecutor(
                    gtx580, watchdog_cycles=clean.total_cycles / 2
                ),
            ),
            policy=RetryPolicy(max_retries=5),
        )
        cfg = BlockConfig(32, 4)
        plan = build(cfg)
        block = plan.block_workload(gtx580, GRID)
        outcome = evaluator.measure(cfg, plan, GRID, block)
        assert outcome.status == STATUS_QUARANTINED
        assert outcome.attempts == 1  # no retries for deterministic kills
        assert evaluator.stats["retries"] == 0

    def test_exhausted_retries_quarantine(self, gtx580):
        evaluator = storm_evaluator(
            gtx580, retries=2, launch_failure_rate=1.0
        )
        cfg = BlockConfig(32, 4)
        plan = build(cfg)
        outcome = evaluator.measure(
            cfg, plan, GRID, plan.block_workload(gtx580, GRID)
        )
        assert outcome.status == STATUS_QUARANTINED
        assert outcome.attempts == 3
        assert outcome.faults == ("launch_failure",) * 3
        assert evaluator.stats["quarantined_configs"] == 1
        assert evaluator.stats["backoff_s"] > 0

    def test_degraded_measurement_kept_as_last_resort(self, gtx580):
        evaluator = storm_evaluator(gtx580, retries=2, throttle_rate=1.0)
        cfg = BlockConfig(32, 4)
        plan = build(cfg)
        outcome = evaluator.measure(
            cfg, plan, GRID, plan.block_workload(gtx580, GRID)
        )
        assert outcome.status == STATUS_OK
        assert "throttle" in outcome.faults  # flagged, not hidden
        assert outcome.mpoints_per_s > 0

    def test_sleep_callable_receives_delays(self, gtx580):
        slept = []
        evaluator = ResilientEvaluator(
            SimTrialEvaluator(
                gtx580,
                executor=DeviceExecutor(
                    gtx580, faults=FaultPlan(launch_failure_rate=1.0)
                ),
            ),
            policy=RetryPolicy(max_retries=2, sleep=slept.append),
        )
        cfg = BlockConfig(32, 4)
        plan = build(cfg)
        evaluator.measure(cfg, plan, GRID, plan.block_workload(gtx580, GRID))
        assert len(slept) == 2
        assert slept == sorted(slept)  # exponential growth


class TestJournal:
    def outcome(self, tx=32, ty=4):
        return TrialOutcome(
            config=BlockConfig(tx, ty), status=STATUS_OK,
            mpoints_per_s=100.0, info={"occupancy": 0.5},
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.journal"
        journal = TrialJournal.create(path, "k")
        journal.record(self.outcome())
        reloaded = TrialJournal.resume(path, "k")
        got = reloaded.get(BlockConfig(32, 4))
        assert got is not None and got.replayed
        assert got.mpoints_per_s == 100.0
        assert len(reloaded) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            TrialJournal.resume(tmp_path / "absent.journal", "k")

    def test_session_mismatch_raises(self, tmp_path):
        path = tmp_path / "t.journal"
        TrialJournal.create(path, "session-a")
        with pytest.raises(JournalError, match="belongs to session"):
            TrialJournal.resume(path, "session-b")

    def test_foreign_header_raises(self, tmp_path):
        path = tmp_path / "t.journal"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(JournalError, match="journal header"):
            TrialJournal.resume(path, "k")
        path.write_text("not json at all\n")
        with pytest.raises(JournalError, match="unreadable header"):
            TrialJournal.resume(path, "k")

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "t.journal"
        journal = TrialJournal.create(path, "k")
        journal.record(self.outcome(32, 4))
        journal.record(self.outcome(16, 2))
        with open(path, "a") as fh:
            fh.write('{"config": [64, 1], "status": "ok", "mpo')  # killed here
        reloaded = TrialJournal.resume(path, "k")
        assert len(reloaded) == 2
        assert reloaded.get(BlockConfig(64, 1)) is None

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "t.journal"
        journal = TrialJournal.create(path, "k")
        journal.record(self.outcome())
        lines = path.read_text().splitlines()
        lines[1] = "garbage"
        path.write_text("\n".join(lines + ['{"also": "a trailing line"}']) + "\n")
        with pytest.raises(JournalError, match="corrupt journal record"):
            TrialJournal.resume(path, "k")

    def test_bad_record_fields_raise(self, tmp_path):
        path = tmp_path / "t.journal"
        journal = TrialJournal.create(path, "k")
        with open(path, "a") as fh:
            fh.write(json.dumps({"config": [32, 4], "status": "bogus"}) + "\n")
        with pytest.raises(JournalError, match="bad journal record"):
            TrialJournal.resume(path, "k")


class TestSession:
    def test_resume_replays_without_rerunning(self, gtx580, tmp_path):
        path = tmp_path / "s.journal"
        first = RobustTuningSession(
            gtx580, GRID, faults=FaultPlan(seed=7, **STORM), journal_path=path
        )
        sres = first.run(build, method="exhaustive", space=SPACE)
        assert sres.stats["live_trials"] > 0

        # Truncate the journal mid-campaign plus a torn final line — the
        # shape an abrupt kill leaves behind.
        lines = path.read_text().splitlines()
        keep = 1 + (len(lines) - 1) // 2
        path.write_text("\n".join(lines[:keep]) + '\n{"config": [16,')

        second = RobustTuningSession(
            gtx580, GRID, faults=FaultPlan(seed=7, **STORM),
            journal_path=path, resume=True,
        )
        sres2 = second.run(build, method="exhaustive", space=SPACE)
        assert sres2.stats["replayed"] == keep - 1
        assert sres2.result.best_config == sres.result.best_config
        assert sres2.result.best_mpoints == pytest.approx(
            sres.result.best_mpoints
        )
        assert "replayed from journal" in sres2.summary()

    def test_resume_without_journal_path_raises(self, gtx580):
        with pytest.raises(JournalError, match="without a journal path"):
            RobustTuningSession(gtx580, GRID, resume=True)

    def test_session_key_binds_fault_plan(self, gtx580, tmp_path):
        path = tmp_path / "s.journal"
        RobustTuningSession(
            gtx580, GRID, faults=FaultPlan(seed=1, hang_rate=0.1),
            journal_path=path,
        )
        with pytest.raises(JournalError, match="belongs to session"):
            RobustTuningSession(
                gtx580, GRID, faults=FaultPlan(seed=2, hang_rate=0.1),
                journal_path=path, resume=True,
            )

    def test_degradation_ladder_reaches_exhaustive(self, gtx580):
        # A storm that kills the first `burst` launches outright and no
        # retries: the cheap tiers (few trials each) see only faults and
        # degrade; exhaustive has enough launches to outlast the burst.
        session = RobustTuningSession(
            gtx580, GRID,
            faults=FaultPlan(seed=3, launch_failure_rate=1.0, burst=45),
            policy=RetryPolicy(max_retries=0),
        )
        sres = session.run(build, method="auto", space=SPACE, budget=8)
        assert sres.method == "exhaustive"
        assert sres.degraded_from == ("model", "stochastic")
        assert set(sres.tier_errors) == {"model", "stochastic"}
        assert "degraded from model -> stochastic" in sres.summary()
        assert sres.result.best_mpoints > 0

    def test_all_tiers_failing_raises(self, gtx580):
        session = RobustTuningSession(
            gtx580, GRID, faults=FaultPlan(launch_failure_rate=1.0),
            policy=RetryPolicy(max_retries=0),
        )
        with pytest.raises(TuningError, match="all tuning tiers failed"):
            session.run(build, method="auto", space=SPACE, budget=4)

    def test_unknown_method_raises(self, gtx580):
        with pytest.raises(TuningError, match="unknown tuning method"):
            RobustTuningSession(gtx580, GRID).run(build, method="bayesian")

    def test_clean_session_matches_plain_tuner(self, gtx580):
        plain = exhaustive_tune(build, gtx580, GRID, SPACE)
        sres = RobustTuningSession(gtx580, GRID).run(
            build, method="exhaustive", space=SPACE
        )
        assert sres.result.best_config == plain.best_config
        assert sres.result.best_mpoints == pytest.approx(plain.best_mpoints)
        assert sres.degraded_from == ()


class TestCliExitCodes:
    ARGS = [
        "tune", "--kernel", "inplane_fullslice", "--order", "2",
        "--device", "gtx580", "--grid", "64,64,32", "--method", "auto",
        "--no-register-blocking",
    ]

    def test_storm_session_exits_zero(self, tmp_path, capsys):
        journal = str(tmp_path / "t.journal")
        argv = self.ARGS + [
            "--faults", "seed=7,launch=0.1,hang=0.02,throttle=0.05",
            "--journal", journal,
        ]
        assert main(argv) == 0
        assert "best" in capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0

    def test_all_quarantined_exits_one(self, tmp_path):
        assert main(self.ARGS + [
            "--faults", "launch=1.0", "--retries", "0",
        ]) == 1

    def test_missing_resume_journal_exits_two(self, tmp_path):
        assert main(self.ARGS + [
            "--journal", str(tmp_path / "absent.journal"), "--resume",
        ]) == 2

    def test_unreadable_journal_exits_two(self, tmp_path):
        bad = tmp_path / "bad.journal"
        bad.write_text("not a journal\n")
        assert main(self.ARGS + ["--journal", str(bad), "--resume"]) == 2

    def test_bad_fault_spec_exits_two(self):
        assert main(self.ARGS + ["--faults", "frobnicate=1"]) == 2
