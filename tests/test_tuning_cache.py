"""Tuning-cache persistence tests."""

import json

from repro.kernels.config import BlockConfig
from repro.tuning.cache import TuningCache
from repro.tuning.result import TuneEntry, TuneResult


def make_result() -> TuneResult:
    entry = TuneEntry(
        config=BlockConfig(32, 4, 1, 4),
        mpoints_per_s=1234.5,
        info={"occupancy": 0.5},
    )
    return TuneResult(
        best=entry, entries=(entry,), evaluated=10, space_size=100, method="exhaustive"
    )


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        cache.put(make_result(), "inplane_fullslice", 2, "sp", "gtx580", (64, 64, 32))
        got = cache.get("inplane_fullslice", 2, "sp", "gtx580", (64, 64, 32))
        assert got is not None
        assert got.best_config == BlockConfig(32, 4, 1, 4)
        assert got.best_mpoints == 1234.5
        assert got.method == "exhaustive"

    def test_miss_returns_none(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        assert cache.get("x", 2, "sp", "gtx580", (1, 1, 1)) is None

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        TuningCache(path).put(make_result(), "f", 4, "dp", "c2070", (8, 8, 8))
        reloaded = TuningCache(path)
        assert reloaded.get("f", 4, "dp", "c2070", (8, 8, 8)) is not None
        assert len(reloaded) == 1

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        assert cache.get("f", 2, "dp", "gtx580", (8, 8, 8)) is None
        assert cache.get("f", 2, "sp", "gtx680", (8, 8, 8)) is None
        assert cache.get("f", 2, "sp", "gtx580", (8, 8, 16)) is None

    def test_corrupt_file_regenerates(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = TuningCache(path)
        assert len(cache) == 0
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        assert json.loads(path.read_text())  # now valid

    def test_overwrite_updates(self, tmp_path):
        cache = TuningCache(tmp_path / "c.json")
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        better = TuneResult(
            best=TuneEntry(config=BlockConfig(64, 4), mpoints_per_s=9999.0),
            entries=(),
            evaluated=1,
            space_size=1,
            method="model",
        )
        cache.put(better, "f", 2, "sp", "gtx580", (8, 8, 8))
        got = cache.get("f", 2, "sp", "gtx580", (8, 8, 8))
        assert got.best_mpoints == 9999.0
