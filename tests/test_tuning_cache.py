"""Tuning-cache persistence tests."""

import json

from repro.kernels.config import BlockConfig
from repro.tuning.cache import TuningCache
from repro.tuning.result import TuneEntry, TuneResult


def make_result() -> TuneResult:
    entry = TuneEntry(
        config=BlockConfig(32, 4, 1, 4),
        mpoints_per_s=1234.5,
        info={"occupancy": 0.5},
    )
    return TuneResult(
        best=entry, entries=(entry,), evaluated=10, space_size=100, method="exhaustive"
    )


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        cache.put(make_result(), "inplane_fullslice", 2, "sp", "gtx580", (64, 64, 32))
        got = cache.get("inplane_fullslice", 2, "sp", "gtx580", (64, 64, 32))
        assert got is not None
        assert got.best_config == BlockConfig(32, 4, 1, 4)
        assert got.best_mpoints == 1234.5
        assert got.method == "exhaustive"

    def test_miss_returns_none(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        assert cache.get("x", 2, "sp", "gtx580", (1, 1, 1)) is None

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        TuningCache(path).put(make_result(), "f", 4, "dp", "c2070", (8, 8, 8))
        reloaded = TuningCache(path)
        assert reloaded.get("f", 4, "dp", "c2070", (8, 8, 8)) is not None
        assert len(reloaded) == 1

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        assert cache.get("f", 2, "dp", "gtx580", (8, 8, 8)) is None
        assert cache.get("f", 2, "sp", "gtx680", (8, 8, 8)) is None
        assert cache.get("f", 2, "sp", "gtx580", (8, 8, 16)) is None

    def test_corrupt_file_regenerates(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = TuningCache(path)
        assert len(cache) == 0
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        assert json.loads(path.read_text())  # now valid

    def test_overwrite_updates(self, tmp_path):
        cache = TuningCache(tmp_path / "c.json")
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        better = TuneResult(
            best=TuneEntry(config=BlockConfig(64, 4), mpoints_per_s=9999.0),
            entries=(),
            evaluated=1,
            space_size=1,
            method="model",
        )
        cache.put(better, "f", 2, "sp", "gtx580", (8, 8, 8))
        got = cache.get("f", 2, "sp", "gtx580", (8, 8, 8))
        assert got.best_mpoints == 9999.0


class TestCacheRobustness:
    def test_put_is_atomic_no_temp_residue(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]

    def test_interleaved_writers_never_leave_partial_json(self, tmp_path):
        # Two handles on the same file, alternating puts: after every
        # single put the on-disk document parses (os.replace is atomic),
        # and each writer's last write is a complete document.
        path = tmp_path / "cache.json"
        a, b = TuningCache(path), TuningCache(path)
        for i, cache in enumerate([a, b, a, b, a]):
            cache.put(make_result(), f"fam{i}", 2, "sp", "gtx580", (8, 8, 8))
            json.loads(path.read_text())
        final = TuningCache(path)
        assert final.get("fam4", 2, "sp", "gtx580", (8, 8, 8)) is not None

    def test_corrupt_cache_warns_with_path(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        path.write_text("{torn")
        with caplog.at_level("WARNING", logger="repro.tuning.cache"):
            TuningCache(path)
        assert any(str(path) in r.getMessage() for r in caplog.records)
        assert any("regenerated" in r.getMessage() for r in caplog.records)

    def test_stale_temp_file_does_not_break_load(self, tmp_path):
        path = tmp_path / "cache.json"
        TuningCache(path).put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        (tmp_path / "cache.jsonabc123.tmp").write_text("{killed mid-")
        reloaded = TuningCache(path)
        assert reloaded.get("f", 2, "sp", "gtx580", (8, 8, 8)) is not None
