"""Tuning-cache persistence tests."""

import json

from repro.kernels.config import BlockConfig
from repro.tuning.cache import SCHEMA_VERSION, TuningCache
from repro.tuning.result import TuneEntry, TuneResult
from repro.tuning.space import ParameterSpace, default_space


def make_result() -> TuneResult:
    entry = TuneEntry(
        config=BlockConfig(32, 4, 1, 4),
        mpoints_per_s=1234.5,
        info={"occupancy": 0.5},
    )
    return TuneResult(
        best=entry, entries=(entry,), evaluated=10, space_size=100, method="exhaustive"
    )


def make_ranked_result() -> TuneResult:
    entries = tuple(
        TuneEntry(
            config=BlockConfig(32, 4, 1, ry),
            mpoints_per_s=4000.0 - 100.0 * ry,
            predicted=3900.0 - 100.0 * ry if ry % 2 else None,
            info={"occupancy": 0.5, "load_efficiency": 0.8},
        )
        for ry in (1, 2, 4, 8)
    )
    return TuneResult(
        best=entries[0], entries=entries, evaluated=4, space_size=270,
        method="model", info={"rejected_static": 1, "jobs": 4},
    )


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        cache.put(make_result(), "inplane_fullslice", 2, "sp", "gtx580", (64, 64, 32))
        got = cache.get("inplane_fullslice", 2, "sp", "gtx580", (64, 64, 32))
        assert got is not None
        assert got.best_config == BlockConfig(32, 4, 1, 4)
        assert got.best_mpoints == 1234.5
        assert got.method == "exhaustive"

    def test_miss_returns_none(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        assert cache.get("x", 2, "sp", "gtx580", (1, 1, 1)) is None

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        TuningCache(path).put(make_result(), "f", 4, "dp", "c2070", (8, 8, 8))
        reloaded = TuningCache(path)
        assert reloaded.get("f", 4, "dp", "c2070", (8, 8, 8)) is not None
        assert len(reloaded) == 1

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        assert cache.get("f", 2, "dp", "gtx580", (8, 8, 8)) is None
        assert cache.get("f", 2, "sp", "gtx680", (8, 8, 8)) is None
        assert cache.get("f", 2, "sp", "gtx580", (8, 8, 16)) is None

    def test_corrupt_file_regenerates(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = TuningCache(path)
        assert len(cache) == 0
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        assert json.loads(path.read_text())  # now valid

    def test_roundtrip_preserves_every_entry(self, tmp_path):
        # Regression: get() used to truncate the record to the winner
        # (entries=(entry,)), silently discarding the ranking.
        path = tmp_path / "cache.json"
        result = make_ranked_result()
        TuningCache(path).put(result, "f", 2, "sp", "gtx580", (8, 8, 8))
        got = TuningCache(path).get("f", 2, "sp", "gtx580", (8, 8, 8))
        assert got.entries == result.entries
        assert got.best == result.best
        assert got.evaluated == result.evaluated
        assert got.space_size == result.space_size
        assert got.info == result.info

    def test_distinct_spaces_do_not_collide(self, tmp_path):
        # Regression: space_sig used to default to the literal "default",
        # so results tuned over different candidate sets shared one key.
        cache = TuningCache(tmp_path / "cache.json")
        narrow = ParameterSpace(rx_values=(1,), ry_values=(1,))
        cache.put(
            make_result(), "f", 2, "sp", "gtx580", (8, 8, 8),
            space_sig=narrow.signature(),
        )
        assert cache.get("f", 2, "sp", "gtx580", (8, 8, 8)) is None
        assert cache.get(
            "f", 2, "sp", "gtx580", (8, 8, 8), space_sig=narrow.signature()
        ) is not None

    def test_default_sig_is_derived_from_default_space(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        explicit = cache.get(
            "f", 2, "sp", "gtx580", (8, 8, 8),
            space_sig=default_space().signature(),
        )
        assert explicit is not None

    def test_v1_file_read_compat(self, tmp_path):
        # A bare key -> best-entry mapping (no schema_version) is the v1
        # layout; it must load as a single-entry record, and the next put
        # upgrades the file to v2.
        path = tmp_path / "cache.json"
        sig = default_space().signature()
        v1 = {
            f"f|2|sp|gtx580|8x8x8|{sig}": {
                "config": [32, 4, 1, 4],
                "mpoints_per_s": 1234.5,
                "predicted": None,
                "info": {"occupancy": 0.5},
                "evaluated": 10,
                "space_size": 100,
                "method": "exhaustive",
            }
        }
        path.write_text(json.dumps(v1))
        cache = TuningCache(path)
        got = cache.get("f", 2, "sp", "gtx580", (8, 8, 8))
        assert got is not None
        assert got.best_config == BlockConfig(32, 4, 1, 4)
        assert got.entries == (got.best,)
        cache.put(make_result(), "g", 2, "sp", "gtx580", (8, 8, 8))
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert len(doc["results"]) == 2

    def test_future_schema_version_regenerates(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"schema_version": 99, "results": {}}))
        cache = TuningCache(path)
        assert len(cache) == 0

    def test_overwrite_updates(self, tmp_path):
        cache = TuningCache(tmp_path / "c.json")
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        better = TuneResult(
            best=TuneEntry(config=BlockConfig(64, 4), mpoints_per_s=9999.0),
            entries=(),
            evaluated=1,
            space_size=1,
            method="model",
        )
        cache.put(better, "f", 2, "sp", "gtx580", (8, 8, 8))
        got = cache.get("f", 2, "sp", "gtx580", (8, 8, 8))
        assert got.best_mpoints == 9999.0


class TestCacheRobustness:
    def test_put_is_atomic_no_temp_residue(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        cache.put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        # The lock file is a deliberate sibling; what must never linger
        # is a half-written temp file.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "cache.json", "cache.json.lock",
        ]

    def test_interleaved_writers_never_leave_partial_json(self, tmp_path):
        # Two handles on the same file, alternating puts: after every
        # single put the on-disk document parses (os.replace is atomic),
        # and the per-key merge under the lock means NO writer's keys are
        # lost — each stale-view put used to clobber the other handle's.
        path = tmp_path / "cache.json"
        a, b = TuningCache(path), TuningCache(path)
        for i, cache in enumerate([a, b, a, b, a]):
            cache.put(make_result(), f"fam{i}", 2, "sp", "gtx580", (8, 8, 8))
            json.loads(path.read_text())
        final = TuningCache(path)
        for i in range(5):
            assert final.get(f"fam{i}", 2, "sp", "gtx580", (8, 8, 8)) is not None
        assert len(final) == 5

    def test_corrupt_cache_warns_with_path(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        path.write_text("{torn")
        with caplog.at_level("WARNING", logger="repro.tuning.cache"):
            TuningCache(path)
        assert any(str(path) in r.getMessage() for r in caplog.records)
        assert any("regenerated" in r.getMessage() for r in caplog.records)

    def test_stale_temp_file_does_not_break_load(self, tmp_path):
        path = tmp_path / "cache.json"
        TuningCache(path).put(make_result(), "f", 2, "sp", "gtx580", (8, 8, 8))
        (tmp_path / "cache.jsonabc123.tmp").write_text("{killed mid-")
        reloaded = TuningCache(path)
        assert reloaded.get("f", 2, "sp", "gtx580", (8, 8, 8)) is not None
