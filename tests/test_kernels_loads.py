"""Region-to-traffic builder tests."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.memory import MemoryStats, KIND_HALO, KIND_INTERIOR, KIND_WRITE
from repro.kernels.layout import GridLayout
from repro.kernels.loads import add_column_strip, add_corner_patches, add_row_region


@pytest.fixture
def layout():
    return GridLayout(512, 512, 64, 4)


class TestRowRegion:
    def test_aligned_region(self, layout):
        stats = MemoryStats()
        add_row_region(
            stats, layout, x_start_rel=0, width_elems=64, rows=8,
            tile_stride=64, use_vectors=False,
        )
        assert stats.load_transactions == pytest.approx(16)  # 2 lines x 8 rows
        assert stats.requested_load_bytes == 64 * 4 * 8
        assert stats.load_instructions == pytest.approx(16)  # ceil(64/32) x 8

    def test_vector_loads_reduce_instructions(self, layout):
        scalar, vector = MemoryStats(), MemoryStats()
        kw = dict(x_start_rel=0, width_elems=64, rows=8, tile_stride=64)
        add_row_region(scalar, layout, use_vectors=False, **kw)
        add_row_region(vector, layout, use_vectors=True, **kw)
        assert vector.load_instructions < scalar.load_instructions
        # Same bytes either way — vectors are an instruction-count play.
        assert vector.load_transactions == scalar.load_transactions

    def test_halo_fraction_split(self, layout):
        stats = MemoryStats()
        add_row_region(
            stats, layout, x_start_rel=0, width_elems=64, rows=10,
            tile_stride=64, halo_fraction=0.25, use_vectors=False,
        )
        total = stats.interior_transferred_bytes + stats.halo_transferred_bytes
        assert stats.halo_transferred_bytes == pytest.approx(total * 0.25)

    def test_write_uses_32b_sectors(self, layout):
        stats = MemoryStats()
        add_row_region(
            stats, layout, x_start_rel=1, width_elems=32, rows=1,
            tile_stride=64, kind=KIND_WRITE, use_vectors=False,
        )
        # 4B phase + 128B span -> 5 sectors of 32B = 160B, not 2 x 128B.
        assert stats.store_transferred_bytes == pytest.approx(160)

    def test_aligned_write_exact(self, layout):
        stats = MemoryStats()
        add_row_region(
            stats, layout, x_start_rel=0, width_elems=32, rows=4,
            tile_stride=64, kind=KIND_WRITE, use_vectors=False,
        )
        assert stats.store_transferred_bytes == pytest.approx(32 * 4 * 4)

    def test_rejects_empty(self, layout):
        with pytest.raises(ConfigurationError):
            add_row_region(
                MemoryStats(), layout, x_start_rel=0, width_elems=0, rows=1,
                tile_stride=64,
            )


class TestColumnStrip:
    def test_one_instruction_per_row(self, layout):
        stats = MemoryStats()
        add_column_strip(
            stats, layout, x_start_rel=-2, width_elems=2, rows=16, tile_stride=64
        )
        assert stats.load_instructions == 16
        assert stats.requested_load_bytes == 2 * 4 * 16

    def test_strip_is_camped(self, layout):
        stats = MemoryStats()
        add_column_strip(
            stats, layout, x_start_rel=-2, width_elems=2, rows=16, tile_stride=64
        )
        assert stats.camped_bytes == stats.halo_transferred_bytes > 0

    def test_strip_efficiency_is_terrible(self, layout):
        """The Fig 4 pathology: 8 useful bytes per 128-byte line."""
        stats = MemoryStats()
        add_column_strip(
            stats, layout, x_start_rel=-2, width_elems=2, rows=16, tile_stride=64
        )
        assert stats.load_efficiency == pytest.approx(8 / 128)


class TestCornerPatches:
    def test_four_corners_accounted(self, layout):
        stats = MemoryStats()
        add_corner_patches(
            stats, layout, radius=2, tile_x=64, tile_y=16, tile_stride=64
        )
        assert stats.requested_load_bytes == 4 * 2 * 2 * 4  # 4 corners of r*r
        assert stats.load_instructions == 8  # 2r rows per side pair

    def test_zero_radius_noop(self, layout):
        stats = MemoryStats()
        add_corner_patches(
            stats, layout, radius=0, tile_x=64, tile_y=16, tile_stride=64
        )
        assert stats.load_transactions == 0
