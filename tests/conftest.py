"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.device import get_device


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for reproducible numeric tests."""
    return np.random.default_rng(20130520)  # the paper's conference month


@pytest.fixture(params=["gtx580", "gtx680", "c2070"])
def paper_device(request):
    """Each of the paper's three evaluation GPUs."""
    return get_device(request.param)


@pytest.fixture
def gtx580():
    return get_device("gtx580")


def small_grid(rng: np.random.Generator, shape=(20, 24, 32), dtype=np.float32) -> np.ndarray:
    """A random [z, y, x] grid big enough for order-12 stencils."""
    return rng.random(shape).astype(dtype)
