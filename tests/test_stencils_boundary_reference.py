"""Boundary-handling and reference-evaluator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GridShapeError
from repro.stencils.boundary import (
    check_grid,
    interior,
    shifted_interior,
    with_boundary_from,
)
from repro.stencils.expr import symmetric_expr
from repro.stencils.reference import apply_expr, apply_symmetric, iterate_symmetric
from repro.stencils.spec import default_coefficients, symmetric


class TestBoundaryHelpers:
    def test_check_grid_accepts(self, rng):
        check_grid(rng.random((3, 5, 7)), (3, 2, 1))

    def test_check_grid_rejects_small_axis(self, rng):
        with pytest.raises(GridShapeError):
            check_grid(rng.random((3, 5, 7)), (3, 2, 2))

    def test_check_grid_rejects_2d(self, rng):
        with pytest.raises(GridShapeError):
            check_grid(rng.random((5, 5)), (1, 1, 1))

    def test_interior_shape(self, rng):
        g = rng.random((10, 12, 14))
        assert g[interior((2, 3, 1))].shape == (8, 6, 10)

    def test_zero_extent_keeps_axis(self, rng):
        g = rng.random((10, 12, 14))
        assert g[interior((0, 0, 2))].shape == (6, 12, 14)

    def test_shifted_matches_manual(self, rng):
        g = rng.random((8, 8, 8))
        view = g[shifted_interior((1, -1, 0), (1, 1, 1))]
        np.testing.assert_array_equal(view, g[1:-1, 0:-2, 2:])

    def test_shift_beyond_extent_rejected(self):
        with pytest.raises(GridShapeError):
            shifted_interior((2, 0, 0), (1, 1, 1))

    def test_with_boundary_from(self, rng):
        g = rng.random((6, 6, 6))
        core = np.zeros((4, 4, 4))
        out = with_boundary_from(g, core, (1, 1, 1))
        assert out[0, 0, 0] == g[0, 0, 0]
        assert out[3, 3, 3] == 0.0
        # Input untouched.
        assert g[3, 3, 3] != 0.0


class TestApplySymmetric:
    def test_boundary_preserved(self, rng):
        spec = symmetric(4)
        g = rng.random((10, 12, 14))
        out = apply_symmetric(spec, g)
        np.testing.assert_array_equal(out[:2], g[:2])
        np.testing.assert_array_equal(out[:, :, -2:], g[:, :, -2:])

    def test_interior_point_by_hand(self, rng):
        """One interior point evaluated against a literal loop."""
        spec = symmetric(4)
        g = rng.random((9, 9, 9))
        out = apply_symmetric(spec, g)
        z, y, x = 4, 4, 4
        expected = spec.coefficients[0] * g[z, y, x]
        for m in (1, 2):
            c = spec.coefficients[m]
            expected += c * (
                g[z, y, x - m] + g[z, y, x + m]
                + g[z, y - m, x] + g[z, y + m, x]
                + g[z - m, y, x] + g[z + m, y, x]
            )
        assert out[z, y, x] == pytest.approx(expected, rel=1e-12)

    def test_linearity(self, rng):
        spec = symmetric(2)
        a = rng.random((8, 8, 8))
        b = rng.random((8, 8, 8))
        lhs = apply_symmetric(spec, a + b)
        rhs = apply_symmetric(spec, a) + apply_symmetric(spec, b)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-12)

    def test_translation_symmetry(self, rng):
        """Shifting the input shifts the deep-interior output."""
        spec = symmetric(2)
        g = rng.random((12, 12, 12))
        out = apply_symmetric(spec, g)
        out_shift = apply_symmetric(spec, g[1:, :, :])
        np.testing.assert_allclose(
            out[3:-2, 2:-2, 2:-2], out_shift[2:-2, 2:-2, 2:-2], rtol=1e-12
        )

    def test_dtype_preserved(self, rng):
        spec = symmetric(2)
        out = apply_symmetric(spec, rng.random((6, 6, 6)).astype(np.float32))
        assert out.dtype == np.float32

    def test_too_small_grid(self, rng):
        with pytest.raises(GridShapeError):
            apply_symmetric(symmetric(8), rng.random((6, 20, 20)))

    @settings(max_examples=25, deadline=None)
    @given(radius=st.integers(1, 3), seed=st.integers(0, 2**16))
    def test_agrees_with_expression_form(self, radius, seed):
        """Eqn (1) evaluated directly == evaluated through the general
        tap machinery — ties the two stencil representations together."""
        rng = np.random.default_rng(seed)
        spec = symmetric(2 * radius)
        expr = symmetric_expr(2 * radius, spec.coefficients)
        g = rng.random((2 * radius + 3,) * 3)
        direct = apply_symmetric(spec, g)
        via_expr = apply_expr(expr, [g])[0]
        np.testing.assert_allclose(direct, via_expr, rtol=1e-10)


class TestIterate:
    def test_diffusion_contracts_range(self, rng):
        """Repeated smoothing shrinks the value range (maximum principle
        for positive weights summing to one)."""
        spec = symmetric(2)
        g = rng.random((10, 10, 10))
        out = iterate_symmetric(spec, g, steps=5)
        inner = (slice(1, -1),) * 3
        assert np.ptp(out[inner]) < np.ptp(g[inner])

    def test_zero_steps_identity(self, rng):
        g = rng.random((8, 8, 8))
        np.testing.assert_array_equal(iterate_symmetric(symmetric(2), g, 0), g)
