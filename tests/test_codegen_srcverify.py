"""Emitted-source verifier tests: the SRC-* family catches what it claims.

Strategy: every healthy emission must verify clean on all three backends,
and each rule must fire on a *surgically tampered* source — the kind of
divergence a real codegen bug would produce (wrong constant, dropped
barrier, wider-than-legal vector cast, surviving CUDA-ism after the
OpenCL regex translation).
"""

import dataclasses

import pytest

from repro.analysis import analyze_emitted, catalog
from repro.analysis.diagnostics import Severity
from repro.analysis.srcverify import (
    delimiters_balanced,
    strip_comments,
    verify_emitted,
)
from repro.codegen import (
    generate_hip_kernel,
    generate_kernel,
    generate_opencl_kernel,
    verify_or_raise,
)
from repro.errors import ConfigurationError
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import INPLANE_VARIANTS, InPlaneKernel
from repro.kernels.nvstencil import NvStencilKernel
from repro.stencils.spec import symmetric

ALL_EMITTERS = (generate_kernel, generate_opencl_kernel, generate_hip_kernel)


def make(variant="fullslice", order=4, block=(32, 4, 2, 2), dtype="sp"):
    return InPlaneKernel(symmetric(order), BlockConfig(*block), dtype, variant=variant)


def tampered(src, old, new):
    assert old in src.text, f"tamper target {old!r} not in source"
    return dataclasses.replace(src, text=src.text.replace(old, new))


def rule_ids(diags):
    return {d.rule for d in diags}


class TestCatalog:
    def test_src_family_registered_and_catalog_grew(self):
        rules = catalog()
        src_rules = {rid for rid in rules if rid.startswith("SRC-")}
        assert src_rules == {
            "SRC-DELIM", "SRC-TILE-DIM", "SRC-BARRIER", "SRC-VEC",
            "SRC-LAUNCH-BOUNDS", "SRC-QUEUE", "SRC-DIALECT", "SRC-ESTIMATE",
        }
        assert len(rules) >= 40
        assert rules["SRC-ESTIMATE"].severity == Severity.WARNING
        assert rules["SRC-DIALECT"].severity == Severity.ERROR


class TestHealthySources:
    @pytest.mark.parametrize("emit", ALL_EMITTERS, ids=lambda e: e.__name__)
    @pytest.mark.parametrize("variant", INPLANE_VARIANTS)
    def test_all_variants_verify_clean(self, emit, variant):
        src = emit(make(variant))
        assert verify_emitted(src) == []

    @pytest.mark.parametrize("emit", ALL_EMITTERS, ids=lambda e: e.__name__)
    def test_nvstencil_verifies_clean(self, emit):
        src = emit(NvStencilKernel(symmetric(8), BlockConfig(32, 8), "dp"))
        assert verify_emitted(src) == []

    def test_emitters_self_verify_by_default(self):
        # verify=True is the default: a clean plan simply generates.
        for emit in ALL_EMITTERS:
            emit(make(), verify=True)

    def test_analyze_emitted_report(self):
        report = analyze_emitted(generate_kernel(make()))
        assert report.ok
        assert report.diagnostics == []


class TestTamperDetection:
    def test_wrong_constant_fires_tile_dim(self):
        src = generate_kernel(make(order=4))
        bad = tampered(src, "#define RADIUS 2", "#define RADIUS 3")
        assert "SRC-TILE-DIM" in rule_ids(verify_emitted(bad))

    def test_missing_tile_decl_fires_tile_dim(self):
        src = generate_kernel(make())
        bad = tampered(
            src,
            "tile[TILE_Y + 2 * RADIUS][TILE_PITCH]",
            "tile[TILE_Y + 2 * RADIUS][TILE_PITCH + 1]",
        )
        assert "SRC-TILE-DIM" in rule_ids(verify_emitted(bad))

    def test_dropped_barrier_fires_barrier(self):
        src = generate_kernel(make())
        bad = dataclasses.replace(
            src, text=src.text.replace("__syncthreads();", "", 1)
        )
        assert "SRC-BARRIER" in rule_ids(verify_emitted(bad))

    def test_dropped_barrier_opencl(self):
        src = generate_opencl_kernel(make())
        bad = dataclasses.replace(
            src, text=src.text.replace("barrier(CLK_LOCAL_MEM_FENCE);", "", 1)
        )
        assert "SRC-BARRIER" in rule_ids(verify_emitted(bad))

    def test_wider_vector_cast_fires_vec(self):
        # order 2 sp fullslice emits float2 loads; widening to float4
        # breaks the alignment guarantee the IR proved.
        src = generate_kernel(make(order=2, block=(32, 4, 1, 1)))
        assert src.ir.vector_width == 2
        bad = tampered(
            src, "reinterpret_cast<const float2*>",
            "reinterpret_cast<const float4*>",
        )
        assert "SRC-VEC" in rule_ids(verify_emitted(bad))

    def test_narrower_vector_cast_fires_vec(self):
        # order 8 sp fullslice proves float4 legal; a narrowed cast means
        # the emitted loads no longer match the IR's priced decomposition.
        src = generate_kernel(make(order=8, block=(32, 4, 1, 1)))
        assert src.ir.vector_width == 4
        bad = tampered(
            src, "reinterpret_cast<const float4*>",
            "reinterpret_cast<const float2*>",
        )
        assert "SRC-VEC" in rule_ids(verify_emitted(bad))

    def test_missing_launch_bounds_fires(self):
        src = generate_kernel(make())
        bad = tampered(src, "__launch_bounds__(THREADS)\n", "")
        assert "SRC-LAUNCH-BOUNDS" in rule_ids(verify_emitted(bad))

    def test_wrong_zcol_depth_fires_queue(self):
        src = generate_kernel(make(order=8))  # r=4
        bad = tampered(src, "zcol[RY][RX][4]", "zcol[RY][RX][9]")
        assert "SRC-QUEUE" in rule_ids(verify_emitted(bad))

    def test_missing_partial_sum_queue_fires_queue(self):
        src = generate_kernel(make())
        bad = tampered(src, "queue[RY][RX][RADIUS]", "queue_[RY][RX][RADIUS]")
        assert "SRC-QUEUE" in rule_ids(verify_emitted(bad))

    def test_unbalanced_delimiters_fire_delim(self):
        src = generate_kernel(make())
        bad = dataclasses.replace(src, text=src.text.rstrip()[:-1])
        assert "SRC-DELIM" in rule_ids(verify_emitted(bad))

    def test_missing_header_is_a_warning(self):
        src = generate_kernel(make())
        line = next(
            ln for ln in src.text.splitlines()
            if ln.startswith("// repro.estimate:")
        )
        bad = tampered(src, line + "\n", "")
        diags = verify_emitted(bad)
        assert rule_ids(diags) == {"SRC-ESTIMATE"}
        assert all(d.severity == Severity.WARNING for d in diags)
        # Warnings do not refuse shipment.
        verify_or_raise(bad)

    def test_verify_or_raise_names_the_rule(self):
        src = generate_kernel(make())
        bad = tampered(src, "#define BLOCK_X 32", "#define BLOCK_X 64")
        with pytest.raises(ConfigurationError) as exc:
            verify_or_raise(bad)
        assert exc.value.rule == "SRC-TILE-DIM"

    def test_suppress_silences_a_rule(self):
        src = generate_kernel(make())
        bad = tampered(src, "#define RY 2", "#define RY 3")
        report = analyze_emitted(bad, suppress=("SRC-TILE-DIM",))
        assert report.ok


class TestOpenCLTranslation:
    """Satellite: the regex-derived backend gets its own verification."""

    def test_surviving_cudaism_fires_dialect(self):
        src = generate_opencl_kernel(make())
        bad = dataclasses.replace(
            src,
            text=src.text.replace(
                "barrier(CLK_LOCAL_MEM_FENCE);", "__syncthreads();", 1
            ),
        )
        ids = rule_ids(verify_emitted(bad))
        assert "SRC-DIALECT" in ids
        assert "SRC-BARRIER" in ids  # the barrier count dropped too

    def test_untranslated_unit_fails_wholesale(self):
        # Feed the raw CUDA text through the OpenCL checks: the verifier
        # must reject it as an incomplete translation, which is exactly
        # the failure mode a regex-rewrite gap would produce.
        cuda = generate_kernel(make())
        fake = dataclasses.replace(cuda, backend="opencl")
        ids = rule_ids(verify_emitted(fake))
        assert "SRC-DIALECT" in ids

    def test_width1_casts_are_translated(self):
        # The rewrite accepts bare float/double casts too: no
        # reinterpret_cast may survive for any variant or dtype.
        for variant in INPLANE_VARIANTS:
            for dtype in ("sp", "dp"):
                src = generate_opencl_kernel(make(variant, dtype=dtype))
                assert "reinterpret_cast" not in src.text

    def test_hip_requires_runtime_header(self):
        src = generate_hip_kernel(make())
        bad = tampered(src, "#include <hip/hip_runtime.h>\n", "")
        assert "SRC-DIALECT" in rule_ids(verify_emitted(bad))


class TestHelpers:
    def test_strip_comments_removes_header_json(self):
        src = generate_kernel(make())
        assert "repro.estimate" not in strip_comments(src.text)

    def test_delimiters_balanced_on_stripped_code(self):
        src = generate_opencl_kernel(make())
        assert delimiters_balanced(strip_comments(src.text))
        assert not delimiters_balanced("int f() { return (1; }")
