"""End-to-end pipeline integration: the library's layers composed.

One test walks the full user journey — define, verify, tune, profile,
generate code, scale out — and asserts the cross-layer consistency
contracts: the tuner's winner re-simulates to the same rate, the code
generator accepts the winner, roofline places it below its ceiling, and
the multi-GPU model reduces to the single-GPU simulation at G = 1.
"""

import numpy as np
import pytest

import repro
from repro.cluster import MultiGpuStencil
from repro.codegen import generate_host_driver, generate_kernel, generate_opencl_kernel
from repro.gpusim.device import get_device
from repro.harness.runner import tune_family
from repro.metrics.roofline import roofline

GRID = (512, 512, 256)


class TestFullPipeline:
    @pytest.mark.parametrize("device", ["gtx580", "gtx680", "c2070"])
    def test_define_verify_tune_generate(self, device, rng):
        spec = repro.symmetric(4)

        # 1. Verify numerics at a throwaway configuration.
        probe = repro.make_kernel("inplane_fullslice", spec, (16, 4))
        g = rng.random((12, 16, 20)).astype(np.float32)
        probe.validate_against(repro.apply_symmetric(spec, g), probe.execute(g))

        # 2. Tune, and re-simulate the winner: identical rate.
        tuned = tune_family("inplane_fullslice", 4, device)
        winner = repro.make_kernel("inplane_fullslice", spec, tuned.best_config)
        report = repro.simulate(winner, device, GRID)
        assert report.mpoints_per_s == pytest.approx(tuned.best_mpoints)

        # 3. The winner beats the paper-style baseline.
        baseline = tune_family("nvstencil", 4, device, register_blocking=False)
        assert tuned.best_mpoints > baseline.best_mpoints

        # 4. Roofline places the winner at or below its ceiling.
        point = roofline(winner, get_device(device), GRID, report=report)
        assert report.mpoints_per_s <= point.ceiling_mpoints * 1.001

        # 5. Both code generators accept the tuned configuration.
        cuda = generate_kernel(winner)
        opencl = generate_opencl_kernel(winner)
        assert winner.block.label().replace(", ", "x").strip("()") in cuda.name
        assert "__kernel" in opencl.text
        assert cuda.name in generate_host_driver(winner, GRID)

    def test_multigpu_reduces_to_single_gpu(self):
        sim = MultiGpuStencil(
            lambda: repro.make_kernel("inplane_fullslice", repro.symmetric(2), (64, 4, 4, 2)),
            "gtx580",
        )
        single = sim.step_cost(GRID, 1)
        direct = repro.simulate(
            repro.make_kernel("inplane_fullslice", repro.symmetric(2), (64, 4, 4, 2)),
            "gtx580",
            GRID,
        )
        assert single.step_time_s == pytest.approx(direct.time_s)
        assert single.exchange_time_s == 0.0

    def test_gt200_device_simulates(self):
        """The prior-work card (GTX285) runs through the whole stack."""
        plan = repro.make_kernel("inplane_fullslice", repro.symmetric(2), (32, 4))
        rep = repro.simulate(plan, "gtx285", (256, 256, 64))
        assert 0 < rep.mpoints_per_s
        # GT200 is slower than Fermi at equal configuration.
        fermi = repro.simulate(plan, "gtx580", (256, 256, 64))
        assert rep.mpoints_per_s < fermi.mpoints_per_s

    def test_dsl_to_tuned_simulation(self, rng):
        """Text in, tuned MPoint/s out — the Patus-style workflow."""
        from repro.kernels.multigrid import MultiGridKernel
        from repro.tuning.exhaustive import exhaustive_tune
        from repro.harness.runner import THREAD_ONLY_SPACE

        expr, inputs = repro.parse_stencil(
            "o[i,j,k] = 0.7 * u[i,j,k] + 0.1 * u[i-1,j,k] + 0.1 * u[i+1,j,k]"
            " + 0.1 * u[i,j,k-1]"
        )
        assert inputs == ["u"]
        res = exhaustive_tune(
            lambda cfg: MultiGridKernel(expr, cfg, "sp", method="inplane"),
            get_device("gtx580"),
            GRID,
            THREAD_ONLY_SPACE,
        )
        assert res.best_mpoints > 0
