"""Parameter-space constraint tests (section IV-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TuningError
from repro.gpusim.device import get_device
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.stencils.spec import symmetric
from repro.tuning.space import ParameterSpace, default_space

GRID = (512, 512, 256)


def smem_of_factory(order=2, dtype="sp"):
    dev = get_device("gtx580")

    def smem_of(cfg: BlockConfig) -> int:
        plan = make_kernel("inplane_fullslice", symmetric(order), cfg, dtype)
        return plan.block_workload(dev, GRID).smem_bytes

    return smem_of


class TestSpace:
    def test_raw_size(self):
        space = ParameterSpace(
            tx_values=(16, 32), ty_values=(1, 2), rx_values=(1,), ry_values=(1, 2)
        )
        assert space.raw_size() == 8
        assert len(list(space.candidates())) == 8

    def test_default_space_covers_table4_optima(self):
        """Every optimal configuration of Table IV must be reachable."""
        space = default_space()
        candidates = set(c.as_tuple() for c in space.candidates())
        for opt in [
            (256, 1, 1, 8), (32, 2, 2, 4), (32, 8, 2, 2), (32, 4, 1, 4),
            (32, 8, 1, 2), (64, 4, 2, 4), (128, 4, 1, 4), (16, 8, 1, 1),
            (16, 16, 1, 1), (64, 2, 1, 4), (128, 1, 1, 4), (256, 4, 1, 4),
        ]:
            assert opt in candidates, opt


class TestSignature:
    def test_stable_across_instances(self):
        assert default_space().signature() == default_space().signature()
        assert ParameterSpace().signature() == default_space().signature()

    def test_distinct_spaces_distinct_signatures(self):
        sigs = {
            default_space().signature(),
            ParameterSpace(rx_values=(1,), ry_values=(1,)).signature(),
            ParameterSpace(tx_values=(16, 32)).signature(),
            ParameterSpace(ty_values=(1, 2)).signature(),
        }
        assert len(sigs) == 4

    def test_signature_shape(self):
        sig = default_space().signature()
        assert len(sig) == 16
        assert int(sig, 16) >= 0  # hex digest prefix


class TestConstraints:
    def test_all_feasible_satisfy_paper_constraints(self):
        dev = get_device("gtx580")
        smem_of = smem_of_factory(order=8)
        feasible = default_space().feasible(dev, GRID, smem_of)
        assert feasible
        for cfg in feasible:
            assert cfg.tx % 16 == 0  # (i) half-warp multiple
            assert cfg.threads <= dev.max_threads_per_block  # (ii)
            assert smem_of(cfg) <= dev.smem_per_sm  # (iii)
            assert GRID[1] % cfg.tile_y == 0  # (iv)
            assert GRID[0] % cfg.tile_x == 0

    def test_high_order_shrinks_space(self):
        dev = get_device("gtx580")
        lo = default_space().feasible(dev, GRID, smem_of_factory(order=2))
        hi = default_space().feasible(dev, GRID, smem_of_factory(order=12))
        assert len(hi) <= len(lo)

    def test_dp_shrinks_space(self):
        dev = get_device("gtx580")
        sp = default_space().feasible(dev, GRID, smem_of_factory(dtype="sp"))
        dp = default_space().feasible(dev, GRID, smem_of_factory(dtype="dp"))
        assert len(dp) <= len(sp)

    def test_empty_space_raises(self):
        dev = get_device("gtx580")
        space = ParameterSpace(tx_values=(24,))  # violates (i) everywhere
        with pytest.raises(TuningError):
            space.feasible(dev, GRID, smem_of_factory())

    def test_small_grid_divisibility(self):
        dev = get_device("gtx580")
        feasible = default_space().feasible(dev, (64, 48, 32), smem_of_factory())
        for cfg in feasible:
            assert 48 % cfg.tile_y == 0
            assert 64 % cfg.tile_x == 0

    @settings(max_examples=20, deadline=None)
    @given(order=st.sampled_from([2, 4, 8]))
    def test_feasible_is_subset_of_candidates(self, order):
        dev = get_device("gtx680")
        space = default_space()
        all_cands = set(space.candidates())
        feas = set(space.feasible(dev, GRID, smem_of_factory(order=order)))
        assert feas <= all_cands


class TestFeasibleEdgeCases:
    def test_tile_larger_than_grid_excluded(self):
        """A tile wider/taller than the grid plane never survives (iv)."""
        dev = get_device("gtx580")
        space = ParameterSpace(
            tx_values=(16, 64), ty_values=(2, 64), rx_values=(1,), ry_values=(1,)
        )
        feasible = space.feasible(dev, (32, 32, 16), lambda cfg: 0)
        assert feasible == [BlockConfig(16, 2, 1, 1)]
        for cfg in feasible:
            assert cfg.tile_x <= 32 and cfg.tile_y <= 32

    def test_every_tile_too_large_raises(self):
        dev = get_device("gtx580")
        space = ParameterSpace(
            tx_values=(256,), ty_values=(32,), rx_values=(1,), ry_values=(1,)
        )
        with pytest.raises(TuningError):
            space.feasible(dev, (64, 16, 8), lambda cfg: 0)

    def test_smem_probe_error_skips_config(self):
        """A ReproError from ``smem_bytes_of`` drops the config, silently."""
        from repro.errors import ReproError

        dev = get_device("gtx580")
        space = ParameterSpace(
            tx_values=(16, 32), ty_values=(2,), rx_values=(1,), ry_values=(1,)
        )

        def smem_of(cfg: BlockConfig) -> int:
            if cfg.tx == 32:
                raise ReproError("cannot lay out this block")
            return 0

        feasible = space.feasible(dev, (64, 64, 32), smem_of)
        assert feasible == [BlockConfig(16, 2, 1, 1)]

    def test_smem_probe_error_everywhere_raises_tuning_error(self):
        from repro.errors import ReproError

        dev = get_device("gtx580")
        space = ParameterSpace(
            tx_values=(16,), ty_values=(2,), rx_values=(1,), ry_values=(1,)
        )

        def smem_of(cfg: BlockConfig) -> int:
            raise ReproError("no layout")

        with pytest.raises(TuningError):
            space.feasible(dev, (64, 64, 32), smem_of)

    def test_empty_space_error_names_grid_and_device(self):
        dev = get_device("c2070")
        space = ParameterSpace(tx_values=(24,))  # violates (i) everywhere
        with pytest.raises(TuningError) as err:
            space.feasible(dev, (48, 48, 16), smem_of_factory())
        assert str(err.value) == (
            "no feasible configuration for grid (48, 48, 16) on c2070"
        )

    def test_non_exception_probe_errors_propagate(self):
        """Only ReproError means 'infeasible'; real bugs must surface."""
        dev = get_device("gtx580")
        space = ParameterSpace(
            tx_values=(16,), ty_values=(2,), rx_values=(1,), ry_values=(1,)
        )

        def smem_of(cfg: BlockConfig) -> int:
            raise ValueError("a genuine bug")

        with pytest.raises(ValueError):
            space.feasible(dev, (64, 64, 32), smem_of)
