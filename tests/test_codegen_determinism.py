"""Golden-hash determinism: every backend's output is pinned byte-for-byte.

``tests/data/codegen_digests.json`` holds the SHA-256 of every cell in
the representative generation matrix (both families' variants ⨯ low/high
order ⨯ sp/dp ⨯ all three backends).  Any unintentional drift in any
emitter — rewrite order, float formatting, header layout — fails here;
intentional changes regenerate the manifest with
``tools/regen_codegen_digests.py`` and commit it with the diff.
"""

import hashlib
import json

import pytest

from repro.codegen.manifest import (
    BACKENDS,
    MANIFEST_PATH,
    MATRIX_DTYPES,
    MATRIX_ORDERS,
    digest_matrix,
    generate_backend,
    manifest_matrix,
)
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import INPLANE_VARIANTS, InPlaneKernel
from repro.stencils.spec import symmetric


@pytest.fixture(scope="module")
def manifest():
    assert MANIFEST_PATH.exists(), (
        f"{MANIFEST_PATH} missing — run tools/regen_codegen_digests.py"
    )
    return json.loads(MANIFEST_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    return digest_matrix()


class TestMatrixShape:
    def test_every_family_variant_and_backend_covered(self, manifest):
        families = len(INPLANE_VARIANTS) + 1  # + nvstencil.forward
        expected = (
            families * len(MATRIX_ORDERS) * len(MATRIX_DTYPES) * len(BACKENDS)
        )
        assert len(manifest) == expected
        for backend in BACKENDS:
            assert any(key.endswith(f":{backend}") for key in manifest)
        for variant in INPLANE_VARIANTS:
            assert any(key.startswith(f"inplane.{variant}:") for key in manifest)
        assert any(key.startswith("nvstencil.forward:") for key in manifest)

    def test_matrix_keys_match_manifest_keys(self, manifest, current):
        assert set(current) == set(manifest)


class TestGoldenDigests:
    def test_all_cells_match_checked_in_digests(self, manifest, current):
        drifted = sorted(
            key for key in manifest if manifest[key] != current[key]
        )
        assert not drifted, (
            "emitted source drifted from the golden manifest for "
            f"{drifted}; if intentional, run tools/regen_codegen_digests.py"
        )


class TestByteDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_repeated_generation_is_byte_identical(self, backend):
        plan = InPlaneKernel(
            symmetric(8), BlockConfig(32, 4, 2, 2), "dp", variant="fullslice"
        )
        a = generate_backend(plan, backend).text
        b = generate_backend(plan, backend).text
        assert a == b

    def test_digest_covers_full_text(self):
        key, plan, backend = manifest_matrix()[0]
        src = generate_backend(plan, backend)
        digest = hashlib.sha256(src.text.encode("utf-8")).hexdigest()
        assert digest == digest_matrix()[key]

    def test_unknown_backend_rejected(self):
        plan = InPlaneKernel(symmetric(2), BlockConfig(32, 4))
        with pytest.raises(ValueError):
            generate_backend(plan, "sycl")
