"""Access-plan IR tests: lowering is lossless and a pure function of the plan.

The IR is the contract every emitter and both static passes consume, so
the property that matters most is round-trip exactness: reconstructing
the plan's :class:`BlockWorkload` from the IR must be *equality*, not
approximation — that is what makes the codegen-time estimator exact
against the simulator's counters by construction.
"""

import dataclasses

import pytest

from repro.analysis.planir import (
    BARRIERS_PER_PLANE,
    DEFAULT_GRID,
    LoweringError,
    _check_region_sums,
    kernel_symbol,
    lower_plan,
    plan_vector_width,
)
from repro.codegen import generate_kernel
from repro.gpusim.device import get_device
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import INPLANE_VARIANTS, InPlaneKernel
from repro.kernels.multigrid import MultiGridKernel
from repro.kernels.nvstencil import NvStencilKernel
from repro.stencils.applications import laplacian
from repro.stencils.spec import symmetric


def all_plans():
    plans = []
    for variant in INPLANE_VARIANTS:
        for order in (2, 8):
            for dtype in ("sp", "dp"):
                plans.append(InPlaneKernel(
                    symmetric(order), BlockConfig(32, 4, 2, 2), dtype,
                    variant=variant,
                ))
    for dtype in ("sp", "dp"):
        plans.append(NvStencilKernel(symmetric(4), BlockConfig(32, 8), dtype))
    return plans


@pytest.mark.parametrize("plan", all_plans(), ids=lambda p: p.name)
class TestRoundTrip:
    def test_workload_reconstruction_is_exact(self, plan, gtx580):
        ir = lower_plan(plan)
        assert ir.to_workload() == plan.block_workload(gtx580, DEFAULT_GRID)

    def test_memory_stats_reconstruction_is_exact(self, plan, gtx580):
        ir = lower_plan(plan)
        mem = plan.block_workload(gtx580, DEFAULT_GRID).memory
        assert ir.to_memory_stats() == mem

    def test_grid_workload_matches_plan(self, plan, gtx580):
        ir = lower_plan(plan)
        assert ir.grid_workload() == plan.grid_workload(gtx580, DEFAULT_GRID)

    def test_region_sums_hold(self, plan):
        ir = lower_plan(plan)
        total = sum(r.transactions for r in ir.regions)
        declared = (
            ir.traffic.load_transactions + ir.traffic.store_transactions
        )
        assert total == pytest.approx(declared, rel=1e-12)


class TestIdentity:
    def test_kernel_symbol_matches_emitted_name(self):
        plan = InPlaneKernel(
            symmetric(6), BlockConfig(32, 4, 2, 2), "sp", variant="fullslice"
        )
        assert kernel_symbol(plan) == generate_kernel(plan).name

    def test_method_and_depths(self):
        inp = lower_plan(
            InPlaneKernel(symmetric(8), BlockConfig(32, 4), "sp")
        )
        fwd = lower_plan(NvStencilKernel(symmetric(8), BlockConfig(32, 8)))
        assert (inp.method, inp.zqueue_depth, inp.queue_depth) == (
            "inplane", 4, 4
        )
        assert (fwd.method, fwd.zqueue_depth, fwd.queue_depth) == (
            "forward", 9, 0
        )
        assert inp.barriers_per_plane == BARRIERS_PER_PLANE

    def test_vector_width_matches_emitter_behaviour(self):
        # order 8 (r=4) fullslice SP: float4 merged loads (the pinned
        # emitter behaviour in test_codegen.py).
        plan = InPlaneKernel(
            symmetric(8), BlockConfig(32, 4, 1, 1), "sp", variant="fullslice"
        )
        assert plan_vector_width(plan) == 4
        assert lower_plan(plan).vector_width == 4
        assert plan_vector_width(
            NvStencilKernel(symmetric(4), BlockConfig(32, 8))
        ) == 1

    def test_tile_pitch_matches_emitted_define(self):
        for dtype in ("sp", "dp"):
            plan = InPlaneKernel(
                symmetric(4), BlockConfig(32, 4, 2, 2), dtype
            )
            ir = lower_plan(plan)
            src = generate_kernel(plan)
            assert f"#define TILE_PITCH {ir.tile.pitch_elems}" in src.text
            assert ir.tile.width_elems == plan.block.tile_x + 2 * 2
            assert ir.tile.bytes == ir.smem_bytes

    def test_launch_bounds(self):
        ir = lower_plan(InPlaneKernel(symmetric(2), BlockConfig(64, 8)))
        assert ir.launch_bounds == (512, 1)
        assert ir.threads == 512


class TestLoweringContract:
    def test_unsupported_family_raises_typeerror(self):
        with pytest.raises(TypeError):
            lower_plan(MultiGridKernel(laplacian(), BlockConfig(32, 4)))

    def test_region_sum_check_catches_divergence(self):
        ir = lower_plan(InPlaneKernel(symmetric(4), BlockConfig(32, 4)))
        broken = dataclasses.replace(
            ir.traffic,
            load_transactions=ir.traffic.load_transactions + 10.0,
        )
        with pytest.raises(LoweringError):
            _check_region_sums(ir.regions, broken)

    def test_lowering_is_deterministic(self):
        plan = InPlaneKernel(symmetric(6), BlockConfig(32, 4, 2, 2), "dp")
        assert lower_plan(plan) == lower_plan(plan)

    def test_json_rendering(self):
        ir = lower_plan(InPlaneKernel(symmetric(4), BlockConfig(32, 4)))
        obj = ir.to_json_obj()
        assert obj["kernel"] == ir.kernel
        assert obj["tile"]["pitch_elems"] == ir.tile.pitch_elems
        assert len(obj["regions"]) == len(ir.regions)
