"""Telemetry exporter and profiler-CLI integration tests."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.gpusim.executor import simulate
from repro.gpusim.report import BREAKDOWN_KEYS
from repro.kernels.factory import make_kernel
from repro.obs.schema import validate_trace
from repro.obs.telemetry import (
    TelemetryCollector,
    record_from_report,
)
from repro.stencils.spec import symmetric


@pytest.fixture
def report():
    plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
    return simulate(plan, "gtx580", (128, 128, 64))


class TestTelemetry:
    def test_record_from_report(self, report):
        rec = record_from_report(report, order=4, source="unit")
        assert rec.device == "gtx580"
        assert rec.kernel == report.kernel_name
        assert rec.order == 4 and rec.dtype == "sp"
        assert rec.mpoints_per_s == round(report.mpoints_per_s, 3)
        assert tuple(rec.breakdown) == BREAKDOWN_KEYS
        assert rec.key == ("gtx580", report.kernel_name, 4, "sp")

    def test_collector_dedups_by_key_and_source(self, report):
        coll = TelemetryCollector()
        first = coll.add_report(report, order=4, source="a")
        coll.add_report(report, order=4, source="a")  # same cell: overwrite
        coll.add_report(report, order=4, source="b")  # new source: new cell
        assert len(coll) == 2
        assert coll.records[0] == first

    def test_document_shape_and_determinism(self, report, tmp_path):
        coll = TelemetryCollector()
        coll.add_report(report, order=4, source="unit")
        path = coll.write(tmp_path / "profile.json")
        doc = json.loads(path.read_text())
        assert doc["tool"] == "repro.obs"
        assert doc["records"][0]["breakdown"].keys() == set(BREAKDOWN_KEYS)
        # Timestamp-free: two exports of the same state are identical.
        assert coll.to_json() == path.read_text()

    def test_records_sorted(self, report):
        coll = TelemetryCollector()
        coll.add_report(report, order=4, source="z")
        coll.add_report(report, order=4, source="a")
        assert [r.source for r in coll.records] == ["a", "z"]


class TestProfileCli:
    ARGS = ["profile", "--order", "4", "--block", "32,4,1,2",
            "--grid", "128,128,64"]

    def test_json_stdout_is_pipe_clean(self, capsys):
        assert main([*self.ARGS, "--json"]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # any stray prose would break this
        assert doc["records"]
        assert doc["records"][0]["device"] == "gtx580"

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main([*self.ARGS, "--trace-out", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        validate_trace(doc)
        kernels = [e for e in doc["traceEvents"] if e.get("cat") == "sim.kernel"]
        assert len(kernels) == 1

    def test_tune_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "tune_trace.json"
        assert main([
            "tune", "--kernel", "inplane_fullslice", "--order", "2",
            "--device", "gtx580", "--grid", "128,128,64", "--method", "model",
            "--trace", str(trace),
        ]) == 0
        doc = json.loads(trace.read_text())
        validate_trace(doc)
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "tune.run" in cats and "tune.trial" in cats

    def test_simulate_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "sim_trace.json"
        assert main([
            "simulate", "--kernel", "inplane_fullslice", "--order", "4",
            "--device", "gtx680", "--block", "32,4,1,2",
            "--grid", "128,128,64", "--trace", str(trace),
        ]) == 0
        validate_trace(json.loads(trace.read_text()))

    def test_quiet_silences_diagnostics(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["-q", *self.ARGS, "--json",
                     "--trace-out", str(trace)]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)
        assert captured.err == ""
