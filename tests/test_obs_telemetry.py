"""Telemetry exporter and profiler-CLI integration tests."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.gpusim.executor import simulate
from repro.gpusim.report import BREAKDOWN_KEYS
from repro.kernels.factory import make_kernel
from repro.obs.counters import COUNTER_KEYS
from repro.obs.schema import validate_trace
from repro.obs.telemetry import (
    PROFILE_SCHEMA_VERSION,
    TelemetryCollector,
    load_profile,
    record_from_report,
)
from repro.stencils.spec import symmetric


@pytest.fixture
def report():
    plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
    return simulate(plan, "gtx580", (128, 128, 64))


class TestTelemetry:
    def test_record_from_report(self, report):
        rec = record_from_report(report, order=4, source="unit")
        assert rec.device == "gtx580"
        assert rec.kernel == report.kernel_name
        assert rec.order == 4 and rec.dtype == "sp"
        assert rec.mpoints_per_s == round(report.mpoints_per_s, 3)
        assert tuple(rec.breakdown) == BREAKDOWN_KEYS
        assert rec.key == ("gtx580", report.kernel_name, 4, "sp")

    def test_collector_dedups_by_key_and_source(self, report):
        coll = TelemetryCollector()
        first = coll.add_report(report, order=4, source="a")
        coll.add_report(report, order=4, source="a")  # same cell: overwrite
        coll.add_report(report, order=4, source="b")  # new source: new cell
        assert len(coll) == 2
        assert coll.records[0] == first

    def test_document_shape_and_determinism(self, report, tmp_path):
        coll = TelemetryCollector()
        coll.add_report(report, order=4, source="unit")
        path = coll.write(tmp_path / "profile.json")
        doc = json.loads(path.read_text())
        assert doc["tool"] == "repro.obs"
        assert doc["records"][0]["breakdown"].keys() == set(BREAKDOWN_KEYS)
        # Timestamp-free: two exports of the same state are identical.
        assert coll.to_json() == path.read_text()

    def test_records_sorted(self, report):
        coll = TelemetryCollector()
        coll.add_report(report, order=4, source="z")
        coll.add_report(report, order=4, source="a")
        assert [r.source for r in coll.records] == ["a", "z"]

    def test_v2_record_carries_counters_and_grid(self, report):
        rec = record_from_report(report, order=4, source="unit")
        assert set(rec.counters) == set(COUNTER_KEYS) | {"occupancy_limiter"}
        assert rec.grid == (128, 128, 64)
        # Rounded for diff stability, same policy as the headline fields.
        assert rec.counters["gld_efficiency"] == round(
            report.counters["gld_efficiency"], 6
        )

    def test_v2_document_roundtrips_through_load_profile(self, report, tmp_path):
        coll = TelemetryCollector()
        coll.add_report(report, order=4, source="unit")
        path = coll.write(tmp_path / "profile.json")
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION
        assert doc["records"][0]["grid"] == [128, 128, 64]
        (rec,) = load_profile(path)
        assert rec == coll.records[0]


class TestProfileCli:
    ARGS = ["profile", "--order", "4", "--block", "32,4,1,2",
            "--grid", "128,128,64"]

    def test_json_stdout_is_pipe_clean(self, capsys):
        assert main([*self.ARGS, "--json"]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # any stray prose would break this
        assert doc["records"]
        assert doc["records"][0]["device"] == "gtx580"

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main([*self.ARGS, "--trace-out", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        validate_trace(doc)
        kernels = [e for e in doc["traceEvents"] if e.get("cat") == "sim.kernel"]
        assert len(kernels) == 1

    def test_tune_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "tune_trace.json"
        assert main([
            "tune", "--kernel", "inplane_fullslice", "--order", "2",
            "--device", "gtx580", "--grid", "128,128,64", "--method", "model",
            "--trace", str(trace),
        ]) == 0
        doc = json.loads(trace.read_text())
        validate_trace(doc)
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "tune.run" in cats and "tune.trial" in cats

    def test_simulate_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "sim_trace.json"
        assert main([
            "simulate", "--kernel", "inplane_fullslice", "--order", "4",
            "--device", "gtx680", "--block", "32,4,1,2",
            "--grid", "128,128,64", "--trace", str(trace),
        ]) == 0
        validate_trace(json.loads(trace.read_text()))

    def test_quiet_silences_diagnostics(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["-q", *self.ARGS, "--json",
                     "--trace-out", str(trace)]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)
        assert captured.err == ""

    def test_text_summary_names_the_limiter(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "limiter: " in out
        assert "limited by " in out
        assert " of ceiling" in out  # roofline-backed attribution headline

    def test_reconciliation_failure_exits_nonzero(self, capsys, monkeypatch):
        # Every output mode must fail loudly when the trace does not
        # reconcile with the model — including --json, which previously
        # returned 0 unconditionally.
        import repro.obs.summary as summary

        monkeypatch.setattr(
            summary, "reconcile_failures", lambda tracer: ["injected failure"]
        )
        assert main([*self.ARGS, "--json"]) == 1
        json.loads(capsys.readouterr().out)  # stdout stays pipe-clean
        assert main(self.ARGS) == 1
