"""End-to-end `repro lint` CLI contract and the codegen gate."""

import json

import pytest

from repro.cli import main
from repro.codegen.cuda import generate_kernel
from repro.errors import ConfigurationError
from repro.gpusim.device import get_device
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import InPlaneKernel
from repro.stencils.spec import symmetric

CLEAN = ["lint", "--kernel", "inplane_fullslice", "--order", "2",
         "--block", "32,4,1,4"]


class TestLintExitCodes:
    def test_clean_plan_exits_zero(self, capsys):
        assert main(CLEAN) == 0
        out = capsys.readouterr().out
        assert "error" not in out.splitlines()[0].lower()

    def test_injected_overlap_exits_nonzero(self, capsys):
        code = main(CLEAN + ["--tile-stride", "24,16"])
        assert code == 1
        assert "COV-TILE-OVERLAP" in capsys.readouterr().out

    def test_injected_gap_exits_nonzero(self, capsys):
        code = main(CLEAN + ["--tile-stride", "40,16"])
        assert code == 1
        assert "COV-TILE-GAP" in capsys.readouterr().out

    def test_tiny_grid_exits_nonzero(self, capsys):
        code = main(["lint", "--kernel", "inplane_fullslice", "--order", "8",
                     "--block", "16,1", "--grid", "8,64,64"])
        assert code == 1
        assert "HALO-GRID-SMALL" in capsys.readouterr().out

    def test_invalid_block_is_reported_not_raised(self, capsys):
        code = main(["lint", "--kernel", "inplane_fullslice", "--order", "2",
                     "--block", "0,4"])
        assert code == 1
        out = capsys.readouterr().out
        assert "CFG-" in out or "error" in out

    def test_unknown_kernel_is_reported_not_raised(self, capsys):
        code = main(["lint", "--kernel", "not_a_kernel", "--order", "2",
                     "--block", "32,4"])
        assert code == 1


class TestLintOutputModes:
    def test_json_output_is_machine_readable(self, capsys):
        code = main(CLEAN + ["--tile-stride", "24,16", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "COV-TILE-OVERLAP" in rules
        for d in payload["diagnostics"]:
            assert {"rule", "severity", "location", "message"} <= set(d)

    def test_suppress_drops_a_rule_and_flips_the_exit_code(self, capsys):
        code = main(["lint", "--kernel", "inplane_fullslice", "--order", "2",
                     "--block", "32,4", "--tile-stride", "24,4",
                     "--suppress", "COV-TILE-OVERLAP", "--json"])
        payload = json.loads(capsys.readouterr().out)
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "COV-TILE-OVERLAP" not in rules
        assert code == 0

    def test_inline_stencil_source(self, capsys):
        code = main(["lint", "--stencil",
                     "out[i,j,k] = 0.5*u[i,j,k] + 0.25*u[i+1,j,k] + 0.25*u[i-1,j,k]"])
        assert code == 0

    def test_broken_stencil_source(self, capsys):
        code = main(["lint", "--stencil", "out = %%% nope"])
        assert code == 1
        assert "DSL-PARSE" in capsys.readouterr().out

    def test_stencil_file(self, tmp_path, capsys):
        path = tmp_path / "s.stencil"
        path.write_text("out[i,j,k] = u[i,j,k]\n")
        code = main(["lint", "--stencil-file", str(path)])
        # A pointwise program lints clean at error level (warnings only).
        assert code == 0


class TestCodegenGate:
    def test_clean_plan_generates(self):
        plan = InPlaneKernel(symmetric(2), BlockConfig(32, 4))
        src = generate_kernel(plan, grid_shape=(512, 512, 64),
                              device=get_device("gtx580"))
        assert src.line_count() > 0

    def test_oversized_tile_is_refused(self):
        plan = InPlaneKernel(symmetric(8), BlockConfig(512, 1, 4, 8))
        with pytest.raises(ConfigurationError) as err:
            generate_kernel(plan, grid_shape=(512, 512, 64))
        assert err.value.rule is not None

    def test_gate_without_context_passes_structural_plans(self):
        # No device/grid supplied: only structural families run.
        plan = InPlaneKernel(symmetric(2), BlockConfig(32, 4))
        assert generate_kernel(plan).line_count() > 0

    def test_cli_codegen_still_works(self, capsys):
        code = main(["codegen", "--kernel", "inplane_fullslice",
                     "--order", "2", "--block", "32,4"])
        assert code == 0
        assert "__global__" in capsys.readouterr().out
