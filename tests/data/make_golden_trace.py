"""Regenerate ``tests/data/golden_trace.json``.

Run after an *intentional* change to the cycle model or trace schema::

    PYTHONPATH=src python tests/data/make_golden_trace.py
"""

from __future__ import annotations

import json
from pathlib import Path

import repro.obs as obs
from repro.gpusim.executor import DeviceExecutor
from repro.kernels.factory import make_kernel
from repro.obs.chrome import to_chrome_trace
from repro.stencils.spec import symmetric


def main() -> None:
    with obs.tracing() as tracer:
        plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
        DeviceExecutor("gtx580").run(plan, (128, 128, 64))
    doc = to_chrome_trace(tracer, device_only=True)
    path = Path(__file__).parent / "golden_trace.json"
    path.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {path} ({len(doc['traceEvents'])} events)")


if __name__ == "__main__":
    main()
