"""Regenerate golden_metrics.prom / golden_metrics.json.

Run from the repo root after an intentional exporter format change::

    PYTHONPATH=src python tests/data/make_golden_metrics.py

The inputs are the deterministic sample registry the ``--lint`` self
-check uses, so the goldens pin the exact bytes both exporters produce.
"""

import json
from pathlib import Path

from repro.obs.export import _sample_registry, to_otlp_json, to_prometheus

HERE = Path(__file__).parent

if __name__ == "__main__":
    snapshot = _sample_registry().snapshot()
    (HERE / "golden_metrics.prom").write_text(to_prometheus(snapshot))
    (HERE / "golden_metrics.json").write_text(
        json.dumps(to_otlp_json(snapshot), indent=1, sort_keys=True) + "\n"
    )
    print("wrote", HERE / "golden_metrics.prom")
    print("wrote", HERE / "golden_metrics.json")
