"""Experiment-harness tests (reduced sweeps for speed).

The full paper-scale sweeps live in ``benchmarks/``; here we verify the
drivers' mechanics and the headline shape criteria on reduced settings.
"""

import pytest

from repro.harness import (
    fig7_variants,
    fig8_surface,
    fig9_load_efficiency,
    fig10_breakdown,
    fig12_modelbased,
    high_order_crossover,
    table1_specs,
    table2_opcounts,
    table3_devices,
    table4_autotune,
)
from repro.harness.export import to_csv, to_json, write_result
from repro.harness.runner import PAPER_GRID, ExperimentRunner, tune_family


class TestRunner:
    def test_tune_family_memoizes(self):
        a = tune_family("nvstencil", 2, "gtx580", register_blocking=False)
        b = tune_family("nvstencil", 2, "gtx580", register_blocking=False)
        assert a is b

    def test_register_blocking_flag_separates_cache(self):
        a = tune_family("inplane_fullslice", 2, "gtx580", register_blocking=False)
        b = tune_family("inplane_fullslice", 2, "gtx580", register_blocking=True)
        assert b.best_mpoints >= a.best_mpoints
        assert a is not b

    def test_thread_only_space_has_no_register_blocking(self):
        res = tune_family("nvstencil", 2, "gtx580", register_blocking=False)
        for entry in res.entries:
            assert entry.config.rx == 1 and entry.config.ry == 1

    def test_runner_baseline(self):
        runner = ExperimentRunner(devices=("gtx580",))
        base = runner.baseline(2, runner.devices[0])
        assert base.best_mpoints > 0


class TestTables:
    def test_table1_matches_paper_exactly(self):
        for row in table1_specs().rows:
            order, _, mem, flops, p_mem, p_flops = row
            assert mem == p_mem and flops == p_flops, f"order {order}"

    def test_table2_matches_paper_exactly(self):
        for row in table2_opcounts().rows:
            _, refs, f_in, f_nv, paper = row
            assert paper == f"{refs}/{f_in}/{f_nv}"

    def test_table3_renders(self):
        text = table3_devices().render()
        assert "GTX580" in text and "1581" in text

    def test_table4_rows_and_shape(self):
        res = table4_autotune(orders=(2, 12), devices=("gtx580",), dtypes=("sp",))
        assert len(res.rows) == 2
        by_order = {r[2]: r for r in res.rows}
        # Speedup > 1 everywhere, and order 2 beats order 12 (Table IV trend).
        assert by_order[2][5] > by_order[12][5] > 1.0


class TestFigures:
    def test_fig7_fullslice_best_variant(self):
        res = fig7_variants(orders=(2, 8), devices=("gtx580",))
        for row in res.rows:
            _, _, _, vertical, horizontal, fullslice = row
            assert fullslice >= horizontal >= vertical
            assert fullslice > 1.1

    def test_fig8_surface_covers_rx_ry_grid(self):
        res = fig8_surface(order=2, device="gtx580")
        assert len(res.rows) == 3 * 4  # RX values x RY values
        rates = [row[4] for row in res.rows]
        assert max(rates) > 0
        # The Fig 8 shape: a ridge with a cliff where register pressure
        # (or a constraint) kills over-aggressive register tiles.
        assert min(rates) < 0.5 * max(rates)

    def test_fig9_fullslice_more_efficient(self):
        res = fig9_load_efficiency(orders=(2, 8, 12), devices=("gtx580",))
        for _, _, nv, fs in res.rows:
            assert fs > nv

    def test_fig10_ordering(self):
        res = fig10_breakdown(orders=(2,), devices=("gtx580",))
        _, _, nv_rb, fs, fs_rb = res.rows[0]
        assert fs_rb > max(nv_rb, fs) >= 1.0

    def test_fig12_executes_beta_fraction(self):
        res = fig12_modelbased(orders=(8,), devices=("gtx580",))
        _, _, exh, mb, gap, executed = res.rows[0]
        done, total = executed.split("/")
        assert int(done) < int(total)
        assert mb <= exh

    def test_crossover_speedup_declines(self):
        res = high_order_crossover(
            device="c2070", dtypes=("sp",), orders=(2, 8, 16, 24)
        )
        speeds = [r[2] for r in res.rows if isinstance(r[1], int)]
        assert speeds[0] > speeds[-1]


class TestExport:
    def test_csv(self):
        text = to_csv(table1_specs())
        assert text.splitlines()[0].startswith("order,")
        assert len(text.splitlines()) == 7

    def test_json(self):
        import json

        doc = json.loads(to_json(table2_opcounts()))
        assert doc["name"].startswith("Table II")
        assert len(doc["rows"]) == 6

    def test_write_result_by_suffix(self, tmp_path):
        res = table1_specs()
        assert write_result(res, tmp_path / "t.csv").read_text().startswith("order")
        assert "{" in write_result(res, tmp_path / "t.json").read_text()
        assert "Table I" in write_result(res, tmp_path / "t.txt").read_text()
