"""Trace-vs-analytic cross-validation of the coalescing model.

Brute-force address enumeration must agree exactly with the analytic
per-region accounting used by every kernel workload.  This is the test
that makes the simulator's memory numbers trustworthy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.memory import MemoryStats
from repro.gpusim.trace import (
    TracedInstruction,
    average_region_trace,
    trace_column_strip,
    trace_row_region,
)
from repro.kernels.layout import GridLayout
from repro.kernels.loads import add_column_strip, add_row_region


class TestTracedInstruction:
    def test_contiguous_warp_one_line(self):
        instr = TracedInstruction(
            lane_addresses=tuple(range(0, 128, 4)), vec_width=1, elem_bytes=4
        )
        assert instr.lines_touched() == {0}
        assert instr.useful_bytes() == 128

    def test_straddling_access(self):
        instr = TracedInstruction(lane_addresses=(120,), vec_width=4, elem_bytes=4)
        assert instr.lines_touched() == {0, 1}

    def test_scattered_lanes(self):
        instr = TracedInstruction(
            lane_addresses=(0, 256, 512), vec_width=1, elem_bytes=4
        )
        assert len(instr.lines_touched()) == 3


class TestTraceVsAnalytic:
    @settings(max_examples=60, deadline=None)
    @given(
        x_start=st.integers(-12, 12),
        width=st.integers(1, 200),
        rows=st.integers(1, 6),
        stride_units=st.integers(1, 16),
        elem=st.sampled_from([4, 8]),
        aligned=st.sampled_from([0, -1, -2, -4]),
        vec=st.sampled_from([1, 2, 4]),
    )
    def test_row_region_agreement(
        self, x_start, width, rows, stride_units, elem, aligned, vec
    ):
        """Analytic add_row_region == exact enumeration, averaged over one
        alignment period, for arbitrary geometry."""
        layout = GridLayout(512, 64, 8, elem, aligned_x=aligned)
        tile_stride = 16 * stride_units

        instr, tx, req = average_region_trace(
            layout,
            x_start_rel=x_start,
            width_elems=width,
            rows=rows,
            tile_stride=tile_stride,
            vec_width=vec,
        )

        stats = MemoryStats()
        # The analytic path chooses its own vector width; force parity by
        # comparing against the scalar path when vec == 1 and checking the
        # chosen-vec path separately below.
        if vec == 1:
            add_row_region(
                stats,
                layout,
                x_start_rel=x_start,
                width_elems=width,
                rows=rows,
                tile_stride=tile_stride,
                use_vectors=False,
            )
            assert stats.load_instructions == pytest.approx(instr)
            assert stats.load_transactions == pytest.approx(tx)
            assert stats.requested_load_bytes == pytest.approx(req)

    @settings(max_examples=40, deadline=None)
    @given(
        width=st.integers(1, 12),
        rows=st.integers(1, 12),
        x_start=st.integers(-12, 0),
        elem=st.sampled_from([4, 8]),
    )
    def test_column_strip_agreement(self, width, rows, x_start, elem):
        layout = GridLayout(256, 64, 8, elem)
        stats = MemoryStats()
        add_column_strip(
            stats,
            layout,
            x_start_rel=x_start,
            width_elems=width,
            rows=rows,
            tile_stride=64,
        )
        # Strips start at a fixed offset from each tile; stride 64 elems is
        # a line multiple for SP (and DP), so one origin represents all.
        trace = trace_column_strip(
            layout,
            x_start_rel=x_start,
            width_elems=width,
            rows=rows,
            tile_origin_x=0,
        )
        assert stats.load_instructions == trace.instructions
        assert stats.load_transactions == pytest.approx(trace.transactions)
        assert stats.requested_load_bytes == trace.requested_bytes

    def test_vectorized_path_agreement(self):
        """When the analytic path picks vec4, the enumeration with vec4
        must agree on instructions AND transactions."""
        layout = GridLayout(512, 64, 8, 4, aligned_x=0)
        stats = MemoryStats()
        add_row_region(
            stats,
            layout,
            x_start_rel=0,
            width_elems=128,
            rows=4,
            tile_stride=64,
            use_vectors=True,
        )
        instr, tx, req = average_region_trace(
            layout,
            x_start_rel=0,
            width_elems=128,
            rows=4,
            tile_stride=64,
            vec_width=4,
        )
        assert stats.load_instructions == pytest.approx(instr)
        assert stats.load_transactions == pytest.approx(tx)

    def test_transactions_independent_of_vector_width(self):
        """Vectors change instruction counts, never bytes (III-C-2)."""
        layout = GridLayout(512, 64, 8, 4)
        results = [
            average_region_trace(
                layout, x_start_rel=0, width_elems=96, rows=3,
                tile_stride=32, vec_width=v,
            )
            for v in (1, 2, 4)
        ]
        txs = [r[1] for r in results]
        assert txs[0] == txs[1] == txs[2]
        instrs = [r[0] for r in results]
        assert instrs[0] > instrs[1] > instrs[2]
