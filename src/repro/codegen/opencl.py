"""OpenCL C emitter — the portable twin of the CUDA generator.

The paper names both CUDA and OpenCL as the programming models that make
stencil SIMT offload practical (section I, refs [1], [2]).  This module
emits the OpenCL rendering of a symmetric kernel plan by lowering the
same structure the CUDA emitter produces through a small, explicit
dialect mapping — one source of truth for the algorithm, two backends.

Dialect mapping used (the complete set; tests pin it):

========================  =================================
CUDA                      OpenCL
========================  =================================
``__global__``            ``__kernel``
``__shared__``            ``__local``
``__constant__``          ``__constant``
``__device__`` helpers    plain functions
``__restrict__``          ``restrict``
``threadIdx.x/y``         ``get_local_id(0/1)``
``blockIdx.x/y``          ``get_group_id(0/1)``
``__syncthreads()``       ``barrier(CLK_LOCAL_MEM_FENCE)``
``float4``/``float2``     same (requires ``vloadn`` forms)
``__launch_bounds__``     ``reqd_work_group_size`` attribute
``extern "C"``            (not needed)
========================  =================================
"""

from __future__ import annotations

import re

from repro.codegen.cuda import CudaSource, generate_kernel, verify_or_raise
from repro.kernels.symmetric import SymmetricKernelPlan

#: Ordered textual rewrites from the CUDA dialect to OpenCL.
#:
#: The vector-cast rewrite accepts a width-1 (bare ``float``/``double``)
#: cast too: a plan whose alignment analysis degrades to scalar loads
#: still emits ``reinterpret_cast<const float*>`` in the merged-load
#: body, and an unmatched cast would leak a CUDA-ism into the OpenCL
#: output.  The ``SRC-DIALECT`` verification below is the guard that a
#: future gap of this kind cannot ship silently.
_REWRITES: tuple[tuple[str, str], ...] = (
    (r'extern "C" __global__\n__launch_bounds__\(THREADS\)\nvoid ', "KERNEL_QUALIFIERS void "),
    (r"__shared__ ", "__local "),
    (r"__syncthreads\(\)", "barrier(CLK_LOCAL_MEM_FENCE)"),
    (r"threadIdx\.x", "LID_X"),
    (r"threadIdx\.y", "LID_Y"),
    (r"blockIdx\.x", "get_group_id(0)"),
    (r"blockIdx\.y", "get_group_id(1)"),
    (r"__device__ __forceinline__ ", "inline "),
    (r"__restrict__", "restrict"),
    (r"reinterpret_cast<const (float|double)([24]?)\*>\(\s*&", r"(const __global \1\2*)(&"),
    (r"\)\);\n(\s*store_vec)", "));\n\\1"),
    (r"const (float|double)\* restrict in", r"const __global \1* restrict in"),
    (r"(float|double)\* restrict out", r"__global \1* restrict out"),
    (r"#pragma unroll", "__attribute__((opencl_unroll_hint))"),
)


def generate_opencl_kernel(
    plan: SymmetricKernelPlan, *, verify: bool = True
) -> CudaSource:
    """Emit the OpenCL C translation unit for ``plan``.

    Returns a :class:`CudaSource` (same record type; the ``text`` is
    OpenCL C, the name gains a ``_cl`` suffix, and the record carries the
    same access-plan IR the CUDA twin was lowered from).  Because this
    backend is a regex *derivation* rather than a direct emission, its
    own structural verification matters most: unless ``verify=False``,
    the rewritten text is re-parsed and cross-checked against the IR —
    delimiter balance, surviving CUDA-isms, barrier counts, vector
    widths — and a translation gap refuses to ship.
    """
    cuda = generate_kernel(plan, verify=verify)
    text = cuda.text

    for pattern, repl in _REWRITES:
        text = re.sub(pattern, repl, text)

    # store_vecN helpers operate on __local pointers in OpenCL.
    text = re.sub(
        r"inline void store_vec(\d)\((float|double)\* dst",
        r"inline void store_vec\1(__local \2* dst",
        text,
    )

    prologue = f"""// OpenCL rendering of {cuda.name} (see the CUDA twin for commentary).
#define KERNEL_QUALIFIERS __kernel __attribute__((reqd_work_group_size(BLOCK_X, BLOCK_Y, 1)))
#define LID_X ((int)get_local_id(0))
#define LID_Y ((int)get_local_id(1))
"""
    if plan.elem_bytes == 8:
        prologue += "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n"

    src = CudaSource(
        name=cuda.name + "_cl",
        text=prologue + text,
        launch_bounds=cuda.launch_bounds,
        backend="opencl",
        ir=cuda.ir,
    )
    if verify:
        verify_or_raise(src)
    return src
