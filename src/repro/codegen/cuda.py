"""CUDA C emitter for the symmetric stencil kernel plans.

``generate_kernel`` lowers one :class:`SymmetricKernelPlan` into a single
self-contained ``.cu`` translation unit: constants baked from the blocking
configuration, the shared-tile declaration (bank-padded pitch), the
variant's loading code (merged rectangles with the widest legal vector
type, or the split interior/halo pattern of the baseline), the z-register
pipeline, and the compute loop implementing either the forward Eqn (2)
accumulation or the in-plane Eqns (3)-(5) partial-sum queue.

The generated text is deterministic given (spec, block, dtype, variant),
which the tests pin: structural assertions (vector types, queue depths,
barrier counts, loop bounds) plus a delimiter-balance check stand in for
compilation on this GPU-less machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.analysis import gate_codegen
from repro.analysis.diagnostics import Severity
from repro.analysis.estimate import prediction_header
from repro.analysis.planir import DEFAULT_GRID, AccessPlanIR, lower_plan
from repro.errors import ConfigurationError
from repro.kernels.inplane import InPlaneKernel
from repro.kernels.nvstencil import NvStencilKernel
from repro.kernels.symmetric import SymmetricKernelPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class CudaSource:
    """One generated translation unit, with the IR it was lowered from."""

    name: str
    text: str
    launch_bounds: tuple[int, int]  # (threads per block, min blocks per SM)
    backend: str = "cuda"           # "cuda" | "opencl" | "hip"
    ir: AccessPlanIR | None = None  # the access plan the text must honour

    def line_count(self) -> int:
        return len(self.text.splitlines())


def verify_or_raise(src: CudaSource) -> None:
    """Refuse to ship emitted text that fails its own ``SRC-*`` checks.

    Imported lazily: the verifier lives in :mod:`repro.analysis.srcverify`,
    which this package's emitters are the subject of.
    """
    from repro.analysis.srcverify import verify_emitted

    errors = [d for d in verify_emitted(src) if d.severity == Severity.ERROR]
    if not errors:
        return
    findings = "; ".join(f"[{d.rule}] {d.message}" for d in errors)
    raise ConfigurationError(
        f"emitted source for {src.name} [{src.backend}] failed "
        f"verification: {findings}",
        rule=errors[0].rule,
    )


def _ctype(plan: SymmetricKernelPlan) -> str:
    return "float" if plan.elem_bytes == 4 else "double"


def _vec_type(plan: SymmetricKernelPlan, width: int) -> str:
    base = _ctype(plan)
    return base if width == 1 else f"{base}{width}"


def _coefficients_block(plan: SymmetricKernelPlan) -> str:
    ctype = _ctype(plan)
    suffix = "f" if ctype == "float" else ""
    decls = [
        f"__constant__ {ctype} c{m} = {c!r}{suffix};"
        for m, c in enumerate(plan.spec.coefficients)
    ]
    return "\n".join(decls)


def _load_region_code(plan: SymmetricKernelPlan, vec: int) -> str:
    """The per-plane cooperative load, per loading variant."""
    r = plan.spec.radius
    ctype = _ctype(plan)
    vtype = _vec_type(plan, vec)
    variant = plan.variant

    if variant == "fullslice":
        return f"""    // Full-slice merged load (Fig 6d): one rectangle covering the
    // interior and all halos of the *current* plane; start is aligned at
    // x = -RADIUS by the host-side array padding, so {vtype} loads are legal.
    for (int idx = tid; idx < SLICE_VECS; idx += THREADS) {{
        const int sy = idx / ROW_VECS;
        const int sx = (idx % ROW_VECS) * {vec};
        const {vtype} v = *reinterpret_cast<const {vtype}*>(
            &in[plane_base + (by0 + sy - RADIUS) * pitch + bx0 + sx - RADIUS]);
        store_vec{vec}(&tile[sy][sx], v);
    }}"""

    if variant == "horizontal":
        return f"""    // Horizontal merged load (Fig 6c): interior rows carry the left and
    // right halos; the top/bottom strips load as separate (coalesced) rows.
    for (int idx = tid; idx < CENTER_VECS; idx += THREADS) {{
        const int sy = idx / ROW_VECS;
        const int sx = (idx % ROW_VECS) * {vec};
        const {vtype} v = *reinterpret_cast<const {vtype}*>(
            &in[plane_base + (by0 + sy) * pitch + bx0 + sx - RADIUS]);
        store_vec{vec}(&tile[sy + RADIUS][sx], v);
    }}
    for (int idx = tid; idx < 2 * RADIUS * TILE_X; idx += THREADS) {{
        const int sy = idx / TILE_X;          // 0 .. 2*RADIUS-1
        const int sx = idx % TILE_X;
        const int gy = (sy < RADIUS) ? (by0 + sy - RADIUS)
                                     : (by0 + TILE_Y + sy - RADIUS);
        const int ty_ = (sy < RADIUS) ? sy : (sy + TILE_Y);
        tile[ty_][sx + RADIUS] = in[plane_base + gy * pitch + bx0 + sx];
    }}"""

    if variant == "vertical":
        return f"""    // Vertical merged load (Fig 6b): the interior column carries the
    // top/bottom halos; left/right halo columns load per row (uncoalesced).
    for (int idx = tid; idx < COLUMN_ELEMS; idx += THREADS) {{
        const int sy = idx / TILE_X;
        const int sx = idx % TILE_X;
        tile[sy][sx + RADIUS] =
            in[plane_base + (by0 + sy - RADIUS) * pitch + bx0 + sx];
    }}
    for (int idx = tid; idx < TILE_Y * 2 * RADIUS; idx += THREADS) {{
        const int sy = idx / (2 * RADIUS);
        const int h = idx % (2 * RADIUS);
        const int sx = (h < RADIUS) ? (h - RADIUS) : (TILE_X + h - RADIUS);
        tile[sy + RADIUS][sx + RADIUS] =
            in[plane_base + (by0 + sy) * pitch + bx0 + sx];
    }}"""

    # classical / nvstencil split loading.
    return f"""    // Split loading (Fig 4 / Fig 6a): interior first, then the four halo
    // strips through divergent predicated branches.
    for (int idx = tid; idx < TILE_X * TILE_Y; idx += THREADS) {{
        const int sy = idx / TILE_X;
        const int sx = idx % TILE_X;
        tile[sy + RADIUS][sx + RADIUS] =
            in[plane_base + (by0 + sy) * pitch + bx0 + sx];
    }}
    if (threadIdx.y < RADIUS) {{
        for (int sx = threadIdx.x; sx < TILE_X; sx += BLOCK_X) {{
            tile[threadIdx.y][sx + RADIUS] =
                in[plane_base + (by0 + (int)threadIdx.y - RADIUS) * pitch + bx0 + sx];
            tile[threadIdx.y + TILE_Y + RADIUS][sx + RADIUS] =
                in[plane_base + (by0 + TILE_Y + threadIdx.y) * pitch + bx0 + sx];
        }}
    }}
    if (threadIdx.x < RADIUS) {{
        for (int sy = threadIdx.y; sy < TILE_Y; sy += BLOCK_Y) {{
            tile[sy + RADIUS][threadIdx.x] =
                in[plane_base + (by0 + sy) * pitch + bx0 + (int)threadIdx.x - RADIUS];
            tile[sy + RADIUS][threadIdx.x + TILE_X + RADIUS] =
                in[plane_base + (by0 + sy) * pitch + bx0 + TILE_X + threadIdx.x];
        }}
    }}"""


def _inplane_compute_code(plan: SymmetricKernelPlan) -> str:
    ctype = _ctype(plan)
    return f"""    // ---- in-plane compute: Eqns (3)-(5) ----------------------------
    #pragma unroll
    for (int ey = 0; ey < RY; ++ey)
    #pragma unroll
    for (int ex = 0; ex < RX; ++ex) {{
        const int sy = threadIdx.y + ey * BLOCK_Y + RADIUS;
        const int sx = threadIdx.x + ex * BLOCK_X + RADIUS;
        const {ctype} centre = tile[sy][sx];

        // Eqn (3): in-plane cross plus the backward z-neighbours held in
        // the per-thread register column.
        {ctype} partial = c0 * centre;
        #pragma unroll
        for (int m = 1; m <= RADIUS; ++m) {{
            partial += coeff(m) * (tile[sy][sx - m] + tile[sy][sx + m] +
                                   tile[sy - m][sx] + tile[sy + m][sx] +
                                   zcol[ey][ex][RADIUS - m]);
        }}

        // Eqn (5): the current centre value completes one term of every
        // queued partial; the oldest is finished and written out.
        #pragma unroll
        for (int q = 0; q < RADIUS; ++q)
            queue[ey][ex][q] += coeff(RADIUS - q) * centre;

        if (z >= 2 * RADIUS) {{
            const int oz = z - RADIUS;
            out[oz * plane_pitch + (by0 + sy - RADIUS) * pitch
                + bx0 + sx - RADIUS] = queue[ey][ex][0];
        }}

        // Shift the queue and the backward z-column; enqueue the new
        // partial (complete at z = k + RADIUS).
        #pragma unroll
        for (int q = 0; q < RADIUS - 1; ++q)
            queue[ey][ex][q] = queue[ey][ex][q + 1];
        queue[ey][ex][RADIUS - 1] = partial;
        #pragma unroll
        for (int m = 0; m < RADIUS - 1; ++m)
            zcol[ey][ex][m] = zcol[ey][ex][m + 1];
        zcol[ey][ex][RADIUS - 1] = centre;
    }}"""


def _forward_compute_code(plan: SymmetricKernelPlan) -> str:
    ctype = _ctype(plan)
    return f"""    // ---- forward-plane compute: Eqn (2) -----------------------------
    #pragma unroll
    for (int ey = 0; ey < RY; ++ey)
    #pragma unroll
    for (int ex = 0; ex < RX; ++ex) {{
        const int sy = threadIdx.y + ey * BLOCK_Y + RADIUS;
        const int sx = threadIdx.x + ex * BLOCK_X + RADIUS;

        // The register pipeline holds the 2*RADIUS+1 z-column; its centre
        // element is this plane's value, also staged in the shared tile.
        {ctype} acc = c0 * zcol[ey][ex][RADIUS];
        #pragma unroll
        for (int m = 1; m <= RADIUS; ++m) {{
            acc += coeff(m) * (tile[sy][sx - m] + tile[sy][sx + m] +
                               tile[sy - m][sx] + tile[sy + m][sx] +
                               zcol[ey][ex][RADIUS - m] +
                               zcol[ey][ex][RADIUS + m]);
        }}
        if (z >= 2 * RADIUS) {{
            const int oz = z - RADIUS;
            out[oz * plane_pitch + (by0 + sy - RADIUS) * pitch
                + bx0 + sx - RADIUS] = acc;
        }}
        // Advance the pipeline: shift and refill from the shared tile.
        #pragma unroll
        for (int m = 0; m < 2 * RADIUS; ++m)
            zcol[ey][ex][m] = zcol[ey][ex][m + 1];
        zcol[ey][ex][2 * RADIUS] = tile[sy][sx];
    }}"""


def generate_kernel(
    plan: SymmetricKernelPlan,
    grid_shape: tuple[int, int, int] | None = None,
    device: "DeviceSpec | None" = None,
    *,
    verify: bool = True,
) -> CudaSource:
    """Emit the CUDA C translation unit for ``plan``.

    Before emitting anything the plan is run through the static analyzer
    (:func:`repro.analysis.gate_codegen`): a plan carrying an error-level
    finding — a coverage race, an out-of-bounds halo, an unlaunchable
    resource footprint — is refused with a :class:`ConfigurationError`
    naming the rule, instead of producing CUDA source that compiles but
    corrupts its output.  ``grid_shape``/``device`` widen the gate to the
    grid- and resource-dependent rule families when known.

    Emission then lowers the plan to its access-plan IR
    (:func:`repro.analysis.planir.lower_plan`): every constant the text
    bakes — tile dims, padded pitch, vector width, register-queue depth —
    is read *from the IR*, a prediction header prices the IR on the
    target device, and (unless ``verify=False``) the finished text is
    re-parsed and cross-checked against the same IR before it is
    returned.
    """
    if not isinstance(plan, (InPlaneKernel, NvStencilKernel)):
        raise TypeError(
            f"code generation supports the symmetric in-plane and nvstencil "
            f"kernels, not {type(plan).__name__}"
        )
    gate_codegen(plan, device=device, grid_shape=grid_shape)
    ir = lower_plan(plan, grid_shape or DEFAULT_GRID)
    spec, block = plan.spec, plan.block
    r = spec.radius
    ctype = ir.ctype
    vec = ir.vector_width
    inplane = ir.method == "inplane"
    kname = ir.kernel

    tile_x, tile_y = block.tile_x, block.tile_y
    tile_pitch = ir.tile.pitch_elems
    zdepth = ir.zqueue_depth
    estimate_line = prediction_header(
        ir, device if device is not None else "gtx580"
    )

    header = f"""// Auto-generated by repro.codegen — do not edit.
// Kernel : {kname}
// Method : {"in-plane (Eqns (3)-(5))" if inplane else "forward-plane (Eqn (2))"}
// Loading: {plan.variant}
// Stencil: order {spec.order} (radius {r}), {ctype}
// Block  : TX={block.tx} TY={block.ty} RX={block.rx} RY={block.ry}
{estimate_line}

#define RADIUS {r}
#define BLOCK_X {block.tx}
#define BLOCK_Y {block.ty}
#define RX {block.rx}
#define RY {block.ry}
#define TILE_X {tile_x}
#define TILE_Y {tile_y}
#define TILE_PITCH {tile_pitch}
#define THREADS (BLOCK_X * BLOCK_Y)
#define ROW_VECS (((TILE_X + 2 * RADIUS) + {vec} - 1) / {vec})
#define SLICE_VECS (ROW_VECS * (TILE_Y + 2 * RADIUS))
#define CENTER_VECS (ROW_VECS * TILE_Y)
#define COLUMN_ELEMS (TILE_X * (TILE_Y + 2 * RADIUS))

{_coefficients_block(plan)}

__device__ __forceinline__ {ctype} coeff(int m) {{
    // Ring weights are compile-time constants; the switch folds away.
    switch (m) {{
{chr(10).join(f'        case {m}: return c{m};' for m in range(r + 1))}
        default: return ({ctype})0;
    }}
}}

__device__ __forceinline__ void store_vec1({ctype}* dst, {ctype} v) {{ *dst = v; }}
__device__ __forceinline__ void store_vec2({ctype}* dst, {_vec_type(plan, 2)} v) {{
    dst[0] = v.x; dst[1] = v.y;
}}"""
    if plan.elem_bytes == 4:
        header += f"""
__device__ __forceinline__ void store_vec4({ctype}* dst, {_vec_type(plan, 4)} v) {{
    dst[0] = v.x; dst[1] = v.y; dst[2] = v.z; dst[3] = v.w;
}}"""

    zcol_init = f"""    // Prologue: stream the first {'RADIUS' if inplane else '2 * RADIUS + 1'} planes into the register column.
    {ctype} zcol[RY][RX][{zdepth}];
    #pragma unroll
    for (int ey = 0; ey < RY; ++ey)
    #pragma unroll
    for (int ex = 0; ex < RX; ++ex)
    #pragma unroll
    for (int m = 0; m < {zdepth}; ++m)
        zcol[ey][ex][m] = ({ctype})0;"""

    queue_init = (
        f"""    {ctype} queue[RY][RX][RADIUS];
    #pragma unroll
    for (int ey = 0; ey < RY; ++ey)
    #pragma unroll
    for (int ex = 0; ex < RX; ++ex)
    #pragma unroll
    for (int q = 0; q < RADIUS; ++q)
        queue[ey][ex][q] = ({ctype})0;"""
        if inplane
        else "    // forward-plane: no partial-sum queue."
    )

    body = f"""
extern "C" __global__
__launch_bounds__(THREADS)
void {kname}(const {ctype}* __restrict__ in,
             {ctype}* __restrict__ out,
             const int lz,
             const int pitch,
             const int plane_pitch)
{{
    __shared__ {ctype} tile[TILE_Y + 2 * RADIUS][TILE_PITCH];

    const int tid = threadIdx.y * BLOCK_X + threadIdx.x;
    const int bx0 = blockIdx.x * TILE_X;
    const int by0 = blockIdx.y * TILE_Y;

{zcol_init}
{queue_init}

    for (int z = 0; z < lz; ++z) {{
        const long plane_base = (long)z * plane_pitch;

{_load_region_code(plan, vec)}
        __syncthreads();

{_inplane_compute_code(plan) if inplane else _forward_compute_code(plan)}
        __syncthreads();
    }}
}}
"""
    src = CudaSource(
        name=kname,
        text=header + body,
        launch_bounds=ir.launch_bounds,
        backend="cuda",
        ir=ir,
    )
    if verify:
        verify_or_raise(src)
    return src


def generate_host_driver(
    plan: SymmetricKernelPlan,
    grid_shape: tuple[int, int, int] = (512, 512, 256),
) -> str:
    """Emit the host-side launch snippet for ``plan`` (Fig 1's loop)."""
    lx, ly, lz = grid_shape
    src = generate_kernel(plan)
    blocks_x = -(-lx // plan.block.tile_x)
    blocks_y = -(-ly // plan.block.tile_y)
    return f"""// Host driver for {src.name} — the Fig 1 iterative loop.
dim3 block({plan.block.tx}, {plan.block.ty});
dim3 grid({blocks_x}, {blocks_y});
for (int t = 0; t < timesteps; ++t) {{
    {src.name}<<<grid, block>>>(d_in, d_out, {lz}, pitch_elems, plane_pitch_elems);
    std::swap(d_in, d_out);  // Swap(in, out)
}}
cudaDeviceSynchronize();
"""
