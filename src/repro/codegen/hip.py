"""HIP C++ emitter — the AMD-portable rendering of the kernel plans.

HIP deliberately mirrors the CUDA driver dialect (Shan et al.'s
programming-model comparison in PAPERS.md measures exactly this
CUDA/HIP/OpenCL spread), so the translation unit body is the same text
the CUDA emitter lowers from the access-plan IR: ``__global__``,
``__shared__``, ``__syncthreads()``, ``threadIdx`` and the vector types
are all native HIP.  What differs is the required runtime header and the
toolchain (``hipcc``); host-side launch syntax would differ too, but the
kernel translation unit itself is dialect-identical.

Because the emitted structure is the CUDA structure, the whole ``SRC-*``
verification family applies unchanged — the HIP source is re-parsed and
cross-checked against the same IR the CUDA and OpenCL twins carry.
"""

from __future__ import annotations

from repro.codegen.cuda import CudaSource, generate_kernel, verify_or_raise
from repro.kernels.symmetric import SymmetricKernelPlan

#: The one line that makes the CUDA-dialect text a self-contained HIP
#: translation unit under hipcc.
HIP_PROLOGUE = "#include <hip/hip_runtime.h>\n"


def generate_hip_kernel(
    plan: SymmetricKernelPlan, *, verify: bool = True
) -> CudaSource:
    """Emit the HIP C++ translation unit for ``plan``.

    Returns a :class:`CudaSource` (the ``text`` is HIP C++, the name
    gains a ``_hip`` suffix, and the record carries the access-plan IR
    all three backends share).  Unless ``verify=False`` the output is
    cross-checked against the IR like every other backend's.
    """
    cuda = generate_kernel(plan, verify=verify)
    prologue = (
        f"// HIP rendering of {cuda.name} (see the CUDA twin for commentary).\n"
        + HIP_PROLOGUE
    )
    src = CudaSource(
        name=cuda.name + "_hip",
        text=prologue + cuda.text,
        launch_bounds=cuda.launch_bounds,
        backend="hip",
        ir=cuda.ir,
    )
    if verify:
        verify_or_raise(src)
    return src
