"""CUDA source generation for the stencil kernel variants.

The paper's system is ultimately a CUDA code generator plus an
auto-tuner; this package emits the CUDA C a given
:class:`~repro.kernels.base.KernelPlan` corresponds to — the in-plane
partial-sum pipeline (Eqns (3)-(5)), the Fig 6 loading variants with
vectorized merged regions, register tiling with strided stores, and the
forward-plane baseline — so a user with real hardware can compile and run
what the simulator prices.  Generated sources are deterministic functions
of (stencil, blocking configuration, dtype, variant), which the tests
exploit to pin their structure.
"""

from repro.codegen.cuda import CudaSource, generate_kernel, generate_host_driver
from repro.codegen.opencl import generate_opencl_kernel

__all__ = [
    "CudaSource",
    "generate_kernel",
    "generate_host_driver",
    "generate_opencl_kernel",
]
