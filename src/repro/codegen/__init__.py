"""Multi-backend source generation for the stencil kernel variants.

The paper's system is ultimately a CUDA code generator plus an
auto-tuner; this package emits the source a given
:class:`~repro.kernels.base.KernelPlan` corresponds to — the in-plane
partial-sum pipeline (Eqns (3)-(5)), the Fig 6 loading variants with
vectorized merged regions, register tiling with strided stores, and the
forward-plane baseline — so a user with real hardware can compile and run
what the simulator prices.

Three backends share one lowering: every emitter consumes the
backend-neutral access-plan IR (:mod:`repro.analysis.planir`) rather
than re-deriving constants from the plan, every generated translation
unit carries a ``// repro.estimate:`` prediction header priced from that
IR, and every output is re-parsed and cross-checked against the IR by
the ``SRC-*`` verifier before it ships.  Generated sources are
deterministic functions of (stencil, blocking configuration, dtype,
variant, backend), which both the tests and the checked-in digest
manifest (:mod:`repro.codegen.manifest`) pin byte-for-byte.
"""

from repro.codegen.cuda import (
    CudaSource,
    generate_host_driver,
    generate_kernel,
    verify_or_raise,
)
from repro.codegen.hip import generate_hip_kernel
from repro.codegen.manifest import (
    MANIFEST_PATH,
    digest_matrix,
    generate_backend,
    manifest_matrix,
)
from repro.codegen.opencl import generate_opencl_kernel

__all__ = [
    "CudaSource",
    "MANIFEST_PATH",
    "digest_matrix",
    "generate_backend",
    "generate_hip_kernel",
    "generate_host_driver",
    "generate_kernel",
    "generate_opencl_kernel",
    "manifest_matrix",
    "verify_or_raise",
]
