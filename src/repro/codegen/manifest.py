"""The golden-digest manifest: codegen determinism, pinned byte-for-byte.

Every backend's emitter is a deterministic function of
(stencil, blocking configuration, dtype, variant) — the tests have always
asserted that for single plans, but nothing pinned the *output* against
accidental drift (a dict-ordering change, a float-formatting change, an
unintended rewrite).  This module enumerates a representative generation
matrix — every loading variant of both families ⨯ low/high order ⨯
sp/dp ⨯ all three backends — and hashes each emitted translation unit;
``tests/data/codegen_digests.json`` is the checked-in manifest and
``tools/regen_codegen_digests.py`` the regeneration helper for
*intentional* codegen changes.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Callable, Iterator

from repro.codegen.cuda import CudaSource, generate_kernel
from repro.codegen.hip import generate_hip_kernel
from repro.codegen.opencl import generate_opencl_kernel
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import INPLANE_VARIANTS, InPlaneKernel
from repro.kernels.nvstencil import NvStencilKernel
from repro.kernels.symmetric import SymmetricKernelPlan
from repro.stencils.spec import symmetric

#: Checked-in digest manifest (repo-relative; this is a source checkout).
MANIFEST_PATH = Path(__file__).resolve().parents[3] / "tests" / "data" / "codegen_digests.json"

#: The generation matrix: every variant of both families at a low and a
#: high order, both precisions, one representative register-tiled block.
MATRIX_ORDERS: tuple[int, ...] = (2, 8)
MATRIX_DTYPES: tuple[str, ...] = ("sp", "dp")
MATRIX_BLOCK: tuple[int, int, int, int] = (32, 4, 2, 2)

BACKENDS: tuple[str, ...] = ("cuda", "opencl", "hip")

_EMITTERS: dict[str, Callable[..., CudaSource]] = {
    "cuda": generate_kernel,
    "opencl": generate_opencl_kernel,
    "hip": generate_hip_kernel,
}


def generate_backend(
    plan: SymmetricKernelPlan, backend: str, *, verify: bool = True
) -> CudaSource:
    """Emit ``plan`` for one named backend (``cuda``/``opencl``/``hip``)."""
    try:
        emit = _EMITTERS[backend]
    except KeyError:
        raise ValueError(
            f"unknown codegen backend {backend!r}; pick one of {BACKENDS}"
        ) from None
    return emit(plan, verify=verify)


def _plans() -> Iterator[tuple[str, SymmetricKernelPlan]]:
    block = BlockConfig(*MATRIX_BLOCK)
    config = "x".join(str(v) for v in MATRIX_BLOCK)
    for order in MATRIX_ORDERS:
        for dtype in MATRIX_DTYPES:
            for variant in INPLANE_VARIANTS:
                yield (
                    f"inplane.{variant}:o{order}:{dtype}:{config}",
                    InPlaneKernel(symmetric(order), block, dtype, variant=variant),
                )
            yield (
                f"nvstencil.forward:o{order}:{dtype}:{config}",
                NvStencilKernel(symmetric(order), block, dtype),
            )


def manifest_matrix() -> list[tuple[str, SymmetricKernelPlan, str]]:
    """All (key, plan, backend) cells of the pinned generation matrix."""
    return [
        (f"{plan_key}:{backend}", plan, backend)
        for plan_key, plan in _plans()
        for backend in BACKENDS
    ]


def digest_matrix() -> dict[str, str]:
    """SHA-256 of every emitted translation unit, keyed by matrix cell."""
    digests: dict[str, str] = {}
    for key, plan, backend in manifest_matrix():
        src = generate_backend(plan, backend)
        digests[key] = hashlib.sha256(src.text.encode("utf-8")).hexdigest()
    return digests
