"""Per-table / per-figure experiment drivers.

Every public function regenerates one table or figure of the paper and
returns a result object carrying both the raw data and a ``render()``
method that prints the same rows/series the paper reports.  Paper-published
values are embedded where the paper states them, so the renders show
paper-vs-measured side by side (EXPERIMENTS.md is generated from these).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ResourceLimitError
from repro.gpusim.device import PAPER_DEVICES, get_device
from repro.gpusim.executor import DeviceExecutor
from repro.harness.runner import (
    FULL_SPACE,
    PAPER_GRID,
    ExperimentRunner,
    tune_family,
)
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.kernels.inplane import InPlaneKernel
from repro.kernels.multigrid import MultiGridKernel
from repro.metrics.efficiency import speedup
from repro.stencils.applications import APPLICATIONS, PAPER_TABLE5
from repro.stencils.catalog import (
    PAPER_ORDERS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    table1_row,
    table2_row,
)
from repro.stencils.spec import symmetric
from repro.tuning.modelbased import model_based_tune
from repro.tuning.space import ParameterSpace
from repro.utils.charts import bar_chart, grouped_bar_chart
from repro.utils.tables import format_series, format_table

#: Paper Table IV: (optimal params, MPoint/s, speedup) we compare against.
PAPER_TABLE4: dict[tuple[str, str, int], tuple[tuple[int, int, int, int], float, float]] = {
    ("sp", "gtx580", 2): ((256, 1, 1, 8), 17294.0, 1.70),
    ("sp", "gtx580", 4): ((32, 2, 2, 4), 14348.6, 1.82),
    ("sp", "gtx580", 6): ((32, 8, 2, 2), 10944.2, 1.66),
    ("sp", "gtx580", 8): ((32, 4, 1, 4), 9254.5, 1.64),
    ("sp", "gtx580", 10): ((32, 8, 1, 2), 7183.9, 1.38),
    ("sp", "gtx580", 12): ((32, 8, 1, 2), 6503.6, 1.34),
    ("sp", "gtx680", 2): ((256, 4, 1, 4), 16181.6, 1.96),
    ("sp", "gtx680", 4): ((64, 4, 2, 4), 13163.1, 1.81),
    ("sp", "gtx680", 6): ((128, 4, 1, 4), 10632.1, 1.71),
    ("sp", "gtx680", 8): ((64, 4, 1, 4), 9904.7, 1.76),
    ("sp", "gtx680", 10): ((32, 8, 1, 2), 7488.7, 1.66),
    ("sp", "gtx680", 12): ((32, 8, 1, 2), 6421.8, 1.42),
    ("sp", "c2070", 2): ((256, 1, 1, 4), 10761.2, 1.65),
    ("sp", "c2070", 4): ((32, 2, 2, 4), 8994.0, 1.77),
    ("sp", "c2070", 6): ((32, 4, 1, 4), 6965.9, 1.65),
    ("sp", "c2070", 8): ((32, 4, 1, 4), 5949.9, 1.66),
    ("sp", "c2070", 10): ((32, 8, 1, 2), 4550.8, 1.39),
    ("sp", "c2070", 12): ((32, 8, 1, 2), 4130.8, 1.34),
    ("dp", "gtx580", 2): ((128, 1, 1, 4), 7206.9, 1.35),
    ("dp", "gtx580", 4): ((32, 4, 1, 4), 4858.8, 1.30),
    ("dp", "gtx580", 6): ((32, 4, 1, 2), 3432.2, 1.16),
    ("dp", "gtx580", 8): ((32, 4, 1, 2), 2788.7, 1.12),
    ("dp", "gtx580", 10): ((16, 8, 1, 1), 2388.9, 1.15),
    ("dp", "gtx580", 12): ((16, 8, 1, 1), 2029.3, 1.05),
    ("dp", "gtx680", 2): ((64, 2, 1, 4), 6411.6, 1.44),
    ("dp", "gtx680", 4): ((64, 4, 2, 4), 4285.0, 1.16),
    ("dp", "gtx680", 6): ((128, 4, 1, 4), 3005.8, 1.13),
    ("dp", "gtx680", 8): ((64, 4, 1, 4), 2406.4, 1.13),
    ("dp", "gtx680", 10): ((32, 8, 1, 2), 1911.0, 1.06),
    ("dp", "gtx680", 12): ((32, 8, 1, 2), 1607.8, 1.05),
    ("dp", "c2070", 2): ((128, 1, 1, 4), 4975.9, 1.31),
    ("dp", "c2070", 4): ((32, 4, 1, 4), 3692.7, 1.28),
    ("dp", "c2070", 6): ((64, 4, 1, 2), 2764.3, 1.29),
    ("dp", "c2070", 8): ((64, 4, 1, 2), 2381.5, 1.23),
    ("dp", "c2070", 10): ((16, 16, 1, 1), 1889.9, 1.13),
    ("dp", "c2070", 12): ((16, 16, 1, 1), 1735.5, 1.17),
}


@dataclass
class ExperimentResult:
    """Generic experiment payload: named rows plus a preformatted render."""

    name: str
    headers: tuple[str, ...]
    rows: list[tuple]
    notes: str = ""
    chart: str = ""

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=self.name)
        if self.chart:
            text += f"\n\n{self.chart}"
        if self.notes:
            text += f"\n{self.notes}"
        return text


# ----------------------------------------------------------------------
# Tables I-III
# ----------------------------------------------------------------------

def table1_specs(orders: tuple[int, ...] = PAPER_ORDERS) -> ExperimentResult:
    """Table I: stencil kernel specifications."""
    rows = []
    for order in orders:
        row = table1_row(order)
        paper = PAPER_TABLE1.get(order)
        rows.append(
            (
                order,
                "x".join(map(str, row.extent)),
                row.mem_accesses,
                row.flops,
                paper[0] if paper else "-",
                paper[1] if paper else "-",
            )
        )
    return ExperimentResult(
        name="Table I: stencil specifications",
        headers=("order", "extent", "mem/elem", "flops/elem", "paper mem", "paper flops"),
        rows=rows,
    )


def table2_opcounts(orders: tuple[int, ...] = PAPER_ORDERS) -> ExperimentResult:
    """Table II: in-plane vs nvstencil operation counts."""
    rows = []
    for order in orders:
        row = table2_row(order)
        paper = PAPER_TABLE2.get(order)
        rows.append(
            (
                order,
                row.data_refs,
                row.flops_inplane,
                row.flops_nvstencil,
                "/".join(map(str, paper)) if paper else "-",
            )
        )
    return ExperimentResult(
        name="Table II: operation counts per grid point",
        headers=("order", "data refs", "flops in-plane", "flops nvstencil", "paper"),
        rows=rows,
    )


def table3_devices() -> ExperimentResult:
    """Table III: GPU specifications (derived peaks vs published)."""
    paper = {
        "gtx580": (192.4, 1581.0, 198.0),
        "gtx680": (192.3, 3090.0, 129.0),
        "c2070": (144.0, 1030.0, 515.0),
    }
    rows = []
    for dev in PAPER_DEVICES:
        pub = paper[dev.name]
        rows.append(
            (
                dev.display_name,
                dev.pin_bandwidth_gbs,
                round(dev.peak_sp_gflops, 0),
                round(dev.peak_dp_gflops, 0),
                f"{pub[0]}/{pub[1]}/{pub[2]}",
                dev.measured_bandwidth_gbs,
            )
        )
    return ExperimentResult(
        name="Table III: GPU specifications",
        headers=("GPU", "pin BW GB/s", "peak SP", "peak DP", "paper (BW/SP/DP)", "measured BW"),
        rows=rows,
    )


# ----------------------------------------------------------------------
# Fig 7: in-plane variants, thread blocking only
# ----------------------------------------------------------------------

def fig7_variants(
    orders: tuple[int, ...] = PAPER_ORDERS,
    devices: tuple[str, ...] = ("gtx580", "gtx680", "c2070"),
    variants: tuple[str, ...] = ("vertical", "horizontal", "fullslice"),
    grid: tuple[int, int, int] = PAPER_GRID,
) -> ExperimentResult:
    """Speedup of the in-plane variants over nvstencil, thread blocking only."""
    rows = []
    for dev in devices:
        for order in orders:
            nv = tune_family(
                "nvstencil", order, dev, grid=grid, register_blocking=False
            )
            cells: list[Any] = [dev, order, round(nv.best_mpoints, 1)]
            for variant in variants:
                res = tune_family(
                    f"inplane_{variant}", order, dev, grid=grid,
                    register_blocking=False,
                )
                cells.append(round(speedup(res.best_mpoints, nv.best_mpoints), 3))
            rows.append(tuple(cells))
    chart = ""
    first_dev = devices[0]
    dev_rows = [r for r in rows if r[0] == first_dev]
    if dev_rows:
        chart = grouped_bar_chart(
            f"speedup over nvstencil on {first_dev} (| marks 1.0x):",
            [f"order {r[1]}" for r in dev_rows],
            {
                variant: [r[3 + vi] for r in dev_rows]
                for vi, variant in enumerate(variants)
            },
            baseline=1.0,
        )
    return ExperimentResult(
        name="Fig 7: in-plane variant speedup over nvstencil (thread blocking only)",
        headers=("device", "order", "nvstencil MPt/s", *variants),
        rows=rows,
        chart=chart,
        notes=(
            "Paper shape: full-slice consistently best (~1.2-1.4x, highest at "
            "order 2); horizontal above nvstencil almost always; vertical the "
            "weakest variant, losing ground at orders 10-12."
        ),
    )


# ----------------------------------------------------------------------
# Fig 8: auto-tuning performance surface
# ----------------------------------------------------------------------

def fig8_surface(
    order: int = 2,
    device: str = "gtx580",
    grid: tuple[int, int, int] = PAPER_GRID,
) -> ExperimentResult:
    """Performance surface over (RX, RY) at the tuned (TX, TY).

    The paper plots the surface with the optimal TX, TY fixed; infeasible
    points are zero.
    """
    best = tune_family("inplane_fullslice", order, device, grid=grid)
    tx, ty = best.best_config.tx, best.best_config.ty
    executor = DeviceExecutor(get_device(device))
    spec = symmetric(order)
    rows = []
    for rx in FULL_SPACE.rx_values:
        for ry in FULL_SPACE.ry_values:
            try:
                cfg = BlockConfig(tx=tx, ty=ty, rx=rx, ry=ry)
                if grid[0] % cfg.tile_x or grid[1] % cfg.tile_y:
                    raise ResourceLimitError("partial tiles")
                plan = make_kernel("inplane_fullslice", spec, cfg)
                mp = executor.run(plan, grid).mpoints_per_s
            except Exception:
                mp = 0.0
            rows.append((tx, ty, rx, ry, round(mp, 1)))
    return ExperimentResult(
        name=f"Fig 8: tuning surface, order {order} on {device} (TX={tx}, TY={ty})",
        headers=("TX", "TY", "RX", "RY", "MPoint/s"),
        rows=rows,
        notes="Zero entries violate the search constraints (section IV-C).",
    )


# ----------------------------------------------------------------------
# Table IV: full auto-tuning
# ----------------------------------------------------------------------

def table4_autotune(
    orders: tuple[int, ...] = PAPER_ORDERS,
    devices: tuple[str, ...] = ("gtx580", "gtx680", "c2070"),
    dtypes: tuple[str, ...] = ("sp", "dp"),
    grid: tuple[int, int, int] = PAPER_GRID,
) -> ExperimentResult:
    """Table IV: tuned full-slice (thread + register blocking) vs nvstencil."""
    rows = []
    for dtype in dtypes:
        for dev in devices:
            for order in orders:
                nv = tune_family(
                    "nvstencil", order, dev, dtype=dtype, grid=grid,
                    register_blocking=False,
                )
                fs = tune_family(
                    "inplane_fullslice", order, dev, dtype=dtype, grid=grid
                )
                paper = PAPER_TABLE4.get((dtype, dev, order))
                rows.append(
                    (
                        dtype.upper(),
                        dev,
                        order,
                        fs.best_config.label(),
                        round(fs.best_mpoints, 1),
                        round(speedup(fs.best_mpoints, nv.best_mpoints), 2),
                        str(paper[0]) if paper else "-",
                        paper[1] if paper else "-",
                        paper[2] if paper else "-",
                    )
                )
    return ExperimentResult(
        name="Table IV: auto-tuned full-slice in-plane method",
        headers=(
            "prec", "device", "order", "optimal", "MPt/s", "speedup",
            "paper optimal", "paper MPt/s", "paper speedup",
        ),
        rows=rows,
        notes=(
            "Paper shape: SP speedups 1.34-1.96 decreasing with order; DP "
            "speedups 1.05-1.44, below SP; GTX680 shows the largest gains."
        ),
    )


# ----------------------------------------------------------------------
# Fig 9: global memory load efficiency
# ----------------------------------------------------------------------

def fig9_load_efficiency(
    orders: tuple[int, ...] = PAPER_ORDERS,
    devices: tuple[str, ...] = ("gtx580", "gtx680", "c2070"),
    grid: tuple[int, int, int] = PAPER_GRID,
) -> ExperimentResult:
    """Global memory load efficiency: full-slice vs nvstencil."""
    rows = []
    for dev in devices:
        for order in orders:
            nv = tune_family(
                "nvstencil", order, dev, grid=grid, register_blocking=False
            )
            fs = tune_family("inplane_fullslice", order, dev, grid=grid)
            rows.append(
                (
                    dev,
                    order,
                    round(nv.best.info["load_efficiency"], 3),
                    round(fs.best.info["load_efficiency"], 3),
                )
            )
    return ExperimentResult(
        name="Fig 9: global memory load efficiency",
        headers=("device", "order", "nvstencil", "full-slice"),
        rows=rows,
        notes="Paper shape: full-slice efficiency above nvstencil at every order.",
    )


# ----------------------------------------------------------------------
# Fig 10: breakdown of speedup factors
# ----------------------------------------------------------------------

def fig10_breakdown(
    orders: tuple[int, ...] = PAPER_ORDERS,
    devices: tuple[str, ...] = ("gtx580", "gtx680", "c2070"),
    grid: tuple[int, int, int] = PAPER_GRID,
) -> ExperimentResult:
    """Normalized performance of (i) nvstencil+RB, (ii) full-slice,
    (iii) full-slice+RB, with nvstencil as 1.0."""
    rows = []
    for dev in devices:
        for order in orders:
            nv = tune_family(
                "nvstencil", order, dev, grid=grid, register_blocking=False
            )
            nv_rb = tune_family("nvstencil", order, dev, grid=grid)
            fs = tune_family(
                "inplane_fullslice", order, dev, grid=grid,
                register_blocking=False,
            )
            fs_rb = tune_family("inplane_fullslice", order, dev, grid=grid)
            base = nv.best_mpoints
            rows.append(
                (
                    dev,
                    order,
                    round(nv_rb.best_mpoints / base, 3),
                    round(fs.best_mpoints / base, 3),
                    round(fs_rb.best_mpoints / base, 3),
                )
            )
    return ExperimentResult(
        name="Fig 10: breakdown of speedup factors (nvstencil = 1.0)",
        headers=("device", "order", "nvstencil+RB", "full-slice", "full-slice+RB"),
        rows=rows,
        notes=(
            "Paper shape: full-slice+RB best everywhere; register blocking "
            "helps nvstencil ~11% on average but full-slice ~18%; about half "
            "the total gain comes from the loading pattern, half from "
            "register blocking on top of it."
        ),
    )


# ----------------------------------------------------------------------
# Fig 11 / Table V: application stencils
# ----------------------------------------------------------------------

def fig11_applications(
    devices: tuple[str, ...] = ("gtx580", "gtx680", "c2070"),
    dtypes: tuple[str, ...] = ("sp", "dp"),
    grid: tuple[int, int, int] = PAPER_GRID,
    space: ParameterSpace | None = None,
) -> ExperimentResult:
    """Application stencils: in-plane full-slice vs forward-plane method."""
    from repro.harness.runner import THREAD_ONLY_SPACE
    from repro.tuning.exhaustive import exhaustive_tune

    space = space or FULL_SPACE
    rows = []
    for dtype in dtypes:
        for dev_name in devices:
            dev = get_device(dev_name)
            for app_name, expr in APPLICATIONS.items():
                def build_fwd(cfg: BlockConfig) -> MultiGridKernel:
                    return MultiGridKernel(expr, cfg, dtype, method="forward")

                def build_inp(cfg: BlockConfig) -> MultiGridKernel:
                    return MultiGridKernel(expr, cfg, dtype, method="inplane")

                # The forward baseline mirrors nvstencil: SDK-style kernel,
                # thread blocking only; the in-plane method gets the full
                # space including register tiling (section V-A).
                fwd = exhaustive_tune(build_fwd, dev, grid, THREAD_ONLY_SPACE)
                inp = exhaustive_tune(build_inp, dev, grid, space)
                n_in, n_out = PAPER_TABLE5[app_name]
                rows.append(
                    (
                        dtype.upper(),
                        dev_name,
                        app_name,
                        f"{n_in}/{n_out}",
                        round(inp.best_mpoints, 1),
                        round(speedup(inp.best_mpoints, fwd.best_mpoints), 3),
                    )
                )
    chart = ""
    sp_rows = [r for r in rows if r[0] == "SP" and r[1] == devices[0]]
    if sp_rows:
        chart = bar_chart(
            f"SP speedup on {devices[0]} (| marks 1.0x):",
            {r[2]: r[5] for r in sp_rows},
            baseline=1.0,
            unit="x",
        )
    return ExperimentResult(
        name="Fig 11 / Table V: application stencils",
        headers=("prec", "device", "app", "in/out", "in-plane MPt/s", "speedup"),
        rows=rows,
        chart=chart,
        notes=(
            "Paper shape: Laplacian gains most (~1.8x SP); Div/Grad/Upstream/"
            "Poisson gain moderately; Hyperthermia ~1.0x (nine coefficient "
            "volumes dominate traffic and are method-independent)."
        ),
    )


# ----------------------------------------------------------------------
# Fig 12: model-based vs exhaustive auto-tuning
# ----------------------------------------------------------------------

def fig12_modelbased(
    orders: tuple[int, ...] = PAPER_ORDERS,
    devices: tuple[str, ...] = ("gtx580", "gtx680", "c2050"),
    beta: float = 0.05,
    grid: tuple[int, int, int] = PAPER_GRID,
) -> ExperimentResult:
    """Model-based auto-tuning (beta cutoff) vs exhaustive search."""
    rows = []
    for dev_name in devices:
        dev = get_device(dev_name)
        for order in orders:
            spec = symmetric(order)

            def build(cfg: BlockConfig) -> InPlaneKernel:
                return InPlaneKernel(spec, cfg, "sp", variant="fullslice")

            exh = tune_family("inplane_fullslice", order, dev, grid=grid)
            mb = model_based_tune(build, dev, grid, beta=beta)
            gap = 1.0 - mb.best_mpoints / exh.best_mpoints
            rows.append(
                (
                    dev_name,
                    order,
                    round(exh.best_mpoints, 1),
                    round(mb.best_mpoints, 1),
                    f"{gap:.1%}",
                    f"{mb.evaluated}/{mb.space_size}",
                )
            )
    return ExperimentResult(
        name=f"Fig 12: model-based (beta={beta:.0%}) vs exhaustive auto-tuning",
        headers=("device", "order", "exhaustive", "model-based", "gap", "executed"),
        rows=rows,
        notes=(
            "Paper shape: the model-based result is typically within ~2% of "
            "the exhaustive optimum, worst case ~6% (on Kepler), while "
            "executing only the top beta fraction of the space."
        ),
    )


# ----------------------------------------------------------------------
# Section IV-C: high-order crossover on the C2070
# ----------------------------------------------------------------------

def high_order_crossover(
    device: str = "c2070",
    dtypes: tuple[str, ...] = ("sp", "dp"),
    orders: tuple[int, ...] = (2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40),
    grid: tuple[int, int, int] = PAPER_GRID,
) -> ExperimentResult:
    """Find where the full-slice speedup drops below 1 as order grows.

    Section IV-C: on the Tesla C2070 the full-slice method keeps winning up
    to ~32nd order in SP and ~16th order in DP.
    """
    rows = []
    for dtype in dtypes:
        last_winning = 0
        for order in orders:
            try:
                nv = tune_family(
                    "nvstencil", order, device, dtype=dtype, grid=grid,
                    register_blocking=False,
                )
                fs = tune_family(
                    "inplane_fullslice", order, device, dtype=dtype, grid=grid
                )
            except Exception:
                break
            s = speedup(fs.best_mpoints, nv.best_mpoints)
            if s > 1.0:
                last_winning = order
            rows.append((dtype.upper(), order, round(s, 3)))
        rows.append((dtype.upper(), "last winning order", last_winning))
    return ExperimentResult(
        name=f"High-order crossover on {device}",
        headers=("prec", "order", "speedup"),
        rows=rows,
        notes="Paper: speedups persist to ~order 32 (SP) and ~order 16 (DP) on C2070.",
    )
