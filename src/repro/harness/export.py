"""Export experiment results to CSV / JSON."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.harness.experiments import ExperimentResult


def to_csv(result: ExperimentResult) -> str:
    """Render an experiment as CSV text (header row + data rows)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(result.headers)
    writer.writerows(result.rows)
    return buf.getvalue()


def to_json(result: ExperimentResult) -> str:
    """Render an experiment as a JSON document."""
    return json.dumps(
        {
            "name": result.name,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "notes": result.notes,
        },
        indent=2,
        default=str,
    )


def write_result(result: ExperimentResult, path: str | Path) -> Path:
    """Write a result to ``path``; format chosen by suffix (.csv/.json/.txt)."""
    path = Path(path)
    if path.suffix == ".csv":
        text = to_csv(result)
    elif path.suffix == ".json":
        text = to_json(result)
    else:
        text = result.render() + "\n"
    path.write_text(text)
    return path
