"""Experiment harness: regenerate every table and figure of the paper.

Each ``fig*``/``table*`` function runs the corresponding experiment on the
simulated devices and returns a structured result object with a
``render()`` method producing the paper-style rows/series as text.  The
``benchmarks/`` suite drives these under pytest-benchmark and asserts the
reproduction's *shape* criteria.
"""

from repro.harness.runner import ExperimentRunner, tune_family
from repro.harness.experiments import (
    fig7_variants,
    fig8_surface,
    fig9_load_efficiency,
    fig10_breakdown,
    fig11_applications,
    fig12_modelbased,
    table1_specs,
    table2_opcounts,
    table3_devices,
    table4_autotune,
    high_order_crossover,
)

__all__ = [
    "ExperimentRunner",
    "tune_family",
    "fig7_variants",
    "fig8_surface",
    "fig9_load_efficiency",
    "fig10_breakdown",
    "fig11_applications",
    "fig12_modelbased",
    "table1_specs",
    "table2_opcounts",
    "table3_devices",
    "table4_autotune",
    "high_order_crossover",
]
