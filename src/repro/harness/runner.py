"""Shared experiment plumbing.

The paper's evaluation methodology (section IV): a 512 x 512 x 256 test
grid; each variant tuned for its own best configuration before comparison;
*nvstencil* tuned over thread-block sizes only (the SDK baseline has no
register tiling — register-blocked nvstencil appears only as case (i) of
the Fig 10 breakdown); in-plane variants tuned over all four blocking
factors where the experiment says so.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.gpusim.device import DeviceSpec, get_device
from repro.kernels.base import KernelPlan
from repro.kernels.config import BlockConfig
from repro.kernels.factory import make_kernel
from repro.obs.schema import CAT_HARNESS
from repro.obs.telemetry import TelemetryRecord
from repro.obs.tracer import current_tracer, maybe_span
from repro.stencils.spec import SymmetricStencil, symmetric
from repro.tuning.evaluator import TrialEvaluator
from repro.tuning.exhaustive import exhaustive_tune
from repro.tuning.result import TuneResult
from repro.tuning.space import ParameterSpace

#: The paper's evaluation grid (section IV-B).
PAPER_GRID: tuple[int, int, int] = (512, 512, 256)

#: Search space for experiments that tune thread blocking only (Fig 7).
THREAD_ONLY_SPACE = ParameterSpace(rx_values=(1,), ry_values=(1,))

#: Full search space (Table IV, Figs 8, 10, 12).
FULL_SPACE = ParameterSpace()


@dataclass(frozen=True)
class TuneKey:
    """Cache key for one tuning run."""

    family: str
    order: int
    dtype: str
    device: str
    grid: tuple[int, int, int]
    register_blocking: bool


_CACHE: dict[TuneKey, TuneResult] = {}


def tune_family(
    family: str,
    order: int,
    device: DeviceSpec | str,
    *,
    dtype: str = "sp",
    grid: tuple[int, int, int] = PAPER_GRID,
    register_blocking: bool = True,
    evaluator: "TrialEvaluator | None" = None,
) -> TuneResult:
    """Tune one kernel family; results are memoized per process.

    ``register_blocking=False`` restricts the space to RX = RY = 1
    (thread blocking only), which is how the nvstencil baseline and the
    Fig 7 comparison are tuned.  ``evaluator`` swaps the per-trial
    measurement backend (retry/quarantine/journal semantics); evaluated
    runs are memoized regardless, so pass one only on the first call for
    a given key.
    """
    dev = get_device(device) if isinstance(device, str) else device
    key = TuneKey(family, order, dtype, dev.name, grid, register_blocking)
    tracer = current_tracer()
    cached = _CACHE.get(key)
    if cached is not None:
        if tracer is not None:
            tracer.instant(
                f"tune {family} o{order} {dtype} {dev.name}", CAT_HARNESS,
                cache_hit=True,
            )
            tracer.metrics.counter("harness.tune_cache_hits").inc()
        return cached

    spec = symmetric(order)

    def build(cfg: BlockConfig) -> KernelPlan:
        return make_kernel(family, spec, cfg, dtype)

    space = FULL_SPACE if register_blocking else THREAD_ONLY_SPACE
    with maybe_span(
        tracer, f"tune {family} o{order} {dtype} {dev.name}", CAT_HARNESS,
        family=family, order=order, dtype=dtype, device=dev.name,
        register_blocking=register_blocking, cache_hit=False,
    ) as sp:
        result = exhaustive_tune(build, dev, grid, space, evaluator=evaluator)
        if sp is not None:
            sp.args["best_mpoints_per_s"] = result.best_mpoints
            sp.args["best_config"] = result.best_config.label()
            tracer.metrics.counter("harness.tunes").inc()
    _CACHE[key] = result
    return result


def harvest_tuned_records(source: str) -> dict[TuneKey, "TelemetryRecord"]:
    """Resimulate every cached tuning winner into telemetry records.

    One launch per cached :class:`TuneKey` — the winning configuration is
    resimulated on its own device/grid so the record carries the full
    counter set, not just the tuner's headline rate.  The benchmark
    suite's conftest drains the cache through this after every bench to
    build ``BENCH_profile.json``.
    """
    from repro.gpusim.executor import simulate
    from repro.obs.telemetry import record_from_report

    records: dict[TuneKey, TelemetryRecord] = {}
    for key, result in _CACHE.items():
        plan = make_kernel(
            key.family, symmetric(key.order), result.best_config, key.dtype
        )
        report = simulate(plan, key.device, key.grid)
        records[key] = record_from_report(report, order=key.order, source=source)
    return records


class ExperimentRunner:
    """Convenience wrapper binding a device list and grid."""

    def __init__(
        self,
        devices: tuple[str, ...] = ("gtx580", "gtx680", "c2070"),
        grid: tuple[int, int, int] = PAPER_GRID,
    ) -> None:
        self.devices = tuple(get_device(d) for d in devices)
        self.grid = grid

    def baseline(self, order: int, device: DeviceSpec, dtype: str = "sp") -> TuneResult:
        """Tuned nvstencil baseline (thread blocking only)."""
        with maybe_span(
            current_tracer(), f"baseline o{order} {dtype} {device.name}",
            CAT_HARNESS, order=order, dtype=dtype, device=device.name,
        ):
            return tune_family(
                "nvstencil", order, device, dtype=dtype, grid=self.grid,
                register_blocking=False,
            )

    def tuned(
        self,
        family: str,
        order: int,
        device: DeviceSpec,
        dtype: str = "sp",
        register_blocking: bool = True,
    ) -> TuneResult:
        """Tuned result for any family."""
        with maybe_span(
            current_tracer(), f"tuned {family} o{order} {dtype} {device.name}",
            CAT_HARNESS, family=family, order=order, dtype=dtype,
            device=device.name,
        ):
            return tune_family(
                family, order, device, dtype=dtype, grid=self.grid,
                register_blocking=register_blocking,
            )
