"""repro — reproduction of *Optimizing and Auto-Tuning Iterative Stencil
Loops for GPUs with the In-Plane Method* (Tang et al., 2013).

The library implements the paper's in-plane stencil method and everything
it depends on — a transaction-level GPU performance simulator standing in
for the GTX580/GTX680/C2070 hardware, the nvstencil forward-plane baseline,
the four in-plane loading variants, register tiling, exhaustive and
model-based auto-tuning (Eqns (6)-(14)), and the six application stencils
of section V.

Quickstart::

    import numpy as np
    import repro

    spec = repro.symmetric(order=4)
    kern = repro.make_kernel("inplane_fullslice", spec, (32, 4, 1, 4))
    out = kern.execute(np.random.rand(32, 64, 64).astype(np.float32))

    report = repro.simulate(kern, "gtx580", grid_shape=(512, 512, 256))
    print(report.summary())

    best = repro.autotune("inplane_fullslice", spec, "gtx580",
                          grid_shape=(512, 512, 256), method="model")
    print(best.summary())
"""

from __future__ import annotations

from repro.driver import converged, iterate, residual
from repro.errors import (
    ConfigurationError,
    FaultInjectedError,
    GridShapeError,
    HaloExchangeError,
    JournalError,
    KernelHangError,
    ReproError,
    ResourceLimitError,
    StencilDefinitionError,
    TuningError,
    UnknownDeviceError,
)
from repro.gpusim import (
    DeviceExecutor,
    DeviceSpec,
    FaultPlan,
    SimReport,
    get_device,
    list_devices,
    simulate,
)
from repro.kernels import (
    BlockConfig,
    InPlaneKernel,
    KernelPlan,
    MultiGridKernel,
    NvStencilKernel,
    make_kernel,
)
from repro.stencils import (
    APPLICATIONS,
    StencilExpr,
    SymmetricStencil,
    apply_expr,
    apply_symmetric,
    parse_stencil,
    symmetric,
)
from repro.tuning import (
    TuneResult,
    exhaustive_tune,
    model_based_tune,
)

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuning.evaluator import TrialEvaluator

__version__ = "1.0.0"

__all__ = [
    # stencils
    "SymmetricStencil",
    "symmetric",
    "StencilExpr",
    "APPLICATIONS",
    "apply_symmetric",
    "apply_expr",
    "parse_stencil",
    # kernels
    "BlockConfig",
    "KernelPlan",
    "NvStencilKernel",
    "InPlaneKernel",
    "MultiGridKernel",
    "make_kernel",
    # simulator
    "DeviceSpec",
    "DeviceExecutor",
    "FaultPlan",
    "SimReport",
    "get_device",
    "list_devices",
    "simulate",
    # tuning
    "TuneResult",
    "exhaustive_tune",
    "model_based_tune",
    "autotune",
    # driver
    "iterate",
    "residual",
    "converged",
    # errors
    "ReproError",
    "ConfigurationError",
    "ResourceLimitError",
    "UnknownDeviceError",
    "StencilDefinitionError",
    "GridShapeError",
    "TuningError",
    "FaultInjectedError",
    "KernelHangError",
    "HaloExchangeError",
    "JournalError",
    "__version__",
]


def autotune(
    family: str,
    spec: "SymmetricStencil | int",
    device: "DeviceSpec | str",
    grid_shape: tuple[int, int, int] = (512, 512, 256),
    dtype: str = "sp",
    method: str = "exhaustive",
    beta: float = 0.05,
    evaluator: "TrialEvaluator | None" = None,
) -> "TuneResult":
    """Tune a kernel family's (TX, TY, RX, RY) on a device.

    ``method`` is ``"exhaustive"`` (section IV-C) or ``"model"`` (the
    section VI beta-cutoff procedure).  ``evaluator`` swaps the
    measurement backend (e.g. a
    :class:`repro.tuning.vectorized.VectorTrialEvaluator` for the batch
    simulator core, or a :class:`repro.tuning.parallel.ParallelEvaluator`
    for a process pool); every backend is bit-identical to the default
    serial loop, so the winner does not depend on the choice.
    """
    from repro.kernels.factory import make_kernel as _mk
    from repro.stencils.spec import symmetric as _sym

    if isinstance(spec, int):
        spec = _sym(spec)
    dev = get_device(device) if isinstance(device, str) else device

    def build(cfg: BlockConfig) -> KernelPlan:
        return _mk(family, spec, cfg, dtype)

    if method == "exhaustive":
        return exhaustive_tune(build, dev, grid_shape, evaluator=evaluator)
    if method == "model":
        return model_based_tune(
            build, dev, grid_shape, beta=beta, evaluator=evaluator
        )
    raise TuningError(f"unknown tuning method {method!r}")
