"""Small shared utilities: table formatting, maths helpers, serialization."""

from repro.utils.tables import format_table, format_series
from repro.utils.charts import bar_chart, grouped_bar_chart
from repro.utils.maths import ceil_div, round_up, is_power_of_two

__all__ = [
    "format_table",
    "format_series",
    "bar_chart",
    "grouped_bar_chart",
    "ceil_div",
    "round_up",
    "is_power_of_two",
]
