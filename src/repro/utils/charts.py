"""ASCII bar charts for figure renders.

The paper's figures are bar charts; the harness regenerates their data as
tables, and these helpers add a visual rendering so the *shape* (who wins,
where it declines) is visible straight from a terminal or CI log.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def bar_chart(
    title: str,
    values: Mapping[str, float],
    *,
    width: int = 40,
    unit: str = "",
    baseline: float | None = None,
    float_fmt: str = ".2f",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value.

    ``baseline`` draws a marker column at that value (e.g. 1.0 for
    speedup charts), so bars crossing it read as wins.
    """
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if width < 4:
        raise ValueError("width must be at least 4")
    top = max(values.values())
    if top <= 0:
        raise ValueError("bar_chart needs a positive maximum")

    label_w = max(len(k) for k in values)
    marker_col = None
    if baseline is not None and 0 < baseline <= top:
        marker_col = round(baseline / top * width)

    lines = [title]
    for label, value in values.items():
        if value < 0:
            raise ValueError(f"bar values must be non-negative ({label!r})")
        filled = round(value / top * width)
        bar = list("#" * filled + " " * (width - filled))
        if marker_col is not None and 0 < marker_col <= width:
            idx = marker_col - 1
            bar[idx] = "|" if bar[idx] == " " else "+"
        lines.append(
            f"  {label.ljust(label_w)} {''.join(bar)} "
            f"{format(value, float_fmt)}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 30,
    baseline: float | None = None,
    float_fmt: str = ".2f",
) -> str:
    """Render one bar block per group with one bar per series."""
    if not groups or not series:
        raise ValueError("grouped_bar_chart needs groups and series")
    for name, vals in series.items():
        if len(vals) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(vals)} values for {len(groups)} groups"
            )
    lines = [title]
    for gi, group in enumerate(groups):
        block = bar_chart(
            f"{group}:",
            {name: vals[gi] for name, vals in series.items()},
            width=width,
            baseline=baseline,
            float_fmt=float_fmt,
        )
        lines.extend("  " + line for line in block.splitlines())
    return "\n".join(lines)
