"""Integer helpers used throughout the simulator.

These mirror the integer arithmetic a CUDA kernel's launch code performs
(ceil-division of grids into blocks, rounding allocations up to hardware
granularities) and are deliberately strict about their domains: sizes are
positive, granularities are positive, and violations raise ``ValueError``
rather than returning nonsense.
"""

from __future__ import annotations


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div numerator must be non-negative, got {a}")
    return -(-a // b)


def round_up(value: int, granularity: int) -> int:
    """Round ``value`` up to the next multiple of ``granularity``.

    Used for register-file and shared-memory allocation granularity: the
    hardware hands out registers per warp in fixed-size chunks, so resource
    accounting must round up exactly the way the allocator does.
    """
    return ceil_div(value, granularity) * granularity


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` to the closed interval [lo, hi]."""
    if lo > hi:
        raise ValueError(f"clamp interval is empty: [{lo}, {hi}]")
    return max(lo, min(hi, value))
