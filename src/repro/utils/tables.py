"""Plain-text table and series rendering for benchmark harness output.

The benchmark harness prints the same rows/columns the paper's tables and
figures report.  Everything renders to monospaced ASCII so it is diffable,
greppable, and readable in a terminal or CI log.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def _cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = ".2f",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``float_fmt``; all other values via ``str``.
    Column widths adapt to content.  Returns the table as a single string
    (no trailing newline).
    """
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    float_fmt: str = ".3f",
) -> str:
    """Render one figure series as ``name: x=y`` pairs on a single line.

    Used by the figure-regeneration benches: each plotted line in the paper
    becomes one such series so the "shape" (ordering, crossovers) is visible
    without a plotting backend.
    """
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
    pairs = ", ".join(f"{x}={format(y, float_fmt)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def format_mapping(title: str, mapping: Mapping[str, object]) -> str:
    """Render a flat mapping as aligned ``key : value`` lines."""
    if not mapping:
        return f"{title}\n  (empty)"
    width = max(len(k) for k in mapping)
    lines = [title]
    lines.extend(f"  {k.ljust(width)} : {v}" for k, v in mapping.items())
    return "\n".join(lines)
