"""In-process vectorized trial evaluator over the batch simulator core.

:class:`VectorTrialEvaluator` is the third measurement backend next to
:class:`~repro.tuning.evaluator.SimTrialEvaluator` (one scalar launch
per call) and :class:`~repro.tuning.parallel.ParallelEvaluator` (process
pool).  It implements the same
:class:`~repro.tuning.evaluator.BatchTrialEvaluator` protocol but
dispatches the whole candidate list to
:class:`repro.gpusim.batch.BatchEngine` — one NumPy pass over the
deduplicated block classes instead of N scalar pipeline walks — while
classifying every outcome exactly as the serial loop would:

* prefilter on + unlaunchable → ``rejected_static`` (the engine's
  launch check *is* :func:`repro.analysis.resources.launch_failure`);
* prefilter off + unlaunchable → ``rejected_simulated`` (the scalar
  evaluator discovers the same :class:`ResourceLimitError` at run time);
* launchable → ``ok`` with the bit-identical rate and the same
  ``info`` keys (``load_efficiency`` / ``occupancy`` / ``limiter``).

Because the engine is bit-identical to the scalar path (the
``batch-identity`` gate in ``tools/check.py``), a tuner over this
evaluator picks the same winner with the same tie-breaks as the serial
loop — it is a pure throughput substitution.  Fault schedules and
watchdog budgets are scalar-executor concerns; resilient/fault-storm
campaigns keep using the serial or pooled backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.analysis.resources import launch_failure
from repro.gpusim.batch import BatchEngine, BlockClass
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.timing import TimingParams
from repro.kernels.config import BlockConfig
from repro.obs.events import suppress_events
from repro.tuning.evaluator import (
    STATUS_OK,
    STATUS_REJECTED_SIMULATED,
    STATUS_REJECTED_STATIC,
    TrialOutcome,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.workload import BlockWorkload
    from repro.kernels.base import KernelPlan


class VectorTrialEvaluator:
    """Batch trial evaluator backed by the vectorized simulator core.

    Parameters
    ----------
    device:
        Device spec or registry name trials run on.
    prefilter:
        The tuners' historical flag: with it on, unlaunchable configs are
        classified ``rejected_static``; with it off, ``rejected_simulated``
        (the classification the scalar pipeline produces in each mode —
        the launch-reject set itself is identical either way).
    params:
        Optional timing-parameter override, forwarded to the engine.
    engine:
        Injectable :class:`~repro.gpusim.batch.BatchEngine`, so repeated
        sweeps (service workloads, codesign loops) share one per-class
        memo across evaluator instances.
    """

    def __init__(
        self,
        device: DeviceSpec | str,
        *,
        prefilter: bool = True,
        params: TimingParams | None = None,
        engine: BatchEngine | None = None,
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        self.prefilter = prefilter
        self.engine = engine or BatchEngine(self.device, params)
        #: Resolved worker count for ``TuneResult.info`` — the batch runs
        #: in-process, so one job.
        self.jobs = 1

    # -- TrialEvaluator protocol ------------------------------------------

    def statically_rejected(self, block: "BlockWorkload") -> bool:
        return self.prefilter and launch_failure(block, self.device) is not None

    def measure(
        self,
        cfg: BlockConfig,
        plan: "KernelPlan",
        grid_shape: tuple[int, int, int],
        block: "BlockWorkload",
    ) -> TrialOutcome:
        """Measure one config through the engine (sequential entry point)."""
        grid = plan.grid_workload(self.device, grid_shape)
        score = self.engine.scores([BlockClass.of(block, grid)])[0]
        return self._classify(cfg, score, prefiltered=False)

    # -- BatchTrialEvaluator protocol -------------------------------------

    def measure_batch(
        self,
        build: Callable[[BlockConfig], "KernelPlan"],
        configs: list[BlockConfig],
        grid_shape: tuple[int, int, int],
    ) -> list[TrialOutcome]:
        """Measure every configuration; outcomes in input order."""
        # Plan construction is event-silent like the pooled workers': the
        # search loop narrates from the returned outcomes in input order.
        with suppress_events():
            classes = []
            for cfg in configs:
                plan = build(cfg)
                block = plan.block_workload(self.device, grid_shape)
                grid = plan.grid_workload(self.device, grid_shape)
                classes.append(BlockClass.of(block, grid))
            scores = self.engine.scores(classes)
        return [
            self._classify(cfg, score, prefiltered=self.prefilter)
            for cfg, score in zip(configs, scores)
        ]

    # -- classification ----------------------------------------------------

    @staticmethod
    def _classify(cfg, score, *, prefiltered: bool) -> TrialOutcome:
        if score.launch_error is not None:
            status = (
                STATUS_REJECTED_STATIC if prefiltered
                else STATUS_REJECTED_SIMULATED
            )
            return TrialOutcome(config=cfg, status=status)
        return TrialOutcome(
            config=cfg,
            status=STATUS_OK,
            mpoints_per_s=score.mpoints_per_s,
            info={
                "load_efficiency": score.load_efficiency,
                "occupancy": score.occupancy,
                "limiter": score.limiter,
            },
        )
