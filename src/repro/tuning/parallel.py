"""Process-pool parallel tuning engine.

The paper's section VI argument is about tuning *economy*: exhaustive
search prices every feasible configuration, so anything that divides the
sweep's wall-clock by the core count changes how large a space is
affordable.  Trials are mutually independent — each one builds its own
plan and prices it on its own simulated device — which makes a tuning
sweep embarrassingly parallel.  This module supplies the engine:

* :class:`ParallelEvaluator` — a drop-in
  :class:`~repro.tuning.evaluator.TrialEvaluator` that additionally
  implements the :class:`~repro.tuning.evaluator.BatchTrialEvaluator`
  protocol: the tuners hand it the whole config list and it dispatches
  chunks to ``min(jobs, os.cpu_count())`` forked workers;
* :class:`FamilyKernelBuilder` — a picklable kernel builder (family,
  order, dtype), so batch jobs survive being shipped across processes
  even when the pool cannot rely on fork inheritance.

Determinism is the contract everything else rests on:

* outcomes are reassembled **in input order**, so the winner and every
  tie-break are bit-identical to the serial loop at any ``jobs`` count;
* every trial draws faults from its **own stream**
  (``launch:<config-label>``) of a fresh copy of the
  :class:`~repro.gpusim.faults.FaultPlan`, so the fault schedule a
  config sees is a pure function of the config — not of which worker
  happened to run it or how trials interleaved;
* retry backoff jitter is string-seeded
  (:meth:`~repro.tuning.robust.RetryPolicy.delay_s`), hence
  process-independent.

The journal stays consistent under parallel dispatch by serializing it
through the parent: workers never touch the journal file; the parent
replays journaled configs before dispatch and appends fresh outcomes in
input order after the batch returns, so a resumed fault-storm campaign
produces the identical journal at ``--jobs 1`` and ``--jobs 4``
(``tests/test_tuning_parallel.py``).

Workers run with tracing force-disabled (a forked worker inherits the
parent's tracer contextvar, and spans recorded there would die with the
process); instead each chunk reports its wall-clock interval back and
the parent re-emits it as a ``tune.worker`` span on a per-worker lane.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import multiprocessing.pool
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.analysis.resources import launch_failure
from repro.errors import TuningError
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.executor import DeviceExecutor
from repro.gpusim.faults import FaultPlan
from repro.kernels.config import BlockConfig
from repro.obs.events import (
    disable_events_in_process,
    emit as emit_event,
    suppress_events,
)
from repro.obs.schema import CAT_TUNE_WORKER
from repro.obs.tracer import current_tracer, disable_tracing_in_process, set_gauge
from repro.tuning.evaluator import (
    STATUS_REJECTED_STATIC,
    SimTrialEvaluator,
    TrialOutcome,
)
from repro.tuning.robust import ResilientEvaluator, RetryPolicy, TrialJournal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.workload import BlockWorkload
    from repro.kernels.base import KernelPlan

logger = logging.getLogger("repro.tuning.parallel")

#: Environment override for the worker-count clamp (normally
#: ``os.cpu_count()``).  Lets the CI gate exercise a real multi-process
#: pool on single-core containers: ``REPRO_JOBS_CAP=2 repro tune --jobs 2``.
JOBS_CAP_ENV = "REPRO_JOBS_CAP"


@dataclass(frozen=True)
class FamilyKernelBuilder:
    """A picklable ``BlockConfig -> KernelPlan`` builder.

    The tuners accept any callable, and under the fork start method a
    closure works fine (workers inherit the parent's memory).  This named
    builder exists for the paths that *must* cross a pickle boundary —
    CLI ``--jobs`` runs, and any future spawn-based pool — and for cache
    keys: two builders are equal iff they build the same family.
    """

    family: str
    order: int
    dtype: str = "sp"

    def __call__(self, cfg: BlockConfig) -> "KernelPlan":
        from repro.kernels.factory import make_kernel
        from repro.stencils.spec import symmetric

        return make_kernel(self.family, symmetric(self.order), cfg, self.dtype)


def config_fault_stream(cfg: BlockConfig) -> str:
    """The per-config fault-plan stream a parallel trial draws from."""
    return f"launch:{cfg.label()}"


def _fresh_faults(plan: FaultPlan | None) -> FaultPlan | None:
    """A copy of ``plan`` with every stream rewound to index 0.

    Worker processes are reused across chunks (and the parent evaluates
    single trials inline), so the plan's mutable stream counters must not
    leak between trials: a trial's schedule has to depend only on
    ``(seed, config, attempt)``, never on which process ran it or what
    ran there before.
    """
    if plan is None:
        return None
    return dataclasses.replace(plan, _counters={})


_ZERO_STATS: dict[str, Any] = {
    "live_trials": 0,
    "replayed": 0,
    "retries": 0,
    "quarantined_configs": 0,
    "backoff_s": 0.0,
}


def _merge_stats(into: dict[str, Any], delta: dict[str, Any]) -> None:
    for key, value in delta.items():
        into[key] = into.get(key, 0) + value


@dataclass(frozen=True)
class _TrialSetup:
    """Everything one trial needs, shippable to a worker process."""

    device: DeviceSpec
    prefilter: bool
    faults: FaultPlan | None
    watchdog_cycles: float | None
    policy: RetryPolicy


def _run_trial(
    setup: _TrialSetup,
    build: Callable[[BlockConfig], "KernelPlan"],
    cfg: BlockConfig,
    grid_shape: tuple[int, int, int],
) -> tuple[TrialOutcome, dict[str, Any]]:
    """The complete single-trial pipeline (runs in parent or worker).

    Builds the plan, applies the static pre-filter, and measures through
    a fresh journal-free :class:`ResilientEvaluator` whose executor draws
    faults from the config's own stream — the unit of work both the
    inline path and the pool path share, which is what makes them
    interchangeable.
    """
    # Event-silent like the worker processes themselves: the search loop
    # derives trial events from the returned outcome in input order, so a
    # live emission here (parent-inline path) would double-report.
    with suppress_events():
        plan = build(cfg)
        block = plan.block_workload(setup.device, grid_shape)
        if setup.prefilter and launch_failure(block, setup.device) is not None:
            return TrialOutcome(config=cfg, status=STATUS_REJECTED_STATIC), {}
        executor = DeviceExecutor(
            setup.device,
            faults=_fresh_faults(setup.faults),
            watchdog_cycles=setup.watchdog_cycles,
            fault_stream=config_fault_stream(cfg),
        )
        resilient = ResilientEvaluator(
            SimTrialEvaluator(setup.device, prefilter=False, executor=executor),
            policy=setup.policy,
        )
        outcome = resilient.measure(cfg, plan, grid_shape, block)
        return outcome, resilient.stats


# -- worker side -------------------------------------------------------------

#: Fork-inherited worker state: set in the parent immediately before the
#: pool forks, read by every chunk task.  ``(setup, build)``.
_WORKER_STATE: tuple[_TrialSetup, Callable[[BlockConfig], Any]] | None = None

#: One chunk task: ``(grid_shape, [(input_index, config), ...])``.
_ChunkTask = tuple[tuple[int, int, int], list[tuple[int, BlockConfig]]]
#: One chunk result: ``(pid, start_perf_counter_s, elapsed_s,
#: [(input_index, outcome), ...], aggregated_stats)``.
_ChunkResult = tuple[
    int, float, float, list[tuple[int, TrialOutcome]], dict[str, Any]
]


def _worker_init() -> None:
    """Pool-worker initializer: no tracing, events or archive in workers.

    All three contextvars are fork-inherited; spans recorded in a worker
    die with it, and an fsync'd event stream or trial archive appended
    from four processes at once would interleave nondeterministically.
    The parent re-emits worker timings (:meth:`Tracer.host_span_at`) and
    derives trial events and archive records from the collected outcomes
    in input order.
    """
    from repro.obs.archive import disable_archive_in_process

    disable_tracing_in_process()
    disable_events_in_process()
    disable_archive_in_process()


def _measure_chunk(task: _ChunkTask) -> _ChunkResult:
    """Measure one chunk of configs in a worker; outcomes keep their index."""
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - would be a pool-wiring bug
        raise TuningError("parallel worker started without tuning state")
    setup, build = state
    start = time.perf_counter()
    stats = dict(_ZERO_STATS)
    out: list[tuple[int, TrialOutcome]] = []
    for idx, cfg in task[1]:
        outcome, trial_stats = _run_trial(setup, build, cfg, task[0])
        _merge_stats(stats, trial_stats)
        out.append((idx, outcome))
    return os.getpid(), start, time.perf_counter() - start, out, stats


# -- the evaluator -----------------------------------------------------------


class ParallelEvaluator:
    """Process-pool trial evaluator (the ``--jobs N`` engine).

    Implements both the plain
    :class:`~repro.tuning.evaluator.TrialEvaluator` protocol (so the
    sequential stochastic walk can use it unchanged) and the
    :class:`~repro.tuning.evaluator.BatchTrialEvaluator` protocol the
    exhaustive and model-based tuners probe for.

    Parameters
    ----------
    device:
        Device spec or registry name.
    jobs:
        Requested worker count; resolved to
        ``min(jobs, os.cpu_count())`` (override the clamp with
        ``worker_cap`` or the :data:`REPRO_JOBS_CAP <JOBS_CAP_ENV>`
        environment variable — the CI gate uses it to get a real
        2-process pool on 1-core runners).  ``None`` means "one worker
        per core".  A resolved count of 1 runs every batch inline — same
        pipeline, no pool.
    prefilter:
        Apply the static resource check before measuring (the tuners'
        historical flag).
    faults / watchdog_cycles / policy:
        Fault schedule, per-trial cycle budget and retry policy, exactly
        as :class:`~repro.tuning.robust.ResilientEvaluator` takes them —
        every trial runs under its own journal-free resilient wrapper.
    journal:
        Optional crash-safe journal.  Owned by the *parent*: replayed
        before dispatch, appended in input order after collection.
    chunk_size:
        Configs per worker task (default: spread the batch about four
        tasks per worker, so a slow chunk cannot serialize the sweep).
    worker_cap:
        Explicit clamp override (tests and benches on small machines).
    """

    def __init__(
        self,
        device: DeviceSpec | str,
        *,
        jobs: int | None = None,
        prefilter: bool = True,
        faults: FaultPlan | None = None,
        watchdog_cycles: float | None = None,
        policy: RetryPolicy | None = None,
        journal: TrialJournal | None = None,
        chunk_size: int | None = None,
        worker_cap: int | None = None,
    ) -> None:
        device = get_device(device) if isinstance(device, str) else device
        if jobs is not None and jobs < 1:
            raise TuningError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise TuningError(f"chunk_size must be >= 1, got {chunk_size}")
        cores = os.cpu_count() or 1
        if worker_cap is None:
            env_cap = os.environ.get(JOBS_CAP_ENV)
            worker_cap = int(env_cap) if env_cap else cores
        self.jobs = max(1, min(jobs if jobs is not None else cores, worker_cap))
        self.device = device
        self.journal = journal
        self.chunk_size = chunk_size
        self.setup = _TrialSetup(
            device=device,
            prefilter=prefilter,
            faults=faults,
            watchdog_cycles=watchdog_cycles,
            policy=policy or RetryPolicy(),
        )
        self.stats: dict[str, Any] = dict(_ZERO_STATS)
        self.stats["jobs"] = self.jobs
        self._pool: multiprocessing.pool.Pool | None = None
        self._pool_build: Callable[[BlockConfig], Any] | None = None
        self._worker_lanes: dict[int, int] = {}

    # -- TrialEvaluator protocol ------------------------------------------

    def statically_rejected(self, block: "BlockWorkload") -> bool:
        return (
            self.setup.prefilter
            and launch_failure(block, self.device) is not None
        )

    def measure(
        self,
        cfg: BlockConfig,
        plan: "KernelPlan",
        grid_shape: tuple[int, int, int],
        block: "BlockWorkload",
    ) -> TrialOutcome:
        """Measure one config inline (the sequential tuners' entry point).

        Runs the identical per-trial pipeline the workers run — same
        per-config fault stream, same fresh-plan semantics — so a
        stochastic walk over this evaluator is bit-identical at any
        ``jobs`` count.
        """
        if self.journal is not None:
            replayed = self.journal.get(cfg)
            if replayed is not None:
                self.stats["replayed"] += 1
                return replayed
        outcome, trial_stats = _run_trial(
            self.setup, lambda _cfg: plan, cfg, grid_shape
        )
        _merge_stats(self.stats, trial_stats)
        set_gauge("tune.quarantined", self.stats["quarantined_configs"])
        if self.journal is not None:
            self.journal.record(outcome)
        return outcome

    # -- BatchTrialEvaluator protocol -------------------------------------

    def measure_batch(
        self,
        build: Callable[[BlockConfig], "KernelPlan"],
        configs: list[BlockConfig],
        grid_shape: tuple[int, int, int],
    ) -> list[TrialOutcome]:
        """Measure every config; outcomes in input order.

        Journaled configs are replayed without dispatch; the rest are
        chunked across the pool (or run inline at ``jobs == 1``), and
        fresh outcomes are journaled by the parent in input order.
        """
        outcomes: dict[int, TrialOutcome] = {}
        pending: list[tuple[int, BlockConfig]] = []
        for idx, cfg in enumerate(configs):
            replayed = self.journal.get(cfg) if self.journal is not None else None
            if replayed is not None:
                self.stats["replayed"] += 1
                outcomes[idx] = replayed
            else:
                pending.append((idx, cfg))

        if pending:
            fresh = (
                self._measure_pending_pooled(build, pending, grid_shape)
                if self.jobs > 1
                else self._measure_pending_inline(build, pending, grid_shape)
            )
            outcomes.update(fresh)
            if self.journal is not None:
                for idx, _cfg in pending:
                    outcome = outcomes[idx]
                    if outcome.status != STATUS_REJECTED_STATIC:
                        self.journal.record(outcome)
        return [outcomes[i] for i in range(len(configs))]

    # -- execution backends ------------------------------------------------

    def _measure_pending_inline(
        self,
        build: Callable[[BlockConfig], "KernelPlan"],
        pending: list[tuple[int, BlockConfig]],
        grid_shape: tuple[int, int, int],
    ) -> dict[int, TrialOutcome]:
        out: dict[int, TrialOutcome] = {}
        for idx, cfg in pending:
            outcome, trial_stats = _run_trial(self.setup, build, cfg, grid_shape)
            _merge_stats(self.stats, trial_stats)
            out[idx] = outcome
        set_gauge("tune.quarantined", self.stats["quarantined_configs"])
        return out

    def _measure_pending_pooled(
        self,
        build: Callable[[BlockConfig], "KernelPlan"],
        pending: list[tuple[int, BlockConfig]],
        grid_shape: tuple[int, int, int],
    ) -> dict[int, TrialOutcome]:
        pool = self._ensure_pool(build)
        if pool is None:
            return self._measure_pending_inline(build, pending, grid_shape)
        size = self.chunk_size or max(
            1, -(-len(pending) // (self.jobs * 4))
        )
        tasks: list[_ChunkTask] = [
            (grid_shape, pending[i:i + size])
            for i in range(0, len(pending), size)
        ]
        # Engine-plane telemetry: volatile events (kept by the flight
        # recorder, excluded from persistent streams) and service gauges.
        emit_event("pool.dispatch", tasks=len(tasks), configs=len(pending))
        set_gauge("tune.inflight", len(pending))
        tracer = current_tracer()
        ref_perf = time.perf_counter()
        ref_us = tracer.now_us() if tracer is not None else 0.0
        try:
            results = pool.map(_measure_chunk, tasks, chunksize=1)
        except Exception as exc:  # noqa: BLE001 - degrade, don't die
            logger.warning(
                "parallel dispatch failed (%s); falling back to inline "
                "evaluation", exc,
            )
            self.close()
            set_gauge("tune.inflight", 0)
            return self._measure_pending_inline(build, pending, grid_shape)

        out: dict[int, TrialOutcome] = {}
        for pid, start, elapsed, chunk_out, chunk_stats in results:
            _merge_stats(self.stats, chunk_stats)
            for idx, outcome in chunk_out:
                out[idx] = outcome
            lane = self._worker_lanes.setdefault(pid, len(self._worker_lanes))
            emit_event("pool.chunk", worker=lane, configs=len(chunk_out))
            if tracer is not None:
                tracer.host_span_at(
                    f"chunk[{len(chunk_out)}]",
                    CAT_TUNE_WORKER,
                    tid=f"worker:{lane}",
                    begin_us=ref_us + (start - ref_perf) * 1e6,
                    dur_us=elapsed * 1e6,
                    configs=len(chunk_out),
                    pid=pid,
                )
        set_gauge("tune.inflight", 0)
        set_gauge("tune.quarantined", self.stats["quarantined_configs"])
        return out

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(
        self, build: Callable[[BlockConfig], Any]
    ) -> multiprocessing.pool.Pool | None:
        """The persistent pool, (re)forked when the builder changes.

        Worker state travels by fork inheritance: the parent publishes
        ``(setup, build)`` in a module global and forks; every worker
        reads the snapshot.  That keeps arbitrary (closure) builders
        working without pickling them.  Returns ``None`` — inline
        fallback — where fork is unavailable.
        """
        if self._pool is not None and self._pool_build is build:
            return self._pool
        self.close()
        global _WORKER_STATE
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platform
            logger.warning(
                "fork start method unavailable; tuning batches run inline"
            )
            return None
        _WORKER_STATE = (self.setup, build)
        try:
            self._pool = ctx.Pool(self.jobs, initializer=_worker_init)
        finally:
            _WORKER_STATE = None
        self._pool_build = build
        emit_event("pool.start", workers=self.jobs)
        set_gauge("pool.workers_alive", self.jobs)
        return self._pool

    def close(self) -> None:
        """Tear down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_build = None
            emit_event("pool.stop")
            set_gauge("pool.workers_alive", 0)

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
