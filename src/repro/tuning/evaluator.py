"""The trial evaluator — the tuners' single seam for measuring a config.

All three tuners (exhaustive, stochastic, model-based) used to call
``DeviceExecutor.run`` inline; that made it impossible to interpose
retry/quarantine/journal logic without forking each search loop.  This
module extracts the per-trial measurement into a small protocol:

* :meth:`TrialEvaluator.statically_rejected` — the static resource
  pre-filter (identical occupancy check the executor would run);
* :meth:`TrialEvaluator.measure` — execute one configuration and
  classify the result into a :class:`TrialOutcome`.

:class:`SimTrialEvaluator` is the default implementation and reproduces
the tuners' historical behaviour exactly — a tuner built with
``evaluator=None`` is bit-identical to the pre-evaluator code path.
:class:`repro.tuning.robust.ResilientEvaluator` wraps it with retries,
per-config quarantine and a crash-safe journal.

The tuners keep ownership of tracing (spans, instants, metric counters):
the evaluator measures, the search loop narrates.  That split keeps the
obs-layer semantics frozen by ``tests/test_obs_reconcile.py`` untouched
regardless of which evaluator is plugged in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Protocol

from repro.analysis.resources import launch_failure
from repro.errors import ResourceLimitError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.executor import DeviceExecutor
from repro.kernels.config import BlockConfig
from repro.obs.events import current_sink, emit as emit_event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.workload import BlockWorkload
    from repro.kernels.base import KernelPlan

#: Trial classification vocabulary (also the journal's ``status`` field).
STATUS_OK = "ok"
STATUS_REJECTED_STATIC = "rejected_static"
STATUS_REJECTED_SIMULATED = "rejected_simulated"
STATUS_QUARANTINED = "quarantined"

TRIAL_STATUSES: tuple[str, ...] = (
    STATUS_OK,
    STATUS_REJECTED_STATIC,
    STATUS_REJECTED_SIMULATED,
    STATUS_QUARANTINED,
)


@dataclass(frozen=True)
class TrialOutcome:
    """What measuring one configuration produced.

    ``faults`` lists the fault kinds that touched the *returned*
    measurement (empty for a clean launch); a resilient evaluator retries
    faulted measurements, so a non-empty list here means retries were
    exhausted and the number should be treated as degraded.  ``attempts``
    counts executor launches spent on this config (1 for a clean first
    try); ``replayed`` marks outcomes restored from a resume journal
    without re-running anything.
    """

    config: BlockConfig
    status: str
    mpoints_per_s: float = 0.0
    info: dict[str, Any] = field(default_factory=dict)
    attempts: int = 1
    faults: tuple[str, ...] = ()
    replayed: bool = False

    @property
    def measured(self) -> bool:
        """Did this trial produce a usable rate?"""
        return self.status == STATUS_OK


def emit_trial_events(outcome: TrialOutcome) -> None:
    """Emit the trial-plane events one finished outcome implies.

    The event-layer side of "the evaluator measures, the search loop
    narrates": the loops call this **in input order** after a trial
    completes, never live from inside a measurement (which runs under
    :func:`repro.obs.events.suppress_events`).  The stream is thereby a
    pure function of the outcome sequence — byte-identical at any
    ``--jobs`` count, and its counts match the journal by construction.

    A replayed outcome emits only ``trial.replayed``: the work it
    describes happened (and was streamed) in the session that journaled
    it, so re-emitting measurement events would double-count a resumed
    campaign.
    """
    if current_sink() is None:
        return
    cfg = outcome.config.label()
    if outcome.replayed:
        emit_event("trial.replayed", config=cfg, status=outcome.status)
        return
    if outcome.attempts > 1:
        emit_event("trial.retried", config=cfg, retries=outcome.attempts - 1)
    for kind in outcome.faults:
        emit_event("fault.observed", config=cfg, kind=kind)
    if outcome.status == STATUS_OK:
        emit_event(
            "trial.measured", config=cfg,
            mpoints_per_s=outcome.mpoints_per_s, attempts=outcome.attempts,
        )
    elif outcome.status == STATUS_QUARANTINED:
        emit_event(
            "trial.quarantined", config=cfg,
            attempts=outcome.attempts, faults=list(outcome.faults),
        )
    elif outcome.status == STATUS_REJECTED_STATIC:
        emit_event("trial.rejected", config=cfg, reason="static")
    else:
        emit_event("trial.rejected", config=cfg, reason="simulated")


def record_trial(
    outcome: TrialOutcome,
    *,
    build: Callable[[BlockConfig], "KernelPlan"] | None = None,
    device: DeviceSpec | None = None,
    grid_shape: tuple[int, int, int] | None = None,
    predicted: float | None = None,
) -> None:
    """Narrate one finished trial: events plus the provenance archive.

    The one call the search loops make per completed outcome, **in input
    order, in the parent**.  It emits the trial-plane events
    (:func:`emit_trial_events`) and, when a
    :class:`repro.obs.archive.TrialArchive` is installed and the plan
    context (``build`` / ``device`` / ``grid_shape``) was provided,
    derives and appends the config's archive record.  Both planes are
    pure functions of the outcome sequence plus the plan, so everything
    written is byte-identical at any ``--jobs`` count; with neither a
    sink nor an archive installed the call is two contextvar lookups.

    ``predicted`` forwards a model score the tuner already computed
    (the model-based shortlist) so the archive records exactly the
    number the ranking used.
    """
    emit_trial_events(outcome)
    # Deferred import: repro.obs.archive imports this module.
    from repro.obs.archive import current_archive

    archive = current_archive()
    if (
        archive is None
        or build is None
        or device is None
        or grid_shape is None
    ):
        return
    archive.capture(
        outcome, build=build, device=device, grid_shape=grid_shape,
        predicted=predicted,
    )


class TrialEvaluator(Protocol):
    """What a tuner needs from its measurement backend."""

    def statically_rejected(self, block: "BlockWorkload") -> bool:
        """Would the static resource check refuse this launch?"""
        ...  # pragma: no cover - protocol

    def measure(
        self,
        cfg: BlockConfig,
        plan: "KernelPlan",
        grid_shape: tuple[int, int, int],
        block: "BlockWorkload",
    ) -> TrialOutcome:
        """Execute one configuration and classify the result."""
        ...  # pragma: no cover - protocol


class BatchTrialEvaluator(TrialEvaluator, Protocol):
    """A trial evaluator that can also measure whole batches at once.

    :meth:`measure_batch` owns the complete per-trial pipeline — plan
    construction, the static pre-filter *and* measurement — and returns
    one :class:`TrialOutcome` per input configuration **in input order**
    (statically rejected configurations come back as
    :data:`STATUS_REJECTED_STATIC` outcomes instead of being silently
    dropped).  Deterministic ordering is the contract that keeps a
    batched sweep's winner and tie-breaks bit-identical to the serial
    loop.  ``jobs`` reports the resolved worker count for
    ``TuneResult.info``.
    """

    jobs: int

    def measure_batch(
        self,
        build: Callable[["BlockConfig"], "KernelPlan"],
        configs: list[BlockConfig],
        grid_shape: tuple[int, int, int],
    ) -> list[TrialOutcome]:
        """Measure every configuration; outcomes in input order."""
        ...  # pragma: no cover - protocol


def batch_capable(evaluator: TrialEvaluator) -> "BatchTrialEvaluator | None":
    """The evaluator as a batch evaluator, or ``None`` when it is not one.

    The tuners' feature probe: a plain evaluator keeps the historical
    one-config-at-a-time loop; a batch-capable one (e.g.
    :class:`repro.tuning.parallel.ParallelEvaluator`) gets the whole
    config list in one call.
    """
    if hasattr(evaluator, "measure_batch"):
        return evaluator  # type: ignore[return-value]
    return None


class SimTrialEvaluator:
    """The plain evaluator: one simulator launch per measure call.

    Parameters
    ----------
    device:
        The simulated device trials run on.
    prefilter:
        Mirrors the tuners' historical ``prefilter`` flag: with it off,
        :meth:`statically_rejected` always answers ``False`` and
        unlaunchable configurations are discovered by the simulator
        (``rejected_simulated``) instead.
    executor:
        Injectable executor — the fault-injection tests and the resilient
        session pass one built with a :class:`repro.gpusim.faults.FaultPlan`.
    """

    def __init__(
        self,
        device: DeviceSpec,
        *,
        prefilter: bool = True,
        executor: DeviceExecutor | None = None,
    ) -> None:
        self.device = device
        self.prefilter = prefilter
        self.executor = executor or DeviceExecutor(device)

    def statically_rejected(self, block: "BlockWorkload") -> bool:
        return self.prefilter and launch_failure(block, self.device) is not None

    def measure(
        self,
        cfg: BlockConfig,
        plan: "KernelPlan",
        grid_shape: tuple[int, int, int],
        block: "BlockWorkload",
    ) -> TrialOutcome:
        try:
            report = self.executor.run(plan, grid_shape, block=block)
        except ResourceLimitError:
            return TrialOutcome(config=cfg, status=STATUS_REJECTED_SIMULATED)
        faults = tuple(
            str(f.get("kind", "?")) for f in report.meta.get("faults", ())
        )
        return TrialOutcome(
            config=cfg,
            status=STATUS_OK,
            mpoints_per_s=report.mpoints_per_s,
            info={
                "load_efficiency": report.load_efficiency,
                "occupancy": report.occupancy.occupancy,
                "limiter": report.occupancy.limiter,
            },
            faults=faults,
        )
