"""Tuning result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.kernels.config import BlockConfig


@dataclass(frozen=True)
class TuneEntry:
    """One evaluated configuration."""

    config: BlockConfig
    mpoints_per_s: float
    #: Model prediction, when a model participated (MPoint/s).
    predicted: float | None = None
    #: Extra diagnostics (occupancy, load efficiency, ...).
    info: dict[str, Any] = field(default_factory=dict)

    def to_json_obj(self) -> dict[str, Any]:
        """JSON form for ``repro tune --json`` (stable key order)."""
        return {
            "config": self.config.label(),
            "tile": list(self.config.as_tuple()),
            "mpoints_per_s": self.mpoints_per_s,
            "predicted": self.predicted,
            "info": dict(sorted(self.info.items())),
        }


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one tuning run.

    Attributes
    ----------
    best:
        The winning entry (highest measured MPoint/s).
    entries:
        Every *measured* configuration, sorted best-first.
    evaluated / space_size:
        How many configurations were actually run vs. the feasible space
        size — the model-based tuner's economy metric (section VI).
    method:
        ``"exhaustive"``, ``"stochastic"`` or ``"model"``.
    info:
        Run-level diagnostics, e.g. ``rejected_static`` (configurations
        the static analyzer pre-filtered without execution) and
        ``rejected_simulated`` (launch failures the simulator caught).
    """

    best: TuneEntry
    entries: tuple[TuneEntry, ...]
    evaluated: int
    space_size: int
    method: str
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def best_config(self) -> BlockConfig:
        """The winning (TX, TY, RX, RY)."""
        return self.best.config

    @property
    def best_mpoints(self) -> float:
        """The winning measured rate."""
        return self.best.mpoints_per_s

    def summary(self) -> str:
        """One-line report in the paper's Table IV style."""
        return (
            f"{self.method}: best {self.best.config.label()} at "
            f"{self.best.mpoints_per_s:.1f} MPoint/s "
            f"({self.evaluated}/{self.space_size} configs executed)"
        )

    def to_json_obj(self) -> dict[str, Any]:
        """JSON form for ``repro tune --json``.

        Every ranked entry ships its ``predicted`` score and ``info``
        diagnostics (occupancy, load efficiency, ...), not just the
        winner, so ``repro explain``-style analysis is scriptable from
        tuner output alone when no archive was written.
        """
        return {
            "method": self.method,
            "best": self.best.to_json_obj(),
            "entries": [e.to_json_obj() for e in self.entries],
            "evaluated": self.evaluated,
            "space_size": self.space_size,
            "info": dict(sorted(self.info.items())),
        }
