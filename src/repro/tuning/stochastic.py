"""Stochastic auto-tuning — the paper's "for a larger search space,
methods like dynamic programming or stochastic search can be used".

A simple, reproducible simulated-annealing walk over the feasible space:
neighbours differ in one blocking factor by one step along that factor's
candidate list; worse moves are accepted with a temperature-damped
probability.  On the four-dimensional spaces of this paper the exhaustive
search is cheap, so this tuner exists (a) as the scalable alternative the
paper gestures at and (b) as a baseline the model-based tuner must beat
at equal evaluation budgets (tested in ``tests/test_tuning_stochastic.py``).
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable

from repro.errors import TuningError
from repro.gpusim.device import DeviceSpec
from repro.kernels.base import KernelPlan
from repro.kernels.config import BlockConfig
from repro.obs.events import emit as emit_event
from repro.obs.schema import CAT_TUNE_RUN, CAT_TUNE_TRIAL
from repro.obs.tracer import current_tracer, maybe_span
from repro.tuning.evaluator import (
    STATUS_QUARANTINED,
    STATUS_REJECTED_SIMULATED,
    STATUS_REJECTED_STATIC,
    SimTrialEvaluator,
    TrialEvaluator,
    TrialOutcome,
    record_trial,
)
from repro.tuning.exhaustive import feasible_configs
from repro.tuning.result import TuneEntry, TuneResult
from repro.tuning.space import ParameterSpace, default_space

KernelBuilder = Callable[[BlockConfig], KernelPlan]


def _neighbours(
    cfg: BlockConfig, feasible: set[BlockConfig], space: ParameterSpace
) -> list[BlockConfig]:
    """Feasible configurations one candidate-list step away in one factor."""
    axes = (
        ("tx", space.tx_values),
        ("ty", space.ty_values),
        ("rx", space.rx_values),
        ("ry", space.ry_values),
    )
    out = []
    for name, values in axes:
        current = getattr(cfg, name)
        idx = values.index(current) if current in values else None
        if idx is None:
            continue
        for step in (-1, 1):
            j = idx + step
            if 0 <= j < len(values):
                candidate = BlockConfig(
                    **{**{a: getattr(cfg, a) for a, _ in axes}, name: values[j]}
                )
                if candidate in feasible:
                    out.append(candidate)
    return out


def stochastic_tune(
    build: KernelBuilder,
    device: DeviceSpec,
    grid_shape: tuple[int, int, int],
    *,
    budget: int = 30,
    seed: int = 0,
    initial_temperature: float = 0.15,
    space: ParameterSpace | None = None,
    prefilter: bool = True,
    evaluator: TrialEvaluator | None = None,
) -> TuneResult:
    """Simulated-annealing search executing at most ``budget`` configs.

    Deterministic for a given ``seed``.  The returned
    :class:`TuneResult` reports the best measured configuration and every
    configuration actually executed, like the other tuners.

    ``prefilter`` short-circuits unlaunchable configurations through the
    static resource check; they still score 0.0 and still spend budget
    (exactly like the simulator's launch failure), so the walk — and the
    winner — is bit-identical with the filter on or off.  ``evaluator``
    swaps the measurement backend (and then owns the prefilter decision);
    quarantined configurations also score 0.0 and spend budget, keeping
    the walk itself deterministic under fault storms.

    The walk is inherently sequential — each step's candidate depends on
    the previous measurement — so a batch-capable evaluator
    (``repro.tuning.parallel``) is driven one config at a time; its
    per-config fault streams still make the walk identical at any
    ``jobs`` count, and the resolved worker count is echoed in
    ``info["jobs"]``.
    """
    if budget < 1:
        raise TuningError(f"budget must be >= 1, got {budget}")
    space = space or default_space()
    configs = feasible_configs(build, device, grid_shape, space)
    feas = set(configs)
    rng = random.Random(seed)
    evaluator = evaluator or SimTrialEvaluator(device, prefilter=prefilter)

    measured: dict[BlockConfig, float] = {}
    trial_info: dict[BlockConfig, dict[str, Any]] = {}
    stats = {"rejected_static": 0, "rejected_simulated": 0}

    tracer = current_tracer()

    def measure(cfg: BlockConfig) -> float | None:
        if cfg in measured:
            return measured[cfg]
        if len(measured) >= budget:
            return None
        plan = build(cfg)
        block = plan.block_workload(device, grid_shape)
        with maybe_span(tracer, cfg.label(), CAT_TUNE_TRIAL,
                        config=cfg.label()) as sp:
            if evaluator.statically_rejected(block):
                stats["rejected_static"] += 1
                rate = 0.0
                record_trial(
                    TrialOutcome(config=cfg, status=STATUS_REJECTED_STATIC),
                    build=build, device=device, grid_shape=grid_shape,
                )
                if sp is not None:
                    sp.args["rejected"] = "static"
                    tracer.metrics.counter("tune.rejected_static").inc()
            else:
                outcome = evaluator.measure(cfg, plan, grid_shape, block)
                record_trial(
                    outcome, build=build, device=device, grid_shape=grid_shape
                )
                rate = outcome.mpoints_per_s if outcome.measured else 0.0
                if outcome.measured:
                    trial_info[cfg] = dict(outcome.info)
                if outcome.status == STATUS_REJECTED_SIMULATED:
                    stats["rejected_simulated"] += 1
                    if sp is not None:
                        sp.args["rejected"] = "simulated"
                        tracer.metrics.counter("tune.rejected_simulated").inc()
                elif outcome.status == STATUS_QUARANTINED:
                    stats["quarantined"] = stats.get("quarantined", 0) + 1
                    if sp is not None:
                        sp.args["quarantined"] = True
                        sp.args["attempts"] = outcome.attempts
                        tracer.metrics.counter("tune.quarantined").inc()
                elif sp is not None:
                    sp.args["mpoints_per_s"] = rate
                    tracer.metrics.counter("tune.trials").inc()
        measured[cfg] = rate
        return rate

    emit_event(
        "sweep.start", method="stochastic", device=device.name,
        space_size=len(configs),
    )
    with maybe_span(
        tracer, f"stochastic on {device.name}", CAT_TUNE_RUN,
        method="stochastic", device=device.name, space_size=len(configs),
        budget=budget, seed=seed,
    ) as run_span:
        current = rng.choice(configs)
        current_rate = measure(current) or 0.0
        best, best_rate = current, current_rate

        step = 0
        stale = 0
        while len(measured) < budget:
            step += 1
            temperature = initial_temperature / (1.0 + 0.2 * step)
            options = _neighbours(current, feas, space)
            candidate = rng.choice(options) if options else rng.choice(configs)
            if candidate in measured:
                stale += 1
                # Frozen at a local optimum whose whole neighbourhood has been
                # measured: restart from a random *unmeasured* configuration so
                # the budget is always spent (and the loop always terminates).
                if stale > 8:
                    unmeasured = [c for c in configs if c not in measured]
                    if not unmeasured:
                        break
                    candidate = rng.choice(unmeasured)
                    stale = 0
            else:
                stale = 0
            rate = measure(candidate)
            if rate is None:
                break
            if rate > best_rate:
                best, best_rate = candidate, rate
            # Metropolis acceptance on relative performance.
            if rate >= current_rate:
                current, current_rate = candidate, rate
            else:
                rel = (rate - current_rate) / max(current_rate, 1e-9)
                if rng.random() < math.exp(rel / max(temperature, 1e-6)):
                    current, current_rate = candidate, rate
        if run_span is not None:
            run_span.args.update(evaluated=len(measured), **stats)
    emit_event("sweep.finished", method="stochastic", evaluated=len(measured))

    # Diagnostics ride along without touching the walk: the sort key is
    # the measured rate alone, exactly as before, so the ranking (and the
    # winner) is unchanged by the info payload.
    entries = tuple(
        sorted(
            (
                TuneEntry(
                    config=c, mpoints_per_s=r, info=trial_info.get(c, {})
                )
                for c, r in measured.items()
            ),
            key=lambda e: e.mpoints_per_s,
            reverse=True,
        )
    )
    info: dict[str, Any] = dict(stats)
    jobs = getattr(evaluator, "jobs", None)
    if jobs is not None:
        info["jobs"] = jobs
    return TuneResult(
        best=entries[0],
        entries=entries,
        evaluated=len(entries),
        space_size=len(configs),
        method="stochastic",
        info=info,
    )
