"""Persistent cache of tuning runs.

Exhaustive tuning on real hardware is expensive (it is the whole
motivation of the paper's section VI); on the simulator it is cheap but
still worth caching across processes for the benchmark harness and CLI.
The cache is a plain JSON file keyed by (family, order, dtype, device,
grid, space signature).

Schema (version 2)::

    {"schema_version": 2, "tool": "repro.tuning.cache",
     "results": {"<key>": {"best": {...}, "entries": [...],
                           "evaluated": N, "space_size": M,
                           "method": "...", "info": {...}}}}

Version-1 files (a bare key -> best-entry mapping, no version field) are
still readable: each legacy record round-trips as a single-entry result,
exactly what the v1 writer used to drop it to.

The space component of the key is **derived from the space's value
tuples** (:meth:`repro.tuning.space.ParameterSpace.signature`), never a
caller-supplied literal — results tuned over different candidate sets
cannot collide on one key.

Concurrency: writes hold an exclusive lock file around a
read-merge-publish cycle — the on-disk document is reloaded under the
lock and merged per key before the :func:`os.replace` publish, so two
processes appending different keys both survive (the losing writer no
longer clobbers the winner's keys with its own stale view).
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

try:  # pragma: no cover - fcntl is always present on the linux targets
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback: unlocked
    fcntl = None  # type: ignore[assignment]

from repro.kernels.config import BlockConfig
from repro.obs.events import emit as emit_event
from repro.obs.tracer import set_gauge
from repro.tuning.result import TuneEntry, TuneResult
from repro.tuning.space import default_space

logger = logging.getLogger("repro.tuning.cache")

#: On-disk schema version; bump on incompatible layout changes.
SCHEMA_VERSION = 2
_TOOL = "repro.tuning.cache"


def _key(
    family: str,
    order: int,
    dtype: str,
    device: str,
    grid: tuple[int, int, int],
    space_sig: str,
) -> str:
    return f"{family}|{order}|{dtype}|{device}|{'x'.join(map(str, grid))}|{space_sig}"


def _resolve_sig(space_sig: str | None) -> str:
    """Default the space signature to the *derived* default-space one."""
    return space_sig if space_sig is not None else default_space().signature()


def _entry_to_obj(entry: TuneEntry) -> dict[str, Any]:
    return {
        "config": list(entry.config.as_tuple()),
        "mpoints_per_s": entry.mpoints_per_s,
        "predicted": entry.predicted,
        "info": entry.info,
    }


def _entry_from_obj(obj: dict[str, Any]) -> TuneEntry:
    return TuneEntry(
        config=BlockConfig(*(int(v) for v in obj["config"])),
        mpoints_per_s=float(obj["mpoints_per_s"]),
        predicted=obj.get("predicted"),
        info=dict(obj.get("info", {})),
    )


def _record_from_v1(raw: dict[str, Any]) -> dict[str, Any]:
    """Upgrade a legacy best-entry-only record to the v2 layout."""
    best = {
        "config": raw["config"],
        "mpoints_per_s": raw["mpoints_per_s"],
        "predicted": raw.get("predicted"),
        "info": raw.get("info", {}),
    }
    return {
        "best": best,
        "entries": [best],
        "evaluated": raw["evaluated"],
        "space_size": raw["space_size"],
        "method": raw["method"],
        "info": {},
    }


class TuningCache:
    """JSON-file-backed store of tuning results (every entry, not just
    the winner)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._data: dict[str, dict[str, Any]] = self._load()
        self._lookups = 0
        self._hits = 0

    def _count_lookup(self, hit: bool) -> None:
        """Track this instance's hit ratio (the ``cache.hit_ratio`` gauge)."""
        self._lookups += 1
        if hit:
            self._hits += 1
        set_gauge("cache.hit_ratio", self._hits / self._lookups)

    def _load(self) -> dict[str, dict[str, Any]]:
        if not self.path.exists():
            return {}
        try:
            doc = json.loads(self.path.read_text())
            return self._parse_document(doc)
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            # A corrupt cache is regenerated, never fatal — but the
            # drop is loud enough to investigate (a half-written file
            # here usually means a process died mid-write elsewhere).
            logger.warning(
                "dropping corrupt tuning cache %s (%s); it will be "
                "regenerated", self.path, exc,
            )
            return {}

    @staticmethod
    def _parse_document(doc: Any) -> dict[str, dict[str, Any]]:
        if not isinstance(doc, dict):
            raise ValueError(f"cache document must be an object, got {type(doc).__name__}")
        if "schema_version" not in doc:
            # Version-1 layout: a bare key -> best-entry mapping.
            return {key: _record_from_v1(raw) for key, raw in doc.items()}
        version = doc["schema_version"]
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported cache schema version {version!r}")
        results = doc["results"]
        if not isinstance(results, dict):
            raise ValueError("'results' must be an object")
        return dict(results)

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive lock around a read-modify-write of the cache file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-posix: best effort
            yield
            return
        lock_path = self.path.with_name(self.path.name + ".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def get(
        self,
        family: str,
        order: int,
        dtype: str,
        device: str,
        grid: tuple[int, int, int],
        space_sig: str | None = None,
    ) -> TuneResult | None:
        """Return the cached result, or None.

        ``space_sig`` is the tuned space's
        :meth:`~repro.tuning.space.ParameterSpace.signature`; ``None``
        means the default space (whose signature is *derived* the same
        way, so a caller passing ``default_space().signature()``
        explicitly hits the same key).
        """
        key = _key(family, order, dtype, device, grid, _resolve_sig(space_sig))
        raw = self._data.get(key)
        self._count_lookup(hit=raw is not None)
        if raw is None:
            emit_event("cache.miss", key=key)
            return None
        emit_event("cache.hit", key=key)
        entries = tuple(_entry_from_obj(obj) for obj in raw["entries"])
        best = _entry_from_obj(raw["best"])
        return TuneResult(
            best=best,
            entries=entries,
            evaluated=raw["evaluated"],
            space_size=raw["space_size"],
            method=raw["method"],
            info=dict(raw.get("info", {})),
        )

    def put(
        self,
        result: TuneResult,
        family: str,
        order: int,
        dtype: str,
        device: str,
        grid: tuple[int, int, int],
        space_sig: str | None = None,
    ) -> None:
        """Store a result — every entry — and flush to disk.

        Concurrent-writer safe: the on-disk document is reloaded and
        merged per key under an exclusive lock before publishing, so a
        writer never erases keys another process added since this
        instance last read the file.
        """
        key = _key(family, order, dtype, device, grid, _resolve_sig(space_sig))
        record = {
            "best": _entry_to_obj(result.best),
            "entries": [_entry_to_obj(e) for e in result.entries],
            "evaluated": result.evaluated,
            "space_size": result.space_size,
            "method": result.method,
            "info": result.info,
        }
        with self._locked():
            # Per-key merge: adopt whatever landed on disk since our
            # last read, then overwrite only the key being written.
            merged = self._load()
            adopted = sum(1 for k in merged if k not in self._data)
            merged.update(
                (k, v) for k, v in self._data.items() if k not in merged
            )
            merged[key] = record
            self._data = merged
            self._publish()
        if adopted:
            emit_event("cache.merge", adopted=adopted)
        emit_event("cache.put", key=key, entries=len(result.entries))

    def _publish(self) -> None:
        # Atomic publish: write the whole document to a sibling temp file
        # and os.replace() it over the cache, so a reader (or a crash)
        # never sees a half-written JSON — the corruption mode the loader
        # above has to tolerate is thereby limited to external causes.
        document = {
            "schema_version": SCHEMA_VERSION,
            "tool": _TOOL,
            "results": self._data,
        }
        payload = json.dumps(document, indent=1, default=str)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return len(self._data)
