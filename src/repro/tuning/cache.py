"""Persistent cache of tuning runs.

Exhaustive tuning on real hardware is expensive (it is the whole
motivation of the paper's section VI); on the simulator it is cheap but
still worth caching across processes for the benchmark harness and CLI.
The cache is a plain JSON file keyed by (family, order, dtype, device,
grid, space signature).
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path

from repro.kernels.config import BlockConfig
from repro.tuning.result import TuneEntry, TuneResult

logger = logging.getLogger("repro.tuning.cache")


def _key(
    family: str,
    order: int,
    dtype: str,
    device: str,
    grid: tuple[int, int, int],
    space_sig: str,
) -> str:
    return f"{family}|{order}|{dtype}|{device}|{'x'.join(map(str, grid))}|{space_sig}"


class TuningCache:
    """JSON-file-backed store of best tuning results."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._data: dict[str, dict] = {}
        if self.path.exists():
            try:
                self._data = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                # A corrupt cache is regenerated, never fatal — but the
                # drop is loud enough to investigate (a half-written file
                # here usually means a process died mid-write elsewhere).
                logger.warning(
                    "dropping corrupt tuning cache %s (%s); it will be "
                    "regenerated", self.path, exc,
                )
                self._data = {}

    def get(
        self,
        family: str,
        order: int,
        dtype: str,
        device: str,
        grid: tuple[int, int, int],
        space_sig: str = "default",
    ) -> TuneResult | None:
        """Return the cached result, or None."""
        raw = self._data.get(_key(family, order, dtype, device, grid, space_sig))
        if raw is None:
            return None
        entry = TuneEntry(
            config=BlockConfig(*raw["config"]),
            mpoints_per_s=raw["mpoints_per_s"],
            predicted=raw.get("predicted"),
            info=raw.get("info", {}),
        )
        return TuneResult(
            best=entry,
            entries=(entry,),
            evaluated=raw["evaluated"],
            space_size=raw["space_size"],
            method=raw["method"],
        )

    def put(
        self,
        result: TuneResult,
        family: str,
        order: int,
        dtype: str,
        device: str,
        grid: tuple[int, int, int],
        space_sig: str = "default",
    ) -> None:
        """Store a result's best entry and flush to disk."""
        self._data[_key(family, order, dtype, device, grid, space_sig)] = {
            "config": list(result.best.config.as_tuple()),
            "mpoints_per_s": result.best.mpoints_per_s,
            "predicted": result.best.predicted,
            "info": result.best.info,
            "evaluated": result.evaluated,
            "space_size": result.space_size,
            "method": result.method,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: write the whole document to a sibling temp file
        # and os.replace() it over the cache, so a reader (or a crash)
        # never sees a half-written JSON — the corruption mode the loader
        # above has to tolerate is thereby limited to external causes.
        payload = json.dumps(self._data, indent=1, default=str)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return len(self._data)
