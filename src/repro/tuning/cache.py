"""Persistent cache of tuning runs.

Exhaustive tuning on real hardware is expensive (it is the whole
motivation of the paper's section VI); on the simulator it is cheap but
still worth caching across processes for the benchmark harness and CLI.
The cache is a plain JSON file keyed by (family, order, dtype, device,
grid, space signature).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.kernels.config import BlockConfig
from repro.tuning.result import TuneEntry, TuneResult


def _key(
    family: str,
    order: int,
    dtype: str,
    device: str,
    grid: tuple[int, int, int],
    space_sig: str,
) -> str:
    return f"{family}|{order}|{dtype}|{device}|{'x'.join(map(str, grid))}|{space_sig}"


class TuningCache:
    """JSON-file-backed store of best tuning results."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._data: dict[str, dict] = {}
        if self.path.exists():
            try:
                self._data = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                # A corrupt cache is regenerated, never fatal.
                self._data = {}

    def get(
        self,
        family: str,
        order: int,
        dtype: str,
        device: str,
        grid: tuple[int, int, int],
        space_sig: str = "default",
    ) -> TuneResult | None:
        """Return the cached result, or None."""
        raw = self._data.get(_key(family, order, dtype, device, grid, space_sig))
        if raw is None:
            return None
        entry = TuneEntry(
            config=BlockConfig(*raw["config"]),
            mpoints_per_s=raw["mpoints_per_s"],
            predicted=raw.get("predicted"),
            info=raw.get("info", {}),
        )
        return TuneResult(
            best=entry,
            entries=(entry,),
            evaluated=raw["evaluated"],
            space_size=raw["space_size"],
            method=raw["method"],
        )

    def put(
        self,
        result: TuneResult,
        family: str,
        order: int,
        dtype: str,
        device: str,
        grid: tuple[int, int, int],
        space_sig: str = "default",
    ) -> None:
        """Store a result's best entry and flush to disk."""
        self._data[_key(family, order, dtype, device, grid, space_sig)] = {
            "config": list(result.best.config.as_tuple()),
            "mpoints_per_s": result.best.mpoints_per_s,
            "predicted": result.best.predicted,
            "info": result.best.info,
            "evaluated": result.evaluated,
            "space_size": result.space_size,
            "method": result.method,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self._data, indent=1, default=str))

    def __len__(self) -> int:
        return len(self._data)
