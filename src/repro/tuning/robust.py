"""Crash-safe, self-healing tuning sessions.

The paper's section VI economy argument is about tuning *time*; on real
clusters the dominant cost of a long campaign is usually *fragility* —
hung kernels, ECC events, nodes rebooting mid-sweep, and the re-runs they
force.  This module makes the reproduction's tuning campaigns survive the
failure modes :mod:`repro.gpusim.faults` injects:

* **retry with exponential backoff + jitter** — transient faults
  (launch failures, hangs, throttled or ECC-flagged measurements) are
  retried up to :attr:`RetryPolicy.max_retries` times per configuration;
* **per-config quarantine** — a configuration that keeps faulting is
  recorded as ``quarantined`` and excluded from the ranking instead of
  poisoning it with a degraded number;
* **crash-safe journal** — every completed trial is appended to a JSONL
  journal (flushed and fsynced per record), so a killed campaign resumes
  with ``repro tune --resume`` without re-running any journaled trial;
* **graceful degradation** — :class:`RobustTuningSession` walks the tier
  ladder model → stochastic → exhaustive, falling through when a tier
  cannot produce a usable winner.

Everything is deterministic: backoff jitter comes from a seeded RNG, the
fault schedule from :class:`~repro.gpusim.faults.FaultPlan`, so the same
seed reproduces the same fault sequence, retries and winner, trial for
trial.  The backoff *sleep* defaults to a no-op — simulated campaigns
should not spend wall-clock time — but the computed delays are still
accounted in :attr:`ResilientEvaluator.stats`.
"""

from __future__ import annotations

import json
import logging
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    FaultInjectedError,
    JournalError,
    KernelHangError,
    TuningError,
)
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.executor import DeviceExecutor
from repro.kernels.config import BlockConfig
from repro.obs.archive import TrialArchive, archive_stream
from repro.obs.events import (
    EventSink,
    FlightRecorder,
    JsonlEventSink,
    TeeEventSink,
    current_sink,
    emit as emit_event,
    event_stream,
    suppress_events,
)
from repro.obs.tracer import set_gauge
from repro.tuning.evaluator import (
    STATUS_QUARANTINED,
    TRIAL_STATUSES,
    SimTrialEvaluator,
    TrialEvaluator,
    TrialOutcome,
)
from repro.tuning.exhaustive import exhaustive_tune
from repro.tuning.modelbased import model_based_tune
from repro.tuning.result import TuneResult
from repro.tuning.stochastic import stochastic_tune

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.faults import FaultPlan
    from repro.gpusim.workload import BlockWorkload
    from repro.kernels.base import KernelPlan
    from repro.tuning.parallel import ParallelEvaluator
    from repro.tuning.space import ParameterSpace

logger = logging.getLogger("repro.tuning.robust")

#: The graceful-degradation ladder, cheapest tier first.
DEGRADATION_LADDER: tuple[str, ...] = ("model", "stochastic", "exhaustive")


@dataclass(frozen=True)
class RetryPolicy:
    """How transient-looking trial failures are retried.

    Delays follow ``base * factor**attempt``, each scaled by a
    deterministic jitter drawn from ``seed`` (so two sessions with the
    same seed back off identically).  ``sleep`` is invoked with each
    delay; the default ``None`` means "account the delay but do not
    block" — right for the simulator, replaceable with ``time.sleep``
    for wall-clock campaigns.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    sleep: Callable[[float], None] | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise TuningError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise TuningError(
                "backoff must satisfy base >= 0 and factor >= 1, got "
                f"base={self.backoff_base_s}, factor={self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise TuningError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` of trial ``key``."""
        base = self.backoff_base_s * self.backoff_factor ** attempt
        # String seeding is process-independent (unlike tuple seeding,
        # which goes through hash() and PYTHONHASHSEED).
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


# -- the journal -----------------------------------------------------------


def _outcome_to_obj(outcome: TrialOutcome) -> dict[str, Any]:
    return {
        "config": list(outcome.config.as_tuple()),
        "status": outcome.status,
        "mpoints_per_s": outcome.mpoints_per_s,
        "info": outcome.info,
        "attempts": outcome.attempts,
        "faults": list(outcome.faults),
    }


def _outcome_from_obj(obj: dict[str, Any], path: Path, line: int) -> TrialOutcome:
    try:
        config = BlockConfig(*(int(v) for v in obj["config"]))
        status = obj["status"]
        if status not in TRIAL_STATUSES:
            raise ValueError(f"unknown trial status {status!r}")
        return TrialOutcome(
            config=config,
            status=status,
            mpoints_per_s=float(obj.get("mpoints_per_s", 0.0)),
            info=dict(obj.get("info", {})),
            attempts=int(obj.get("attempts", 1)),
            faults=tuple(str(f) for f in obj.get("faults", ())),
            replayed=True,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"{path}:{line}: bad journal record: {exc}") from exc


class TrialJournal:
    """Append-only JSONL record of completed trials, keyed by config.

    Line 1 is a header binding the journal to one session key (device,
    grid, fault plan, ...): resuming against the wrong journal raises
    :class:`repro.errors.JournalError` instead of silently replaying
    foreign measurements.  Every subsequent line is one completed
    :class:`~repro.tuning.evaluator.TrialOutcome`.

    Writes are flushed and fsynced per record; a process killed
    mid-write leaves at most one torn final line, which :meth:`resume`
    tolerates (the interrupted trial simply re-runs).
    """

    VERSION = 1
    _TOOL = "repro.tuning.robust"

    def __init__(self, path: str | Path, session_key: str) -> None:
        self.path = Path(path)
        self.session_key = session_key
        self._outcomes: dict[BlockConfig, TrialOutcome] = {}

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, session_key: str) -> "TrialJournal":
        """Start a fresh journal (truncating any previous file)."""
        journal = cls(path, session_key)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "journal": cls._TOOL,
            "version": cls.VERSION,
            "session": session_key,
        }
        with open(journal.path, "w") as fh:
            fh.write(json.dumps(header) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return journal

    @classmethod
    def resume(cls, path: str | Path, session_key: str) -> "TrialJournal":
        """Reload a journal; raises :class:`JournalError` when unusable."""
        path = Path(path)
        if not path.exists():
            raise JournalError(f"{path}: resume journal does not exist")
        try:
            lines = path.read_text().splitlines()
        except OSError as exc:
            raise JournalError(f"{path}: cannot read journal: {exc}") from exc
        if not lines:
            raise JournalError(f"{path}: journal is empty (no header)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}:1: unreadable header: {exc}") from exc
        if (
            not isinstance(header, dict)
            or header.get("journal") != cls._TOOL
            or header.get("version") != cls.VERSION
        ):
            raise JournalError(
                f"{path}:1: not a {cls._TOOL} v{cls.VERSION} journal header: "
                f"{header!r}"
            )
        if header.get("session") != session_key:
            raise JournalError(
                f"{path}: journal belongs to session "
                f"{header.get('session')!r}, not {session_key!r}"
            )
        journal = cls(path, session_key)
        for i, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                if i == len(lines):
                    # Torn final line: the process died mid-append.  The
                    # trial it described re-runs; everything before it is
                    # intact (each record was fsynced before the next).
                    logger.warning(
                        "%s:%d: dropping torn final journal line (%s)",
                        path, i, exc,
                    )
                    break
                raise JournalError(
                    f"{path}:{i}: corrupt journal record: {exc}"
                ) from exc
            outcome = _outcome_from_obj(obj, path, i)
            journal._outcomes[outcome.config] = outcome
        return journal

    # -- record/replay -----------------------------------------------------

    def get(self, config: BlockConfig) -> TrialOutcome | None:
        """The journaled outcome for ``config``, marked ``replayed``."""
        return self._outcomes.get(config)

    def record(self, outcome: TrialOutcome) -> None:
        """Append one completed trial (flushed and fsynced)."""
        self._outcomes[outcome.config] = outcome
        with open(self.path, "a") as fh:
            fh.write(json.dumps(_outcome_to_obj(outcome)) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def __len__(self) -> int:
        return len(self._outcomes)


# -- the resilient evaluator -----------------------------------------------

#: Fault kinds that are deterministic re-runs of the same number — a
#: retry cannot help, so the config goes straight to quarantine.
_NON_RETRYABLE_KINDS = frozenset({"watchdog"})


class ResilientEvaluator:
    """Retry / quarantine / journal wrapper around a plain evaluator.

    Drop-in :class:`~repro.tuning.evaluator.TrialEvaluator`: the tuners
    cannot tell they are talking to it, which is the whole point — the
    search logic stays fault-oblivious while every measurement gains

    1. journal replay (a config already journaled never re-runs),
    2. retries with deterministic backoff for transient faults
       (launch failures, hangs, throttle/ECC-flagged measurements),
    3. quarantine once retries are exhausted (or immediately for
       deterministic failures like a genuine watchdog overrun).

    ``stats`` accumulates across tiers: ``live_trials`` (measurements
    actually executed), ``replayed``, ``retries``, ``quarantined_configs``
    and ``backoff_s`` (total computed delay, slept or not).
    """

    def __init__(
        self,
        inner: TrialEvaluator,
        *,
        policy: RetryPolicy | None = None,
        journal: TrialJournal | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.journal = journal
        self.stats: dict[str, Any] = {
            "live_trials": 0,
            "replayed": 0,
            "retries": 0,
            "quarantined_configs": 0,
            "backoff_s": 0.0,
        }

    def statically_rejected(self, block: "BlockWorkload") -> bool:
        return self.inner.statically_rejected(block)

    def _backoff(self, key: str, attempt: int) -> None:
        delay = self.policy.delay_s(key, attempt)
        self.stats["backoff_s"] += delay
        if self.policy.sleep is not None:
            self.policy.sleep(delay)

    def measure(
        self,
        cfg: BlockConfig,
        plan: "KernelPlan",
        grid_shape: tuple[int, int, int],
        block: "BlockWorkload",
    ) -> TrialOutcome:
        if self.journal is not None:
            replayed = self.journal.get(cfg)
            if replayed is not None:
                self.stats["replayed"] += 1
                return replayed

        key = cfg.label()
        faults_seen: list[str] = []
        degraded: TrialOutcome | None = None
        attempts = 0
        while attempts <= self.policy.max_retries:
            if attempts:
                self.stats["retries"] += 1
                self._backoff(key, attempts - 1)
            attempts += 1
            try:
                # Events are silenced across the measurement: fault
                # instants fired mid-attempt would be emitted live in a
                # serial run but lost in a pooled one.  The search loop
                # derives them from the finished outcome instead
                # (emit_trial_events), keeping the stream identical
                # wherever the measurement ran.
                with suppress_events():
                    outcome = self.inner.measure(cfg, plan, grid_shape, block)
            except (FaultInjectedError, KernelHangError) as exc:
                kind = getattr(exc, "kind", "unknown")
                faults_seen.append(kind)
                self.stats["live_trials"] += 1
                if kind in _NON_RETRYABLE_KINDS:
                    logger.warning(
                        "%s: non-retryable %s fault, quarantining", key, kind
                    )
                    break
                logger.info(
                    "%s: attempt %d faulted (%s), %s", key, attempts, kind,
                    "retrying" if attempts <= self.policy.max_retries
                    else "quarantining",
                )
                continue
            self.stats["live_trials"] += 1
            if not outcome.measured or not outcome.faults:
                # Clean measurement, or a deterministic rejection the
                # simulator would repeat identically: final either way.
                final = TrialOutcome(
                    config=outcome.config,
                    status=outcome.status,
                    mpoints_per_s=outcome.mpoints_per_s,
                    info=outcome.info,
                    attempts=attempts,
                    faults=outcome.faults,
                )
                return self._finish(final)
            # Completed but fault-flagged (throttle/ECC): the number is
            # suspect.  Keep it as a last resort and retry for clean.
            faults_seen.extend(outcome.faults)
            degraded = outcome
            logger.info(
                "%s: attempt %d returned a fault-flagged measurement (%s)",
                key, attempts, ",".join(outcome.faults),
            )

        if degraded is not None:
            final = TrialOutcome(
                config=degraded.config,
                status=degraded.status,
                mpoints_per_s=degraded.mpoints_per_s,
                info=degraded.info,
                attempts=attempts,
                faults=tuple(faults_seen),
            )
            return self._finish(final)
        self.stats["quarantined_configs"] += 1
        set_gauge("tune.quarantined", self.stats["quarantined_configs"])
        final = TrialOutcome(
            config=cfg,
            status=STATUS_QUARANTINED,
            attempts=attempts,
            faults=tuple(faults_seen),
        )
        return self._finish(final)

    def _finish(self, outcome: TrialOutcome) -> TrialOutcome:
        if self.journal is not None:
            self.journal.record(outcome)
        return outcome


# -- the session -----------------------------------------------------------


@dataclass(frozen=True)
class SessionResult:
    """What a resilient tuning session produced."""

    result: TuneResult
    method: str                       #: the tier that produced the winner
    degraded_from: tuple[str, ...]    #: tiers that failed before it
    tier_errors: dict[str, str] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)
    journal_path: str | None = None

    def summary(self) -> str:
        line = self.result.summary()
        if self.degraded_from:
            line += f" [degraded from {' -> '.join(self.degraded_from)}]"
        replayed = self.stats.get("replayed", 0)
        if replayed:
            line += f" [{replayed} trial(s) replayed from journal]"
        return line


class RobustTuningSession:
    """One crash-safe tuning campaign over the degradation ladder.

    Parameters
    ----------
    device:
        Device spec or registry name.
    grid_shape:
        The sweep volume trials are priced on.
    faults:
        Optional :class:`~repro.gpusim.faults.FaultPlan` driving the
        executor every trial runs on (``None``: clean campaign).
    policy:
        Retry/backoff/quarantine policy (default :class:`RetryPolicy`).
    journal_path:
        Where to persist completed trials.  ``None`` disables
        persistence (the session is still resilient, just not
        resumable).
    resume:
        Reload ``journal_path`` and replay its trials instead of
        re-running them.  Raises :class:`repro.errors.JournalError` when
        the file is missing, unreadable, or belongs to a different
        session key.
    session_key:
        Identity the journal is bound to; defaults to
        ``device:grid[:faults]`` and should be extended by callers that
        vary more than that (the CLI prepends family/order/dtype).
    prefilter / watchdog_cycles:
        Forwarded to the underlying executor/evaluator.
    jobs:
        ``None`` (default) keeps the historical serial
        :class:`ResilientEvaluator` — shared fault stream, bit-identical
        to every prior release.  An integer swaps in a
        :class:`repro.tuning.parallel.ParallelEvaluator` with that many
        workers (clamped to the core count): per-config fault streams,
        batch dispatch, journal serialized through the parent.  Note
        ``jobs=1`` therefore matches ``jobs=4``, not ``jobs=None``.
    worker_cap:
        Override for the parallel engine's core-count clamp (tests and
        benches on small machines); ignored when ``jobs`` is ``None``.
    events_path:
        Where to stream structured events
        (:class:`repro.obs.events.JsonlEventSink`, tailed by
        ``repro top``).  ``None`` (default) leaves the event layer
        exactly as the caller configured it — off unless a sink is
        already installed — so a plain session stays zero-perturbation.
    archive_path:
        Where to write the per-trial decision-provenance archive
        (:class:`repro.obs.archive.TrialArchive`: measured rate, model
        prediction, codegen-time estimate, derived counters and
        disposition per evaluated config — what ``repro explain``
        reads).  Captured by the search loops in the parent in input
        order, so the file is byte-identical at any ``jobs`` count;
        ``None`` (default) keeps archiving off at zero perturbation.
    crash_report_path:
        Where the flight recorder dumps its ring of recent events when
        an error escapes :meth:`run`.  Defaults to
        ``<events_path>.crash.json`` next to ``events_path`` (or next to
        ``journal_path``) when either is set; ``None`` with neither set
        disables the dump.
    flight_capacity:
        Ring size of the :class:`repro.obs.events.FlightRecorder`.
    """

    def __init__(
        self,
        device: DeviceSpec | str,
        grid_shape: tuple[int, int, int],
        *,
        faults: "FaultPlan | None" = None,
        policy: RetryPolicy | None = None,
        journal_path: str | Path | None = None,
        resume: bool = False,
        session_key: str | None = None,
        prefilter: bool = True,
        watchdog_cycles: float | None = None,
        jobs: int | None = None,
        worker_cap: int | None = None,
        events_path: str | Path | None = None,
        archive_path: str | Path | None = None,
        crash_report_path: str | Path | None = None,
        flight_capacity: int = 256,
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        self.grid_shape = grid_shape
        self.faults = faults
        self.events_path = Path(events_path) if events_path is not None else None
        self.archive_path = (
            Path(archive_path) if archive_path is not None else None
        )
        if crash_report_path is None:
            anchor = self.events_path or (
                Path(journal_path) if journal_path is not None else None
            )
            if anchor is not None:
                crash_report_path = anchor.with_name(anchor.name + ".crash.json")
        self.crash_report_path = (
            Path(crash_report_path) if crash_report_path is not None else None
        )
        self.flight = FlightRecorder(flight_capacity)
        if session_key is None:
            session_key = self.default_session_key(
                self.device, grid_shape, faults
            )
        self.session_key = session_key
        self.journal: TrialJournal | None = None
        if journal_path is not None:
            if resume:
                self.journal = TrialJournal.resume(journal_path, session_key)
                logger.info(
                    "resumed journal %s with %d completed trial(s)",
                    journal_path, len(self.journal),
                )
            else:
                self.journal = TrialJournal.create(journal_path, session_key)
        elif resume:
            raise JournalError("resume requested without a journal path")
        self.evaluator: "ResilientEvaluator | ParallelEvaluator"
        if jobs is None:
            executor = DeviceExecutor(
                self.device, faults=faults, watchdog_cycles=watchdog_cycles
            )
            self.evaluator = ResilientEvaluator(
                SimTrialEvaluator(
                    self.device, prefilter=prefilter, executor=executor
                ),
                policy=policy,
                journal=self.journal,
            )
        else:
            # Deferred import: parallel.py imports this module.
            from repro.tuning.parallel import ParallelEvaluator

            self.evaluator = ParallelEvaluator(
                self.device,
                jobs=jobs,
                prefilter=prefilter,
                faults=faults,
                watchdog_cycles=watchdog_cycles,
                policy=policy,
                journal=self.journal,
                worker_cap=worker_cap,
            )

    def close(self) -> None:
        """Release pooled resources (no-op for a serial session)."""
        closer = getattr(self.evaluator, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "RobustTuningSession":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    @staticmethod
    def default_session_key(
        device: DeviceSpec,
        grid_shape: tuple[int, int, int],
        faults: "FaultPlan | None" = None,
    ) -> str:
        key = f"{device.name}:{'x'.join(str(g) for g in grid_shape)}"
        if faults is not None:
            key += f":{faults.describe()}"
        return key

    def _run_tier(
        self,
        tier: str,
        build: Callable[[BlockConfig], "KernelPlan"],
        *,
        space: "ParameterSpace | None",
        beta: float,
        budget: int,
        seed: int,
    ) -> TuneResult:
        if tier == "model":
            return model_based_tune(
                build, self.device, self.grid_shape, beta=beta, space=space,
                evaluator=self.evaluator,
            )
        if tier == "stochastic":
            return stochastic_tune(
                build, self.device, self.grid_shape, budget=budget, seed=seed,
                space=space, evaluator=self.evaluator,
            )
        if tier == "exhaustive":
            return exhaustive_tune(
                build, self.device, self.grid_shape, space,
                evaluator=self.evaluator,
            )
        raise TuningError(f"unknown tuning tier {tier!r}")

    def run(
        self,
        build: Callable[[BlockConfig], "KernelPlan"],
        *,
        method: str = "auto",
        space: "ParameterSpace | None" = None,
        beta: float = 0.05,
        budget: int = 30,
        seed: int = 0,
    ) -> SessionResult:
        """Tune ``build``'s family, degrading across tiers as needed.

        ``method="auto"`` walks the full ladder
        (:data:`DEGRADATION_LADDER`); naming a single tier restricts the
        session to it (still resilient, no fallback).  A tier *fails*
        when it raises :class:`~repro.errors.TuningError` or when its
        best measured rate is not positive (every trial quarantined or
        rejected) — either way the next tier starts with the journal's
        accumulated knowledge, so nothing completed is re-run.

        When events are enabled (``events_path``, or a sink the caller
        already installed) the campaign additionally narrates itself:
        ``session.*`` / ``sweep.*`` / trial-plane events flow to the
        stream and through the flight recorder, whose ring is dumped to
        ``crash_report_path`` should any error escape this method.
        """
        if self.archive_path is None:
            return self._run_streams(
                build, archive=None, method=method, space=space, beta=beta,
                budget=budget, seed=seed,
            )
        archive = TrialArchive(self.archive_path, session=self.session_key)
        try:
            with archive_stream(archive):
                return self._run_streams(
                    build, archive=archive, method=method, space=space,
                    beta=beta, budget=budget, seed=seed,
                )
        finally:
            archive.close()

    def _run_streams(
        self,
        build: Callable[[BlockConfig], "KernelPlan"],
        *,
        archive: TrialArchive | None,
        method: str,
        space: "ParameterSpace | None",
        beta: float,
        budget: int,
        seed: int,
    ) -> SessionResult:
        """Event-sink wiring around the ladder (see :meth:`run`)."""
        sinks: list[EventSink] = []
        outer = current_sink()
        if outer is not None:
            sinks.append(outer)
        stream: JsonlEventSink | None = None
        if self.events_path is not None:
            stream = JsonlEventSink(self.events_path, session=self.session_key)
            sinks.append(stream)
        if not sinks and self.crash_report_path is None:
            # Event layer untouched: a plain session stays zero-overhead.
            return self._run_ladder(
                build, method=method, space=space, beta=beta, budget=budget,
                seed=seed,
            )
        sinks.append(self.flight)
        try:
            with event_stream(TeeEventSink(sinks)):
                emit_event(
                    "session.start", session=self.session_key, method=method
                )
                if archive is not None:
                    emit_event("archive.start", session=self.session_key)
                try:
                    session_result = self._run_ladder(
                        build, method=method, space=space, beta=beta,
                        budget=budget, seed=seed,
                    )
                except BaseException as exc:
                    emit_event(
                        "session.crash",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    if self.crash_report_path is not None:
                        self.flight.dump(
                            self.crash_report_path,
                            reason=type(exc).__name__,
                            error=exc,
                            session=self.session_key,
                        )
                    raise
                if archive is not None:
                    emit_event(
                        "archive.finished", records=archive.records_written
                    )
                emit_event(
                    "session.finished",
                    method=session_result.method,
                    best_config=session_result.result.best.config.label(),
                    best_mpoints=session_result.result.best_mpoints,
                )
                return session_result
        finally:
            if stream is not None:
                stream.close()

    def _run_ladder(
        self,
        build: Callable[[BlockConfig], "KernelPlan"],
        *,
        method: str,
        space: "ParameterSpace | None",
        beta: float,
        budget: int,
        seed: int,
    ) -> SessionResult:
        """The degradation walk itself (see :meth:`run`)."""
        tiers = DEGRADATION_LADDER if method == "auto" else (method,)
        if any(t not in DEGRADATION_LADDER for t in tiers):
            raise TuningError(
                f"unknown tuning method {method!r}; expected one of "
                f"{DEGRADATION_LADDER + ('auto',)}"
            )
        failed: list[str] = []
        errors: dict[str, str] = {}
        for tier in tiers:
            emit_event("session.tier_start", tier=tier)
            try:
                result = self._run_tier(
                    tier, build, space=space, beta=beta, budget=budget,
                    seed=seed,
                )
            except TuningError as exc:
                failed.append(tier)
                errors[tier] = str(exc)
                emit_event("session.tier_failed", tier=tier, error=str(exc))
                logger.warning("tier %r failed: %s", tier, exc)
                continue
            if result.best_mpoints <= 0.0:
                failed.append(tier)
                errors[tier] = (
                    "no usable measurement (best rate "
                    f"{result.best_mpoints:g} MPoint/s)"
                )
                emit_event(
                    "session.tier_failed", tier=tier, error=errors[tier]
                )
                logger.warning(
                    "tier %r produced no usable measurement, degrading", tier
                )
                continue
            return SessionResult(
                result=result,
                method=tier,
                degraded_from=tuple(failed),
                tier_errors=errors,
                stats=dict(self.evaluator.stats),
                journal_path=(
                    str(self.journal.path) if self.journal is not None else None
                ),
            )
        detail = "; ".join(f"{t}: {errors[t]}" for t in failed)
        raise TuningError(
            f"all tuning tiers failed on {self.device.name} "
            f"({self.evaluator.stats['quarantined_configs']} config(s) "
            f"quarantined): {detail}"
        )
