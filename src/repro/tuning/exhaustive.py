"""Exhaustive auto-tuning (section IV-C).

Every feasible configuration is executed (on the simulator — the stand-in
for the paper's timed CUDA launches) and ranked by measured MPoint/s.
Configurations that cannot launch at all (a block exceeding the register
file) are skipped, exactly as a real tuner skips launch failures.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import TuningError
from repro.gpusim.device import DeviceSpec
from repro.kernels.base import KernelPlan
from repro.kernels.config import BlockConfig
from repro.obs.events import emit as emit_event
from repro.obs.schema import CAT_TUNE_RUN, CAT_TUNE_TRIAL
from repro.obs.tracer import current_tracer, maybe_span
from repro.tuning.evaluator import (
    STATUS_QUARANTINED,
    STATUS_REJECTED_SIMULATED,
    STATUS_REJECTED_STATIC,
    SimTrialEvaluator,
    TrialEvaluator,
    TrialOutcome,
    batch_capable,
    record_trial,
)
from repro.tuning.result import TuneEntry, TuneResult
from repro.tuning.space import ParameterSpace, default_space

KernelBuilder = Callable[[BlockConfig], KernelPlan]


def evaluate_configs(
    build: KernelBuilder,
    configs: list[BlockConfig],
    device: DeviceSpec,
    grid_shape: tuple[int, int, int],
    *,
    prefilter: bool = True,
    stats: dict[str, Any] | None = None,
    evaluator: TrialEvaluator | None = None,
) -> list[TuneEntry]:
    """Execute each configuration; unlaunchable ones are dropped.

    With ``prefilter`` (the default) the static resource check rejects
    unlaunchable configurations from the workload record alone, skipping
    the full timing pipeline; the check is the identical occupancy test
    the executor would run, so the surviving set — and hence the chosen
    optimum — is unchanged.  ``stats`` (optional, mutated in place)
    receives ``rejected_static`` / ``rejected_simulated`` counts (and a
    ``quarantined`` count when a resilient evaluator gave up on configs).

    ``evaluator`` swaps the measurement backend (default: a plain
    :class:`~repro.tuning.evaluator.SimTrialEvaluator`; pass a
    :class:`~repro.tuning.robust.ResilientEvaluator` for retry /
    quarantine / journal semantics).  When given, it owns the prefilter
    decision and the ``prefilter`` argument is ignored.
    """
    evaluator = evaluator or SimTrialEvaluator(device, prefilter=prefilter)
    batch = batch_capable(evaluator)
    if batch is not None:
        outcomes = batch.measure_batch(build, configs, grid_shape)
        entries = _collect_outcomes(
            configs, outcomes, stats,
            build=build, device=device, grid_shape=grid_shape,
        )
        if stats is not None:
            stats["jobs"] = batch.jobs
        return entries
    tracer = current_tracer()
    entries: list[TuneEntry] = []
    rejected_static = 0
    rejected_simulated = 0
    quarantined = 0
    for cfg in configs:
        plan = build(cfg)
        block = plan.block_workload(device, grid_shape)
        if evaluator.statically_rejected(block):
            rejected_static += 1
            record_trial(
                TrialOutcome(config=cfg, status=STATUS_REJECTED_STATIC),
                build=build, device=device, grid_shape=grid_shape,
            )
            if tracer is not None:
                tracer.instant(
                    cfg.label(), CAT_TUNE_TRIAL,
                    config=cfg.label(), rejected="static",
                )
                tracer.metrics.counter("tune.rejected_static").inc()
            continue
        with maybe_span(tracer, cfg.label(), CAT_TUNE_TRIAL,
                        config=cfg.label()) as sp:
            outcome = evaluator.measure(cfg, plan, grid_shape, block)
            record_trial(
                outcome, build=build, device=device, grid_shape=grid_shape
            )
            if outcome.status == STATUS_REJECTED_SIMULATED:
                rejected_simulated += 1
                if sp is not None:
                    sp.args["rejected"] = "simulated"
                    tracer.metrics.counter("tune.rejected_simulated").inc()
                continue
            if outcome.status == STATUS_QUARANTINED:
                quarantined += 1
                if sp is not None:
                    sp.args["quarantined"] = True
                    sp.args["attempts"] = outcome.attempts
                    tracer.metrics.counter("tune.quarantined").inc()
                continue
            if sp is not None:
                sp.args["mpoints_per_s"] = outcome.mpoints_per_s
                tracer.metrics.counter("tune.trials").inc()
        entries.append(
            TuneEntry(
                config=cfg,
                mpoints_per_s=outcome.mpoints_per_s,
                info=dict(outcome.info),
            )
        )
    if stats is not None:
        stats["rejected_static"] = rejected_static
        stats["rejected_simulated"] = rejected_simulated
        if quarantined:
            stats["quarantined"] = quarantined
        # One inline worker: keep the stats shape identical to the batch
        # path so archives/JSON output don't change with the backend.
        stats["jobs"] = 1
    return entries


def _collect_outcomes(
    configs: list[BlockConfig],
    outcomes: list[TrialOutcome],
    stats: dict[str, Any] | None,
    *,
    build: KernelBuilder,
    device: DeviceSpec,
    grid_shape: tuple[int, int, int],
) -> list[TuneEntry]:
    """Batch-path bookkeeping: classify pre-measured outcomes.

    Emits the identical instants/spans/metric counters the serial loop
    emits (trial spans are near-zero here — the measurement already
    happened in the workers, whose wall-clock lives on the
    ``tune.worker`` lanes) and tallies the same stats, so the entry list
    and every counter are independent of which path produced them.
    """
    tracer = current_tracer()
    entries: list[TuneEntry] = []
    rejected_static = 0
    rejected_simulated = 0
    quarantined = 0
    for cfg, outcome in zip(configs, outcomes):
        record_trial(outcome, build=build, device=device, grid_shape=grid_shape)
        if outcome.status == STATUS_REJECTED_STATIC:
            rejected_static += 1
            if tracer is not None:
                tracer.instant(
                    cfg.label(), CAT_TUNE_TRIAL,
                    config=cfg.label(), rejected="static",
                )
                tracer.metrics.counter("tune.rejected_static").inc()
            continue
        with maybe_span(tracer, cfg.label(), CAT_TUNE_TRIAL,
                        config=cfg.label()) as sp:
            if outcome.status == STATUS_REJECTED_SIMULATED:
                rejected_simulated += 1
                if sp is not None:
                    sp.args["rejected"] = "simulated"
                    tracer.metrics.counter("tune.rejected_simulated").inc()
                continue
            if outcome.status == STATUS_QUARANTINED:
                quarantined += 1
                if sp is not None:
                    sp.args["quarantined"] = True
                    sp.args["attempts"] = outcome.attempts
                    tracer.metrics.counter("tune.quarantined").inc()
                continue
            if sp is not None:
                sp.args["mpoints_per_s"] = outcome.mpoints_per_s
                tracer.metrics.counter("tune.trials").inc()
        entries.append(
            TuneEntry(
                config=cfg,
                mpoints_per_s=outcome.mpoints_per_s,
                info=dict(outcome.info),
            )
        )
    if stats is not None:
        stats["rejected_static"] = rejected_static
        stats["rejected_simulated"] = rejected_simulated
        if quarantined:
            stats["quarantined"] = quarantined
    return entries


def feasible_configs(
    build: KernelBuilder,
    device: DeviceSpec,
    grid_shape: tuple[int, int, int],
    space: ParameterSpace | None = None,
) -> list[BlockConfig]:
    """The constrained space for this kernel family on this device."""
    space = space or default_space()

    def smem_of(cfg: BlockConfig) -> int:
        plan = build(cfg)
        return plan.block_workload(device, grid_shape).smem_bytes

    return space.feasible(device, grid_shape, smem_of)


def exhaustive_tune(
    build: KernelBuilder,
    device: DeviceSpec,
    grid_shape: tuple[int, int, int],
    space: ParameterSpace | None = None,
    *,
    prefilter: bool = True,
    evaluator: TrialEvaluator | None = None,
) -> TuneResult:
    """Run the full feasible space; return the ranked result."""
    configs = feasible_configs(build, device, grid_shape, space)
    stats: dict[str, Any] = {}
    emit_event(
        "sweep.start", method="exhaustive", device=device.name,
        space_size=len(configs),
    )
    with maybe_span(
        current_tracer(), f"exhaustive on {device.name}", CAT_TUNE_RUN,
        method="exhaustive", device=device.name, space_size=len(configs),
    ) as run_span:
        entries = evaluate_configs(
            build, configs, device, grid_shape, prefilter=prefilter,
            stats=stats, evaluator=evaluator,
        )
        if run_span is not None:
            run_span.args.update(evaluated=len(entries), **stats)
    emit_event("sweep.finished", method="exhaustive", evaluated=len(entries))
    if not entries:
        raise TuningError(
            f"no configuration could be launched on {device.name} for {grid_shape}"
        )
    entries.sort(key=lambda e: e.mpoints_per_s, reverse=True)
    return TuneResult(
        best=entries[0],
        entries=tuple(entries),
        evaluated=len(entries),
        space_size=len(configs),
        method="exhaustive",
        info=stats,
    )
