"""The paper's analytical performance model — Eqns (6)-(14), section VI.

The model deliberately stays *simpler* than the simulator: it counts bytes
per plane naively (elements x element size, no transaction/coalescing
accounting), assumes zero scheduling overhead, no bank conflicts and no
cache effects — the three limitations section VI lists.  Its job is not to
be exact but to *rank* configurations well enough that executing only the
top beta% of the space finds a near-optimal configuration.

Implementation notes on fidelity to the paper:

* Eqn (7)'s minimum is taken verbatim (integer floors, no allocation
  granularities — that is one of the model's simplifications).
* Eqn (11) as printed multiplies by ``ActBlks`` and Eqn (12) multiplies by
  ``ActBlks`` again; we read (11) as defining the single-block compute time
  ``T_c = Ops * RX * RY * Warp_Blk / Clock`` and apply the ``ActBlks``
  factor once, in Eqn (12), which is the only self-consistent reading.
* ``f(arg)`` "returns a value between 1 and arg ... a linear function":
  at full occupancy (``Warp_SM`` resident warps) it returns 1 (perfect
  latency hiding); with a single resident warp it returns ``arg``
  (fully serialized memory access).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.device import DeviceSpec
from repro.gpusim.timing import TimingParams, params_for
from repro.kernels.config import BlockConfig
from repro.kernels.symmetric import SymmetricKernelPlan
from repro.utils.maths import ceil_div


@dataclass(frozen=True)
class ModelInputs:
    """Everything Eqns (6)-(14) need for one configuration.

    All byte/flop counts are per thread block per stencil plane; resource
    counts follow the paper's notation (K_R registers per thread, K_S
    shared-memory bytes per block).
    """

    lx: int
    ly: int
    tx: int
    ty: int
    rx: int
    ry: int
    k_r: int
    k_s: int
    ops: float
    bytes_blk: float

    @property
    def warp_blk(self) -> int:
        """Warps per thread block."""
        return ceil_div(self.tx * self.ty, WARP_SIZE)

    @classmethod
    def from_plan(
        cls,
        plan: SymmetricKernelPlan,
        device: DeviceSpec,
        grid_shape: tuple[int, int, int],
        params: TimingParams | None = None,
    ) -> "ModelInputs":
        """Derive model inputs from a kernel plan.

        Bytes are counted naively — loaded elements plus stored elements
        times the element size — reproducing the model's blindness to
        coalescing (its main divergence from measured behaviour).
        """
        workload = plan.block_workload(device, grid_shape)
        lx, ly, _lz = grid_shape
        # Eqn (10)'s Bytes_Blk is "the total number of bytes read and
        # written for each stencil plane": counted as the transaction lines
        # actually moved (the authors design coalescing-aware kernels, so
        # their byte accounting is line-aware).  The model remains blind to
        # partition camping, L2 reuse, scheduling overhead and bank
        # conflicts — the error sources section VI lists.
        moved_bytes = workload.memory.total_transferred_bytes
        # The paper reads K_R off the *compiled* kernel, so it is capped at
        # the architectural per-thread limit and the compiler's spill
        # traffic is visible; we mirror that by capping and charging the
        # spilled registers as extra local-memory bytes per plane.  The
        # per-register byte cost is the simulator's calibration constant —
        # a recalibration moves the model and the simulator together.
        params = params or params_for(device)
        cap = device.rules.max_regs_per_thread
        spilled = max(0, workload.regs_per_thread - cap)
        spill_bytes = (
            spilled * workload.threads_per_block * params.spill_bytes_per_reg
        )
        return cls(
            lx=lx,
            ly=ly,
            tx=plan.block.tx,
            ty=plan.block.ty,
            rx=plan.block.rx,
            ry=plan.block.ry,
            k_r=min(workload.regs_per_thread, cap),
            k_s=workload.smem_bytes,
            ops=workload.flops_per_point,
            bytes_blk=moved_bytes + spill_bytes,
        )


@dataclass(frozen=True)
class ModelPrediction:
    """Model output for one configuration."""

    mpoints_per_s: float
    act_blks: int
    stages: int
    rem_blks: int
    t_m: float
    t_c: float


class PaperModel:
    """Eqns (6)-(14) for a given device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    def predict(self, inputs: ModelInputs) -> ModelPrediction:
        """Predicted performance in MPoint/s (Eqn (14)); 0 if unlaunchable."""
        dev = self.device
        m = inputs

        # Eqn (6): blocks per plane.
        blks = (m.lx * m.ly) / ((m.tx * m.rx) * (m.ty * m.ry))

        # Eqn (7): resident blocks per SM.
        limits = [
            dev.registers_per_sm // max(1, m.k_r * m.tx * m.ty),
            dev.smem_per_sm // m.k_s if m.k_s else dev.max_blocks_per_sm,
            dev.max_warps_per_sm // m.warp_blk,
            dev.max_blocks_per_sm,
        ]
        act_blks = min(limits)
        if act_blks < 1:
            return ModelPrediction(0.0, 0, 0, 0, 0.0, 0.0)

        # Eqn (8): full waves; Eqn (9): per-SM blocks of the last wave.
        stages = math.ceil(blks / (dev.sm_count * act_blks))
        rem_blks = math.ceil(
            (blks - (stages - 1) * act_blks * dev.sm_count) / dev.sm_count
        )
        rem_blks = max(1, rem_blks)

        # Eqn (10): memory time for one block's plane (seconds), split into
        # its latency and bandwidth components.
        bw_sm = dev.measured_bandwidth_gbs * 1e9 / dev.sm_count
        t_lat = dev.dram_latency_cycles / dev.clock_hz
        t_bw = m.bytes_blk / bw_sm
        t_m = t_lat + t_bw

        # Eqn (11) (single-block reading): compute time per block plane.
        t_c = (m.ops * m.rx * m.ry * m.warp_blk) / dev.clock_hz

        # Eqns (12)-(13) with the linear latency-hiding function f.  As
        # printed, f multiplies all of T_m, which would make *bandwidth*
        # nearly free at full occupancy; the only physically consistent
        # reading is that occupancy hides the latency component while the
        # bandwidth component always scales with the resident blocks
        # (BW_SM is shared).  f still returns "a value between 1 and arg",
        # linear in occupancy, exactly as described.
        def f(arg: float, resident_blocks: int) -> float:
            occ = min(1.0, resident_blocks * m.warp_blk / dev.max_warps_per_sm)
            return 1.0 + (arg - 1.0) * (1.0 - occ)

        def stage_time(blocks: int) -> float:
            return (
                blocks * t_bw
                + f(blocks, blocks) * t_lat
                + blocks * t_c
            )

        t_s = stage_time(act_blks)
        t_l = stage_time(rem_blks)

        # Eqn (14): points per plane over time per plane.
        per_plane_time = t_s * (stages - 1) + t_l
        mpoints = (m.lx * m.ly) / per_plane_time / 1e6
        return ModelPrediction(
            mpoints_per_s=mpoints,
            act_blks=act_blks,
            stages=stages,
            rem_blks=rem_blks,
            t_m=t_m,
            t_c=t_c,
        )

    def predict_plan(
        self,
        plan: SymmetricKernelPlan,
        grid_shape: tuple[int, int, int],
    ) -> ModelPrediction:
        """Convenience: derive inputs from a plan and predict."""
        return self.predict(ModelInputs.from_plan(plan, self.device, grid_shape))

    def predict_batch(self, inputs: Sequence[ModelInputs]) -> np.ndarray:
        """Score many configurations in one NumPy pass (MPoint/s each).

        Vectorized Eqns (6)-(14): every elementwise operation mirrors
        :meth:`predict` in the identical order, so the returned float64
        array is **bit-identical** to calling the scalar path per input
        (pinned by ``tests/test_tuning_parallel.py`` and the degenerate
        sweep in ``tests/test_tuning_perfmodel.py``) — the model-based
        tuner's shortlist, and hence its winner, cannot move between the
        two front-ends.  Unlaunchable configurations (no resident block)
        score 0.0 exactly as the scalar path does; their rows are
        boolean-compressed out *before* any arithmetic, so the scalar
        semantics need no guarded divisors that could disagree with it
        (a negative ``k_s`` must floor-divide exactly like ``predict``,
        not be clamped to "unlimited").
        """
        if not inputs:
            return np.zeros(0, dtype=np.float64)
        dev = self.device
        as_i64 = lambda attr: np.array(
            [getattr(m, attr) for m in inputs], dtype=np.int64
        )
        lx, ly = as_i64("lx"), as_i64("ly")
        tx, ty = as_i64("tx"), as_i64("ty")
        rx, ry = as_i64("rx"), as_i64("ry")
        k_r, k_s = as_i64("k_r"), as_i64("k_s")
        ops = np.array([m.ops for m in inputs], dtype=np.float64)
        bytes_blk = np.array([m.bytes_blk for m in inputs], dtype=np.float64)
        warp_blk = -((-(tx * ty)) // WARP_SIZE)  # ceil_div, floor-div form

        # Eqn (7): resident blocks per SM (elementwise min over limits).
        # The smem limit mirrors the scalar truthiness test `if m.k_s`
        # op for op: only k_s == 0 means "no shared memory"; any other
        # value — including a (nonsensical, but representable) negative
        # footprint — floor-divides exactly as `predict` does, which for
        # k_s < 0 yields a negative limit and hence an unlaunchable row.
        act_blks = np.minimum.reduce([
            dev.registers_per_sm // np.maximum(1, k_r * tx * ty),
            np.where(
                k_s != 0,
                dev.smem_per_sm // np.where(k_s != 0, k_s, 1),
                dev.max_blocks_per_sm,
            ),
            dev.max_warps_per_sm // warp_blk,
            np.full_like(warp_blk, dev.max_blocks_per_sm),
        ])

        out = np.zeros(len(inputs), dtype=np.float64)
        live = np.flatnonzero(act_blks >= 1)
        if live.size == 0:
            return out
        act = act_blks[live]
        warp_l = warp_blk[live]

        # Eqn (6): blocks per plane.
        blks = (lx[live] * ly[live]) / (
            (tx[live] * rx[live]) * (ty[live] * ry[live])
        )

        # Eqn (8)-(9): full waves and the last wave's per-SM blocks.
        stages = np.ceil(blks / (dev.sm_count * act))
        rem_blks = np.ceil(
            (blks - (stages - 1) * act * dev.sm_count) / dev.sm_count
        )
        rem_blks = np.maximum(1, rem_blks)

        # Eqn (10)-(11): memory and compute time per block plane.
        bw_sm = dev.measured_bandwidth_gbs * 1e9 / dev.sm_count
        t_lat = dev.dram_latency_cycles / dev.clock_hz
        t_bw = bytes_blk[live] / bw_sm
        t_c = (ops[live] * rx[live] * ry[live] * warp_l) / dev.clock_hz

        # Eqns (12)-(13): latency hiding, identical reading to predict().
        def f(arg: np.ndarray, resident: np.ndarray) -> np.ndarray:
            occ = np.minimum(1.0, resident * warp_l / dev.max_warps_per_sm)
            return 1.0 + (arg - 1.0) * (1.0 - occ)

        def stage_time(blocks: np.ndarray) -> np.ndarray:
            return blocks * t_bw + f(blocks, blocks) * t_lat + blocks * t_c

        t_s = stage_time(act)
        t_l = stage_time(rem_blks)

        # Eqn (14): points per plane over time per plane.
        per_plane_time = t_s * (stages - 1) + t_l
        out[live] = (lx[live] * ly[live]) / per_plane_time / 1e6
        return out
