"""Auto-tuning: exhaustive search and the model-based acceleration.

* :mod:`repro.tuning.space` — the (TX, TY, RX, RY) parameter space with
  the paper's search constraints (i)-(iv) of section IV-C.
* :mod:`repro.tuning.exhaustive` — run every feasible configuration on the
  simulator; rank by measured MPoint/s.
* :mod:`repro.tuning.perfmodel` — the paper's analytical performance model,
  Eqns (6)-(14), implemented verbatim.
* :mod:`repro.tuning.modelbased` — the section VI procedure: rank all
  configurations by the model, execute only the top beta% on the
  simulator, return the best measured one.
* :mod:`repro.tuning.evaluator` — the per-trial measurement seam shared
  by all tuners.
* :mod:`repro.tuning.robust` — crash-safe, self-healing tuning sessions:
  retries, per-config quarantine, resume journal, graceful degradation.
* :mod:`repro.tuning.parallel` — the process-pool batch engine behind
  ``repro tune --jobs N``: deterministic chunked dispatch with
  per-config fault streams.
"""

from repro.tuning.space import ParameterSpace, default_space
from repro.tuning.result import TuneEntry, TuneResult
from repro.tuning.evaluator import (
    BatchTrialEvaluator,
    SimTrialEvaluator,
    TrialEvaluator,
    TrialOutcome,
    batch_capable,
)
from repro.tuning.parallel import FamilyKernelBuilder, ParallelEvaluator
from repro.tuning.vectorized import VectorTrialEvaluator
from repro.tuning.exhaustive import exhaustive_tune
from repro.tuning.perfmodel import PaperModel, ModelInputs
from repro.tuning.modelbased import model_based_tune
from repro.tuning.stochastic import stochastic_tune
from repro.tuning.cache import TuningCache
from repro.tuning.robust import (
    ResilientEvaluator,
    RetryPolicy,
    RobustTuningSession,
    SessionResult,
    TrialJournal,
)

__all__ = [
    "ParameterSpace",
    "default_space",
    "TuneEntry",
    "TuneResult",
    "TrialEvaluator",
    "BatchTrialEvaluator",
    "batch_capable",
    "TrialOutcome",
    "SimTrialEvaluator",
    "ParallelEvaluator",
    "FamilyKernelBuilder",
    "VectorTrialEvaluator",
    "exhaustive_tune",
    "PaperModel",
    "ModelInputs",
    "model_based_tune",
    "stochastic_tune",
    "TuningCache",
    "ResilientEvaluator",
    "RetryPolicy",
    "RobustTuningSession",
    "SessionResult",
    "TrialJournal",
]
