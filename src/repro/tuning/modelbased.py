"""Model-based auto-tuning — the section VI procedure.

1. Enumerate the feasible parameter space (M configurations).
2. Predict every configuration's performance with the paper model.
3. Rank predictions in decreasing order and keep the top
   ``N = beta/100 * M`` candidates.
4. Execute only those N on the simulator; return the best *measured*
   configuration.

With beta = 5% the paper finds the result typically within ~2% of the
exhaustive optimum (Fig 12); the reproduction bench checks the same gap.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import TuningError
from repro.gpusim.device import DeviceSpec
from repro.kernels.base import KernelPlan
from repro.kernels.config import BlockConfig
from repro.obs.events import emit as emit_event
from repro.obs.schema import CAT_TUNE_RUN, CAT_TUNE_TRIAL
from repro.obs.tracer import current_tracer, maybe_span
from repro.tuning.evaluator import (
    STATUS_QUARANTINED,
    STATUS_REJECTED_SIMULATED,
    STATUS_REJECTED_STATIC,
    SimTrialEvaluator,
    TrialEvaluator,
    TrialOutcome,
    batch_capable,
    record_trial,
)
from repro.tuning.exhaustive import feasible_configs
from repro.tuning.perfmodel import ModelInputs, PaperModel
from repro.tuning.result import TuneEntry, TuneResult
from repro.tuning.space import ParameterSpace

KernelBuilder = Callable[[BlockConfig], KernelPlan]


def model_based_tune(
    build: KernelBuilder,
    device: DeviceSpec,
    grid_shape: tuple[int, int, int],
    beta: float = 0.05,
    space: ParameterSpace | None = None,
    *,
    prefilter: bool = True,
    evaluator: TrialEvaluator | None = None,
) -> TuneResult:
    """Tune by executing only the model's top ``beta`` fraction.

    ``beta`` is a fraction in (0, 1]; the paper's default cutoff is 5%.
    The shortlist size N is always computed from the *full* feasible
    space; ``prefilter`` only replaces the simulator's launch-failure
    discovery with the equivalent static check, so the measured set and
    the winner are unchanged.  ``evaluator`` swaps the measurement
    backend (and then owns the prefilter decision).
    """
    if not 0.0 < beta <= 1.0:
        raise TuningError(f"beta must be in (0, 1], got {beta}")

    configs = feasible_configs(build, device, grid_shape, space)
    model = PaperModel(device)
    tracer = current_tracer()

    emit_event(
        "sweep.start", method="model", device=device.name,
        space_size=len(configs),
    )
    with maybe_span(
        tracer, f"model on {device.name}", CAT_TUNE_RUN,
        method="model", device=device.name, space_size=len(configs), beta=beta,
    ) as run_span:
        # Vectorized scoring pass: predict_batch mirrors predict() op for
        # op, so the scores — and the shortlist they rank — are
        # bit-identical to the historical per-config loop.
        inputs = [
            ModelInputs.from_plan(build(cfg), device, grid_shape)
            for cfg in configs
        ]
        scores = model.predict_batch(inputs)
        predictions: list[tuple[BlockConfig, float]] = [
            (cfg, float(score)) for cfg, score in zip(configs, scores)
        ]
        predictions.sort(key=lambda item: item[1], reverse=True)

        n = max(1, math.ceil(beta * len(configs)))
        shortlist = predictions[:n]

        ev = evaluator or SimTrialEvaluator(device, prefilter=prefilter)
        entries: list[TuneEntry] = []
        stats: dict[str, int] = {"rejected_static": 0, "rejected_simulated": 0}
        batch = batch_capable(ev)
        if batch is not None:
            outcomes = batch.measure_batch(
                build, [cfg for cfg, _ in shortlist], grid_shape
            )
            entries = _collect_shortlist(
                shortlist, outcomes, stats,
                build=build, device=device, grid_shape=grid_shape,
            )
            stats["jobs"] = batch.jobs
        else:
            entries = _measure_shortlist_serial(
                build, shortlist, device, grid_shape, ev, stats
            )
            # One inline worker: stats keep the batch-path shape so
            # archives/JSON output don't change with the backend.
            stats["jobs"] = 1
        if run_span is not None:
            run_span.args.update(
                shortlist=n, evaluated=len(entries), **stats
            )
    emit_event("sweep.finished", method="model", evaluated=len(entries))
    if not entries:
        raise TuningError(
            f"none of the model's top {n} candidates could be launched on "
            f"{device.name}"
        )
    entries.sort(key=lambda e: e.mpoints_per_s, reverse=True)
    return TuneResult(
        best=entries[0],
        entries=tuple(entries),
        evaluated=len(entries),
        space_size=len(configs),
        method="model",
        info=stats,
    )


def _measure_shortlist_serial(
    build: KernelBuilder,
    shortlist: list[tuple[BlockConfig, float]],
    device: DeviceSpec,
    grid_shape: tuple[int, int, int],
    ev: TrialEvaluator,
    stats: dict[str, int],
) -> list[TuneEntry]:
    """The historical one-config-at-a-time shortlist measurement."""
    tracer = current_tracer()
    entries: list[TuneEntry] = []
    for cfg, predicted in shortlist:
        plan = build(cfg)
        block = plan.block_workload(device, grid_shape)
        if ev.statically_rejected(block):
            stats["rejected_static"] += 1
            record_trial(
                TrialOutcome(config=cfg, status=STATUS_REJECTED_STATIC),
                build=build, device=device, grid_shape=grid_shape,
                predicted=predicted,
            )
            if tracer is not None:
                tracer.instant(
                    cfg.label(), CAT_TUNE_TRIAL, config=cfg.label(),
                    predicted_mpoints_per_s=predicted, rejected="static",
                )
                tracer.metrics.counter("tune.rejected_static").inc()
            continue
        with maybe_span(tracer, cfg.label(), CAT_TUNE_TRIAL,
                        config=cfg.label(),
                        predicted_mpoints_per_s=predicted) as sp:
            outcome = ev.measure(cfg, plan, grid_shape, block)
            record_trial(
                outcome, build=build, device=device, grid_shape=grid_shape,
                predicted=predicted,
            )
            if outcome.status == STATUS_REJECTED_SIMULATED:
                stats["rejected_simulated"] += 1
                if sp is not None:
                    sp.args["rejected"] = "simulated"
                    tracer.metrics.counter("tune.rejected_simulated").inc()
                continue
            if outcome.status == STATUS_QUARANTINED:
                stats["quarantined"] = stats.get("quarantined", 0) + 1
                if sp is not None:
                    sp.args["quarantined"] = True
                    sp.args["attempts"] = outcome.attempts
                    tracer.metrics.counter("tune.quarantined").inc()
                continue
            if sp is not None:
                sp.args["mpoints_per_s"] = outcome.mpoints_per_s
                tracer.metrics.counter("tune.trials").inc()
        entries.append(_shortlist_entry(cfg, predicted, outcome))
    return entries


def _collect_shortlist(
    shortlist: list[tuple[BlockConfig, float]],
    outcomes: list[TrialOutcome],
    stats: dict[str, int],
    *,
    build: KernelBuilder,
    device: DeviceSpec,
    grid_shape: tuple[int, int, int],
) -> list[TuneEntry]:
    """Batch-path bookkeeping over pre-measured shortlist outcomes.

    Same classification, tracing and stats as the serial loop (trial
    spans are near-zero; worker wall-clock lives on the ``tune.worker``
    lanes), so entries — and the winner — are path-independent.
    """
    tracer = current_tracer()
    entries: list[TuneEntry] = []
    for (cfg, predicted), outcome in zip(shortlist, outcomes):
        record_trial(
            outcome, build=build, device=device, grid_shape=grid_shape,
            predicted=predicted,
        )
        if outcome.status == STATUS_REJECTED_STATIC:
            stats["rejected_static"] += 1
            if tracer is not None:
                tracer.instant(
                    cfg.label(), CAT_TUNE_TRIAL, config=cfg.label(),
                    predicted_mpoints_per_s=predicted, rejected="static",
                )
                tracer.metrics.counter("tune.rejected_static").inc()
            continue
        with maybe_span(tracer, cfg.label(), CAT_TUNE_TRIAL,
                        config=cfg.label(),
                        predicted_mpoints_per_s=predicted) as sp:
            if outcome.status == STATUS_REJECTED_SIMULATED:
                stats["rejected_simulated"] += 1
                if sp is not None:
                    sp.args["rejected"] = "simulated"
                    tracer.metrics.counter("tune.rejected_simulated").inc()
                continue
            if outcome.status == STATUS_QUARANTINED:
                stats["quarantined"] = stats.get("quarantined", 0) + 1
                if sp is not None:
                    sp.args["quarantined"] = True
                    sp.args["attempts"] = outcome.attempts
                    tracer.metrics.counter("tune.quarantined").inc()
                continue
            if sp is not None:
                sp.args["mpoints_per_s"] = outcome.mpoints_per_s
                tracer.metrics.counter("tune.trials").inc()
        entries.append(_shortlist_entry(cfg, predicted, outcome))
    return entries


def _shortlist_entry(
    cfg: BlockConfig, predicted: float, outcome: TrialOutcome
) -> TuneEntry:
    return TuneEntry(
        config=cfg,
        mpoints_per_s=outcome.mpoints_per_s,
        predicted=predicted,
        info={
            k: outcome.info[k]
            for k in ("load_efficiency", "occupancy")
            if k in outcome.info
        },
    )
