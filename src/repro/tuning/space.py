"""The auto-tuner's parameter space (section IV-C).

The search runs over (TX, TY, RX, RY) with the paper's constraints:

 (i)   TX is a multiple of a half-warp (memory coalescing);
 (ii)  TX * TY is within the device's thread-per-block limit;
 (iii) the shared-memory buffer fits the per-SM limit;
 (iv)  TY * RY divides the vertical grid size (and we apply the analogous
       condition on TX * RX so no partial tiles exist).

Feasibility additionally requires that one block actually fits an SM
(register file); configurations that merely *spill* stay in the space —
they run, just slowly — matching how a real tuner encounters them.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.errors import ReproError, TuningError
from repro.gpusim.arch import HALF_WARP
from repro.gpusim.device import DeviceSpec
from repro.kernels.config import BlockConfig

#: Default candidate values, covering everything Table IV reports.
DEFAULT_TX = (16, 32, 64, 128, 256, 512)
DEFAULT_TY = (1, 2, 4, 8, 16, 32)
DEFAULT_RX = (1, 2, 4)
DEFAULT_RY = (1, 2, 4, 8)


@dataclass(frozen=True)
class ParameterSpace:
    """Candidate blocking factors plus the constraint context."""

    tx_values: tuple[int, ...] = DEFAULT_TX
    ty_values: tuple[int, ...] = DEFAULT_TY
    rx_values: tuple[int, ...] = DEFAULT_RX
    ry_values: tuple[int, ...] = DEFAULT_RY

    def signature(self) -> str:
        """Stable content hash of the candidate value tuples.

        This is the cache key component that keeps results tuned over
        *different* spaces from colliding: two spaces share a signature
        iff they enumerate identical (TX, TY, RX, RY) candidates.  The
        hash is process-independent (no ``hash()`` / ``PYTHONHASHSEED``
        dependence), so it is safe to persist in
        :class:`repro.tuning.cache.TuningCache` files.
        """
        payload = repr(
            (self.tx_values, self.ty_values, self.rx_values, self.ry_values)
        ).encode("ascii")
        return hashlib.sha256(payload).hexdigest()[:16]

    def raw_size(self) -> int:
        """Size of the unconstrained cross product."""
        return (
            len(self.tx_values)
            * len(self.ty_values)
            * len(self.rx_values)
            * len(self.ry_values)
        )

    def candidates(self) -> Iterator[BlockConfig]:
        """All cross-product configurations, unconstrained."""
        for tx in self.tx_values:
            for ty in self.ty_values:
                for rx in self.rx_values:
                    for ry in self.ry_values:
                        yield BlockConfig(tx=tx, ty=ty, rx=rx, ry=ry)

    def feasible(
        self,
        device: DeviceSpec,
        grid_shape: tuple[int, int, int],
        smem_bytes_of: Callable[[BlockConfig], int],
    ) -> list[BlockConfig]:
        """Configurations satisfying constraints (i)-(iv) on ``device``.

        ``smem_bytes_of(config)`` returns the kernel's shared-memory
        footprint for a candidate (it depends on the stencil radius, which
        the space does not know).
        """
        lx, ly, _lz = grid_shape
        out: list[BlockConfig] = []
        for cfg in self.candidates():
            if cfg.tx % HALF_WARP != 0:  # (i)
                continue
            if cfg.threads > device.max_threads_per_block:  # (ii)
                continue
            if ly % cfg.tile_y != 0 or cfg.tile_y > ly:  # (iv)
                continue
            if lx % cfg.tile_x != 0 or cfg.tile_x > lx:  # analogous on x
                continue
            try:
                if smem_bytes_of(cfg) > device.smem_per_sm:  # (iii)
                    continue
            except ReproError:
                continue
            out.append(cfg)
        if not out:
            raise TuningError(
                f"no feasible configuration for grid {grid_shape} on {device.name}"
            )
        return out


def default_space() -> ParameterSpace:
    """The space used by the paper-reproduction experiments."""
    return ParameterSpace()
