"""Operation-count accounting for Tables I and II.

Table I lists, for each stencil order, the computation-cell extent, memory
accesses per element and flops per element of the conventional
(forward-plane) formulation.  Table II contrasts the in-plane method's flop
count (8r + 1) with nvstencil's (7r + 1) at identical data-reference counts
(6r + 2).  The benchmark harness regenerates both tables from these
functions and cross-checks them against :class:`SymmetricStencil`'s derived
properties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StencilDefinitionError

#: The stencil orders evaluated throughout the paper (Tables I, II, IV;
#: Figs 7, 9, 10, 12).
PAPER_ORDERS: tuple[int, ...] = (2, 4, 6, 8, 10, 12)

#: Extended orders for the section IV-C crossover experiment ("speedups can
#: be achieved for up to 32nd order for SP stencils, and up to 16th order
#: for DP" on the C2070).
EXTENDED_ORDERS: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32, 36, 40)


def _radius(order: int) -> int:
    if order <= 0 or order % 2 != 0:
        raise StencilDefinitionError(
            f"stencil order must be a positive even integer, got {order}"
        )
    return order // 2


def extent(order: int) -> tuple[int, int, int]:
    """Computation-cell extent (2r+1)^3."""
    side = 2 * _radius(order) + 1
    return (side, side, side)


def mem_refs_per_point(order: int) -> int:
    """Memory accesses per element including the write: 6r + 2."""
    return 6 * _radius(order) + 2


def flops_forward(order: int) -> int:
    """Flops per element, forward-plane formulation: 7r + 1."""
    return 7 * _radius(order) + 1


def flops_inplane(order: int) -> int:
    """Flops per element, in-plane formulation: 8r + 1 (Eqns (3)+(5))."""
    return 8 * _radius(order) + 1


def redundant_corner_elems(order: int) -> int:
    """Extra elements the full-slice pattern loads per plane: 4r^2.

    Section III-C-1: the four tile corners are fetched although the
    symmetric stencil never reads them; the count depends only on the
    radius, not the block size, and drives the speedup decline at high
    orders (section IV-C).
    """
    r = _radius(order)
    return 4 * r * r


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    order: int
    extent: tuple[int, int, int]
    mem_accesses: int
    flops: int


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II."""

    order: int
    data_refs: int
    flops_inplane: int
    flops_nvstencil: int


def table1_row(order: int) -> Table1Row:
    """Regenerate one Table I row from first principles."""
    return Table1Row(
        order=order,
        extent=extent(order),
        mem_accesses=mem_refs_per_point(order),
        flops=flops_forward(order),
    )


def table2_row(order: int) -> Table2Row:
    """Regenerate one Table II row from first principles."""
    return Table2Row(
        order=order,
        data_refs=mem_refs_per_point(order),
        flops_inplane=flops_inplane(order),
        flops_nvstencil=flops_forward(order),
    )


#: Values printed in the paper, used by tests to confirm our accounting
#: reproduces the published tables exactly.
PAPER_TABLE1: dict[int, tuple[int, int]] = {
    2: (8, 8),
    4: (14, 15),
    6: (20, 22),
    8: (26, 29),
    10: (32, 36),
    12: (38, 43),
}

PAPER_TABLE2: dict[int, tuple[int, int, int]] = {
    2: (8, 9, 8),
    4: (14, 17, 15),
    6: (20, 25, 22),
    8: (26, 33, 29),
    10: (32, 41, 36),
    12: (38, 49, 43),
}
