"""Direct NumPy reference evaluation — the correctness oracle.

Every kernel variant's :meth:`execute` is validated against these
straightforward, unstructured implementations, mirroring the paper's own
methodology ("The output of each kernel is verified to be consistent with
the result from the CPU-computed stencil output", section IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.stencils.boundary import (
    check_grid,
    interior,
    shifted_interior,
    with_boundary_from,
)
from repro.stencils.expr import StencilExpr
from repro.stencils.spec import SymmetricStencil


def apply_symmetric(spec: SymmetricStencil, grid: np.ndarray) -> np.ndarray:
    """One Jacobi sweep of the symmetric stencil (Eqn (1)).

    The interior (where the full extent fits) is computed; the boundary
    ring of width ``r`` keeps the input values.  Accumulation follows the
    forward-plane grouping — centre term, then one ring at a time — in the
    grid's own dtype, matching the arithmetic order the kernels use closely
    enough for the shared tolerance used in tests.
    """
    r = spec.radius
    ext = (r, r, r)
    check_grid(grid, ext)

    acc = spec.coefficients[0] * grid[interior(ext)]
    for m in range(1, r + 1):
        c = spec.coefficients[m]
        ring = (
            grid[shifted_interior((-m, 0, 0), ext)]
            + grid[shifted_interior((m, 0, 0), ext)]
            + grid[shifted_interior((0, -m, 0), ext)]
            + grid[shifted_interior((0, m, 0), ext)]
            + grid[shifted_interior((0, 0, -m), ext)]
            + grid[shifted_interior((0, 0, m), ext)]
        )
        acc = acc + c * ring
    return with_boundary_from(grid, acc.astype(grid.dtype, copy=False), ext)


def apply_expr(expr: StencilExpr, grids: list[np.ndarray]) -> list[np.ndarray]:
    """One sweep of a general stencil expression over its input grids.

    Returns one output grid per :class:`~repro.stencils.expr.OutputSpec`.
    All grids must share a shape; each output's interior is determined by
    the *stencil-wide* radius so every output of a multi-output stencil
    (e.g. Grad) has a consistent computed region.
    """
    if len(grids) != expr.n_grids:
        raise ValueError(
            f"{expr.name} needs {expr.n_grids} input grids, got {len(grids)}"
        )
    shape = grids[0].shape
    for g in grids[1:]:
        if g.shape != shape:
            raise ValueError("all input grids must share a shape")

    r = expr.radius()
    ext = (r, r, r)
    check_grid(grids[0], ext)

    outputs: list[np.ndarray] = []
    for out_spec in expr.outputs:
        acc = np.zeros_like(grids[0][interior(ext)], dtype=np.float64)
        for tap in out_spec.taps:
            term = grids[tap.grid][shifted_interior(tap.offset, ext)]
            if tap.coeff_grid is not None:
                acc += grids[tap.coeff_grid][interior(ext)] * term
            else:
                acc += tap.coeff * term
        # Boundary convention for expression outputs: the ring keeps the
        # values of the output's first tapped grid (its "primary" input).
        base = grids[out_spec.taps[0].grid]
        full = with_boundary_from(
            base.astype(grids[0].dtype, copy=True),
            acc.astype(grids[0].dtype, copy=False),
            ext,
        )
        outputs.append(full)
    return outputs


def iterate_symmetric(
    spec: SymmetricStencil, initial: np.ndarray, steps: int
) -> np.ndarray:
    """Reference iterative loop (the paper's Fig 1) for ``steps`` sweeps."""
    grid = initial
    for _ in range(steps):
        grid = apply_symmetric(spec, grid)
    return grid
