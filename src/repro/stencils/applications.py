"""The six application stencils of section V (Table V).

Reconstructed from the paper's descriptions and the Patus benchmark suite
it cites (ref. [17]):

* **Div** — 3D discrete divergence: maps a vector field (3 grids) to a
  scalar via central differences.  3 in / 1 out.
* **Grad** — 3D discrete gradient: maps a scalar to a vector field.
  1 in / 3 out.
* **Hyperthermia** — Pennes bioheat update used in hyperthermia cancer
  treatment planning: a 7-point stencil on the temperature volume where
  *every* weight is a spatially-varying coefficient volume, plus a source
  volume and a perfusion volume — 9 coefficient grids out of 10 inputs,
  which is exactly why section V-A finds the in-plane gain "offset by the
  large amount of coefficient data".  10 in / 1 out.
* **Upstream** — upwind-biased advection operator from weather-forecast
  code: an asymmetric radius-2 stencil.  1 in / 1 out.
* **Laplacian** — 3D discrete Laplacian (7-point).  1 in / 1 out.
* **Poisson** — one Jacobi relaxation step for the 3D Poisson equation
  lap(u) = f.  2 in / 1 out.
"""

from __future__ import annotations

from repro.stencils.expr import OutputSpec, StencilExpr, Tap

#: Grid spacing baked into the difference operators (unit lattice).
_H = 1.0
_INV2H = 1.0 / (2.0 * _H)
_INVH2 = 1.0 / (_H * _H)


def divergence() -> StencilExpr:
    """Div: out = dU/dx + dV/dy + dW/dz, central differences.

    Inputs: grid 0 = U, 1 = V, 2 = W.
    """
    taps = (
        Tap(grid=0, offset=(1, 0, 0), coeff=_INV2H),
        Tap(grid=0, offset=(-1, 0, 0), coeff=-_INV2H),
        Tap(grid=1, offset=(0, 1, 0), coeff=_INV2H),
        Tap(grid=1, offset=(0, -1, 0), coeff=-_INV2H),
        Tap(grid=2, offset=(0, 0, 1), coeff=_INV2H),
        Tap(grid=2, offset=(0, 0, -1), coeff=-_INV2H),
    )
    return StencilExpr(
        name="div", n_grids=3, outputs=(OutputSpec(name="div", taps=taps),)
    )


def gradient() -> StencilExpr:
    """Grad: (dF/dx, dF/dy, dF/dz) from one scalar field."""
    def axis_out(axis: int, name: str) -> OutputSpec:
        plus = [0, 0, 0]
        plus[axis] = 1
        minus = [0, 0, 0]
        minus[axis] = -1
        return OutputSpec(
            name=name,
            taps=(
                Tap(grid=0, offset=(plus[0], plus[1], plus[2]), coeff=_INV2H),
                Tap(grid=0, offset=(minus[0], minus[1], minus[2]), coeff=-_INV2H),
            ),
        )

    return StencilExpr(
        name="grad",
        n_grids=1,
        outputs=(axis_out(0, "gx"), axis_out(1, "gy"), axis_out(2, "gz")),
    )


def laplacian() -> StencilExpr:
    """7-point 3D discrete Laplacian: out = (sum of 6 neighbours - 6u)/h^2."""
    taps = [Tap(grid=0, offset=(0, 0, 0), coeff=-6.0 * _INVH2)]
    for axis in range(3):
        for sign in (-1, 1):
            off = [0, 0, 0]
            off[axis] = sign
            taps.append(Tap(grid=0, offset=(off[0], off[1], off[2]), coeff=_INVH2))
    return StencilExpr(
        name="laplacian",
        n_grids=1,
        outputs=(OutputSpec(name="lap", taps=tuple(taps)),),
    )


def poisson() -> StencilExpr:
    """One Jacobi step for the discrete Poisson equation lap(u) = f:
    u' = (sum of the six neighbours - h^2 f) / 6.

    Inputs: grid 0 = u, grid 1 = f.
    """
    sixth = 1.0 / 6.0
    # u taps first: the output's primary grid is u, so the (untouched)
    # boundary ring keeps u's boundary values — the Dirichlet data the
    # Jacobi iteration needs.
    taps = []
    for axis in range(3):
        for sign in (-1, 1):
            off = [0, 0, 0]
            off[axis] = sign
            taps.append(Tap(grid=0, offset=(off[0], off[1], off[2]), coeff=sixth))
    taps.append(Tap(grid=1, offset=(0, 0, 0), coeff=-(_H * _H) * sixth))
    return StencilExpr(
        name="poisson",
        n_grids=2,
        outputs=(OutputSpec(name="u_next", taps=tuple(taps)),),
    )


def hyperthermia() -> StencilExpr:
    """Pennes bioheat update with spatially-varying tissue coefficients.

    Inputs: grid 0 = temperature T; grids 1..7 = the centre weight and six
    directional conduction weights (tissue-dependent volumes); grid 8 =
    absorbed-power source; grid 9 = blood-perfusion coefficient (multiplies
    T at the centre).  9 of the 10 inputs are coefficient volumes, matching
    the paper's "9 out of the 11 grids are used for spatially varying
    coefficients" accounting (10 in + 1 out = 11 grids touched per sweep).
    """
    taps = [
        Tap(grid=0, offset=(0, 0, 0), coeff_grid=1),
        Tap(grid=0, offset=(-1, 0, 0), coeff_grid=2),
        Tap(grid=0, offset=(1, 0, 0), coeff_grid=3),
        Tap(grid=0, offset=(0, -1, 0), coeff_grid=4),
        Tap(grid=0, offset=(0, 1, 0), coeff_grid=5),
        Tap(grid=0, offset=(0, 0, -1), coeff_grid=6),
        Tap(grid=0, offset=(0, 0, 1), coeff_grid=7),
        Tap(grid=8, offset=(0, 0, 0), coeff=1.0),
        Tap(grid=0, offset=(0, 0, 0), coeff_grid=9),
    ]
    return StencilExpr(
        name="hyperthermia",
        n_grids=10,
        outputs=(OutputSpec(name="t_next", taps=tuple(taps)),),
    )


def upstream() -> StencilExpr:
    """Upwind-biased advection from weather-forecast code (asymmetric, r=2).

    Third-order upwind differences biased against the flow direction on
    each axis: per axis the taps reach two cells upwind and one cell
    downwind, so the x/y/z halo extents are asymmetric — the property that
    distinguishes this benchmark from the symmetric family.
    """
    # 3rd-order upwind weights for du/dx with positive advection speed:
    # (2u[i+1] + 3u[i] - 6u[i-1] + u[i-2]) / (6h)
    w_down, w_c, w_up1, w_up2 = 2.0 / 6.0, 3.0 / 6.0, -6.0 / 6.0, 1.0 / 6.0
    advection = (0.08, 0.05, 0.03)  # per-axis advection speeds * dt
    taps = [Tap(grid=0, offset=(0, 0, 0), coeff=1.0)]
    for axis, speed in enumerate(advection):
        for dist, w in ((1, w_down), (0, w_c), (-1, w_up1), (-2, w_up2)):
            off = [0, 0, 0]
            off[axis] = dist
            taps.append(
                Tap(grid=0, offset=(off[0], off[1], off[2]), coeff=-speed * w)
            )
    return StencilExpr(
        name="upstream",
        n_grids=1,
        outputs=(OutputSpec(name="u_next", taps=tuple(taps)),),
    )


#: Registry in the paper's Table V order.
APPLICATIONS: dict[str, StencilExpr] = {
    expr.name: expr
    for expr in (
        divergence(),
        gradient(),
        hyperthermia(),
        upstream(),
        laplacian(),
        poisson(),
    )
}

#: Table V of the paper: (inputs, outputs) per application.
PAPER_TABLE5: dict[str, tuple[int, int]] = {
    "div": (3, 1),
    "grad": (1, 3),
    "hyperthermia": (10, 1),
    "upstream": (1, 1),
    "laplacian": (1, 1),
    "poisson": (2, 1),
}
