"""Symmetric nearest-neighbour stencils — the paper's Eqn (1) family.

A stencil of order ``2r`` (radius ``r``) computes

    out[i,j,k] = c0 * in[i,j,k]
               + sum_{m=1..r} c_m * ( in[i+-m, j, k]
                                    + in[i, j+-m, k]
                                    + in[i, j, k+-m] )

using ``6r + 1`` neighbours within a ``(2r+1)^3`` extent, ``6r + 2`` memory
references per element (including the write) and ``7r + 1`` flops with the
forward-plane formulation or ``8r + 1`` with the in-plane formulation
(Tables I and II).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StencilDefinitionError


@dataclass(frozen=True)
class SymmetricStencil:
    """One symmetric Jacobi stencil.

    Attributes
    ----------
    order:
        Stencil order ``2r`` (must be even and positive).
    coefficients:
        ``(c0, c1, ..., cr)`` — the centre weight followed by one weight per
        ring; each ring weight multiplies all six neighbours at that
        distance, as in Eqn (1).
    """

    order: int
    coefficients: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.order <= 0 or self.order % 2 != 0:
            raise StencilDefinitionError(
                f"stencil order must be a positive even integer, got {self.order}"
            )
        if len(self.coefficients) != self.radius + 1:
            raise StencilDefinitionError(
                f"order-{self.order} stencil needs {self.radius + 1} coefficients "
                f"(c0..c{self.radius}), got {len(self.coefficients)}",
                rule="DSL-ARITY",
            )

    @property
    def radius(self) -> int:
        """Stencil radius r = order / 2."""
        return self.order // 2

    @property
    def extent(self) -> tuple[int, int, int]:
        """Computation-cell extent, (2r+1)^3 (Table I)."""
        side = 2 * self.radius + 1
        return (side, side, side)

    @property
    def points(self) -> int:
        """Neighbours used per output element: 6r + 1."""
        return 6 * self.radius + 1

    @property
    def mem_refs_per_point(self) -> int:
        """Memory references per element, incl. the write: 6r + 2."""
        return 6 * self.radius + 2

    @property
    def flops_forward(self) -> int:
        """Flops per element with the forward-plane formulation: 7r + 1."""
        return 7 * self.radius + 1

    @property
    def flops_inplane(self) -> int:
        """Flops per element with the in-plane formulation: 8r + 1."""
        return 8 * self.radius + 1

    def min_grid_shape(self) -> tuple[int, int, int]:
        """Smallest grid on which any interior point exists."""
        side = 2 * self.radius + 1
        return (side, side, side)


def default_coefficients(radius: int) -> tuple[float, ...]:
    """Diffusion-flavoured weights that sum (over all taps) to one.

    ``c0`` plus ``6 * sum(c_m)`` equals 1, with ring weights decaying as
    ``1/m^2`` — a stable Jacobi smoothing stencil at every order, so
    iterative examples don't blow up and correctness comparisons stay
    well-conditioned.
    """
    if radius <= 0:
        raise StencilDefinitionError(f"radius must be positive, got {radius}")
    raw = [1.0 / (m * m) for m in range(1, radius + 1)]
    scale = 0.5 / (6.0 * sum(raw))
    rings = tuple(w * scale for w in raw)
    c0 = 1.0 - 6.0 * sum(rings)
    return (c0, *rings)


def symmetric(order: int, coefficients: tuple[float, ...] | None = None) -> SymmetricStencil:
    """Build an order-``2r`` symmetric stencil (default diffusion weights)."""
    if order <= 0 or order % 2 != 0:
        raise StencilDefinitionError(
            f"stencil order must be a positive even integer, got {order}"
        )
    coeffs = coefficients if coefficients is not None else default_coefficients(order // 2)
    return SymmetricStencil(order=order, coefficients=tuple(float(c) for c in coeffs))


def dtype_for(name: str) -> np.dtype:
    """Map ``"sp"``/``"dp"`` (or NumPy names) to the element dtype."""
    key = name.lower()
    if key in ("sp", "float32", "f4", "single"):
        return np.dtype(np.float32)
    if key in ("dp", "float64", "f8", "double"):
        return np.dtype(np.float64)
    raise StencilDefinitionError(f"unknown precision {name!r}; use 'sp' or 'dp'")
