"""A small textual stencil DSL, compiled to :class:`StencilExpr`.

The auto-tuning frameworks the paper builds on (Patus [17], Physis [26])
accept stencils as small domain-specific programs.  This parser provides
the same front door for this library: a stencil definition is a set of
assignments over named grids with constant-offset indices,

    out[i,j,k] = 0.25 * u[i-1,j,k] + 0.25 * u[i+1,j,k]
               + c[i,j,k] * u[i,j,k] - 2.0 * f[i,j,k]

with the rules:

* index variables are exactly ``i, j, k`` (x, y, z), each optionally
  offset by an integer literal (``i-2``, ``k+1``);
* every term is ``[coeff *] grid[indices]`` or
  ``grid_a[i,j,k] * grid_b[indices]`` — a centre-sampled coefficient grid
  times a tap (Hyperthermia-style);
* grids named on the left become outputs, everything else inputs;
* ``+``/``-`` combine terms; numeric literals fold into coefficients.

``parse_stencil`` returns the :class:`StencilExpr` plus the input-grid
name order, so callers know how to pass arrays to the kernels.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import StencilDefinitionError
from repro.stencils.expr import OutputSpec, StencilExpr, Tap

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_]\w*)"
    r"|(?P<op>[\[\]+\-*,=()])"
    r")"
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if not m or m.start() != pos:
            raise StencilDefinitionError(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        kind = m.lastgroup or "op"
        tokens.append(_Token(kind=kind, text=m.group().strip(), pos=pos))
        pos = m.end()
    return tokens


@dataclass(frozen=True)
class _Ref:
    """A parsed grid reference ``name[i+dx, j+dy, k+dz]``."""

    grid: str
    offset: tuple[int, int, int]

    @property
    def is_centre(self) -> bool:
        return self.offset == (0, 0, 0)


@dataclass(frozen=True)
class _Term:
    """One additive term: constant x (coeff grid)? x tap.

    ``appearance`` preserves the textual order of the grid names so input
    ordering follows the source.
    """

    constant: float
    coeff_grid: str | None
    ref: _Ref
    appearance: tuple[str, ...] = ()


class _Parser:
    """Recursive-descent parser for one assignment's right-hand side."""

    _AXES = {"i": 0, "j": 1, "k": 2}

    def __init__(self, tokens: list[_Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.idx = 0

    # -- token helpers -------------------------------------------------
    def peek(self) -> _Token | None:
        return self.tokens[self.idx] if self.idx < len(self.tokens) else None

    def take(self, kind: str | None = None, text: str | None = None) -> _Token:
        tok = self.peek()
        if tok is None:
            raise StencilDefinitionError(
                f"unexpected end of stencil expression: {self.source!r}"
            )
        if kind and tok.kind != kind or text and tok.text != text:
            raise StencilDefinitionError(
                f"expected {text or kind} at position {tok.pos}, got {tok.text!r}"
            )
        self.idx += 1
        return tok

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.text == text

    # -- grammar -------------------------------------------------------
    def parse_ref(self) -> _Ref:
        name = self.take("name").text
        self.take(text="[")
        offsets = [0, 0, 0]
        for n in range(3):
            axis_tok = self.take("name")
            axis = self._AXES.get(axis_tok.text)
            if axis != n:
                raise StencilDefinitionError(
                    f"indices must be i, j, k in order; got {axis_tok.text!r} "
                    f"at position {axis_tok.pos}"
                )
            if self.at("+") or self.at("-"):
                sign = -1 if self.take().text == "-" else 1
                lit = self.take("number")
                if "." in lit.text or "e" in lit.text.lower():
                    raise StencilDefinitionError(
                        f"index offsets must be integers, got {lit.text!r}"
                    )
                offsets[axis] = sign * int(lit.text)
            if n < 2:
                self.take(text=",")
        self.take(text="]")
        return _Ref(grid=name, offset=(offsets[0], offsets[1], offsets[2]))

    def parse_term(self) -> _Term:
        constant = 1.0
        factors: list[_Ref] = []
        while True:
            tok = self.peek()
            if tok is None:
                break
            if tok.kind == "number":
                constant *= float(self.take("number").text)
            elif tok.kind == "name":
                factors.append(self.parse_ref())
            else:
                raise StencilDefinitionError(
                    f"expected a factor at position {tok.pos}, got {tok.text!r}"
                )
            if self.at("*"):
                self.take(text="*")
                continue
            break

        if not factors:
            raise StencilDefinitionError(
                "every term must reference a grid (pure constants are not "
                "stencil taps)"
            )
        appearance = tuple(f.grid for f in factors)
        if len(factors) == 1:
            return _Term(
                constant=constant, coeff_grid=None, ref=factors[0],
                appearance=appearance,
            )
        if len(factors) == 2:
            centre = [f for f in factors if f.is_centre]
            tap = [f for f in factors if f is not (centre[0] if centre else None)]
            if not centre:
                raise StencilDefinitionError(
                    "a grid-times-grid term needs one centre-sampled "
                    "coefficient grid (e.g. c[i,j,k] * u[i-1,j,k])"
                )
            return _Term(
                constant=constant, coeff_grid=centre[0].grid, ref=tap[0],
                appearance=appearance,
            )
        raise StencilDefinitionError(
            "terms may multiply at most two grids (coefficient x tap)"
        )

    def parse_sum(self) -> list[_Term]:
        terms: list[_Term] = []
        sign = 1.0
        if self.at("-"):
            self.take()
            sign = -1.0
        elif self.at("+"):
            self.take()
        while True:
            term = self.parse_term()
            terms.append(
                _Term(
                    constant=sign * term.constant,
                    coeff_grid=term.coeff_grid,
                    ref=term.ref,
                    appearance=term.appearance,
                )
            )
            tok = self.peek()
            if tok is None:
                break
            if tok.text in "+-":
                sign = -1.0 if self.take().text == "-" else 1.0
                continue
            raise StencilDefinitionError(
                f"expected + or - at position {tok.pos}, got {tok.text!r}"
            )
        return terms


def parse_stencil(source: str, name: str = "parsed") -> tuple[StencilExpr, list[str]]:
    """Parse a stencil definition into a :class:`StencilExpr`.

    ``source`` is one or more assignments separated by newlines or
    semicolons.  Returns the expression and the ordered input-grid names
    (the order arrays must be passed to kernels and :func:`apply_expr`).
    """
    # Statements split on ';' and on newlines, but a line without '=' is a
    # continuation of the previous statement (multi-line definitions).
    statements: list[str] = []
    for piece in re.split(r"[;\n]", source):
        piece = piece.strip()
        if not piece:
            continue
        if "=" in piece or not statements:
            statements.append(piece)
        else:
            statements[-1] += " " + piece
    if not statements:
        raise StencilDefinitionError("empty stencil definition")

    parsed: list[tuple[_Ref, list[_Term]]] = []
    for stmt in statements:
        if "=" not in stmt:
            raise StencilDefinitionError(f"statement has no '=': {stmt!r}")
        lhs_text, rhs_text = stmt.split("=", 1)
        lhs_tokens = _tokenize(lhs_text)
        lhs = _Parser(lhs_tokens, stmt).parse_ref()
        if not lhs.is_centre:
            raise StencilDefinitionError(
                f"output reference must be centred: {lhs_text.strip()!r}"
            )
        rhs = _Parser(_tokenize(rhs_text), stmt).parse_sum()
        parsed.append((lhs, rhs))

    output_names = [lhs.grid for lhs, _ in parsed]
    if len(set(output_names)) != len(output_names):
        raise StencilDefinitionError("an output grid is assigned twice")

    # Inputs are ordered by first textual appearance.
    input_names: list[str] = []
    for _, terms in parsed:
        for term in terms:
            for candidate in term.appearance:
                if candidate and candidate not in input_names:
                    if candidate in output_names:
                        raise StencilDefinitionError(
                            f"grid {candidate!r} is both input and output "
                            "(Jacobi stencils are double-buffered)"
                        )
                    input_names.append(candidate)

    index = {grid: g for g, grid in enumerate(input_names)}
    outputs = []
    for lhs, terms in parsed:
        taps = tuple(
            Tap(
                grid=index[t.ref.grid],
                offset=t.ref.offset,
                coeff=t.constant if t.coeff_grid is None else None,
                coeff_grid=index[t.coeff_grid] if t.coeff_grid else None,
            )
            if t.coeff_grid is None or t.constant == 1.0
            else _scaled_coeff_tap(t, index)
            for t in terms
        )
        outputs.append(OutputSpec(name=lhs.grid, taps=taps))

    expr = StencilExpr(name=name, n_grids=len(input_names), outputs=tuple(outputs))
    return expr, input_names


def _scaled_coeff_tap(term: _Term, index: dict[str, int]) -> Tap:
    """Coefficient-grid taps cannot carry an extra constant factor."""
    raise StencilDefinitionError(
        "a coefficient-grid term cannot also carry a constant factor "
        f"(fold {term.constant!r} into the coefficient volume instead)"
    )
