"""Stencil definitions: symmetric Jacobi kernels and application stencils.

* :mod:`repro.stencils.spec` — the paper's Eqn (1) family: symmetric,
  nearest-neighbour 3D stencils of order 2r.
* :mod:`repro.stencils.expr` — general multi-grid stencil expressions
  (taps with constant or spatially-varying coefficients) used for the
  application benchmarks of section V.
* :mod:`repro.stencils.catalog` — Table I / Table II accounting.
* :mod:`repro.stencils.applications` — Div, Grad, Hyperthermia, Upstream,
  Laplacian and Poisson (Table V).
* :mod:`repro.stencils.reference` — direct NumPy evaluation used as the
  correctness oracle for every kernel variant.
"""

from repro.stencils.spec import SymmetricStencil, symmetric
from repro.stencils.expr import Tap, OutputSpec, StencilExpr
from repro.stencils.catalog import (
    PAPER_ORDERS,
    table1_row,
    table2_row,
    mem_refs_per_point,
    flops_forward,
    flops_inplane,
)
from repro.stencils.reference import apply_symmetric, apply_expr
from repro.stencils.parser import parse_stencil
from repro.stencils.applications import (
    APPLICATIONS,
    divergence,
    gradient,
    hyperthermia,
    upstream,
    laplacian,
    poisson,
)

__all__ = [
    "SymmetricStencil",
    "symmetric",
    "Tap",
    "OutputSpec",
    "StencilExpr",
    "PAPER_ORDERS",
    "table1_row",
    "table2_row",
    "mem_refs_per_point",
    "flops_forward",
    "flops_inplane",
    "apply_symmetric",
    "apply_expr",
    "parse_stencil",
    "APPLICATIONS",
    "divergence",
    "gradient",
    "hyperthermia",
    "upstream",
    "laplacian",
    "poisson",
]
