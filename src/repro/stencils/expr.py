"""General multi-grid stencil expressions.

The application stencils of the paper's section V differ from Eqn (1) in
the number of input/output grids (Table V), in asymmetry (Upstream), and in
spatially-varying coefficients (Hyperthermia).  A :class:`StencilExpr`
captures all of that as a set of *taps*: each tap reads one input grid at a
constant offset and multiplies it either by a constant coefficient or by a
coefficient grid sampled at the centre point.

The kernel layer derives everything it needs mechanically from the taps:
per-grid halo extents (which grids need merged-halo loading), the z-extent
(which grids participate in the forward/in-plane register pipeline), and
flop counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StencilDefinitionError

Offset = tuple[int, int, int]


@dataclass(frozen=True)
class Tap:
    """One term of an output expression: ``coeff * grid[x+dx, y+dy, z+dz]``.

    Exactly one of ``coeff`` (compile-time constant) or ``coeff_grid``
    (index of a spatially-varying coefficient volume, sampled at the output
    point) must be given.
    """

    grid: int
    offset: Offset
    coeff: float | None = None
    coeff_grid: int | None = None

    def __post_init__(self) -> None:
        if self.grid < 0:
            raise StencilDefinitionError(f"tap grid index must be >= 0, got {self.grid}")
        if len(self.offset) != 3:
            raise StencilDefinitionError(f"tap offset must be 3D, got {self.offset}")
        if (self.coeff is None) == (self.coeff_grid is None):
            raise StencilDefinitionError(
                "tap needs exactly one of coeff / coeff_grid"
            )
        if self.coeff_grid is not None and self.coeff_grid < 0:
            raise StencilDefinitionError("coeff_grid index must be >= 0")


@dataclass(frozen=True)
class OutputSpec:
    """One output grid: a sum of taps."""

    name: str
    taps: tuple[Tap, ...]

    def __post_init__(self) -> None:
        if not self.taps:
            raise StencilDefinitionError(f"output {self.name!r} has no taps")


@dataclass(frozen=True)
class StencilExpr:
    """A complete application stencil.

    Attributes
    ----------
    name:
        Identifier used by the harness (matches the paper's Table V names).
    n_grids:
        Number of input grids; taps and coeff_grids index into [0, n_grids).
    outputs:
        One :class:`OutputSpec` per output grid.
    """

    name: str
    n_grids: int
    outputs: tuple[OutputSpec, ...]

    def __post_init__(self) -> None:
        if self.n_grids <= 0:
            raise StencilDefinitionError("stencil needs at least one input grid")
        if not self.outputs:
            raise StencilDefinitionError("stencil needs at least one output")
        for out in self.outputs:
            for tap in out.taps:
                if tap.grid >= self.n_grids:
                    raise StencilDefinitionError(
                        f"output {out.name!r} taps grid {tap.grid}, but the "
                        f"stencil declares only {self.n_grids} inputs",
                        rule="DSL-UNDEF-GRID",
                    )
                if tap.coeff_grid is not None and tap.coeff_grid >= self.n_grids:
                    raise StencilDefinitionError(
                        f"output {out.name!r} uses coeff grid {tap.coeff_grid}, "
                        f"but the stencil declares only {self.n_grids} inputs",
                        rule="DSL-UNDEF-GRID",
                    )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    def all_taps(self) -> list[Tap]:
        """Every tap across all outputs."""
        return [tap for out in self.outputs for tap in out.taps]

    def halo_extent(self, grid: int) -> Offset:
        """Maximum |offset| per axis among taps reading ``grid``.

        Coefficient-grid sampling is always at the centre, so a pure
        coefficient volume has extent (0, 0, 0) and never needs halos —
        exactly why Hyperthermia's nine coefficient volumes dilute the
        in-plane method's advantage (section V-A).
        """
        ext = [0, 0, 0]
        for tap in self.all_taps():
            if tap.grid == grid:
                for axis in range(3):
                    ext[axis] = max(ext[axis], abs(tap.offset[axis]))
        return (ext[0], ext[1], ext[2])

    def radius(self) -> int:
        """Maximum halo extent over all grids and axes."""
        return max(
            (max(self.halo_extent(g)) for g in range(self.n_grids)), default=0
        )

    def z_extent(self, grid: int) -> tuple[int, int]:
        """(max backward, max forward) z reach of taps on ``grid``."""
        back = fwd = 0
        for tap in self.all_taps():
            if tap.grid == grid:
                back = max(back, -tap.offset[2])
                fwd = max(fwd, tap.offset[2])
        return (back, fwd)

    def stenciled_grids(self) -> list[int]:
        """Grids read with at least one non-centre tap."""
        return [
            g for g in range(self.n_grids) if self.halo_extent(g) != (0, 0, 0)
        ]

    def coefficient_grids(self) -> list[int]:
        """Grids used only at the centre (coefficient volumes / sources)."""
        used = {t.grid for t in self.all_taps()}
        used.update(t.coeff_grid for t in self.all_taps() if t.coeff_grid is not None)
        return [
            g
            for g in sorted(used)
            if self.halo_extent(g) == (0, 0, 0)
        ]

    def flops_per_point(self) -> int:
        """Flops per output point: one multiply-add per tap, plus the extra
        accumulate per tap beyond the first of each output."""
        total = 0
        for out in self.outputs:
            total += 2 * len(out.taps) - 1
        return total

    def mem_refs_per_point(self) -> int:
        """Memory references per point: distinct (grid, offset) reads,
        centre-sampled coefficient grids, plus one write per output."""
        reads = {(t.grid, t.offset) for t in self.all_taps()}
        coeffs = {t.coeff_grid for t in self.all_taps() if t.coeff_grid is not None}
        return len(reads) + len(coeffs) + len(self.outputs)


def symmetric_expr(order: int, coefficients: tuple[float, ...], name: str = "") -> StencilExpr:
    """Lower a symmetric Eqn (1) stencil into the tap representation.

    Used by property tests to check that the general-expression evaluator
    agrees with the specialised symmetric reference.
    """
    radius = order // 2
    taps: list[Tap] = [Tap(grid=0, offset=(0, 0, 0), coeff=coefficients[0])]
    for m in range(1, radius + 1):
        c = coefficients[m]
        for axis in range(3):
            for sign in (-m, m):
                off = [0, 0, 0]
                off[axis] = sign
                taps.append(Tap(grid=0, offset=(off[0], off[1], off[2]), coeff=c))
    return StencilExpr(
        name=name or f"symmetric{order}",
        n_grids=1,
        outputs=(OutputSpec(name="out", taps=tuple(taps)),),
    )
