"""Boundary handling shared by reference and kernel execution.

Array convention used throughout the library: grids are indexed
``grid[z, y, x]`` so the x axis is contiguous in memory (the coalescing
axis), while tap offsets and extents are written in ``(dx, dy, dz)`` order
to match the paper's (i, j, k) notation.  The helpers here own that
mapping so no other module repeats it.

The paper's kernels (like the Nvidia FDTD3d sample they baseline against)
compute only interior points where the full stencil extent is available;
the boundary ring of width ``r`` per axis keeps its input values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridShapeError

#: Halo extent in (ex, ey, ez) order.
Extent = tuple[int, int, int]


def check_grid(grid: np.ndarray, extent: Extent) -> None:
    """Validate that ``grid`` ([z, y, x]) is 3D and fits ``extent`` halos."""
    if grid.ndim != 3:
        raise GridShapeError(f"expected a 3D grid, got shape {grid.shape}")
    ex, ey, ez = extent
    lz, ly, lx = grid.shape
    for axis_name, size, ext in (("x", lx, ex), ("y", ly, ey), ("z", lz, ez)):
        if size < 2 * ext + 1:
            raise GridShapeError(
                f"grid {axis_name} axis has size {size}, needs >= {2 * ext + 1} "
                f"for halo extent {ext}"
            )


def _axis_slice(ext: int, off: int = 0) -> slice:
    if abs(off) > ext:
        raise GridShapeError(f"tap offset {off} exceeds halo extent {ext}")
    start = ext + off
    stop = -ext + off
    return slice(start, stop if stop != 0 else None)


def interior(extent: Extent) -> tuple[slice, slice, slice]:
    """Slices selecting the computed interior of a [z, y, x] grid."""
    ex, ey, ez = extent
    return (_axis_slice(ez), _axis_slice(ey), _axis_slice(ex))


def shifted_interior(
    offset: tuple[int, int, int], extent: Extent
) -> tuple[slice, slice, slice]:
    """Slices selecting the interior shifted by ``offset`` = (dx, dy, dz).

    Pairing ``grid[shifted_interior(off, ext)]`` with ``out[interior(ext)]``
    evaluates one tap without copying: both views have the interior shape.
    """
    dx, dy, dz = offset
    ex, ey, ez = extent
    return (_axis_slice(ez, dz), _axis_slice(ey, dy), _axis_slice(ex, dx))


def with_boundary_from(
    inp: np.ndarray, result_interior: np.ndarray, extent: Extent
) -> np.ndarray:
    """Assemble a full output grid: computed interior, input-valued ring."""
    out = inp.copy()
    out[interior(extent)] = result_interior
    return out
