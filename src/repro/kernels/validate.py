"""Tiling and coverage validation.

The numeric execution is plane-global (NumPy), so the block decomposition
never touches the numbers — these validators prove, independently, that
the decomposition the *simulator* prices covers the output domain exactly
once, that halos reach far enough, and that the per-plane traffic is
self-consistent with the tile geometry.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernels.config import BlockConfig
from repro.utils.maths import ceil_div


def tile_origins(
    lx: int, ly: int, block: BlockConfig
) -> list[tuple[int, int]]:
    """(x0, y0) origins of every tile covering an LX x LY plane."""
    nx = ceil_div(lx, block.tile_x)
    ny = ceil_div(ly, block.tile_y)
    return [
        (bx * block.tile_x, by * block.tile_y)
        for by in range(ny)
        for bx in range(nx)
    ]


def check_exact_cover(lx: int, ly: int, block: BlockConfig) -> None:
    """Assert the tiles partition the plane exactly once.

    Raises :class:`ConfigurationError` when a point would be computed by
    zero or multiple blocks (cannot happen with axis-aligned tiling unless
    tile sizes are invalid — this is the executable proof).
    """
    covered = [[0] * lx for _ in range(ly)]
    for x0, y0 in tile_origins(lx, ly, block):
        for y in range(y0, min(y0 + block.tile_y, ly)):
            row = covered[y]
            for x in range(x0, min(x0 + block.tile_x, lx)):
                row[x] += 1
    bad = [
        (x, y)
        for y in range(ly)
        for x in range(lx)
        if covered[y][x] != 1
    ]
    if bad:
        x0, y0 = bad[0]
        over = covered[y0][x0] > 1
        raise ConfigurationError(
            f"tiling {block.label()} covers {len(bad)} points of "
            f"{lx}x{ly} a wrong number of times (first: {bad[0]})",
            rule="COV-TILE-OVERLAP" if over else "COV-TILE-GAP",
        )


def divides_evenly(lx: int, ly: int, block: BlockConfig) -> bool:
    """True when no partial tiles exist (the paper's constraint (iv)
    requires TY*RY to divide the vertical grid size)."""
    return lx % block.tile_x == 0 and ly % block.tile_y == 0


def halo_fits(lx: int, ly: int, lz: int, radius: int) -> bool:
    """True when the stencil extent fits the grid on every axis."""
    return min(lx, ly, lz) >= 2 * radius + 1
