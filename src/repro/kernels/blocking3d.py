"""Full 3D spatial blocking (section III-B, Fig 3 left).

The grid is decomposed into TX x TY x TZ blocks; each block loads its
(TX+2r) x (TY+2r) x (TZ+2r) data volume — including z-halos on both faces —
into shared memory before computing.  Compared to 2.5-D streaming, the
z-halo planes are loaded *again* by the z-neighbouring block, costing an
extra factor (1 + 2r/TZ) of load bandwidth; this kernel exists to
demonstrate exactly that trade-off (the paper quotes 11% / 25% bandwidth
reductions for 4th/8th order at TZ = 32 when moving to 2.5-D).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import KIND_HALO, KIND_INTERIOR, MemoryStats
from repro.gpusim.smem import SmemAccessProfile
from repro.gpusim.workload import BlockWorkload
from repro.kernels.config import BlockConfig
from repro.kernels.loads import add_row_region
from repro.kernels.pipeline import forward_sweep
from repro.kernels.symmetric import SymmetricKernelPlan
from repro.stencils.spec import SymmetricStencil
from repro.utils.maths import ceil_div


class Blocking3DKernel(SymmetricKernelPlan):
    """Full 3D blocking with z-tile depth ``tz``."""

    family = "blocking3d"
    variant = "full3d"

    def __init__(
        self,
        spec: SymmetricStencil,
        block: BlockConfig,
        dtype: str = "sp",
        tz: int = 32,
    ) -> None:
        super().__init__(spec, block, dtype)
        if tz <= 0:
            raise ConfigurationError(f"tz must be positive, got {tz}")
        self.tz = tz

    @property
    def name(self) -> str:
        return (
            f"{self.family}.{self.variant}"
            f"[order{self.spec.order},{self.dtype_name},tz{self.tz}]"
            f"{self.block.label()}"
        )

    def z_halo_factor(self) -> float:
        """Extra z-direction load factor (1 + 2r/TZ) over 2.5-D streaming."""
        return 1.0 + 2.0 * self.spec.radius / self.tz

    def block_workload(
        self, device: DeviceSpec, grid_shape: tuple[int, int, int]
    ) -> BlockWorkload:
        self.check_grid_shape(grid_shape)
        r = self.spec.radius
        tx, ty = self.block.tile_x, self.block.tile_y
        layout = self.layout(grid_shape, aligned_x=-r)

        stats = MemoryStats(line_bytes=layout.line_bytes)
        # The per-plane share of the full (TX+2r)(TY+2r)(TZ+2r) volume: the
        # xy slice every plane needs, plus the amortized z-halo slices.
        frac_halo = 1.0 - (tx * ty) / ((tx + 2 * r) * (ty + 2 * r))
        add_row_region(
            stats,
            layout,
            x_start_rel=-r,
            width_elems=tx + 2 * r,
            rows=ty + 2 * r,
            tile_stride=tx,
            kind=KIND_INTERIOR,
            use_vectors=False,
            halo_fraction=frac_halo,
        )
        # Amortized z-halo planes: 2r extra slices per TZ computed planes,
        # pure halo traffic (re-fetched by the z-neighbour block).
        z_halo_rows = ceil_div(2 * r * (ty + 2 * r), self.tz)
        add_row_region(
            stats,
            layout,
            x_start_rel=-r,
            width_elems=tx + 2 * r,
            rows=z_halo_rows,
            tile_stride=tx,
            kind=KIND_HALO,
            use_vectors=False,
        )
        self.add_store_traffic(stats, layout)
        stats.load_phases = 2

        # 3D blocking reads z-neighbours from shared memory too.
        reads = self.block.points_per_plane * (6 * r + 1) / WARP_SIZE
        writes = (tx + 2 * r) * (ty + 2 * r) * self.z_halo_factor() / WARP_SIZE
        # The buffered working set holds 2r+1 planes at a time (a rolling
        # window through the 3D tile) — more than the 2.5-D single plane.
        smem_bytes = self.smem_tile_bytes(r, r) * (2 * r + 1)

        return BlockWorkload(
            threads_per_block=self.block.threads,
            regs_per_thread=self.estimate_registers(4),
            smem_bytes=smem_bytes,
            elem_bytes=self.elem_bytes,
            points_per_plane=self.block.points_per_plane,
            flops_per_point=self.spec.flops_forward,
            arith_instructions_per_point=6 * self.spec.radius + 1,
            memory=stats,
            smem_profile=SmemAccessProfile(
                read_instructions=int(reads), write_instructions=int(writes)
            ),
            extra_instructions=10,
            ilp=float(self.block.register_tile),
            prologue_planes=2 * r,
        )

    def execute(self, grid: np.ndarray) -> np.ndarray:
        """Numerically identical to the forward schedule."""
        return forward_sweep(self.spec, self.prepare_grid(grid))
