"""The in-plane method — the paper's contribution (section III-C).

All four variants share the in-plane compute schedule (the Eqn (3)-(5)
partial-sum pipeline; 8r+1 flops per element, only r+1 live registers of
z-state per element) and differ in how the current plane's rectangle of
interior + halo elements is fetched (Fig 6):

* **classical** — nvstencil-style split loading (interior, top/bottom,
  left/right strips).  Kept for completeness; the paper leaves it out of
  the evaluation because it inherits the baseline's coalescing problems.
* **vertical** — top/bottom halos merged with the interior column;
  left/right halo columns still loaded separately (poorly coalesced, which
  is why this variant loses at high orders — Fig 7).
* **horizontal** — left/right halos merged into the interior rows; the
  top/bottom strips load separately but are rows, hence coalesced.
* **full-slice** — the whole (TX*RX + 2r) x (TY*RY + 2r) rectangle in one
  group, at the cost of 4r^2 redundant corner elements per plane.

Because all loads target the *current* plane, merged rectangles are
possible at all — the structural advantage over forward-plane loading.
Merged-region variants align the grid so the merged row start (x = -r)
sits on a transaction line, and use the widest vector loads the alignment
rules of section III-C-2 permit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import KIND_HALO, KIND_INTERIOR, MemoryStats
from repro.gpusim.workload import BlockWorkload
from repro.kernels.config import BlockConfig
from repro.kernels.layout import GridLayout
from repro.kernels.loads import add_column_strip, add_row_region
from repro.kernels.pipeline import inplane_sweep
from repro.kernels.symmetric import SymmetricKernelPlan
from repro.stencils.spec import SymmetricStencil

#: Loading variants of Fig 6, in the paper's order.
INPLANE_VARIANTS: tuple[str, ...] = ("classical", "vertical", "horizontal", "fullslice")


def _per_element_state(radius: int) -> int:
    """Live registers per output element: r queued partial outputs plus the
    r backward z-column values Eqn (3) reads, plus the current value —
    2r + 2, the same column state the forward pipeline keeps.  The in-plane
    advantage is in the *loading pattern*, not register count (Table II
    shows equal data references)."""
    return 2 * radius + 2


class InPlaneKernel(SymmetricKernelPlan):
    """In-plane kernel with a selectable loading variant."""

    family = "inplane"

    def __init__(
        self,
        spec: SymmetricStencil,
        block: BlockConfig,
        dtype: str = "sp",
        variant: str = "fullslice",
        use_vectors: bool = True,
    ) -> None:
        super().__init__(spec, block, dtype)
        if variant not in INPLANE_VARIANTS:
            raise ConfigurationError(
                f"unknown in-plane variant {variant!r}; pick one of {INPLANE_VARIANTS}"
            )
        self.variant = variant
        self.use_vectors = use_vectors

    # ------------------------------------------------------------------
    # Loading patterns
    # ------------------------------------------------------------------
    def _aligned_x(self) -> int:
        """Which x index the array padding aligns to a transaction line.

        Variants whose dominant row load starts at -r align that; the
        others align the interior start.
        """
        return -self.spec.radius if self.variant in ("fullslice", "horizontal") else 0

    def loaded_elems_per_plane(self) -> int:
        r = self.spec.radius
        tx, ty = self.block.tile_x, self.block.tile_y
        base = (tx + 2 * r) * (ty + 2 * r) - 4 * r * r
        if self.variant == "fullslice":
            return base + 4 * r * r  # the redundant corners
        return base

    def _add_load_traffic(self, stats: MemoryStats, layout: GridLayout) -> None:
        r = self.spec.radius
        tx, ty = self.block.tile_x, self.block.tile_y
        vec = self.use_vectors

        if self.variant == "fullslice":
            frac_halo = 1.0 - (tx * ty) / ((tx + 2 * r) * (ty + 2 * r))
            add_row_region(
                stats,
                layout,
                x_start_rel=-r,
                width_elems=tx + 2 * r,
                rows=ty + 2 * r,
                tile_stride=tx,
                kind=KIND_INTERIOR,
                use_vectors=vec,
                halo_fraction=frac_halo,
            )
            stats.load_phases = 1
            return

        if self.variant == "horizontal":
            # Interior rows with left/right halos merged in.
            frac_halo = 2 * r / (tx + 2 * r)
            add_row_region(
                stats,
                layout,
                x_start_rel=-r,
                width_elems=tx + 2 * r,
                rows=ty,
                tile_stride=tx,
                kind=KIND_INTERIOR,
                use_vectors=vec,
                halo_fraction=frac_halo,
            )
            # Top/bottom strips (rows: coalesced, just a second group).
            add_row_region(
                stats,
                layout,
                x_start_rel=0,
                width_elems=tx,
                rows=2 * r,
                tile_stride=tx,
                kind=KIND_HALO,
                use_vectors=vec,
            )
            stats.load_phases = 2
            return

        if self.variant == "vertical":
            # Interior column with top/bottom halos merged in.
            frac_halo = 2 * r / (ty + 2 * r)
            add_row_region(
                stats,
                layout,
                x_start_rel=0,
                width_elems=tx,
                rows=ty + 2 * r,
                tile_stride=tx,
                kind=KIND_INTERIOR,
                use_vectors=vec,
                halo_fraction=frac_halo,
            )
            # Left/right halo columns load separately — poorly coalesced.
            add_column_strip(
                stats, layout, x_start_rel=-r, width_elems=r, rows=ty, tile_stride=tx
            )
            add_column_strip(
                stats, layout, x_start_rel=tx, width_elems=r, rows=ty, tile_stride=tx
            )
            stats.load_phases = 3
            return

        # classical: nvstencil-style split loading of the current plane.
        add_row_region(
            stats,
            layout,
            x_start_rel=0,
            width_elems=tx,
            rows=ty,
            tile_stride=tx,
            kind=KIND_INTERIOR,
            use_vectors=vec,
        )
        add_row_region(
            stats,
            layout,
            x_start_rel=0,
            width_elems=tx,
            rows=2 * r,
            tile_stride=tx,
            kind=KIND_HALO,
            use_vectors=vec,
        )
        add_column_strip(
            stats, layout, x_start_rel=-r, width_elems=r, rows=ty, tile_stride=tx
        )
        add_column_strip(
            stats, layout, x_start_rel=tx, width_elems=r, rows=ty, tile_stride=tx
        )
        stats.load_phases = 4

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    def block_workload(
        self, device: DeviceSpec, grid_shape: tuple[int, int, int]
    ) -> BlockWorkload:
        self.check_grid_shape(grid_shape)
        r = self.spec.radius
        layout = self.layout(grid_shape, aligned_x=self._aligned_x())

        stats = MemoryStats(line_bytes=layout.line_bytes)
        self._add_load_traffic(stats, layout)
        self.add_store_traffic(stats, layout)

        # Pipeline shifts: r register moves per element per plane, plus
        # address arithmetic per load group and divergent per-row work for
        # variants that still load halo column strips separately.
        shifts = self.block.points_per_plane * r / WARP_SIZE
        divergent_rows = 0
        if self.variant in ("vertical", "classical"):
            divergent_rows += 2 * self.block.tile_y
        if self.variant == "classical":
            divergent_rows += 4 * r
        extra = int(shifts + 2 * stats.load_phases + 2 * divergent_rows)

        return BlockWorkload(
            threads_per_block=self.block.threads,
            regs_per_thread=self.estimate_registers(_per_element_state(r)),
            smem_bytes=self.smem_bytes(),
            elem_bytes=self.elem_bytes,
            points_per_plane=self.block.points_per_plane,
            flops_per_point=self.spec.flops_inplane,
            arith_instructions_per_point=6 * r + 1,
            memory=stats,
            smem_profile=self.smem_profile(),
            extra_instructions=extra,
            ilp=float(self.block.register_tile),
            prologue_planes=2 * r,
        )

    def execute(self, grid: np.ndarray) -> np.ndarray:
        """One sweep with the in-plane schedule (Eqns (3)-(5))."""
        return inplane_sweep(self.spec, self.prepare_grid(grid))
