"""Region-to-traffic builders: turn load regions into MemoryStats.

Every kernel variant's per-plane global traffic decomposes into three
region shapes:

* **row regions** — rectangles loaded as contiguous row spans, cooperatively
  decomposed onto warps in vector-width chunks (interior loads, merged
  halo+interior loads, top/bottom halo strips, stores);
* **column strips** — narrow vertical halos of width r loaded row-by-row by
  perimeter lanes (the uncoalesced nvstencil pattern of Fig 4);
* **corner patches** — the r x r corners nvstencil's four-way loading drags
  in.

Each builder averages transaction counts over tile alignment phases (see
:class:`~repro.kernels.layout.GridLayout`) so one "representative block"
workload is exact in aggregate over the whole grid.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.memory import (
    KIND_HALO,
    KIND_INTERIOR,
    KIND_WRITE,
    MemoryStats,
    RegionRecord,
    line_span,
)
from repro.kernels.layout import GridLayout
from repro.utils.maths import ceil_div


def add_row_region(
    stats: MemoryStats,
    layout: GridLayout,
    *,
    x_start_rel: int,
    width_elems: int,
    rows: int,
    tile_stride: int,
    kind: str = KIND_INTERIOR,
    use_vectors: bool = True,
    halo_fraction: float = 0.0,
) -> None:
    """Account a rectangle loaded (or stored) as contiguous row spans.

    ``halo_fraction`` splits the transferred lines between interior and
    halo classes for the L2-reuse model when one merged region covers both
    (the full-slice pattern); requested bytes are always counted in full —
    deliberately over-fetched corners still count as "requested" in the
    profiler's load-efficiency metric, which is why Fig 9 shows full-slice
    with near-perfect efficiency despite its 4r^2 redundant elements.
    """
    if rows <= 0 or width_elems <= 0:
        raise ConfigurationError(
            "region must be non-empty", rule="CFG-POSITIVE"
        )
    vec = (
        layout.vector_width_for(x_start_rel, width_elems, tile_stride)
        if use_vectors
        else 1
    )
    instr_per_row = ceil_div(width_elems, WARP_SIZE * vec)
    tx_per_row = layout.avg_row_transactions(x_start_rel, width_elems, tile_stride)
    requested = width_elems * layout.elem_bytes * rows
    def record(tx: float) -> None:
        stats.regions.append(RegionRecord(
            kind=kind,
            x_start_rel=x_start_rel,
            width_elems=width_elems,
            rows=rows,
            tile_stride=tile_stride,
            elem_bytes=layout.elem_bytes,
            vec_width=vec,
            avg_row_transactions=tx,
        ))

    if kind == KIND_WRITE:
        # Stores bypass L1 and move through L2 in 32-byte sectors, so a
        # misaligned row costs one extra *sector*, not one extra 128-byte
        # line.  Expressed in fractional line units for the aggregate.
        sector = 32
        span = width_elems * layout.elem_bytes
        phase = layout.phase_of(x_start_rel) % sector
        sectors_per_row = (phase + span + sector - 1) // sector
        tx_equiv = sectors_per_row * sector / layout.line_bytes
        record(tx_equiv)
        stats.add_raw(
            kind=KIND_WRITE,
            instructions=instr_per_row * rows,
            transactions=tx_equiv * rows,
            requested_bytes=requested,
        )
        return
    record(tx_per_row)

    total_tx = tx_per_row * rows
    halo_tx = total_tx * halo_fraction
    if halo_tx:
        stats.add_raw(
            kind=KIND_HALO,
            instructions=0.0,
            transactions=halo_tx,
            requested_bytes=0.0,
        )
    stats.add_raw(
        kind=kind,
        instructions=instr_per_row * rows,
        transactions=total_tx - halo_tx,
        requested_bytes=requested,
    )


def add_column_strip(
    stats: MemoryStats,
    layout: GridLayout,
    *,
    x_start_rel: int,
    width_elems: int,
    rows: int,
    tile_stride: int,
) -> None:
    """Account a narrow halo column loaded row-by-row by perimeter lanes.

    One predicated warp instruction per row; each instance spans only
    ``width * elem`` bytes but drags in whole transaction lines — the
    poorly coalesced access pattern the in-plane merged variants eliminate.
    Because successive rows sit one grid pitch (a transaction-line
    multiple) apart, the strip's lines all map to the same DRAM partition:
    the traffic is flagged *camped* and the timing model charges the
    partition-serialization penalty.
    """
    if rows <= 0 or width_elems <= 0:
        raise ConfigurationError(
            "strip must be non-empty", rule="CFG-POSITIVE"
        )
    tx_per_row = layout.avg_row_transactions(x_start_rel, width_elems, tile_stride)
    stats.regions.append(RegionRecord(
        kind=KIND_HALO,
        x_start_rel=x_start_rel,
        width_elems=width_elems,
        rows=rows,
        tile_stride=tile_stride,
        elem_bytes=layout.elem_bytes,
        vec_width=1,
        avg_row_transactions=tx_per_row,
        camped=True,
    ))
    stats.add_raw(
        kind=KIND_HALO,
        instructions=float(rows),
        transactions=tx_per_row * rows,
        requested_bytes=width_elems * layout.elem_bytes * rows,
        camped=True,
    )


def add_corner_patches(
    stats: MemoryStats,
    layout: GridLayout,
    *,
    radius: int,
    tile_x: int,
    tile_y: int,
    tile_stride: int,
) -> None:
    """Account the four r x r corner patches of a rectangle-completing load.

    The symmetric cross stencil never reads the diagonal corners, and the
    SDK baseline's halo loads cover the cross only — so neither nvstencil
    nor the classical in-plane variant moves corner *bytes* (their cost is
    the extra divergent instructions, priced separately).  This builder is
    used by the corner-loading ablation bench, which quantifies what a
    naive rectangle-completing tile fill would add.
    """
    if radius <= 0:
        return
    for x_rel in (-radius, tile_x):
        tx_per_row = layout.avg_row_transactions(x_rel, radius, tile_stride)
        # Two corners (top and bottom) share this x position.
        stats.regions.append(RegionRecord(
            kind=KIND_HALO,
            x_start_rel=x_rel,
            width_elems=radius,
            rows=2 * radius,
            tile_stride=tile_stride,
            elem_bytes=layout.elem_bytes,
            vec_width=1,
            avg_row_transactions=tx_per_row,
            camped=True,
        ))
        stats.add_raw(
            kind=KIND_HALO,
            instructions=float(2 * radius),
            transactions=tx_per_row * 2 * radius,
            requested_bytes=radius * layout.elem_bytes * 2 * radius,
            camped=True,
        )
