"""Naive global-memory kernel — the unoptimized porting baseline.

Every thread reads its 6r+1 neighbours straight from global memory with no
shared-memory staging and no register pipeline.  In-plane neighbour reads
mostly coalesce into the rows already being fetched, but there is *no
temporal reuse along z*: each plane of input is re-fetched for every one of
the 2r+1 output planes that needs it.  This is the kernel whose "considerable
performance increase ... simply by directly porting" the introduction
mentions, and it contextualizes how much the blocked kernels recover.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import KIND_INTERIOR, MemoryStats
from repro.gpusim.smem import SmemAccessProfile
from repro.gpusim.workload import BlockWorkload
from repro.kernels.base import BASE_REGISTERS
from repro.kernels.loads import add_row_region
from repro.kernels.pipeline import forward_sweep
from repro.kernels.symmetric import SymmetricKernelPlan


class NaiveKernel(SymmetricKernelPlan):
    """No-reuse global-memory stencil kernel."""

    family = "naive"
    variant = "global"

    def block_workload(
        self, device: DeviceSpec, grid_shape: tuple[int, int, int]
    ) -> BlockWorkload:
        self.check_grid_shape(grid_shape)
        r = self.spec.radius
        tx, ty = self.block.tile_x, self.block.tile_y
        layout = self.layout(grid_shape, aligned_x=0)

        stats = MemoryStats(line_bytes=layout.line_bytes)
        # One row region per z-offset: the 2r+1 planes this output plane
        # reads, none of which persist anywhere for the next plane.
        for _ in range(2 * r + 1):
            add_row_region(
                stats,
                layout,
                x_start_rel=-r,
                width_elems=tx + 2 * r,
                rows=ty + 2 * r,
                tile_stride=tx,
                kind=KIND_INTERIOR,
                use_vectors=False,
            )
        self.add_store_traffic(stats, layout)
        stats.load_phases = 1

        return BlockWorkload(
            threads_per_block=self.block.threads,
            regs_per_thread=BASE_REGISTERS + 4 * self.block.register_tile,
            smem_bytes=0,
            elem_bytes=self.elem_bytes,
            points_per_plane=self.block.points_per_plane,
            flops_per_point=self.spec.flops_forward,
            arith_instructions_per_point=6 * self.spec.radius + 1,
            memory=stats,
            smem_profile=SmemAccessProfile(read_instructions=0, write_instructions=0),
            extra_instructions=8,
            ilp=float(self.block.register_tile),
            prologue_planes=0,
        )

    def execute(self, grid: np.ndarray) -> np.ndarray:
        """Numerically identical to the forward schedule."""
        return forward_sweep(self.spec, self.prepare_grid(grid))
