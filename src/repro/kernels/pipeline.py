"""Plane-pipeline execution — the numerical core of both loading methods.

These functions execute one sweep *with the same algorithmic structure the
GPU kernels use*, traversing the grid plane by plane:

* :func:`forward_sweep` mirrors nvstencil's 2.5-D register pipeline
  (Eqn (2)): when plane ``k + r`` has been streamed in, output plane ``k``
  is computed from the 2r+1 resident planes.
* :func:`inplane_sweep` implements the paper's recurrence exactly
  (Eqns (3)-(5)): when plane ``k`` arrives, a *partial* output for plane
  ``k`` is formed from the in-plane cross and the backward z-neighbours
  (Eqn (3)); each subsequent plane ``k + p`` adds its ``c_p`` contribution
  (Eqn (5)); the output is complete — and only then written — at
  ``z = k + r``.  At most ``r`` partials are in flight, matching the
  paper's claim that r output elements are cached in registers.

Because the in-plane method *reassociates* the z-accumulation, its results
differ from the forward method by floating-point rounding only; tests
assert both against the direct reference within dtype-appropriate
tolerances, which validates the paper's Eqn (4) identity numerically.

The general-expression variants (:func:`expr_forward_sweep`,
:func:`expr_inplane_sweep`) extend the same two schedules to multi-grid
application stencils with arbitrary (possibly asymmetric) z-taps.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.stencils.boundary import check_grid, with_boundary_from
from repro.stencils.expr import StencilExpr
from repro.stencils.spec import SymmetricStencil


def _xy_partial(spec: SymmetricStencil, plane: np.ndarray) -> np.ndarray:
    """Eqn (3)'s in-plane part: c0*centre + sum_m c_m * (x/y neighbours).

    ``plane`` is a full [y, x] plane; the result covers the xy-interior.
    """
    r = spec.radius
    core = spec.coefficients[0] * plane[r:-r, r:-r]
    for m in range(1, r + 1):
        c = spec.coefficients[m]
        core = core + c * (
            plane[r:-r, r - m : plane.shape[1] - r - m]
            + plane[r:-r, r + m : plane.shape[1] - r + m or None]
            + plane[r - m : plane.shape[0] - r - m, r:-r]
            + plane[r + m : plane.shape[0] - r + m or None, r:-r]
        )
    return core


def _xy_window(plane: np.ndarray, r: int) -> np.ndarray:
    """The xy-interior view of a plane."""
    return plane[r:-r, r:-r]


def forward_sweep(spec: SymmetricStencil, grid: np.ndarray) -> np.ndarray:
    """One sweep with the forward-plane (nvstencil) schedule."""
    r = spec.radius
    check_grid(grid, (r, r, r))
    lz = grid.shape[0]
    out = grid.copy()
    for k in range(r, lz - r):
        acc = _xy_partial(spec, grid[k])
        for m in range(1, r + 1):
            acc = acc + spec.coefficients[m] * (
                _xy_window(grid[k - m], r) + _xy_window(grid[k + m], r)
            )
        out[k, r:-r, r:-r] = acc.astype(grid.dtype, copy=False)
    return out


def inplane_sweep(spec: SymmetricStencil, grid: np.ndarray) -> np.ndarray:
    """One sweep with the in-plane schedule — Eqns (3)-(5) verbatim."""
    r = spec.radius
    check_grid(grid, (r, r, r))
    lz = grid.shape[0]
    out = grid.copy()

    # Queue of (output plane index k, partial accumulation) — the register
    # pipeline.  Entries are created at z = k and completed at z = k + r.
    queue: deque[tuple[int, np.ndarray]] = deque()

    for z in range(lz):
        plane = grid[z]

        # Step 3 of the procedure: update the r queued partials with this
        # plane's forward contribution (Eqn (5)).
        window = _xy_window(plane, r)
        for k, partial in queue:
            p = z - k
            partial += spec.coefficients[p] * window

        # Step 2: start a new partial for output plane z (Eqn (3)) —
        # in-plane cross plus *backward* z-neighbours from the register
        # column of previously streamed planes.
        if r <= z < lz - r:
            partial = _xy_partial(spec, plane).astype(np.result_type(grid.dtype), copy=False)
            for m in range(1, r + 1):
                partial = partial + spec.coefficients[m] * _xy_window(grid[z - m], r)
            queue.append((z, partial))

        # Steps 4-5: the head of the queue is complete once z = k + r;
        # shift it out and write it to (simulated) global memory.
        if queue and z - queue[0][0] == r:
            k, done = queue.popleft()
            out[k, r:-r, r:-r] = done.astype(grid.dtype, copy=False)

    if queue:  # pragma: no cover - guarded by check_grid
        raise AssertionError("in-plane pipeline did not drain")
    return out


def max_pipeline_depth(spec: SymmetricStencil) -> int:
    """Partial outputs resident at once — r, the paper's register cost."""
    return spec.radius


# ----------------------------------------------------------------------
# General expressions (application stencils)
# ----------------------------------------------------------------------

def _expr_plane_term(
    expr: StencilExpr,
    grids: list[np.ndarray],
    out_index: int,
    z_out: int,
    dz_group: int,
    ext: tuple[int, int, int],
) -> np.ndarray | None:
    """Sum of output ``out_index``'s taps with z-offset ``dz_group`` at
    output plane ``z_out``, evaluated over the xy-interior."""
    ex, ey, _ = ext
    ys = slice(ey, -ey) if ey else slice(None)
    acc: np.ndarray | None = None
    for tap in expr.outputs[out_index].taps:
        if tap.offset[2] != dz_group:
            continue
        dx, dy, dz = tap.offset
        lx = grids[0].shape[2]
        ly = grids[0].shape[1]
        xs = slice(ex + dx, (-ex + dx) or None)
        yss = slice(ey + dy, (-ey + dy) or None)
        term = grids[tap.grid][z_out + dz, yss, xs]
        if tap.coeff_grid is not None:
            term = grids[tap.coeff_grid][z_out, ys, slice(ex, -ex) if ex else slice(None)] * term
        else:
            term = tap.coeff * term
        acc = term if acc is None else acc + term
    return acc


def expr_forward_sweep(expr: StencilExpr, grids: list[np.ndarray]) -> list[np.ndarray]:
    """Forward-plane schedule for a general expression.

    All taps of an output are evaluated at its own output plane, directly —
    numerically this is the same accumulation the multi-grid forward kernel
    performs plane by plane.
    """
    r = expr.radius()
    ext = (r, r, r)
    check_grid(grids[0], ext)
    lz = grids[0].shape[0]

    outputs = []
    for oi, out_spec in enumerate(expr.outputs):
        base = grids[out_spec.taps[0].grid].copy()
        dzs = sorted({t.offset[2] for t in out_spec.taps})
        for k in range(r, lz - r):
            acc: np.ndarray | None = None
            for dz in dzs:
                term = _expr_plane_term(expr, grids, oi, k, dz, ext)
                if term is not None:
                    acc = term if acc is None else acc + term
            ys = slice(r, -r) if r else slice(None)
            base[k, ys, ys] = acc.astype(base.dtype, copy=False)
        outputs.append(base)
    return outputs


def expr_inplane_sweep(expr: StencilExpr, grids: list[np.ndarray]) -> list[np.ndarray]:
    """In-plane schedule for a general expression.

    At plane ``z``: (1) every queued partial whose pending forward tap
    group matches receives its contribution; (2) a new partial for output
    plane ``z`` is created from all taps with ``dz <= 0`` (in-plane and
    backward reads); (3) partials whose forward taps are exhausted are
    written out.  The queue depth per output equals its maximum forward
    z-reach — the generalization of the paper's "r outputs cached in
    registers".
    """
    r = expr.radius()
    ext = (r, r, r)
    check_grid(grids[0], ext)
    lz = grids[0].shape[0]
    ys = slice(r, -r) if r else slice(None)

    outputs = []
    for oi, out_spec in enumerate(expr.outputs):
        base = grids[out_spec.taps[0].grid].copy()
        fwd_dzs = sorted({t.offset[2] for t in out_spec.taps if t.offset[2] > 0})
        back_dzs = sorted({t.offset[2] for t in out_spec.taps if t.offset[2] <= 0})
        depth = fwd_dzs[-1] if fwd_dzs else 0

        queue: deque[tuple[int, np.ndarray]] = deque()
        for z in range(lz):
            # Forward contributions to queued partials (Eqn (5) analogue).
            for k, partial in queue:
                dz = z - k
                if dz in fwd_dzs:
                    term = _expr_plane_term(expr, grids, oi, k, dz, ext)
                    if term is not None:
                        partial += term
            # Create the partial for output plane z (Eqn (3) analogue).
            if r <= z < lz - r:
                acc: np.ndarray | None = None
                for dz in back_dzs:
                    term = _expr_plane_term(expr, grids, oi, z, dz, ext)
                    if term is not None:
                        acc = term if acc is None else acc + term
                if acc is None:
                    acc = np.zeros_like(base[z, ys, ys], dtype=np.result_type(base.dtype))
                queue.append((z, acc))
            # Emit completed partials.
            while queue and z - queue[0][0] >= depth:
                k, done = queue.popleft()
                base[k, ys, ys] = done.astype(base.dtype, copy=False)
        while queue:
            k, done = queue.popleft()
            base[k, ys, ys] = done.astype(base.dtype, copy=False)
        outputs.append(base)
    return outputs
