"""Kernel factory: build any variant by name.

The harness, tuner and CLI identify kernels by a family string:

* ``"nvstencil"`` — forward-plane 2.5-D baseline
* ``"inplane_classical" / "inplane_vertical" / "inplane_horizontal" /
  "inplane_fullslice"`` — the Fig 6 variants
* ``"naive"`` — unblocked global-memory kernel
* ``"blocking3d"`` — full 3D blocking
* ``"temporal"`` — ghost-zone temporal blocking on top of full-slice
  (extension; pass ``time_steps=``)
* ``"texture"`` — read-only-cache path, no shared memory (extension)
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.kernels.blocking3d import Blocking3DKernel
from repro.kernels.config import BlockConfig
from repro.kernels.inplane import INPLANE_VARIANTS, InPlaneKernel
from repro.kernels.naive import NaiveKernel
from repro.kernels.nvstencil import NvStencilKernel
from repro.kernels.temporal import TemporalInPlaneKernel
from repro.kernels.texture import TexturePathKernel
from repro.kernels.symmetric import SymmetricKernelPlan
from repro.stencils.spec import SymmetricStencil, symmetric


def _inplane_builder(variant: str) -> Callable[..., SymmetricKernelPlan]:
    def build(
        spec: SymmetricStencil, block: BlockConfig, dtype: str = "sp", **kw
    ) -> SymmetricKernelPlan:
        return InPlaneKernel(spec, block, dtype, variant=variant, **kw)

    return build


KERNEL_FAMILIES: dict[str, Callable[..., SymmetricKernelPlan]] = {
    "nvstencil": NvStencilKernel,
    "naive": NaiveKernel,
    "blocking3d": Blocking3DKernel,
    "temporal": TemporalInPlaneKernel,
    "texture": TexturePathKernel,
    **{f"inplane_{v}": _inplane_builder(v) for v in INPLANE_VARIANTS},
}


def make_kernel(
    family: str,
    spec: SymmetricStencil | int,
    block: BlockConfig | tuple[int, ...],
    dtype: str = "sp",
    **kwargs,
) -> SymmetricKernelPlan:
    """Build a symmetric-stencil kernel plan.

    Parameters
    ----------
    family:
        One of :data:`KERNEL_FAMILIES`.
    spec:
        A :class:`SymmetricStencil` or a stencil order (built with default
        coefficients).
    block:
        A :class:`BlockConfig` or a (TX, TY[, RX, RY]) tuple.
    dtype:
        ``"sp"`` or ``"dp"``.
    """
    try:
        builder = KERNEL_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(KERNEL_FAMILIES))
        raise ConfigurationError(
            f"unknown kernel family {family!r}; known: {known}"
        ) from None
    if isinstance(spec, int):
        spec = symmetric(spec)
    if not isinstance(block, BlockConfig):
        block = BlockConfig(*block)
    return builder(spec, block, dtype, **kwargs)
