"""Kernels for multi-grid application stencils (section V).

A :class:`MultiGridKernel` executes one :class:`~repro.stencils.expr.StencilExpr`
with either the forward-plane or the in-plane schedule.  The traffic model
generalizes the symmetric kernels per input grid:

* a grid with x/y halo taps is loaded like a stencil grid — split regions
  (forward method) or a merged rectangle (in-plane full-slice);
* a grid read only at the centre (coefficient volumes, sources,
  right-hand sides) is a plain coalesced tile load, *identical for both
  methods* — which is why Hyperthermia's nine coefficient volumes cap the
  achievable speedup in Fig 11 while Laplacian's single input grid shows
  the largest gain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, StencilDefinitionError
from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import KIND_HALO, KIND_INTERIOR, KIND_WRITE, MemoryStats
from repro.gpusim.smem import SmemAccessProfile, padded_pitch_words
from repro.gpusim.workload import BlockWorkload
from repro.kernels.base import (
    ADDR_REGISTERS_PER_ELEM,
    BASE_REGISTERS,
    KernelPlan,
)
from repro.kernels.config import BlockConfig
from repro.kernels.layout import GridLayout
from repro.kernels.loads import add_column_strip, add_corner_patches, add_row_region
from repro.kernels.pipeline import expr_forward_sweep, expr_inplane_sweep
from repro.stencils.expr import StencilExpr

#: Supported schedules.
METHODS = ("forward", "inplane")


class MultiGridKernel(KernelPlan):
    """Application-stencil kernel for a general expression."""

    family = "multigrid"

    def __init__(
        self,
        expr: StencilExpr,
        block: BlockConfig,
        dtype: str = "sp",
        method: str = "inplane",
        use_vectors: bool | None = None,
    ) -> None:
        super().__init__(block, dtype)
        if method not in METHODS:
            raise ConfigurationError(
                f"unknown method {method!r}; pick one of {METHODS}"
            )
        self.expr = expr
        self.method = method
        self.variant = f"{method}-{expr.name}"
        # The forward baseline (nvstencil-style) issues scalar loads; the
        # in-plane kernels use memory-level parallelism.
        self.use_vectors = (method == "inplane") if use_vectors is None else use_vectors

    @property
    def name(self) -> str:
        return f"{self.family}.{self.variant}[{self.dtype_name}]{self.block.label()}"

    def halo_radius(self) -> int:
        return self.expr.radius()

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def _add_stencil_grid_loads(
        self, stats: MemoryStats, layout: GridLayout, hx: int, hy: int
    ) -> int:
        """Loads for one grid with x/y halos; returns phase count added."""
        tx, ty = self.block.tile_x, self.block.tile_y
        if self.method == "inplane":
            # Full-slice merged rectangle (the winning variant of Fig 7 —
            # the application benchmarks use it, section V-A).
            frac_halo = 1.0 - (tx * ty) / ((tx + 2 * hx) * (ty + 2 * hy))
            add_row_region(
                stats,
                layout,
                x_start_rel=-hx,
                width_elems=tx + 2 * hx,
                rows=ty + 2 * hy,
                tile_stride=tx,
                kind=KIND_INTERIOR,
                use_vectors=self.use_vectors,
                halo_fraction=frac_halo,
            )
            return 1
        # Forward: nvstencil-style split loading.
        add_row_region(
            stats,
            layout,
            x_start_rel=0,
            width_elems=tx,
            rows=ty,
            tile_stride=tx,
            kind=KIND_INTERIOR,
            use_vectors=self.use_vectors,
        )
        phases = 1
        if hy:
            add_row_region(
                stats,
                layout,
                x_start_rel=0,
                width_elems=tx,
                rows=2 * hy,
                tile_stride=tx,
                kind=KIND_HALO,
                use_vectors=self.use_vectors,
            )
            phases += 1
        if hx:
            add_column_strip(
                stats, layout, x_start_rel=-hx, width_elems=hx, rows=ty, tile_stride=tx
            )
            add_column_strip(
                stats, layout, x_start_rel=tx, width_elems=hx, rows=ty, tile_stride=tx
            )
            phases += 1
            if hy:
                add_corner_patches(
                    stats,
                    layout,
                    radius=max(hx, hy),
                    tile_x=tx,
                    tile_y=ty,
                    tile_stride=tx,
                )
                phases += 1
        return phases

    def _register_state(self) -> int:
        """Per-element live register state of the chosen schedule."""
        state = 1  # the accumulator / store value
        for g in range(self.expr.n_grids):
            hx, hy = self.expr.halo_extent(g)[:2]
            back, fwd = self.expr.z_extent(g)
            if self.method == "forward":
                # The z-column window of each grid with z-taps.
                if back or fwd:
                    state += back + fwd + 1
            else:
                # Backward window per grid plus queued partials per output.
                state += back + (1 if (back or fwd) else 0)
        if self.method == "inplane":
            for out in self.expr.outputs:
                fwd = max((t.offset[2] for t in out.taps), default=0)
                state += max(0, fwd)
        return state + 1

    def flops_per_point(self) -> float:
        """Flops per point; the in-plane schedule pays one extra accumulate
        per forward tap (the Eqn (5) incremental updates)."""
        flops = self.expr.flops_per_point()
        if self.method == "inplane":
            flops += sum(
                1
                for out in self.expr.outputs
                for t in out.taps
                if t.offset[2] > 0
            )
        return float(flops)

    def block_workload(
        self, device: DeviceSpec, grid_shape: tuple[int, int, int]
    ) -> BlockWorkload:
        self.check_grid_shape(grid_shape)
        tx, ty = self.block.tile_x, self.block.tile_y
        # Every grid is its own allocation with its own array padding:
        # coefficient volumes and outputs align their interior start, while
        # a stenciled grid aligns whatever its loading pattern needs (the
        # merged-region start -hx for the in-plane method).
        plain_layout = self.layout(grid_shape, aligned_x=0)

        stats = MemoryStats(line_bytes=plain_layout.line_bytes)
        phases = 0
        smem_bytes = 0
        smem_writes = 0.0
        smem_reads = 0.0

        for g in range(self.expr.n_grids):
            hx, hy, _hz = self.expr.halo_extent(g)
            if hx == 0 and hy == 0:
                # Coefficient volume / source / z-only grid: plain tile.
                add_row_region(
                    stats,
                    plain_layout,
                    x_start_rel=0,
                    width_elems=tx,
                    rows=ty,
                    tile_stride=tx,
                    kind=KIND_INTERIOR,
                    use_vectors=self.use_vectors,
                )
                phases += 1
                continue
            grid_layout = self.layout(
                grid_shape, aligned_x=-hx if self.method == "inplane" else 0
            )
            phases += self._add_stencil_grid_loads(stats, grid_layout, hx, hy)
            # Stencil grids stage through a shared tile.
            width_words = ((tx + 2 * hx) * self.elem_bytes + 3) // 4
            pitch = padded_pitch_words(width_words)
            smem_bytes += pitch * 4 * (ty + 2 * hy)
            smem_writes += (tx + 2 * hx) * (ty + 2 * hy) / WARP_SIZE
            taps_on_g = sum(
                1
                for t in self.expr.all_taps()
                if t.grid == g and (t.offset[0] or t.offset[1])
            )
            smem_reads += self.block.points_per_plane * (taps_on_g + 1) / WARP_SIZE

        for _out in self.expr.outputs:
            add_row_region(
                stats,
                plain_layout,
                x_start_rel=0,
                width_elems=tx,
                rows=ty,
                tile_stride=tx,
                kind=KIND_WRITE,
                use_vectors=False,
            )
        stats.load_phases = max(1, phases)

        r = self.expr.radius()
        shifts = self.block.points_per_plane * max(1, r) / WARP_SIZE
        extra = int(shifts + 2 * phases)

        return BlockWorkload(
            threads_per_block=self.block.threads,
            regs_per_thread=(
                BASE_REGISTERS
                + self._register_state() * self.block.register_tile
                + ADDR_REGISTERS_PER_ELEM * (self.block.register_tile - 1)
            ),
            smem_bytes=smem_bytes,
            elem_bytes=self.elem_bytes,
            points_per_plane=self.block.points_per_plane,
            flops_per_point=self.flops_per_point(),
            arith_instructions_per_point=float(
                len(self.expr.all_taps()) + len(self.expr.outputs)
            ),
            memory=stats,
            smem_profile=SmemAccessProfile(
                read_instructions=int(smem_reads),
                write_instructions=int(smem_writes),
            ),
            extra_instructions=extra,
            ilp=float(self.block.register_tile),
            prologue_planes=2 * r,
        )

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def execute(self, *grids: np.ndarray) -> list[np.ndarray]:
        """One sweep over the expression's input grids."""
        if len(grids) != self.expr.n_grids:
            raise StencilDefinitionError(
                f"{self.expr.name} needs {self.expr.n_grids} input grids, "
                f"got {len(grids)}",
                rule="DSL-ARITY",
            )
        ins = [np.asarray(g, dtype=self.dtype) for g in grids]
        if self.method == "inplane":
            return expr_inplane_sweep(self.expr, ins)
        return expr_forward_sweep(self.expr, ins)
