"""Kernel-plan base class: the contract between kernels and the simulator.

A :class:`KernelPlan` is the library's analogue of one compiled CUDA kernel
plus its launch configuration.  It must provide:

* ``execute(...)`` — a numerically exact sweep (the correctness side);
* ``block_workload(device, grid_shape)`` — the per-block/per-plane traffic,
  resources and instruction mix the timing model prices;
* ``grid_workload(device, grid_shape)`` — block/plane/point counts
  (Eqn (6)).

Register-footprint estimation lives here because it is shared policy: the
paper's two methods differ in per-element register state (the in-plane
pipeline keeps ``r`` partial outputs, the forward pipeline ``2r + 1``
column values), which in turn drives occupancy and therefore the
register-blocking trade-off the auto-tuner balances (section IV-C).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError, GridShapeError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.smem import padded_pitch_words
from repro.gpusim.workload import BlockWorkload, GridWorkload
from repro.kernels.config import BlockConfig
from repro.kernels.layout import GridLayout, blocks_in_plane
from repro.stencils.spec import dtype_for

#: Registers every kernel needs for indices, loop counters and pointers.
BASE_REGISTERS = 16

#: Extra addressing registers per additional register-tile element.
ADDR_REGISTERS_PER_ELEM = 1


class KernelPlan(abc.ABC):
    """Abstract kernel: one variant at one blocking configuration.

    Subclasses set ``family`` (e.g. ``"inplane"``) and ``variant`` (e.g.
    ``"fullslice"``) and implement the three contract methods.
    """

    family: str = "abstract"
    variant: str = "abstract"

    def __init__(self, block: BlockConfig, dtype: str = "sp") -> None:
        self.block = block
        self.dtype = dtype_for(dtype)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def dtype_name(self) -> str:
        """``"sp"`` or ``"dp"``."""
        return "sp" if self.dtype.itemsize == 4 else "dp"

    @property
    def elem_bytes(self) -> int:
        """Element size in bytes."""
        return self.dtype.itemsize

    @property
    def name(self) -> str:
        """Human-readable kernel identifier."""
        return f"{self.family}.{self.variant}[{self.dtype_name}]{self.block.label()}"

    def block_label(self) -> str:
        """Table IV-style (TX, TY, RX, RY) label."""
        return self.block.label()

    # ------------------------------------------------------------------
    # Simulator contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def block_workload(
        self, device: DeviceSpec, grid_shape: tuple[int, int, int]
    ) -> BlockWorkload:
        """Per-block, per-plane workload on ``device`` for (LX, LY, LZ)."""

    @abc.abstractmethod
    def halo_radius(self) -> int:
        """Halo width this kernel needs per axis."""

    def grid_workload(
        self, device: DeviceSpec, grid_shape: tuple[int, int, int]
    ) -> GridWorkload:
        """Block/plane/point counts for one sweep (Eqn (6))."""
        lx, ly, lz = grid_shape
        self.check_grid_shape(grid_shape)
        return GridWorkload(
            blocks=blocks_in_plane(lx, ly, self.block.tile_x, self.block.tile_y),
            planes=lz,
            total_points=lx * ly * lz,
        )

    def check_grid_shape(self, grid_shape: tuple[int, int, int]) -> None:
        """Reject grids smaller than the stencil extent or tile."""
        lx, ly, lz = grid_shape
        r = self.halo_radius()
        if min(lx, ly, lz) < 2 * r + 1:
            raise GridShapeError(
                f"grid {grid_shape} too small for radius {r}",
                rule="HALO-GRID-SMALL",
            )
        if self.block.tile_x > lx or self.block.tile_y > ly:
            raise ConfigurationError(
                f"tile {self.block.tile_x}x{self.block.tile_y} exceeds grid "
                f"plane {lx}x{ly}",
                rule="HALO-TILE-EXCEEDS",
            )

    # ------------------------------------------------------------------
    # Numeric contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def execute(self, *grids: np.ndarray) -> np.ndarray | list[np.ndarray]:
        """Run one numerically exact sweep."""

    # ------------------------------------------------------------------
    # Shared resource policy
    # ------------------------------------------------------------------
    def layout(self, grid_shape: tuple[int, int, int], aligned_x: int = 0) -> GridLayout:
        """Padded layout of one grid for this kernel's alignment choice."""
        lx, ly, lz = grid_shape
        return GridLayout(
            lx=lx, ly=ly, lz=lz, elem_bytes=self.elem_bytes, aligned_x=aligned_x
        )

    def smem_tile_bytes(self, halo_x: int, halo_y: int) -> int:
        """Shared-memory buffer: the effective tile plus halos, with the
        pitch padded one word when needed to dodge bank conflicts."""
        width_words = (
            (self.block.tile_x + 2 * halo_x) * self.elem_bytes + 3
        ) // 4
        pitch = padded_pitch_words(width_words)
        rows = self.block.tile_y + 2 * halo_y
        return pitch * 4 * rows

    def estimate_registers(self, per_element_state: int) -> int:
        """Per-thread register estimate.

        ``per_element_state`` is the method-specific live state per output
        element (pipeline partials / z-column values plus the accumulator);
        register tiling multiplies it by RX*RY and adds addressing temps.
        """
        tile = self.block.register_tile
        return (
            BASE_REGISTERS
            + per_element_state * tile
            + ADDR_REGISTERS_PER_ELEM * (tile - 1)
        )

    def validate_against(
        self,
        reference: np.ndarray | list[np.ndarray],
        result: np.ndarray | list[np.ndarray],
    ) -> None:
        """Assert ``result`` matches ``reference`` within dtype tolerance.

        Mirrors the paper's harness ("the output of each kernel is verified
        to be consistent with the result from the CPU-computed stencil
        output").  SP tolerates the reassociation the in-plane recurrence
        introduces; DP is near-exact.
        """
        refs = reference if isinstance(reference, list) else [reference]
        outs = result if isinstance(result, list) else [result]
        if len(refs) != len(outs):
            raise AssertionError(
                f"{self.name}: expected {len(refs)} outputs, got {len(outs)}"
            )
        rtol = 1e-4 if self.elem_bytes == 4 else 1e-10
        for i, (ref, out) in enumerate(zip(refs, outs)):
            if not np.allclose(out, ref, rtol=rtol, atol=rtol):
                worst = float(np.max(np.abs(out - ref)))
                raise AssertionError(
                    f"{self.name}: output {i} deviates from reference "
                    f"(max abs err {worst:.3e})"
                )
