"""The nvstencil baseline: 2.5-D spatial blocking with forward-plane loads.

This models the Nvidia SDK ``FDTD3d`` kernel the paper baselines against
(section III-B): the grid is tiled in x/y; each block streams down the
z-axis keeping a 2r+1-deep register pipeline of z-column values; the
current plane's in-plane neighbours are served from a shared tile.

The loading pattern is the *classical* split of Fig 4: interior elements
arrive through the register pipeline (loaded at plane k+r), while the
halos of the *current* plane k are fetched separately — top/bottom rows,
poorly-coalesced left/right columns, and the corner patches that the
corner threads' four-way loads drag in.  Because interior and halo loads
target *different planes*, the merged-rectangle loading of the in-plane
method is structurally unavailable to this kernel — the paper's central
observation.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import KIND_HALO, KIND_INTERIOR, MemoryStats
from repro.gpusim.workload import BlockWorkload
from repro.kernels.loads import add_column_strip, add_row_region
from repro.kernels.pipeline import forward_sweep
from repro.kernels.symmetric import SymmetricKernelPlan

#: Live state per output element: the 2r+1 z-column registers plus the
#: accumulator.
def _per_element_state(radius: int) -> int:
    return 2 * radius + 2


class NvStencilKernel(SymmetricKernelPlan):
    """Forward-plane 2.5-D baseline (the paper's *nvstencil*)."""

    family = "nvstencil"
    variant = "forward"

    #: The SDK kernel issues scalar loads only.
    use_vectors = False

    def block_workload(
        self, device: DeviceSpec, grid_shape: tuple[int, int, int]
    ) -> BlockWorkload:
        self.check_grid_shape(grid_shape)
        r = self.spec.radius
        tx, ty = self.block.tile_x, self.block.tile_y
        layout = self.layout(grid_shape, aligned_x=0)

        stats = MemoryStats(line_bytes=layout.line_bytes)
        # Interior (register-pipeline feed, plane k + r).
        add_row_region(
            stats,
            layout,
            x_start_rel=0,
            width_elems=tx,
            rows=ty,
            tile_stride=tx,
            kind=KIND_INTERIOR,
            use_vectors=self.use_vectors,
        )
        # Top/bottom halo rows of the current plane.
        add_row_region(
            stats,
            layout,
            x_start_rel=0,
            width_elems=tx,
            rows=2 * r,
            tile_stride=tx,
            kind=KIND_HALO,
            use_vectors=self.use_vectors,
        )
        # Left/right halo columns — the uncoalesced pattern of Fig 4.
        add_column_strip(
            stats, layout, x_start_rel=-r, width_elems=r, rows=ty, tile_stride=tx
        )
        add_column_strip(
            stats, layout, x_start_rel=tx, width_elems=r, rows=ty, tile_stride=tx
        )
        # No corner bytes: the halo cross covers everything the symmetric
        # stencil reads (the corner threads' extra loads of Fig 4 cost
        # divergent instructions, priced below, not extra lines).
        self.add_store_traffic(stats, layout)
        # Interior, top/bottom, left/right (+corners) are distinct,
        # divergent load groups.
        stats.load_phases = 4

        # Register-pipeline shifts: 2r moves per element per plane, plus
        # light address arithmetic per load group and the divergent
        # branch/address work of the per-row halo loads (Fig 4).
        shifts = self.block.points_per_plane * 2 * r / WARP_SIZE
        divergent_rows = 2 * ty + 4 * r
        extra = int(shifts + 2 * stats.load_phases + 2 * divergent_rows)

        return BlockWorkload(
            threads_per_block=self.block.threads,
            regs_per_thread=self.estimate_registers(_per_element_state(r)),
            smem_bytes=self.smem_bytes(),
            elem_bytes=self.elem_bytes,
            points_per_plane=self.block.points_per_plane,
            flops_per_point=self.spec.flops_forward,
            arith_instructions_per_point=6 * r + 1,
            memory=stats,
            smem_profile=self.smem_profile(),
            extra_instructions=extra,
            ilp=float(self.block.register_tile),
            prologue_planes=2 * r,
        )

    def execute(self, grid: np.ndarray) -> np.ndarray:
        """One sweep with the forward-plane schedule."""
        return forward_sweep(self.spec, self.prepare_grid(grid))
