"""Grid memory layout: pitch, padding and alignment.

Array padding (section III-C-2) is one of the levers the paper's kernels
pull: rows are padded so the pitch is a multiple of the 128-byte
transaction line, and the allocation is offset so that the x-index the
kernel's dominant load pattern starts from (``aligned_x``) lands on a line
boundary.  The in-plane full-slice and horizontal variants align the
*merged* region start ``x = -r``; nvstencil, vertical and classical align
the interior start ``x = 0``.  The remaining mis-phase of every *other*
region, and of tiles whose x-origin is not a multiple of the line, is what
the transaction-count helpers below average over — exactly the cost of not
being able to align everything at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GridShapeError
from repro.gpusim.memory import line_span
from repro.utils.maths import ceil_div, round_up


@dataclass(frozen=True)
class GridLayout:
    """Padded row-major (x-fastest) layout of one 3D grid.

    Attributes
    ----------
    lx, ly, lz:
        Logical grid shape.
    elem_bytes:
        4 (SP) or 8 (DP).
    aligned_x:
        Logical x index that is placed on a transaction-line boundary
        (may be negative: ``-r`` aligns the merged halo start).
    line_bytes:
        Transaction line size; the pitch is padded to a multiple of it.
    """

    lx: int
    ly: int
    lz: int
    elem_bytes: int
    aligned_x: int = 0
    line_bytes: int = 128

    def __post_init__(self) -> None:
        if min(self.lx, self.ly, self.lz) <= 0:
            raise GridShapeError(f"grid shape must be positive, got "
                                 f"({self.lx}, {self.ly}, {self.lz})")
        if self.elem_bytes not in (4, 8):
            raise GridShapeError(f"elem_bytes must be 4 or 8, got {self.elem_bytes}")

    @property
    def pitch_elems(self) -> int:
        """Padded row length in elements (pitch is a line multiple)."""
        line_elems = self.line_bytes // self.elem_bytes
        # Room for the logical row plus lead/trail halo padding.
        needed = self.lx + 2 * line_elems
        return round_up(needed, line_elems)

    @property
    def pitch_bytes(self) -> int:
        """Padded row length in bytes."""
        return self.pitch_elems * self.elem_bytes

    @property
    def footprint_bytes(self) -> int:
        """Allocation size of one grid (all planes)."""
        return self.pitch_bytes * self.ly * self.lz

    def phase_of(self, x: int) -> int:
        """Byte phase of logical x within a transaction line.

        Because the pitch is a line multiple, the phase is row-invariant;
        ``aligned_x`` has phase 0 by construction.
        """
        return ((x - self.aligned_x) * self.elem_bytes) % self.line_bytes

    def row_transactions(self, x_start: int, width_elems: int) -> int:
        """Transaction lines for one row segment [x_start, x_start+width)."""
        return line_span(self.phase_of(x_start), width_elems * self.elem_bytes,
                         self.line_bytes)

    def avg_row_transactions(
        self, x_start_rel: int, width_elems: int, tile_stride: int
    ) -> float:
        """Average transactions per row over all tile x-origins.

        Tiles start at ``bx * tile_stride``; the row segment of one tile
        starts at ``bx * tile_stride + x_start_rel``.  Distinct tiles see
        distinct line phases unless the tile stride in bytes is a line
        multiple; the exact average over one phase period is returned so a
        "representative block" workload remains exact in aggregate.
        """
        if width_elems <= 0:
            raise GridShapeError("row width must be positive")
        if tile_stride <= 0:
            raise GridShapeError("tile stride must be positive")
        stride_bytes = tile_stride * self.elem_bytes
        period = self.line_bytes // math.gcd(stride_bytes, self.line_bytes)
        total = 0
        for i in range(period):
            x = i * tile_stride + x_start_rel
            total += self.row_transactions(x, width_elems)
        return total / period

    def vector_width_for(
        self, x_start_rel: int, width_elems: int, tile_stride: int, max_vec: int = 4
    ) -> int:
        """Largest vector width usable for this row pattern on *every* tile.

        Requires (section III-C-2): the start byte of the segment aligned
        to the vector size on every tile origin, and the width divisible by
        the vector width so no lane straddles the edge.
        """
        vec = max_vec
        if self.elem_bytes == 8:
            vec = min(vec, 2)
        stride_bytes = tile_stride * self.elem_bytes
        while vec > 1:
            vbytes = vec * self.elem_bytes
            if (
                width_elems % vec == 0
                and self.phase_of(x_start_rel) % vbytes == 0
                and stride_bytes % vbytes == 0
            ):
                return vec
            vec //= 2
        return 1


def blocks_in_plane(lx: int, ly: int, tile_x: int, tile_y: int) -> int:
    """Thread blocks needed to cover one plane — the paper's Eqn (6)."""
    return ceil_div(lx, tile_x) * ceil_div(ly, tile_y)
