"""Kernel plans: the paper's stencil kernel variants.

Each kernel plan couples (a) a numerically exact execution of one sweep
(validated against :mod:`repro.stencils.reference`) with (b) a mechanical
description of its per-plane global-memory access pattern, shared-memory
traffic, register footprint and instruction mix, which the GPU simulator
prices.  The variants:

* :mod:`repro.kernels.nvstencil` — the 2.5-D forward-plane baseline
  (Nvidia SDK ``FDTD3d``-style), section III-B.
* :mod:`repro.kernels.inplane` — the paper's contribution: in-plane
  loading with the *classical*, *vertical*, *horizontal* and *full-slice*
  variants of Fig 6, with memory-level parallelism (vector loads) and
  register tiling.
* :mod:`repro.kernels.naive` — no-reuse global-memory kernel (context).
* :mod:`repro.kernels.blocking3d` — full 3D blocking (section III-B).
* :mod:`repro.kernels.multigrid` — forward-plane and in-plane kernels for
  general multi-grid application stencils (section V).
"""

from repro.kernels.config import BlockConfig
from repro.kernels.layout import GridLayout
from repro.kernels.base import KernelPlan
from repro.kernels.nvstencil import NvStencilKernel
from repro.kernels.inplane import InPlaneKernel, INPLANE_VARIANTS
from repro.kernels.naive import NaiveKernel
from repro.kernels.blocking3d import Blocking3DKernel
from repro.kernels.temporal import TemporalInPlaneKernel
from repro.kernels.multigrid import MultiGridKernel
from repro.kernels.factory import make_kernel, KERNEL_FAMILIES

__all__ = [
    "BlockConfig",
    "GridLayout",
    "KernelPlan",
    "NvStencilKernel",
    "InPlaneKernel",
    "INPLANE_VARIANTS",
    "NaiveKernel",
    "Blocking3DKernel",
    "TemporalInPlaneKernel",
    "MultiGridKernel",
    "make_kernel",
    "KERNEL_FAMILIES",
]
