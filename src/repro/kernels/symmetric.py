"""Shared machinery for symmetric-stencil kernel plans.

Both the forward-plane baseline and the in-plane variants operate on one
input grid with the Eqn (1) stencil; they share store traffic, the
shared-memory tile, the per-plane shared-memory instruction profile and
the grid workload.  What differs — and what the subclasses define — is the
*load* pattern, the flop count and the per-element register state.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.memory import KIND_WRITE, MemoryStats
from repro.gpusim.smem import SmemAccessProfile
from repro.kernels.base import KernelPlan
from repro.kernels.config import BlockConfig
from repro.kernels.layout import GridLayout
from repro.kernels.loads import add_row_region
from repro.stencils.spec import SymmetricStencil


class SymmetricKernelPlan(KernelPlan):
    """Base for kernels computing one symmetric Eqn (1) stencil."""

    def __init__(
        self, spec: SymmetricStencil, block: BlockConfig, dtype: str = "sp"
    ) -> None:
        super().__init__(block, dtype)
        self.spec = spec

    @property
    def name(self) -> str:
        return (
            f"{self.family}.{self.variant}"
            f"[order{self.spec.order},{self.dtype_name}]{self.block.label()}"
        )

    def halo_radius(self) -> int:
        return self.spec.radius

    # ------------------------------------------------------------------
    # Shared traffic pieces
    # ------------------------------------------------------------------
    def add_store_traffic(self, stats: MemoryStats, layout: GridLayout) -> None:
        """Output writes: one coalesced row region of the effective tile.

        Register-tiled threads write with indices strided by the thread
        count (section III-C-3), which keeps every store row contiguous.
        """
        add_row_region(
            stats,
            layout,
            x_start_rel=0,
            width_elems=self.block.tile_x,
            rows=self.block.tile_y,
            tile_stride=self.block.tile_x,
            kind=KIND_WRITE,
            use_vectors=False,
        )

    def loaded_elems_per_plane(self) -> int:
        """Elements staged through shared memory per plane (tile + halos).

        Variants that over-fetch (full-slice corners) override this.
        """
        r = self.spec.radius
        tx, ty = self.block.tile_x, self.block.tile_y
        return (tx + 2 * r) * (ty + 2 * r) - 4 * r * r

    def smem_profile(self) -> SmemAccessProfile:
        """Per-plane shared-memory instructions.

        Every loaded element is written to the tile once; the compute phase
        reads the 4r+1 in-plane cross per output element (z-neighbours
        live in registers for both methods).
        """
        r = self.spec.radius
        writes = self.loaded_elems_per_plane() / WARP_SIZE
        reads = self.block.points_per_plane * (4 * r + 1) / WARP_SIZE
        return SmemAccessProfile(
            read_instructions=int(reads),
            write_instructions=int(writes),
            conflict_factor=1.0,
        )

    def smem_bytes(self) -> int:
        """Shared tile footprint (effective tile + halos, padded pitch)."""
        r = self.spec.radius
        return self.smem_tile_bytes(r, r)

    # ------------------------------------------------------------------
    # Numeric helpers
    # ------------------------------------------------------------------
    def prepare_grid(self, grid: np.ndarray) -> np.ndarray:
        """Cast the input to this kernel's dtype without copying when
        already correct."""
        return np.asarray(grid, dtype=self.dtype)
