"""Thread/register blocking configuration — the (TX, TY, RX, RY) tuple.

This is the four-dimensional parameter the auto-tuner searches
(section IV-C): the thread block is TX x TY threads; register tiling scales
the area each block computes to (TX*RX) x (TY*RY) output elements per
plane, with each thread holding RX*RY independent accumulation chains in
registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpusim.arch import HALF_WARP


@dataclass(frozen=True, order=True)
class BlockConfig:
    """One blocking configuration (TX, TY, RX, RY)."""

    tx: int
    ty: int
    rx: int = 1
    ry: int = 1

    def __post_init__(self) -> None:
        for name, v in (("tx", self.tx), ("ty", self.ty), ("rx", self.rx), ("ry", self.ry)):
            if v <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {v}", rule="CFG-POSITIVE"
                )

    @property
    def threads(self) -> int:
        """Threads per block (TX * TY)."""
        return self.tx * self.ty

    @property
    def tile_x(self) -> int:
        """Output elements per block per plane along x (TX * RX)."""
        return self.tx * self.rx

    @property
    def tile_y(self) -> int:
        """Output elements per block per plane along y (TY * RY)."""
        return self.ty * self.ry

    @property
    def points_per_plane(self) -> int:
        """Output elements per block per plane."""
        return self.tile_x * self.tile_y

    @property
    def register_tile(self) -> int:
        """Independent elements each thread accumulates (RX * RY)."""
        return self.rx * self.ry

    @property
    def coalescing_friendly(self) -> bool:
        """Search constraint (i): TX is a multiple of a half-warp."""
        return self.tx % HALF_WARP == 0

    def as_tuple(self) -> tuple[int, int, int, int]:
        """(TX, TY, RX, RY) — the paper's Table IV notation."""
        return (self.tx, self.ty, self.rx, self.ry)

    def label(self) -> str:
        """Table IV-style label, e.g. ``(256, 1, 1, 8)``."""
        return f"({self.tx}, {self.ty}, {self.rx}, {self.ry})"
