"""The iterative stencil loop driver — the paper's Fig 1.

``iterate`` implements the Jacobi double-buffer loop: at each time step the
kernel reads the ``in`` grid and produces ``out``; the buffers are then
swapped (by reference, as the pseudo-code's ``Swap(in, out)`` swaps
pointers) and iteration continues until the stop criterion — a fixed step
count or a convergence predicate — is met.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.kernels.base import KernelPlan


def iterate(
    plan: KernelPlan,
    initial: np.ndarray,
    steps: int | None = None,
    until: Callable[[np.ndarray, np.ndarray], bool] | None = None,
    max_steps: int = 10_000,
) -> tuple[np.ndarray, int]:
    """Run the iterative stencil loop of Fig 1.

    Parameters
    ----------
    plan:
        A single-grid kernel plan (symmetric stencils).
    initial:
        The initial input grid.
    steps:
        Fixed number of sweeps, or ``None`` to iterate until ``until``.
    until:
        Stop criterion ``f(previous, current) -> bool``, checked after
        every sweep (e.g. a residual threshold).
    max_steps:
        Safety bound when only ``until`` is given.

    Returns the final grid and the number of sweeps executed.
    """
    if steps is None and until is None:
        raise ValueError("provide steps, a stop criterion, or both")
    limit = steps if steps is not None else max_steps

    current = np.asarray(initial, dtype=plan.dtype)
    done = 0
    for _ in range(limit):
        nxt = plan.execute(current)
        done += 1
        if until is not None and until(current, nxt):
            current = nxt
            break
        current = nxt  # Swap(in, out): the new grid becomes the input.
    return current, done


def residual(previous: np.ndarray, current: np.ndarray) -> float:
    """Max-norm change between sweeps — a standard stop criterion."""
    return float(np.max(np.abs(current - previous)))


def converged(tolerance: float) -> Callable[[np.ndarray, np.ndarray], bool]:
    """Stop-criterion factory: change below ``tolerance``."""
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")

    def check(previous: np.ndarray, current: np.ndarray) -> bool:
        return residual(previous, current) < tolerance

    return check
