"""Perf-regression sentinel: ``repro bench diff --baseline BENCH_profile.json``.

``BENCH_profile.json`` is the repository's recorded performance
trajectory; the simulator is deterministic, so every record in it can be
*resimulated* from its own identity fields (device, kernel family,
order, dtype, block config, grid) and compared value-for-value against
what the current tree produces.  Tolerance therefore defaults to
**exact**: on an unchanged tree the diff is empty, and any delta is a
real behaviour change of the model.

Every changed record is attributed to the explanatory quantity that
moved — the hardware-counter set for v2 baselines, the cycle-breakdown
components that v1 records already carry otherwise — so a slowdown
arrives with its cause attached ("total_cycles +4.2% from
stall_sched_frac +180%"), and a headline move with *no* moved counter is
flagged ``unexplained`` (a model/counter inconsistency worth a bug
report either way).
"""

from __future__ import annotations

import ast
import logging
import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.telemetry import TelemetryRecord, load_profile, record_from_report

log = logging.getLogger(__name__)

#: Explanatory fields compared per record, beyond the headline rate.
_EXPLAIN_FIELDS = ("total_cycles", "gflops", "load_efficiency", "occupancy")


def plan_for_record(record: TelemetryRecord) -> Any:
    """Rebuild the kernel plan a telemetry record describes.

    Kernel names follow ``{family}.{variant}[order{N},{dtype}]{config}``;
    in-plane variants register as ``inplane_{variant}`` families, every
    other family under its head name.
    """
    from repro.kernels.factory import make_kernel
    from repro.stencils.spec import symmetric

    head = record.kernel.partition("[")[0].split(".")
    family = f"inplane_{head[1]}" if head[0] == "inplane" else head[0]
    config = ast.literal_eval(record.config)
    return make_kernel(family, symmetric(record.order), tuple(config), record.dtype)


def resimulate_record(record: TelemetryRecord) -> TelemetryRecord:
    """Run the record's launch on the current tree, rounded identically."""
    from repro.gpusim.executor import simulate

    report = simulate(plan_for_record(record), record.device, record.grid)
    return record_from_report(report, order=record.order, source=record.source)


@dataclass(frozen=True)
class CounterDelta:
    """One explanatory quantity that moved between baseline and current."""

    name: str
    baseline: float
    current: float

    @property
    def rel(self) -> float:
        """Relative move; exact +/-inf-free (0 baseline → current as is)."""
        if self.baseline:
            return (self.current - self.baseline) / self.baseline
        return self.current

    def render(self) -> str:
        return f"{self.name} {self.baseline:g} -> {self.current:g} ({self.rel:+.1%})"


@dataclass(frozen=True)
class RecordDiff:
    """Baseline-vs-current comparison of one trajectory record."""

    record: TelemetryRecord
    baseline_mpoints: float
    current_mpoints: float
    deltas: tuple[CounterDelta, ...]
    tolerance: float = 0.0

    @property
    def rel_change(self) -> float:
        return (self.current_mpoints - self.baseline_mpoints) / self.baseline_mpoints

    @property
    def regressed(self) -> bool:
        return self.rel_change < -self.tolerance

    @property
    def improved(self) -> bool:
        return self.rel_change > self.tolerance

    @property
    def changed(self) -> bool:
        return self.regressed or self.improved or bool(self.deltas)

    @property
    def responsible(self) -> CounterDelta | None:
        """The counter that moved most (relative), if any.

        Headline-derived fields (gflops, total_cycles, ...) are excluded:
        they restate *that* performance moved, not *why*.  ``None`` with a
        nonempty ``deltas`` means only headline fields moved — an
        unexplained delta (or a v1 baseline whose breakdown didn't shift).
        """
        causes = [d for d in self.deltas if d.name not in _EXPLAIN_FIELDS]
        if not causes:
            return None
        return max(causes, key=lambda d: abs(d.rel))

    def render(self) -> str:
        verdict = (
            "REGRESSED" if self.regressed
            else "improved" if self.improved
            else "changed"
        )
        cause = self.responsible
        why = f" — {cause.render()}" if cause else " — unexplained (no counter moved)"
        return (
            f"{verdict}: {self.record.kernel} on {self.record.device} "
            f"[{self.record.source}] {self.baseline_mpoints:,.1f} -> "
            f"{self.current_mpoints:,.1f} MPoint/s ({self.rel_change:+.2%}){why}"
        )


@dataclass(frozen=True)
class DiffReport:
    """Whole-baseline comparison result."""

    baseline_path: str
    total: int
    diffs: tuple[RecordDiff, ...]      #: only records that changed
    errors: tuple[str, ...]            #: records that failed to resimulate
    tolerance: float
    skipped: int = 0                   #: faulted records (not comparable)

    @property
    def regressions(self) -> tuple[RecordDiff, ...]:
        return tuple(d for d in self.diffs if d.regressed)

    @property
    def improvements(self) -> tuple[RecordDiff, ...]:
        return tuple(d for d in self.diffs if d.improved)

    def exit_code(self) -> int:
        """Nonzero on any slowdown or unresimulatable record."""
        return 1 if self.regressions or self.errors else 0

    def render(self, *, verbose: bool = False) -> str:
        lines = [
            f"bench diff vs {self.baseline_path}: {self.total} records, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.diffs)} changed, {len(self.errors)} error(s)"
            + (f", {self.skipped} faulted skipped" if self.skipped else "")
            + f" (tolerance {self.tolerance:g})"
        ]
        for d in self.diffs:
            lines.append("  " + d.render())
            if verbose:
                for delta in d.deltas:
                    lines.append("      " + delta.render())
        lines.extend(f"  ERROR: {e}" for e in self.errors)
        return "\n".join(lines)

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline_path,
            "total": self.total,
            "tolerance": self.tolerance,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "skipped_faulted": self.skipped,
            "errors": list(self.errors),
            "diffs": [
                {
                    "kernel": d.record.kernel,
                    "device": d.record.device,
                    "source": d.record.source,
                    "baseline_mpoints_per_s": d.baseline_mpoints,
                    "current_mpoints_per_s": d.current_mpoints,
                    "rel_change": d.rel_change,
                    "regressed": d.regressed,
                    "responsible": (
                        d.responsible.name if d.responsible else None
                    ),
                    "deltas": [
                        {
                            "name": x.name,
                            "baseline": x.baseline,
                            "current": x.current,
                            "rel": x.rel,
                        }
                        for x in d.deltas
                    ],
                }
                for d in self.diffs
            ],
        }


def _explain_deltas(
    baseline: TelemetryRecord, current: TelemetryRecord
) -> tuple[CounterDelta, ...]:
    """Every explanatory quantity that moved, counters preferred."""
    deltas: list[CounterDelta] = []
    if baseline.counters:
        for name, b in baseline.counters.items():
            if name == "occupancy_limiter":
                continue
            c = current.counters.get(name)
            if c is not None and c != b:
                deltas.append(CounterDelta(name, float(b), float(c)))
    else:  # v1 baseline: the breakdown components are the explanation
        for name, b in baseline.breakdown.items():
            c = current.breakdown.get(name)
            if c is not None and c != b:
                deltas.append(CounterDelta(name, b, c))
    for fieldname in _EXPLAIN_FIELDS:
        b = getattr(baseline, fieldname)
        c = getattr(current, fieldname)
        if b != c:
            deltas.append(CounterDelta(fieldname, b, c))
    return tuple(deltas)


def diff_record(
    baseline: TelemetryRecord, tolerance: float = 0.0
) -> RecordDiff | str:
    """Diff one baseline record; an error string when it can't resimulate."""
    try:
        current = resimulate_record(baseline)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return f"{baseline.kernel} on {baseline.device}: {exc}"
    return RecordDiff(
        record=baseline,
        baseline_mpoints=baseline.mpoints_per_s,
        current_mpoints=current.mpoints_per_s,
        deltas=_explain_deltas(baseline, current),
        tolerance=tolerance,
    )


def _diff_task(task: tuple[TelemetryRecord, float]) -> RecordDiff | str:
    """Worker body for ``diff_baseline(jobs>1)``; must stay module-level."""
    record, tolerance = task
    return diff_record(record, tolerance)


def _worker_init() -> None:
    from repro.obs.tracer import disable_tracing_in_process

    disable_tracing_in_process()


def _resolve_jobs(jobs: int, n_tasks: int) -> int:
    cap = os.cpu_count() or 1
    env = os.environ.get("REPRO_JOBS_CAP")
    if env:
        try:
            cap = max(cap, int(env))
        except ValueError:
            pass
    return max(1, min(jobs, cap, n_tasks))


def _diff_records(
    comparable: list[TelemetryRecord], tolerance: float, jobs: int
) -> list[RecordDiff | str]:
    """Diff records in input order, optionally on a fork pool.

    Records are independent and the simulator is deterministic, so the
    result is identical at any job count; ``pool.map`` preserves order.
    Any pool failure degrades to the in-process path, which resimulates
    through the vectorized batch engine — bit-identical to the scalar
    resimulation (the ``batch-identity`` gate), one NumPy pass per
    device instead of one pipeline walk per record.
    """
    jobs = _resolve_jobs(jobs, len(comparable))
    if jobs > 1 and "fork" in multiprocessing.get_all_start_methods():
        tasks = [(record, tolerance) for record in comparable]
        try:
            with multiprocessing.get_context("fork").Pool(
                jobs, initializer=_worker_init
            ) as pool:
                return pool.map(_diff_task, tasks, chunksize=1)
        except Exception as exc:  # noqa: BLE001 - degrade, don't die
            log.warning("worker pool failed (%s); diffing serially", exc)
    return _diff_records_batched(comparable, tolerance)


def _diff_records_batched(
    comparable: list[TelemetryRecord], tolerance: float
) -> list[RecordDiff | str]:
    """The in-process diff: batched resimulation, grouped per device.

    Classification parity with :func:`diff_record` is per record: any
    stage that the scalar path would catch — plan rebuild, device lookup,
    workload compilation, an unlaunchable configuration — degrades only
    that record to its ``"{kernel} on {device}: {exc}"`` error string
    with the identical message.
    """
    from repro.gpusim.batch import BatchEngine, batch_reports
    from repro.gpusim.device import get_device

    results: list[RecordDiff | str | None] = [None] * len(comparable)
    by_device: dict[str, list[tuple[int, TelemetryRecord, Any]]] = {}
    for idx, record in enumerate(comparable):
        try:
            plan = plan_for_record(record)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            results[idx] = f"{record.kernel} on {record.device}: {exc}"
            continue
        by_device.setdefault(record.device, []).append((idx, record, plan))

    for device, group in by_device.items():
        try:
            engine = BatchEngine(get_device(device))
        except Exception as exc:  # noqa: BLE001 - e.g. unknown device
            for idx, record, _plan in group:
                results[idx] = f"{record.kernel} on {record.device}: {exc}"
            continue
        reports = batch_reports(
            [(plan, record.grid) for _idx, record, plan in group],
            engine.device, engine=engine,
        )
        for (idx, record, _plan), report in zip(group, reports):
            if isinstance(report, Exception):
                results[idx] = f"{record.kernel} on {record.device}: {report}"
                continue
            try:
                current = record_from_report(
                    report, order=record.order, source=record.source
                )
            except Exception as exc:  # noqa: BLE001 - reported, not swallowed
                results[idx] = f"{record.kernel} on {record.device}: {exc}"
                continue
            results[idx] = RecordDiff(
                record=record,
                baseline_mpoints=record.mpoints_per_s,
                current_mpoints=current.mpoints_per_s,
                deltas=_explain_deltas(record, current),
                tolerance=tolerance,
            )
    # Every index was filled by exactly one of the branches above.
    return results  # type: ignore[return-value]


def diff_baseline(
    path: str | Path, tolerance: float = 0.0, jobs: int = 1
) -> DiffReport:
    """Resimulate every record of a baseline document and diff it.

    ``jobs`` fans the per-record resimulations out to that many worker
    processes (clamped to the core count unless ``REPRO_JOBS_CAP`` raises
    it); the report is identical at any value.
    """
    records = load_profile(path)
    diffs: list[RecordDiff] = []
    errors: list[str] = []
    comparable: list[TelemetryRecord] = []
    skipped = 0
    for record in records:
        if record.faulted:
            # A faulted measurement is not a performance statement: the
            # clean resimulation *should* disagree with it, so diffing it
            # would manufacture false regressions.
            skipped += 1
            continue
        comparable.append(record)
    for result in _diff_records(comparable, tolerance, jobs):
        if isinstance(result, str):
            errors.append(result)
        elif result.changed:
            diffs.append(result)
    return DiffReport(
        baseline_path=str(path),
        total=len(records),
        diffs=tuple(diffs),
        errors=tuple(errors),
        tolerance=tolerance,
        skipped=skipped,
    )
