"""Counter / gauge / histogram registry.

Naming convention (validated at registration): lowercase dotted paths,
``<subsystem>.<metric>[_<unit>]`` — e.g. ``sim.bytes_moved``,
``tune.rejected_static``, ``sim.latency_exposed_cycles``.  The subsystem
prefix matches the span-category taxonomy of :mod:`repro.obs.schema`, so
a counter and the spans that accumulated it sort together.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def validate_metric_name(name: str) -> str:
    """Enforce the dotted-lowercase naming convention; returns ``name``."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} violates the naming convention "
            "(lowercase dotted path, e.g. 'sim.bytes_moved')"
        )
    return name


@dataclass
class Counter:
    """Monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (e.g. current occupancy)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary (count / sum / min / max) of observations."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count, "sum": self.total,
            "min": self.min, "max": self.max, "mean": self.mean,
        }


@dataclass
class MetricsRegistry:
    """Create-on-first-use registry for the three metric kinds."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(validate_metric_name(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(validate_metric_name(name))
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(validate_metric_name(name))
        return h

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view (the trace exporter's ``otherData.metrics``)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }
