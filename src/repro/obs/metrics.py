"""Counter / gauge / histogram registry.

Naming convention (validated at registration): lowercase dotted paths,
``<subsystem>.<metric>[_<unit>]`` — e.g. ``sim.bytes_moved``,
``tune.rejected_static``, ``sim.latency_exposed_cycles``.  The subsystem
prefix matches the span-category taxonomy of :mod:`repro.obs.schema`, so
a counter and the spans that accumulated it sort together.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def validate_metric_name(name: str) -> str:
    """Enforce the dotted-lowercase naming convention; returns ``name``."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} violates the naming convention "
            "(lowercase dotted path, e.g. 'sim.bytes_moved')"
        )
    return name


def _require_finite(metric: str, name: str, value: float) -> float:
    """Reject NaN/inf before it poisons a total or an exported sample.

    A non-finite observation is always an instrumentation bug (the
    simulator's numbers are finite by construction), and both exporters
    (:mod:`repro.obs.export`) and ``repro top`` assume finite samples —
    so all three metric kinds raise here rather than propagate it.
    """
    if not math.isfinite(value):
        raise ValueError(f"{metric} {name} rejects non-finite value {value!r}")
    return value


#: Percentiles reported by :meth:`Histogram.summary` (and rendered as
#: ``quantile`` labels by the Prometheus exporter).
HISTOGRAM_PERCENTILES: tuple[int, ...] = (50, 95, 99)


@dataclass
class Counter:
    """Monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        _require_finite("counter", self.name, amount)
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (e.g. current occupancy)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = _require_finite("gauge", self.name, value)


@dataclass
class Histogram:
    """Summary (count / sum / min / max / percentiles) of observations.

    Observations are retained (they are per-launch or per-trial scalars;
    a whole exhaustive sweep is a few hundred floats), so the
    p50/p95/p99 the exporters and ``repro top`` need are exact
    nearest-rank percentiles, not a streaming approximation.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        _require_finite("histogram", self.name, value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Exact nearest-rank percentile of everything observed so far."""
        if not self.samples:
            return 0.0
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        ordered = sorted(self.samples)
        rank = math.ceil(p / 100.0 * len(ordered))
        return ordered[max(0, rank - 1)]

    def summary(self) -> dict[str, float]:
        if not self.count:
            # No observations: only count/sum are meaningful.  min / max /
            # mean / percentiles are *omitted* (not zeroed, never NaN) so
            # exporters can skip the samples instead of inventing values.
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count, "sum": self.total,
            "min": self.min, "max": self.max, "mean": self.mean,
            **{f"p{p}": self.percentile(p) for p in HISTOGRAM_PERCENTILES},
        }


@dataclass
class MetricsRegistry:
    """Create-on-first-use registry for the three metric kinds."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(validate_metric_name(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(validate_metric_name(name))
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(validate_metric_name(name))
        return h

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view (the trace exporter's ``otherData.metrics``)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }
