"""Text summary / flame report over a recorded trace.

The text analogue of the Fig 10 stacked bars: per launch, the component
lanes are aggregated over all waves and printed next to the launch total
with an explicit reconciliation line (wave durations must sum to the
kernel span — the same invariant ``tests/test_obs_reconcile.py`` asserts).
"""

from __future__ import annotations

import math

from repro.obs.schema import (
    CAT_SIM_COMPONENT,
    CAT_SIM_KERNEL,
    CAT_SIM_PLANE,
    CAT_SIM_WAVE,
    CAT_TUNE_RUN,
    CAT_TUNE_TRIAL,
    COMPONENT_LANES,
)
from repro.obs.tracer import Span, Tracer


def top_planes(tracer: Tracer, n: int = 5) -> list[Span]:
    """The ``n`` costliest sampled plane spans, costliest first."""
    planes = tracer.device_spans(CAT_SIM_PLANE)
    return sorted(planes, key=lambda s: s.dur, reverse=True)[:n]


def _within(span: Span, begin: float, end: float) -> bool:
    return begin <= span.begin < end


def reconcile_failures(tracer: Tracer) -> list[str]:
    """Kernels whose wave durations do not sum to their span (empty = ok).

    The same invariant the summary prints as ``DRIFTS`` and
    ``tests/test_obs_reconcile.py`` asserts, exposed so the CLI can turn
    it into a nonzero exit code.
    """
    waves = tracer.device_spans(CAT_SIM_WAVE)
    failures: list[str] = []
    for k in tracer.device_spans(CAT_SIM_KERNEL):
        wave_sum = sum(
            w.dur for w in waves if _within(w, k.begin, k.begin + k.dur)
        )
        if not math.isclose(wave_sum, k.dur, rel_tol=1e-9, abs_tol=1e-6):
            failures.append(
                f"{k.name}: wave sum {wave_sum:,.3f} != kernel span {k.dur:,.3f}"
            )
    return failures


def summarize(tracer: Tracer, *, top: int = 5) -> str:
    """Render the whole trace as a human-readable report."""
    lines: list[str] = []

    kernels = tracer.device_spans(CAT_SIM_KERNEL)
    waves = tracer.device_spans(CAT_SIM_WAVE)
    components = tracer.device_spans(CAT_SIM_COMPONENT)
    if kernels:
        lines.append("simulated device timeline")
        lines.append("=" * 25)
    for k in kernels:
        end = k.begin + k.dur
        kwaves = [w for w in waves if _within(w, k.begin, end)]
        kcomp = [c for c in components if _within(c, k.begin, end)]
        totals = {lane: 0.0 for lane in COMPONENT_LANES}
        for c in kcomp:
            totals[c.name] += c.dur
        wave_sum = sum(w.dur for w in kwaves)
        ok = math.isclose(wave_sum, k.dur, rel_tol=1e-9, abs_tol=1e-6)
        lines.append(
            f"{k.name}: {k.dur:,.0f} cycles over {len(kwaves)} wave(s) "
            f"on {k.args.get('device', '?')} "
            f"[waves sum {'reconciles' if ok else f'DRIFTS: {wave_sum:,.0f}'}]"
        )
        counters = k.args.get("counters")
        if counters:
            # The same primary-limiter name the attribution report ranks
            # first, so flame view and attribution view agree.
            from repro.obs.attribution import LIMITER_NAMES, limiter_name

            top_key = max(LIMITER_NAMES, key=lambda key: counters[key])
            lines.append(
                f"  limiter: {limiter_name(counters)} "
                f"({counters[top_key]:.1%} of cycles), "
                f"occupancy {counters['achieved_occupancy']:.2f} "
                f"limited by {counters['occupancy_limiter']}"
            )
        for lane in COMPONENT_LANES:
            share = totals[lane] / k.dur if k.dur else 0.0
            bar = "#" * round(40 * min(1.0, share))
            lines.append(f"  {lane:>8s} {totals[lane]:>15,.0f}  {share:6.1%} {bar}")
    hot = top_planes(tracer, top)
    if hot:
        lines.append("")
        lines.append(f"top {len(hot)} hot planes (sampled)")
        for s in hot:
            lines.append(
                f"  wave {s.args.get('wave', '?')} {s.name}: {s.dur:,.1f} cycles "
                f"(mem {s.args.get('mem_cycles', 0):,.1f}, "
                f"compute {s.args.get('compute_cycles', 0):,.1f}, "
                f"exposed {s.args.get('exposed_cycles', 0):,.1f})"
            )

    runs = tracer.host_spans(CAT_TUNE_RUN)
    trials = tracer.host_spans(CAT_TUNE_TRIAL)
    if runs or trials:
        lines.append("")
        lines.append("tuning")
        lines.append("=" * 6)
        for r in runs:
            lines.append(
                f"{r.name}: {r.args.get('evaluated', '?')} evaluated / "
                f"{r.args.get('space_size', '?')} feasible "
                f"(static rejects {r.args.get('rejected_static', 0)}, "
                f"simulated rejects {r.args.get('rejected_simulated', 0)}) "
                f"in {r.dur / 1e3:,.1f} ms"
            )
        measured = [t for t in trials if "mpoints_per_s" in t.args]
        if measured:
            best = max(measured, key=lambda t: t.args["mpoints_per_s"])
            lines.append(
                f"  best trial {best.name}: "
                f"{best.args['mpoints_per_s']:,.1f} MPoint/s"
            )

    snap = tracer.metrics.snapshot()
    if snap["counters"] or snap["gauges"] or snap["histograms"]:
        lines.append("")
        lines.append("counters")
        lines.append("=" * 8)
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<32s} {value:>18,.1f}")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:<32s} {value:>18,.3f} (gauge)")
        for name, h in snap["histograms"].items():
            if not h["count"]:
                # Empty series carry only count/sum — no stats to print.
                lines.append(f"  {name:<32s} n=0")
                continue
            lines.append(
                f"  {name:<32s} n={h['count']} mean={h['mean']:,.1f} "
                f"min={h['min']:,.1f} max={h['max']:,.1f}"
            )
    return "\n".join(lines)
