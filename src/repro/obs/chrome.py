"""Chrome trace-event exporter (Perfetto / ``chrome://tracing`` viewable).

Layout:

* **pid 0 — "host (wall clock)"**: tuner trials, experiment drivers;
  ``ts``/``dur`` are real microseconds since trace start.
* **pid 1 — "simulated device (cycles)"**: kernel launches, waves,
  sampled planes and cost-component lanes; ``ts``/``dur`` are *simulated
  cycles* (the viewer's "us" axis reads as cycles — see
  docs/OBSERVABILITY.md).

Final metric values land in ``otherData.metrics`` (Chrome's counter
events want a time series; the registry holds end-of-run totals).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.schema import SCHEMA_VERSION
from repro.obs.tracer import DEVICE_TRACK, Span, Tracer

_PIDS = {"host": 0, "device": 1}
_PROCESS_NAMES = {0: "host (wall clock)", 1: "simulated device (cycles)"}


def _jsonable(value: Any) -> Any:
    """Coerce span args to JSON-safe values (tuples, numpy scalars...)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _event(span: Span, tid: int) -> dict[str, Any]:
    ev: dict[str, Any] = {
        "name": span.name,
        "cat": span.cat,
        "pid": _PIDS[span.track],
        "tid": tid,
        "ts": span.begin,
        "args": _jsonable(span.args),
    }
    if span.instant:
        ev["ph"] = "i"
        ev["s"] = "t"
    else:
        ev["ph"] = "X"
        ev["dur"] = span.dur
    return ev


def to_chrome_trace(
    tracer: Tracer, *, device_only: bool = False
) -> dict[str, Any]:
    """Export a tracer's spans and metrics as one trace document.

    ``device_only`` drops the host (wall clock) track — used by the
    golden-trace test, whose wall-clock timings are nondeterministic.
    """
    spans = tracer.device_spans() if device_only else tracer.spans
    # Stable lane numbering: device lanes in first-seen order after the
    # host's single "main" lane.
    tids: dict[tuple[str, str], int] = {}
    for span in spans:
        tids.setdefault((span.track, span.tid), len(tids))

    events: list[dict[str, Any]] = []
    for pid, name in sorted(_PROCESS_NAMES.items()):
        if device_only and name.startswith("host"):
            continue
        events.append({
            "name": "process_name", "cat": "__metadata", "ph": "M",
            "pid": pid, "tid": 0, "ts": 0, "args": {"name": name},
        })
    for (track, tid_name), tid in tids.items():
        events.append({
            "name": "thread_name", "cat": "__metadata", "ph": "M",
            "pid": _PIDS[track], "tid": tid, "ts": 0,
            "args": {"name": tid_name},
        })
    events.extend(
        _event(span, tids[(span.track, span.tid)]) for span in spans
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": SCHEMA_VERSION,
            "tool": "repro.obs",
            "metrics": tracer.metrics.snapshot(),
        },
    }


def write_chrome_trace(
    tracer: Tracer, path: str | Path, *, device_only: bool = False
) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(to_chrome_trace(tracer, device_only=device_only), indent=1)
        + "\n"
    )
    return path


__all__ = ["to_chrome_trace", "write_chrome_trace", "DEVICE_TRACK"]
