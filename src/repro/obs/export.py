"""Metrics exporters — Prometheus text exposition and OTLP-style JSON.

Both exporters render one :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
(the same document the Chrome trace embeds as ``otherData.metrics``), so
anything the tracer counted during a run can be scraped or shipped:

* :func:`to_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` lines, ``_total``-suffixed counters,
  histograms as summaries with ``quantile`` labels from the registry's
  exact p50/p95/p99);
* :func:`to_otlp_json` — an OTLP-shaped JSON document
  (``resourceMetrics`` → ``scopeMetrics`` → ``metrics`` with
  ``sum`` / ``gauge`` / ``summary`` points).

Determinism: snapshots are sorted by metric name and neither format
emits timestamps, so exporting the same registry twice is byte-identical
— which is what lets ``tests/test_obs_export.py`` pin golden outputs and
the ``tools/check.py`` events-lint step parse the exposition back.

Service-shaped gauges
---------------------
The instrumented engines maintain four service-level gauges in the
active tracer's registry (no-ops when tracing is off), sized for the
future ``repro serve`` daemon's scrape endpoint:

* ``tune.inflight`` — configurations currently dispatched for
  measurement (:mod:`repro.tuning.parallel`);
* ``tune.quarantined`` — configurations the resilient ladder has given
  up on so far (:mod:`repro.tuning.robust`);
* ``cache.hit_ratio`` — hits / lookups of one
  :class:`~repro.tuning.cache.TuningCache` instance;
* ``pool.workers_alive`` — current worker-pool size
  (:mod:`repro.tuning.parallel`).
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any

from repro.obs.metrics import HISTOGRAM_PERCENTILES, MetricsRegistry

#: The service-level gauge names above (documented export surface).
SERVICE_GAUGES: tuple[str, ...] = (
    "tune.inflight",
    "tune.quarantined",
    "cache.hit_ratio",
    "pool.workers_alive",
)

#: Model-calibration gauges set by ``repro explain`` (per-model Spearman
#: rank correlation of predicted vs measured rates, and top-k regret —
#: how much rate the model's top-k shortlist leaves on the table).
CALIBRATION_GAUGES: tuple[str, ...] = (
    "model.rank_corr",
    "model.topk_regret",
    "estimate.rank_corr",
    "estimate.topk_regret",
)

#: Fleet-health gauges set by the resilient cluster engine
#: (:mod:`repro.cluster.resilient`): surviving GPU count after
#: quarantines, and cumulative validated-corrupt exchange retries.
CLUSTER_GAUGES: tuple[str, ...] = (
    "cluster.gpus_alive",
    "cluster.exchange_retries",
)

#: Every gauge name this repo exports by convention — the one list
#: ``repro top`` and the golden exposition files key off, so a new gauge
#: lands here or it does not exist.
KNOWN_GAUGES: tuple[str, ...] = SERVICE_GAUGES + CALIBRATION_GAUGES + CLUSTER_GAUGES

#: Prefix every exported sample name carries (the Prometheus "namespace").
PROM_NAMESPACE = "repro"

_PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_PROM_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')


class ExportFormatError(ValueError):
    """Exporter output violates the target exposition format."""


def prometheus_name(name: str, kind: str) -> str:
    """Map a dotted registry name onto a Prometheus sample name.

    ``sim.bytes_moved`` → ``repro_sim_bytes_moved`` (counters gain the
    conventional ``_total`` suffix).
    """
    flat = f"{PROM_NAMESPACE}_{name.replace('.', '_')}"
    if kind == "counter" and not flat.endswith("_total"):
        flat += "_total"
    if not _PROM_NAME_RE.match(flat):
        raise ExportFormatError(f"metric name {name!r} maps to invalid {flat!r}")
    return flat


def _fmt(value: float) -> str:
    """Prometheus float rendering (repr keeps exporters byte-stable)."""
    return repr(float(value))


def to_prometheus(snapshot: dict[str, Any]) -> str:
    """Render one registry snapshot as Prometheus text exposition."""
    lines: list[str] = []

    def family(flat: str, source: str, kind: str) -> None:
        lines.append(f"# HELP {flat} repro metric {source}")
        lines.append(f"# TYPE {flat} {kind}")

    for name, value in snapshot.get("counters", {}).items():
        flat = prometheus_name(name, "counter")
        family(flat, name, "counter")
        lines.append(f"{flat} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        flat = prometheus_name(name, "gauge")
        family(flat, name, "gauge")
        lines.append(f"{flat} {_fmt(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        flat = prometheus_name(name, "summary")
        family(flat, name, "summary")
        if summary["count"]:
            # An empty series has no percentiles: its quantile samples are
            # omitted entirely (never 0.0, never NaN) per the exposition
            # convention; sum/count still export so the family is visible.
            for p in HISTOGRAM_PERCENTILES:
                lines.append(
                    f'{flat}{{quantile="{p / 100:g}"}} {_fmt(summary[f"p{p}"])}'
                )
        lines.append(f"{flat}_sum {_fmt(summary['sum'])}")
        lines.append(f"{flat}_count {_fmt(summary['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def to_otlp_json(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Render one registry snapshot as an OTLP-style JSON document.

    Shape follows OTLP/JSON metrics (``resourceMetrics`` →
    ``scopeMetrics`` → ``metrics``); data points omit ``timeUnixNano``
    because registry snapshots are logical-time documents — stamping a
    wall clock on export is the shipper's job, not the exporter's.
    """
    metrics: list[dict[str, Any]] = []
    for name, value in snapshot.get("counters", {}).items():
        metrics.append({
            "name": name,
            "sum": {
                "dataPoints": [{"asDouble": float(value)}],
                "isMonotonic": True,
                "aggregationTemporality": 2,  # CUMULATIVE
            },
        })
    for name, value in snapshot.get("gauges", {}).items():
        metrics.append({
            "name": name,
            "gauge": {"dataPoints": [{"asDouble": float(value)}]},
        })
    for name, summary in snapshot.get("histograms", {}).items():
        metrics.append({
            "name": name,
            "summary": {
                "dataPoints": [{
                    "count": int(summary["count"]),
                    "sum": float(summary["sum"]),
                    # Empty series: no quantile values (omitted, never NaN).
                    "quantileValues": [
                        {"quantile": p / 100.0,
                         "value": float(summary[f"p{p}"])}
                        for p in HISTOGRAM_PERCENTILES
                    ] if summary["count"] else [],
                }],
            },
        })
    return {
        "resourceMetrics": [{
            "resource": {
                "attributes": [{
                    "key": "service.name",
                    "value": {"stringValue": PROM_NAMESPACE},
                }],
            },
            "scopeMetrics": [{
                "scope": {"name": "repro.obs"},
                "metrics": metrics,
            }],
        }],
    }


def write_metrics(registry: MetricsRegistry, path: str | Path) -> Path:
    """Export ``registry`` to ``path``, format chosen by extension.

    ``.prom`` / ``.txt`` → Prometheus exposition; anything else (``.json``
    recommended) → OTLP-style JSON.
    """
    path = Path(path)
    snapshot = registry.snapshot()
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus(snapshot))
    else:
        path.write_text(
            json.dumps(to_otlp_json(snapshot), indent=1, sort_keys=True) + "\n"
        )
    return path


# -- exposition-format lint --------------------------------------------------

_SUMMARY_SUFFIXES = ("_sum", "_count")
_KINDS = ("counter", "gauge", "summary")


def lint_prometheus(text: str) -> list[str]:
    """Check exposition text for name/type/help-line conformance.

    Returns a list of problems (empty means clean).  This is the parser
    the ``tools/check.py`` events-lint step runs over the exporter's own
    output — the exporter cannot drift from the format without the gate
    noticing.  Checked per family: exactly one ``# HELP`` and one
    ``# TYPE`` line, in that order, before any sample; a known type;
    valid sample names belonging to the family (summaries may append
    ``_sum`` / ``_count``); parseable float values; well-formed labels;
    counters ending in ``_total``.
    """
    problems: list[str] = []
    current: str | None = None       # family name from # TYPE
    current_kind: str | None = None
    helped: set[str] = set()
    typed: set[str] = set()

    for n, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                problems.append(f"line {n}: HELP line needs a name and text")
                continue
            name = parts[2]
            if not _PROM_NAME_RE.match(name):
                problems.append(f"line {n}: invalid metric name {name!r}")
            if name in helped:
                problems.append(f"line {n}: duplicate HELP for {name}")
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append(f"line {n}: TYPE line needs a name and a kind")
                continue
            _, _, name, kind = parts
            if name not in helped:
                problems.append(f"line {n}: TYPE for {name} precedes its HELP")
            if name in typed:
                problems.append(f"line {n}: duplicate TYPE for {name}")
            typed.add(name)
            if kind not in _KINDS:
                problems.append(f"line {n}: unknown type {kind!r}")
            if kind == "counter" and not name.endswith("_total"):
                problems.append(
                    f"line {n}: counter {name} should end in _total"
                )
            current, current_kind = name, kind
            continue
        if line.startswith("#"):
            continue  # comments are legal
        m = _PROM_SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {n}: unparseable sample line {line!r}")
            continue
        name = m.group("name")
        base = name
        for suffix in _SUMMARY_SUFFIXES:
            if name.endswith(suffix):
                base = name[: -len(suffix)]
        if current is None or base not in (current,) and name != current:
            problems.append(
                f"line {n}: sample {name} outside its family "
                f"(current family: {current})"
            )
        elif base != name and current_kind != "summary":
            problems.append(
                f"line {n}: {name} sample in non-summary family {current}"
            )
        if name == current and name not in typed:
            problems.append(f"line {n}: sample {name} has no TYPE line")
        labels = m.group("labels")
        if labels:
            for pair in labels.split(","):
                if not _PROM_LABEL_RE.match(pair.strip()):
                    problems.append(f"line {n}: malformed label {pair!r}")
        try:
            value = float(m.group("value"))
        except ValueError:
            problems.append(
                f"line {n}: sample value {m.group('value')!r} is not a float"
            )
        else:
            # "nan" parses as a float, so reject it explicitly: our
            # exporters omit samples for empty series instead of emitting
            # NaN, and a NaN in a scrape poisons every aggregation.
            if math.isnan(value):
                problems.append(f"line {n}: sample value for {name} is NaN")
    return problems


def _sample_registry() -> MetricsRegistry:
    """A deterministic registry exercising all three kinds (for --lint)."""
    reg = MetricsRegistry()
    reg.counter("tune.trials").inc(42)
    reg.counter("sim.fault.throttle").inc(3)
    reg.gauge("tune.inflight").set(8)
    reg.gauge("cache.hit_ratio").set(0.75)
    h = reg.histogram("tune.trial_mpoints")
    for v in (110.0, 220.0, 330.0, 440.0, 550.0):
        h.observe(v)
    return reg


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.export`` — export/lint plumbing for the gate.

    ``--lint`` with no file renders the deterministic sample registry in
    both formats, lints the exposition and parses the OTLP JSON back;
    with files, lints each as Prometheus exposition text.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Prometheus/OTLP exporter self-lint "
                    "(the tools/check.py events-lint step)",
    )
    parser.add_argument("paths", nargs="*", metavar="EXPOSITION")
    parser.add_argument("--lint", action="store_true",
                        help="lint exposition files (or the built-in "
                             "sample export when no files are given)")
    args = parser.parse_args(argv)

    if not args.lint:
        print(to_prometheus(_sample_registry().snapshot()), end="")
        return 0

    status = 0
    if not args.paths:
        snapshot = _sample_registry().snapshot()
        problems = lint_prometheus(to_prometheus(snapshot))
        doc = to_otlp_json(snapshot)
        if len(doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]) == 0:
            problems.append("OTLP export produced no metrics")
        for problem in problems:
            print(f"sample export: {problem}")
            status = 1
        if status == 0:
            print("sample export: ok (prometheus + otlp)")
        return status
    for raw in args.paths:
        problems = lint_prometheus(Path(raw).read_text())
        for problem in problems:
            print(f"{raw}: {problem}")
            status = 1
        if not problems:
            print(f"{raw}: ok")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
