"""Trial archive — per-config decision provenance for the tuners.

The event stream (:mod:`repro.obs.events`) narrates *that* a trial
happened; this module records *why the tuner decided what it decided*.
One archived record per evaluated configuration carries

* the trial disposition straight off the finished
  :class:`~repro.tuning.evaluator.TrialOutcome` (status, measured rate,
  attempts, fault kinds, replay flag);
* the :class:`~repro.tuning.perfmodel.PaperModel` prediction for the
  config (section VI's ranking score);
* the codegen-time :class:`~repro.analysis.estimate.PerfEstimate`
  (or the reason it could not be computed);
* the full derived :class:`~repro.obs.counters.CounterSet` the config
  would exhibit on a clean launch.

Everything beyond the outcome is **re-derived in the parent, at capture
time, from the plan alone**: counters, predictions and estimates are
pure functions of ``(plan, device, grid)`` (fault injection perturbs
measurement, never the derivations), so an archived record is identical
whether the measurement ran inline, in a pool worker, or was replayed
from a resume journal.  That is what makes the archive file
byte-identical at ``--jobs 1`` and ``--jobs 4`` — the same determinism
contract the journal and the event stream already keep.

The write discipline matches both of them: JSONL, line 1 a header
binding the file to the schema version and an optional session key, one
record per line with sorted keys, each flushed and fsynced, torn final
line tolerated on read.  With no archive installed
(:func:`current_archive` is ``None``) every capture point is one
:class:`~contextvars.ContextVar` lookup — zero perturbation of any
simulated number, pinned by ``repro bench diff`` staying bit-identical.
"""

from __future__ import annotations

import json
import logging
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.tuning.evaluator import TRIAL_STATUSES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.device import DeviceSpec
    from repro.kernels.base import KernelPlan
    from repro.kernels.config import BlockConfig
    from repro.tuning.evaluator import TrialOutcome

logger = logging.getLogger("repro.obs.archive")

#: Version stamped into archive headers — bump on incompatible changes
#: to the record layout.
ARCHIVE_SCHEMA_VERSION = 1

_ARCHIVE_TOOL = "repro.obs.archive"


class ArchiveError(ValueError):
    """An archive file (or record) violates the schema."""


@dataclass(frozen=True)
class ArchiveRecord:
    """One evaluated configuration's full decision provenance.

    ``predicted`` is the paper model's MPoint/s for the config;
    ``estimate`` the codegen-time :class:`PerfEstimate` as its JSON
    object (``estimate_error`` names the refusal when it is ``None``);
    ``counters`` the derived clean-launch
    :class:`~repro.obs.counters.CounterSet` as a flat dict (``None``
    for configurations the simulator would refuse to launch).
    """

    config: tuple[int, int, int, int]
    label: str
    status: str
    mpoints_per_s: float
    attempts: int
    faults: tuple[str, ...]
    replayed: bool
    predicted: float | None
    estimate: dict[str, Any] | None
    estimate_error: str | None
    counters: dict[str, Any] | None

    def to_obj(self) -> dict[str, Any]:
        return {
            "config": list(self.config),
            "label": self.label,
            "status": self.status,
            "mpoints_per_s": self.mpoints_per_s,
            "attempts": self.attempts,
            "faults": list(self.faults),
            "replayed": self.replayed,
            "predicted": self.predicted,
            "estimate": self.estimate,
            "estimate_error": self.estimate_error,
            "counters": self.counters,
        }

    @classmethod
    def from_obj(cls, obj: Any, *, path: str = "$") -> "ArchiveRecord":
        if not isinstance(obj, dict):
            raise ArchiveError(
                f"{path}: record must be an object, got {type(obj).__name__}"
            )
        try:
            config = tuple(int(v) for v in obj["config"])
            if len(config) != 4:
                raise ValueError(f"config needs 4 ints, got {len(config)}")
            status = str(obj["status"])
            if status not in TRIAL_STATUSES:
                raise ValueError(f"unknown trial status {status!r}")
            record = cls(
                config=config,  # type: ignore[arg-type]
                label=str(obj["label"]),
                status=status,
                mpoints_per_s=float(obj["mpoints_per_s"]),
                attempts=int(obj["attempts"]),
                faults=tuple(str(f) for f in obj["faults"]),
                replayed=bool(obj["replayed"]),
                predicted=(
                    None if obj.get("predicted") is None
                    else float(obj["predicted"])
                ),
                estimate=obj.get("estimate"),
                estimate_error=obj.get("estimate_error"),
                counters=obj.get("counters"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArchiveError(f"{path}: bad archive record: {exc}") from exc
        if record.estimate is not None and not isinstance(record.estimate, dict):
            raise ArchiveError(f"{path}: estimate must be an object or null")
        if record.counters is not None and not isinstance(record.counters, dict):
            raise ArchiveError(f"{path}: counters must be an object or null")
        return record

    @property
    def measured(self) -> bool:
        """Did this trial produce a usable rate?"""
        return self.status == "ok"


# -- deriving a record from a finished trial ---------------------------------


def derive_record(
    outcome: "TrialOutcome",
    *,
    build: Callable[["BlockConfig"], "KernelPlan"],
    device: "DeviceSpec",
    grid_shape: tuple[int, int, int],
    predicted: float | None = None,
) -> ArchiveRecord:
    """Build one archive record from a finished outcome, purely.

    The prediction, estimate and counters are computed here, in the
    capturing (parent) process, from the plan alone — never taken from
    the measurement — so the record is independent of where or whether
    the trial actually ran (replayed outcomes derive identically).
    ``predicted`` short-circuits the model evaluation when a tuner
    already scored the config (the model-based shortlist); its batch and
    scalar paths are bit-identical, so either source yields the same
    number.
    """
    # Deferred imports: the derivations pull the model/estimator/timing
    # stack, which the no-archive path must never pay for (and which
    # would cycle at import time: repro.tuning imports repro.obs).
    from repro.errors import ReproError
    from repro.gpusim.timing import params_for, time_kernel

    plan = build(outcome.config)
    if predicted is None:
        from repro.tuning.perfmodel import ModelInputs, PaperModel

        try:
            inputs = ModelInputs.from_plan(plan, device, grid_shape)
            predicted = PaperModel(device).predict(inputs).mpoints_per_s
        except ReproError:
            predicted = None

    from repro.analysis.estimate import try_estimate

    est, estimate_error = try_estimate(plan, device, grid_shape)
    estimate = est.to_json_obj() if est is not None else None

    counters: dict[str, Any] | None = None
    try:
        from repro.obs.counters import derive_counters

        block = plan.block_workload(device, grid_shape)
        grid = plan.grid_workload(device, grid_shape)
        timing = time_kernel(block, grid, device)
        counters = derive_counters(
            timing, block, grid, device, params_for(device)
        ).as_dict()
    except ReproError:
        counters = None

    return ArchiveRecord(
        config=outcome.config.as_tuple(),
        label=outcome.config.label(),
        status=outcome.status,
        mpoints_per_s=outcome.mpoints_per_s,
        attempts=outcome.attempts,
        faults=outcome.faults,
        replayed=outcome.replayed,
        predicted=predicted,
        estimate=estimate,
        estimate_error=estimate_error,
        counters=counters,
    )


# -- the writer --------------------------------------------------------------


class TrialArchive:
    """Append-only JSONL archive, flushed and fsynced per record.

    Line 1 is a header binding the file to the schema version and an
    optional session key; each further line is one
    :class:`ArchiveRecord` with sorted keys.  Same crash discipline as
    the journal and the event stream: a killed process leaves at most
    one torn final line, everything before it is durable.
    """

    def __init__(self, path: str | Path, *, session: str | None = None) -> None:
        self.path = Path(path)
        self.session = session
        self.records_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header: dict[str, Any] = {
            "archive": _ARCHIVE_TOOL,
            "version": ARCHIVE_SCHEMA_VERSION,
        }
        if session is not None:
            header["session"] = session
        self._fh = open(self.path, "w")
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, record: ArchiveRecord) -> None:
        """Append one record (flushed and fsynced)."""
        self._fh.write(json.dumps(record.to_obj(), sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records_written += 1

    def capture(
        self,
        outcome: "TrialOutcome",
        *,
        build: Callable[["BlockConfig"], "KernelPlan"],
        device: "DeviceSpec",
        grid_shape: tuple[int, int, int],
        predicted: float | None = None,
    ) -> ArchiveRecord:
        """Derive and append the record for one finished trial."""
        record = derive_record(
            outcome, build=build, device=device, grid_shape=grid_shape,
            predicted=predicted,
        )
        self.record(record)
        return record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TrialArchive":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


# -- the contextvar plumbing -------------------------------------------------

#: The contextvar every capture point consults.  ``None`` (the default)
#: means archiving is off and the hook is one lookup + branch, mirroring
#: the event layer's disabled path.
_ACTIVE: ContextVar[TrialArchive | None] = ContextVar(
    "repro_obs_archive", default=None
)


def current_archive() -> TrialArchive | None:
    """The archive active in this context, or ``None`` when off."""
    return _ACTIVE.get()


@contextmanager
def archive_stream(archive: TrialArchive) -> Iterator[TrialArchive]:
    """Install ``archive`` for the ``with`` body; yields it back."""
    token = _ACTIVE.set(archive)
    try:
        yield archive
    finally:
        _ACTIVE.reset(token)


def disable_archive_in_process() -> None:
    """Force archiving off in this process (pool-worker initializer hook).

    Forked workers inherit the parent's archive through the contextvar;
    an fsync'd file appended from several processes at once would
    interleave nondeterministically.  Workers therefore never capture —
    the search loops capture in the parent, in input order, from the
    collected outcomes (mirrors ``disable_events_in_process``).
    """
    _ACTIVE.set(None)


# -- reading an archive back -------------------------------------------------


def read_archive(
    path: str | Path, *, strict: bool = False
) -> tuple[dict[str, Any], list[ArchiveRecord]]:
    """Parse one archive file; returns ``(header, records)``.

    Tolerates a torn final line exactly like the journal and event
    readers.  With ``strict`` every record must parse against the full
    schema (the ``tools/check.py`` explain-smoke mode); without it the
    same validation applies — the record layout *is* the schema — but a
    torn final line is still the only tolerated damage.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise ArchiveError(f"{path}: cannot read archive: {exc}") from exc
    if not lines:
        raise ArchiveError(f"{path}: archive is empty (no header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ArchiveError(f"{path}:1: unreadable header: {exc}") from exc
    if (
        not isinstance(header, dict)
        or header.get("archive") != _ARCHIVE_TOOL
        or header.get("version") != ARCHIVE_SCHEMA_VERSION
    ):
        raise ArchiveError(
            f"{path}:1: not a {_ARCHIVE_TOOL} v{ARCHIVE_SCHEMA_VERSION} "
            f"archive header: {header!r}"
        )
    records: list[ArchiveRecord] = []
    for i, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            if i == len(lines) and not strict:
                logger.warning(
                    "%s:%d: dropping torn final archive line (%s)", path, i, exc
                )
                break
            raise ArchiveError(
                f"{path}:{i}: corrupt archive record: {exc}"
            ) from exc
        records.append(ArchiveRecord.from_obj(obj, path=f"{path}:{i}"))
    return header, records


def validate_archive(path: str | Path) -> int:
    """Strictly validate an archive file; returns the record count."""
    _header, records = read_archive(path, strict=True)
    return len(records)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.archive ARCHIVE...`` — validate archive files."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.archive",
        description="validate trial-archive files against the schema "
                    "(the tools/check.py explain-smoke step)",
    )
    parser.add_argument("paths", nargs="+", metavar="ARCHIVE")
    args = parser.parse_args(argv)
    status = 0
    for raw in args.paths:
        try:
            count = validate_archive(raw)
        except ArchiveError as exc:
            print(f"{raw}: INVALID: {exc}")
            status = 1
        else:
            print(f"{raw}: ok ({count} record(s))")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
