"""Trace-schema self-check (``python -m repro.obs.selfcheck``).

Run by ``tools/check.py``: simulates one fixed Table-I configuration
under tracing, exports the Chrome trace, validates it against the
documented schema, re-asserts the reconciliation invariant (wave
durations sum exactly to each kernel's span), and reconciles the
hardware-counter set against the first-principles simulator quantities
it is derived from (transaction enumerators, cycle totals, issue-width
cap, stall shares summing to one).  Exit code 0 on success.
"""

from __future__ import annotations

import math
import sys

from repro.obs.chrome import to_chrome_trace
from repro.obs.schema import CAT_SIM_KERNEL, CAT_SIM_WAVE, validate_trace
from repro.obs.tracer import Tracer, tracing


def run_selfcheck() -> list[str]:
    """Returns a list of failures (empty = pass)."""
    from repro.gpusim.executor import simulate
    from repro.kernels.factory import make_kernel
    from repro.stencils.spec import symmetric

    plan = make_kernel("inplane_fullslice", symmetric(4), (32, 4, 1, 2), "sp")
    with tracing(Tracer()) as tracer:
        report = simulate(plan, "gtx580", (128, 128, 64))

    failures: list[str] = []
    trace = to_chrome_trace(tracer)
    try:
        validate_trace(trace)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
        failures.append(f"schema validation: {exc}")

    kernels = tracer.device_spans(CAT_SIM_KERNEL)
    waves = tracer.device_spans(CAT_SIM_WAVE)
    if len(kernels) != 1:
        failures.append(f"expected 1 kernel span, got {len(kernels)}")
    else:
        k = kernels[0]
        wave_sum = sum(w.dur for w in waves)
        if not math.isclose(wave_sum, k.dur, rel_tol=1e-9, abs_tol=1e-6):
            failures.append(
                f"wave sum {wave_sum} != kernel span {k.dur}"
            )
        if not math.isclose(k.dur, report.total_cycles, rel_tol=1e-9):
            failures.append(
                f"kernel span {k.dur} != SimReport.total_cycles "
                f"{report.total_cycles}"
            )
    failures.extend(_counter_failures(plan, report))
    return failures


def _counter_failures(plan, report) -> list[str]:
    """Reconcile the counter set against the quantities it derives from."""
    from repro.gpusim.device import get_device
    from repro.obs.counters import STALL_KEYS

    failures: list[str] = []
    c = report.counters
    if c is None:
        return ["SimReport.counters missing from an executor-built report"]

    device = get_device(report.device_name)
    grid_shape = report.meta["grid_shape"]
    workload = plan.block_workload(device, grid_shape)
    grid = plan.grid_workload(device, grid_shape)
    sweep = grid.planes * grid.blocks

    checks = [
        (
            "gld_transactions vs memory enumerator",
            c["gld_transactions"] == workload.memory.load_transactions * sweep,
        ),
        (
            "gst_transactions vs memory enumerator",
            c["gst_transactions"] == workload.memory.store_transactions * sweep,
        ),
        (
            "dram_bytes vs bandwidth identity",
            math.isclose(
                c["dram_bytes"],
                report.bandwidth_gbs * 1e9 * report.time_s,
                rel_tol=1e-9,
            ),
        ),
        (
            "gld_efficiency vs SimReport.load_efficiency",
            c["gld_efficiency"] == report.load_efficiency,
        ),
        (
            "stall fractions sum to 1",
            math.isclose(sum(c[k] for k in STALL_KEYS), 1.0, rel_tol=1e-9),
        ),
        (
            "ipc within the issue-width cap",
            c["ipc"] <= device.rules.issue_width + 1e-12,
        ),
        (
            "achieved_occupancy vs occupancy result",
            c["achieved_occupancy"] == report.occupancy.occupancy,
        ),
    ]
    failures.extend(f"counter check failed: {name}" for name, ok in checks if not ok)
    return failures


def main() -> int:
    failures = run_selfcheck()
    for failure in failures:
        print(f"[obs.selfcheck] {failure}", file=sys.stderr)
    if not failures:
        print("[obs.selfcheck] trace schema + reconciliation: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
