"""Hardware-counter analogue — the ``nvprof --metrics`` layer.

One simulated launch yields one :class:`CounterSet`: a frozen,
schema-validated set of profiler counters (DRAM transactions and
achieved-bandwidth fraction, load/store efficiency, shared-memory replay
rate, IPC, the warp-issue stall breakdown, occupancy with its binding
limiter named).  Every value is derived *mechanistically* from the same
quantities the cycle model priced — the memory enumerators
(:class:`repro.gpusim.memory.MemoryStats`), the instruction-issue
breakdown (:func:`repro.gpusim.timing.issue_slots`) and the wave
decomposition (:func:`repro.gpusim.timing.wave_geometry`) — never from
hard-coded expectations, so a counter cannot drift from the simulator it
describes (property-enforced in ``tests/test_obs_counters.py``).

Counting conventions (documented because nvprof has the same split):

* byte/transaction counters cover the sweep's *output* planes
  (``grid.planes``), matching ``SimReport.bandwidth_gbs`` and the
  ``sim.bytes_moved`` metric;
* instruction/cycle counters cover the planes the timing model actually
  priced (``timing.planes_per_block``, prologue included), matching
  ``TimingResult.total_cycles``.

``docs/OBSERVABILITY.md`` carries the nvprof ↔ repro name mapping table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.device import DeviceSpec
    from repro.gpusim.timing import TimingParams, TimingResult
    from repro.gpusim.workload import BlockWorkload, GridWorkload

#: The frozen counter-name set.  This is stable API shared by the trace
#: schema (``sim.kernel`` spans carry exactly these keys), the telemetry
#: v2 records, the regression sentinel and the attribution engine;
#: additions require a telemetry schema bump.
COUNTER_KEYS: tuple[str, ...] = (
    "gld_transactions",       # global-load transactions issued per sweep
    "gst_transactions",       # global-store transactions issued per sweep
    "dram_bytes",             # effective DRAM bytes serviced per sweep
    "dram_bw_fraction",       # achieved fraction of measured bandwidth
    "gld_efficiency",         # requested / serviced load bytes (Fig 9)
    "gst_efficiency",         # requested / transferred store bytes
    "l2_halo_hit_bytes",      # halo bytes served from L2 per sweep
    "local_spill_bytes",      # register-spill local-memory bytes per sweep
    "shared_replay_rate",     # smem replay slots per smem instruction
    "inst_issued",            # warp instructions issued per sweep
    "ipc",                    # warp instructions per SM-cycle
    "stall_mem_frac",         # cycle share: DRAM bandwidth stream
    "stall_compute_frac",     # cycle share: arithmetic / instruction issue
    "stall_latency_frac",     # cycle share: exposed DRAM latency
    "stall_sync_frac",        # cycle share: barriers
    "stall_sched_frac",       # cycle share: block scheduling overhead
    "achieved_occupancy",     # resident-warp occupancy
)

#: The five ``stall_*_frac`` keys, in component-lane order.
STALL_KEYS: tuple[str, ...] = (
    "stall_mem_frac",
    "stall_compute_frac",
    "stall_latency_frac",
    "stall_sync_frac",
    "stall_sched_frac",
)


class CounterSchemaError(ValueError):
    """A counter set violates the frozen schema."""


@dataclass(frozen=True)
class CounterSet:
    """One launch's counter values plus the named occupancy limiter.

    ``values`` holds exactly :data:`COUNTER_KEYS` (validated at
    construction); ``occupancy_limiter`` is the
    :attr:`repro.gpusim.occupancy.OccupancyResult.limiter` string
    (``"registers"`` / ``"smem"`` / ``"warps"`` / ``"blocks"``).
    """

    values: dict[str, float] = field(default_factory=dict)
    occupancy_limiter: str = ""

    def __post_init__(self) -> None:
        validate_counters(self.values, self.occupancy_limiter)

    def __getitem__(self, key: str) -> float:
        return self.values[key]

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready mapping: the values plus the limiter name."""
        out: dict[str, Any] = {k: self.values[k] for k in COUNTER_KEYS}
        out["occupancy_limiter"] = self.occupancy_limiter
        return out


def validate_counters(values: Mapping[str, float], limiter: str) -> None:
    """Raise :class:`CounterSchemaError` unless the set matches the schema."""
    missing = set(COUNTER_KEYS) - set(values)
    unknown = set(values) - set(COUNTER_KEYS)
    if missing or unknown:
        raise CounterSchemaError(
            f"counter keys drift from the frozen set: missing {sorted(missing)}, "
            f"unknown {sorted(unknown)}"
        )
    for key in COUNTER_KEYS:
        v = values[key]
        if not isinstance(v, (int, float)) or isinstance(v, bool) or not math.isfinite(v):
            raise CounterSchemaError(f"counter {key!r} must be a finite number, got {v!r}")
        if v < 0:
            raise CounterSchemaError(f"counter {key!r} must be non-negative, got {v!r}")
    if not limiter or not isinstance(limiter, str):
        raise CounterSchemaError("occupancy_limiter must be a non-empty string")


def load_efficiency(
    workload: "BlockWorkload", params: "TimingParams"
) -> float:
    """The Fig 9 metric: requested load bytes over the serviced request stream.

    Serviced = transferred lines plus the partition-camping serialization
    surcharge (no L2 discount: the profiler counts the request stream, and
    reuse credits would hide exactly the inefficiency the metric exists to
    expose).  This is the single source for both
    ``SimReport.load_efficiency`` and the ``gld_efficiency`` counter.
    """
    mem = workload.memory
    eff_loads = (
        mem.load_transferred_bytes
        + mem.camped_bytes * (params.partition_camping - 1.0)
    )
    if not eff_loads:
        return 1.0
    return min(1.0, mem.requested_load_bytes / eff_loads)


def shared_replay_slots(
    workload: "BlockWorkload", device: "DeviceSpec"
) -> tuple[float, float]:
    """``(base_instructions, replay_slots)`` for shared memory, per block-plane.

    Replays = effective issue slots (tile-profile conflict factor times the
    architectural DP factor, exactly as the compute stream prices them)
    minus the raw instruction count.
    """
    from repro.gpusim.timing import issue_slots  # deferred: package layering

    slots = issue_slots(workload, device)
    return slots.smem_base, slots.smem - slots.smem_base


def derive_counters(
    timing: "TimingResult",
    workload: "BlockWorkload",
    grid: "GridWorkload",
    device: "DeviceSpec",
    params: "TimingParams",
) -> CounterSet:
    """Derive the full counter set for one simulated sweep."""
    from repro.gpusim.timing import issue_slots, wave_geometry

    mem = workload.memory
    sweep = grid.planes * grid.blocks
    reuse = params.l2_halo_reuse if device.l2_bytes > 0 else 0.0

    time_s = timing.total_cycles / device.clock_hz
    # Multiplication order `x * grid.planes * grid.blocks` is kept from the
    # historical executor/simtrace expressions: the counters replaced those
    # inline computations and must stay bit-identical to them.
    dram_bytes = timing.effective_bytes_per_plane * grid.planes * grid.blocks
    spill_bytes_per_plane = (
        timing.spilled_regs * workload.threads_per_block
        * params.spill_bytes_per_reg
    )

    slots = issue_slots(workload, device, params, timing.spilled_regs)
    inst_issued = slots.total * timing.planes_per_block * grid.blocks
    replay_rate = (
        (slots.smem - slots.smem_base) / slots.smem_base if slots.smem_base else 0.0
    )

    # Cycle shares from the same wave decomposition the timeline uses.
    planes = timing.planes_per_block
    comp = {"mem": 0.0, "compute": 0.0, "exposed": 0.0, "sync": 0.0, "sched": 0.0}
    for wave in wave_geometry(timing):
        comp["mem"] += wave.plane_cost.mem_cycles * planes
        comp["compute"] += wave.plane_cost.compute_cycles * planes
        comp["exposed"] += wave.plane_cost.exposed_cycles * planes
        comp["sync"] += wave.plane_cost.sync_cycles * planes
        comp["sched"] += wave.blocks_per_sm * timing.sched_overhead_cycles
    comp_total = sum(comp.values())

    gst_eff = (
        min(1.0, mem.requested_store_bytes / mem.store_transferred_bytes)
        if mem.store_transferred_bytes
        else 1.0
    )

    values = {
        "gld_transactions": mem.load_transactions * sweep,
        "gst_transactions": mem.store_transactions * sweep,
        "dram_bytes": dram_bytes,
        "dram_bw_fraction": (
            dram_bytes / time_s / (device.measured_bandwidth_gbs * 1e9)
        ),
        "gld_efficiency": load_efficiency(workload, params),
        "gst_efficiency": gst_eff,
        "l2_halo_hit_bytes": (
            mem.halo_transferred_bytes * reuse * grid.planes * grid.blocks
        ),
        "local_spill_bytes": spill_bytes_per_plane * grid.planes * grid.blocks,
        "shared_replay_rate": replay_rate,
        "inst_issued": inst_issued,
        "ipc": inst_issued / (timing.total_cycles * device.sm_count),
        "stall_mem_frac": comp["mem"] / comp_total,
        "stall_compute_frac": comp["compute"] / comp_total,
        "stall_latency_frac": comp["exposed"] / comp_total,
        "stall_sync_frac": comp["sync"] / comp_total,
        "stall_sched_frac": comp["sched"] / comp_total,
        "achieved_occupancy": timing.occupancy.occupancy,
    }
    return CounterSet(values=values, occupancy_limiter=timing.occupancy.limiter)
