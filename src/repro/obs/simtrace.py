"""Device-track span emission for one simulated launch.

The cycle model (:mod:`repro.gpusim.timing`) is analytic — it prices a
whole sweep in closed form rather than stepping through time — so the
profiler *reconstructs* the timeline a stepping simulator would have
produced: per-wave spans (every wave but the last runs ``ActBlks`` blocks
per SM; the remainder wave runs fewer), sampled per-plane spans inside
each wave, and one lane per cost component.

Reconciliation is by construction, and test-enforced
(``tests/test_obs_reconcile.py``):

* the last wave's duration is computed as ``total - (stages-1) * stage``,
  so wave durations sum *exactly* to ``TimingResult.total_cycles``;
* full waves carry the same per-plane component cycles that
  ``SimReport.breakdown`` reports, so component-lane spans reconcile with
  the breakdown keys frozen in :data:`repro.gpusim.report.BREAKDOWN_KEYS`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.schema import (
    CAT_SIM_COMPONENT,
    CAT_SIM_KERNEL,
    CAT_SIM_PLANE,
    CAT_SIM_WAVE,
)
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.device import DeviceSpec
    from repro.gpusim.report import SimReport
    from repro.gpusim.timing import TimingParams, TimingResult
    from repro.gpusim.workload import BlockWorkload, GridWorkload


def emit_kernel_spans(
    tracer: Tracer,
    report: "SimReport",
    timing: "TimingResult",
    workload: "BlockWorkload",
    grid: "GridWorkload",
    device: "DeviceSpec",
    params: "TimingParams",
) -> None:
    """Record one launch's device-track spans and accumulate its counters."""
    from repro.gpusim.timing import wave_geometry  # deferred: no import cycle
    from repro.obs.counters import derive_counters, shared_replay_slots

    base = tracer.alloc_cycles(timing.total_cycles)
    planes = timing.planes_per_block
    counters = report.counters or derive_counters(
        timing, workload, grid, device, params
    )

    tracer.device_span(
        report.kernel_name,
        CAT_SIM_KERNEL, "kernel", base, timing.total_cycles,
        device=report.device_name,
        kernel=report.kernel_name,
        grid_shape=report.meta.get("grid_shape"),
        block=report.meta.get("block"),
        dtype=report.meta.get("dtype"),
        total_cycles=timing.total_cycles,
        mpoints_per_s=report.mpoints_per_s,
        load_efficiency=report.load_efficiency,
        occupancy=report.occupancy.occupancy,
        stages=timing.stages,
        blocks=timing.blocks,
        breakdown=dict(report.breakdown),
        counters=counters.as_dict(),
        # Present only on launches an injected fault touched (throttle /
        # ECC); clean traces carry exactly the pre-fault-layer args.
        **(
            {"faults": report.meta["faults"]}
            if report.meta.get("faults") else {}
        ),
    )

    _, replay_slots = shared_replay_slots(workload, device)
    spill_bytes_per_plane = (
        timing.spilled_regs * workload.threads_per_block
        * params.spill_bytes_per_reg
    )

    m = tracer.metrics
    m.counter("sim.kernels").inc()
    m.counter("sim.cycles").inc(timing.total_cycles)
    m.counter("sim.bytes_moved").inc(counters["dram_bytes"])
    m.counter("sim.l2_halo_hit_bytes").inc(counters["l2_halo_hit_bytes"])
    m.counter("sim.spill_bytes").inc(counters["local_spill_bytes"])
    # Replay slots follow the instruction convention (priced planes), the
    # same definition behind the shared_replay_rate counter.
    m.counter("sim.bank_conflict_issue_slots").inc(
        replay_slots * planes * grid.blocks
    )
    m.gauge("sim.occupancy").set(report.occupancy.occupancy)

    for w, wave in enumerate(wave_geometry(timing)):
        blocks_per_sm, cost = wave.blocks_per_sm, wave.plane_cost
        wbase = base + wave.begin
        dur = wave.dur
        tracer.device_span(
            f"wave {w}", CAT_SIM_WAVE, "waves", wbase, dur,
            wave=w,
            blocks_per_sm=blocks_per_sm,
            planes=planes,
            plane_cycles=cost.cycles,
            mem_cycles_per_plane=cost.mem_cycles,
            compute_cycles_per_plane=cost.compute_cycles,
            exposed_cycles_per_plane=cost.exposed_cycles,
            sync_cycles_per_plane=cost.sync_cycles,
            bytes_per_block_plane=timing.effective_bytes_per_plane,
            spill_bytes_per_plane=spill_bytes_per_plane,
        )
        components = (
            ("mem", cost.mem_cycles * planes),
            ("compute", cost.compute_cycles * planes),
            ("exposed", cost.exposed_cycles * planes),
            ("sync", cost.sync_cycles * planes),
            ("overhead", blocks_per_sm * timing.sched_overhead_cycles),
        )
        for lane, cycles in components:
            tracer.device_span(
                lane, CAT_SIM_COMPONENT, f"component:{lane}", wbase, cycles,
                wave=w, per_plane=cycles / planes,
            )
        for p in range(min(tracer.plane_limit, planes)):
            tracer.device_span(
                f"plane {p}", CAT_SIM_PLANE, "planes",
                wbase + p * cost.cycles, cost.cycles,
                wave=w, plane=p,
                mem_cycles=cost.mem_cycles,
                compute_cycles=cost.compute_cycles,
                exposed_cycles=cost.exposed_cycles,
                sync_cycles=cost.sync_cycles,
            )
        m.counter("sim.mem_cycles").inc(cost.mem_cycles * planes)
        m.counter("sim.compute_cycles").inc(cost.compute_cycles * planes)
        m.counter("sim.latency_exposed_cycles").inc(cost.exposed_cycles * planes)
        m.counter("sim.sync_cycles").inc(cost.sync_cycles * planes)
        m.counter("sim.sched_overhead_cycles").inc(
            blocks_per_sm * timing.sched_overhead_cycles
        )
        m.histogram("sim.plane_cycles").observe(cost.cycles)
