"""Trace schema: the event taxonomy and a structural validator.

The Chrome trace-event documents produced by :mod:`repro.obs.chrome`
follow the schema documented in ``docs/OBSERVABILITY.md``:

* top level: ``{"traceEvents": [...], "displayTimeUnit": "ms",
  "otherData": {"schema_version", "tool", "metrics"}}``;
* every event carries ``name``/``cat``/``ph``/``pid``/``tid``/``ts``;
* ``ph`` is ``"X"`` (complete span, with ``dur >= 0``), ``"i"``
  (instant) or ``"M"`` (metadata);
* non-metadata categories come from :data:`CATEGORIES`;
* device-track ``sim.kernel`` events carry a ``breakdown`` arg whose
  keys are exactly :data:`repro.gpusim.report.BREAKDOWN_KEYS` — the one
  frozen component-name set shared by ``SimReport``, the trace schema,
  and the reconciliation tests — and (since schema version 2) a
  ``counters`` arg whose keys are exactly
  :data:`repro.obs.counters.COUNTER_KEYS` plus ``occupancy_limiter``.

:func:`validate_trace` is the self-check run by ``tools/check.py`` and
the golden-trace test; it raises :class:`TraceSchemaError` with the path
of the first offending event.
"""

from __future__ import annotations

from typing import Any

#: Version stamped into ``otherData`` — bump on incompatible changes.
#: v2: ``sim.kernel`` spans carry the hardware-counter analogue set.
SCHEMA_VERSION = 2

#: Span/event categories (the taxonomy of docs/OBSERVABILITY.md).
CAT_SIM_KERNEL = "sim.kernel"        #: one simulated launch (device track)
CAT_SIM_WAVE = "sim.wave"            #: one scheduling wave within a launch
CAT_SIM_PLANE = "sim.plane"          #: one sampled z-plane within a wave
CAT_SIM_COMPONENT = "sim.component"  #: per-wave cost-component lane
CAT_TUNE_RUN = "tune.run"            #: one whole tuner invocation (host)
CAT_TUNE_TRIAL = "tune.trial"        #: one evaluated/rejected configuration
CAT_HARNESS = "harness.experiment"   #: experiment-driver scope (host)
CAT_CLI = "cli"                      #: CLI command scope (host)
#: One injected fault (host instant; see ``repro.gpusim.faults``).  Added
#: after the v2 freeze as a pure extension: traces without faults are
#: byte-identical to pre-fault v2 traces, so no version bump.
CAT_SIM_FAULT = "sim.fault"
#: One worker's chunk of a parallel tuning sweep (host track, one
#: ``worker:<n>`` lane per pool worker; see ``repro.tuning.parallel``).
#: Pure extension like ``sim.fault``: serial traces are unchanged.
CAT_TUNE_WORKER = "tune.worker"

CATEGORIES = frozenset({
    CAT_SIM_KERNEL,
    CAT_SIM_WAVE,
    CAT_SIM_PLANE,
    CAT_SIM_COMPONENT,
    CAT_SIM_FAULT,
    CAT_TUNE_RUN,
    CAT_TUNE_TRIAL,
    CAT_TUNE_WORKER,
    CAT_HARNESS,
    CAT_CLI,
})

#: Component lanes of the device track; ``component:<name>`` thread names.
COMPONENT_LANES = ("mem", "compute", "exposed", "sync", "overhead")

_PHASES = frozenset({"X", "i", "M"})
_REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "pid", "tid", "ts")


class TraceSchemaError(ValueError):
    """A trace document violates the documented schema."""


def _fail(path: str, message: str) -> None:
    raise TraceSchemaError(f"{path}: {message}")


def validate_trace(trace: dict[str, Any]) -> None:
    """Validate one exported trace document; raises on the first violation."""
    from repro.gpusim.report import BREAKDOWN_KEYS  # deferred: no import cycle
    from repro.obs.counters import COUNTER_KEYS

    if not isinstance(trace, dict):
        _fail("$", f"trace must be an object, got {type(trace).__name__}")
    for key in ("traceEvents", "displayTimeUnit", "otherData"):
        if key not in trace:
            _fail("$", f"missing top-level key {key!r}")
    other = trace["otherData"]
    if not isinstance(other, dict) or "schema_version" not in other:
        _fail("$.otherData", "must be an object with 'schema_version'")
    if other["schema_version"] != SCHEMA_VERSION:
        _fail(
            "$.otherData.schema_version",
            f"expected {SCHEMA_VERSION}, got {other['schema_version']!r}",
        )
    events = trace["traceEvents"]
    if not isinstance(events, list):
        _fail("$.traceEvents", "must be a list")

    for i, ev in enumerate(events):
        path = f"$.traceEvents[{i}]"
        if not isinstance(ev, dict):
            _fail(path, "event must be an object")
        for key in _REQUIRED_EVENT_KEYS:
            if key not in ev:
                _fail(path, f"missing key {key!r}")
        ph = ev["ph"]
        if ph not in _PHASES:
            _fail(path, f"unknown phase {ph!r}")
        if ph == "M":
            continue
        if ev["cat"] not in CATEGORIES:
            _fail(path, f"unknown category {ev['cat']!r}")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            _fail(path, f"ts must be a non-negative number, got {ev['ts']!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(path, f"complete event needs dur >= 0, got {dur!r}")
        args = ev.get("args", {})
        if not isinstance(args, dict):
            _fail(path, "args must be an object")
        if ev["cat"] == CAT_SIM_KERNEL:
            breakdown = args.get("breakdown")
            if not isinstance(breakdown, dict):
                _fail(path, "sim.kernel event needs a 'breakdown' arg")
            if set(breakdown) != set(BREAKDOWN_KEYS):
                _fail(
                    path,
                    "breakdown keys "
                    f"{sorted(breakdown)} != {sorted(BREAKDOWN_KEYS)}",
                )
            counters = args.get("counters")
            if not isinstance(counters, dict):
                _fail(path, "sim.kernel event needs a 'counters' arg")
            expected = set(COUNTER_KEYS) | {"occupancy_limiter"}
            if set(counters) != expected:
                _fail(
                    path,
                    "counter keys "
                    f"{sorted(counters)} != {sorted(expected)}",
                )
