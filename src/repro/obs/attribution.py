"""Bottleneck attribution: counters + roofline → a ranked limiter report.

The paper's own analysis narrative — "the 2nd order SP stencil is
bandwidth-limited", "DP high orders are register-pressure-limited" — is
reproduced here as a queryable object: the stall breakdown of one
launch's :class:`~repro.obs.counters.CounterSet` is ranked into
:class:`Limiter` entries, each explained from the counters that drive it
(achieved-bandwidth fraction, load efficiency, replay rate, occupancy
with its binding resource) and cross-referenced to the static-analysis
rule ids (:mod:`repro.analysis.rules`) that tell the user *what to do
about it*.  Merged with a :class:`~repro.metrics.roofline.RooflinePoint`
it yields the one-line verdict the issue demands: "bandwidth-bound at
83% of ceiling; next limiter: exposed latency from occupancy 0.33,
limited by registers".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.obs.counters import STALL_KEYS, CounterSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.report import SimReport
    from repro.metrics.roofline import RooflinePoint

#: stall counter → human limiter name (stable API: summary + CLI print these).
LIMITER_NAMES: dict[str, str] = {
    "stall_mem_frac": "bandwidth",
    "stall_compute_frac": "compute",
    "stall_latency_frac": "exposed latency",
    "stall_sync_frac": "barrier sync",
    "stall_sched_frac": "block scheduling",
}

#: occupancy limiter resource → the analysis rule that pre-checks it.
_OCC_RULE = {
    "registers": "RES-REGS",
    "smem": "RES-SMEM",
    "warps": "RES-THREADS",
    "blocks": "RES-NOFIT",
}

#: gld efficiency below this is worth a coalescing hint (the Fig 9
#: plateau for well-coalesced kernels sits above it).
_GLD_EFF_HINT = 0.95


@dataclass(frozen=True)
class Limiter:
    """One ranked bottleneck: where the cycles went and why."""

    name: str              #: human name (a ``LIMITER_NAMES`` value)
    counter: str           #: the stall counter that scored it
    share: float           #: fraction of total cycles it claims
    detail: str            #: counter-backed explanation
    hints: tuple[str, ...] = ()  #: ``repro.analysis`` rule ids to act on


@dataclass(frozen=True)
class AttributionReport:
    """Ranked limiters of one launch, with the roofline verdict."""

    kernel: str
    device: str
    headline: str
    limiters: tuple[Limiter, ...]

    @property
    def primary(self) -> Limiter:
        return self.limiters[0]

    def render(self) -> str:
        lines = [f"{self.kernel} on {self.device}: {self.headline}"]
        for i, lim in enumerate(self.limiters, 1):
            lines.append(
                f"  {i}. {lim.name:<16s} {lim.share:6.1%} of cycles — {lim.detail}"
            )
            if lim.hints:
                lines.append(f"     hints: {', '.join(lim.hints)}")
        return "\n".join(lines)


#: counters where a larger value is the *good* direction; everything else
#: (stall fractions, replay rates, spill bytes, transaction counts) is a
#: cost.  Drives the trades/for phrasing in :func:`differential`.
_HIGHER_IS_BETTER: frozenset[str] = frozenset({
    "dram_bw_fraction",
    "gld_efficiency",
    "gst_efficiency",
    "ipc",
    "achieved_occupancy",
})


@dataclass(frozen=True)
class CounterDelta:
    """One counter's move between two configs (winner minus runner-up)."""

    counter: str       #: counter key (a ``CounterSet.as_dict()`` key)
    winner: float      #: winner's value
    runner_up: float   #: runner-up's value
    rel: float         #: signed relative change vs the runner-up

    @property
    def improved(self) -> bool:
        """Did the winner move this counter in its good direction?"""
        if self.counter in _HIGHER_IS_BETTER:
            return self.rel > 0
        return self.rel < 0

    def describe(self) -> str:
        """``"31% fewer gld transactions"``-style phrase."""
        label = self.counter.replace("_", " ")
        pct = abs(self.rel)
        if self.counter in _HIGHER_IS_BETTER:
            word = "higher" if self.rel > 0 else "lower"
        else:
            word = "fewer" if self.rel < 0 else "more"
        return f"{pct:.0%} {word} {label}"


@dataclass(frozen=True)
class DifferentialReport:
    """Why the winner beat the runner-up, in counter terms."""

    winner_label: str
    runner_up_label: str
    speedup: float                      #: winner rate / runner-up rate
    headline: str
    deltas: tuple[CounterDelta, ...]    #: largest relative move first

    def render(self) -> str:
        lines = [
            f"{self.winner_label} vs {self.runner_up_label} "
            f"({self.speedup:.2f}x): {self.headline}"
        ]
        for d in self.deltas:
            lines.append(
                f"  {d.counter:<22s} {d.winner:>12.4g} vs {d.runner_up:>12.4g}"
                f"  ({d.describe()})"
            )
        return "\n".join(lines)

    def to_json_obj(self) -> dict[str, object]:
        return {
            "winner": self.winner_label,
            "runner_up": self.runner_up_label,
            "speedup": self.speedup,
            "headline": self.headline,
            "deltas": [
                {
                    "counter": d.counter,
                    "winner": d.winner,
                    "runner_up": d.runner_up,
                    "rel": d.rel,
                    "improved": d.improved,
                }
                for d in self.deltas
            ],
        }


def _rel_change(winner: float, runner_up: float) -> float:
    """Signed relative change, defined for zero baselines.

    A zero runner-up value with a non-zero winner value is an unbounded
    relative move; it is clamped to ±1 so ranking and rendering stay
    finite and deterministic.
    """
    if runner_up:
        return (winner - runner_up) / abs(runner_up)
    if winner == runner_up:
        return 0.0
    return 1.0 if winner > runner_up else -1.0


def differential(
    winner: Mapping[str, float],
    runner_up: Mapping[str, float],
    *,
    winner_label: str,
    runner_up_label: str,
    winner_rate: float,
    runner_up_rate: float,
    top: int = 5,
) -> DifferentialReport:
    """Winner-vs-runner-up attribution over two counter dicts.

    Takes ``CounterSet.as_dict()``-shaped mappings (which is what the
    trial archive stores), ranks the shared numeric counters by absolute
    relative change — ties broken by counter name so the report is a pure
    function of its inputs — and phrases the headline as the trade the
    winner made: its largest sacrificed counter against its largest
    gained one.
    """
    keys = sorted(
        k for k in winner
        if k in runner_up
        and isinstance(winner[k], (int, float))
        and isinstance(runner_up[k], (int, float))
        and not isinstance(winner[k], bool)
    )
    deltas = sorted(
        (
            CounterDelta(
                counter=k,
                winner=float(winner[k]),
                runner_up=float(runner_up[k]),
                rel=_rel_change(float(winner[k]), float(runner_up[k])),
            )
            for k in keys
        ),
        key=lambda d: (-abs(d.rel), d.counter),
    )
    speedup = (
        winner_rate / runner_up_rate if runner_up_rate else float(bool(winner_rate))
    )
    moved = [d for d in deltas if d.rel]
    gains = [d for d in moved if d.improved]
    costs = [d for d in moved if not d.improved]
    if gains and costs:
        headline = f"winner trades {costs[0].describe()} for {gains[0].describe()}"
    elif gains:
        headline = f"winner gains {gains[0].describe()} at no counter cost"
    elif costs:
        headline = (
            f"winner pays {costs[0].describe()} yet still wins on rate"
        )
    else:
        headline = "counters are identical; rate difference is noise-level"
    return DifferentialReport(
        winner_label=winner_label,
        runner_up_label=runner_up_label,
        speedup=speedup,
        headline=headline,
        deltas=tuple(deltas[:top]),
    )


def limiter_name(counters: CounterSet | Mapping[str, float]) -> str:
    """The primary limiter's human name (what the flame summary prints).

    Accepts a :class:`CounterSet` or its ``as_dict()`` form (trace span
    args), so the flame summary and the attribution report rank with the
    same function.
    """
    top = max(STALL_KEYS, key=lambda k: counters[k])
    return LIMITER_NAMES[top]


def rank_limiters(counters: CounterSet) -> tuple[Limiter, ...]:
    """All five limiters, largest cycle share first, each explained."""
    details = {
        "stall_mem_frac": _mem_detail(counters),
        "stall_compute_frac": _compute_detail(counters),
        "stall_latency_frac": _latency_detail(counters),
        "stall_sync_frac": ("block-wide barriers serialize every plane", ()),
        "stall_sched_frac": (
            "per-block placement overhead across scheduling waves", ()
        ),
    }
    ranked = sorted(STALL_KEYS, key=lambda k: counters[k], reverse=True)
    return tuple(
        Limiter(
            name=LIMITER_NAMES[key],
            counter=key,
            share=counters[key],
            detail=details[key][0],
            hints=details[key][1],
        )
        for key in ranked
    )


def _mem_detail(c: CounterSet) -> tuple[str, tuple[str, ...]]:
    detail = (
        f"DRAM stream at {c['dram_bw_fraction']:.0%} of measured bandwidth, "
        f"gld efficiency {c['gld_efficiency']:.0%}"
    )
    hints: tuple[str, ...] = ()
    if c["gld_efficiency"] < _GLD_EFF_HINT:
        hints = ("MEM-UNCOALESCED-STRIP", "MEM-MISALIGNED")
    return detail, hints


def _compute_detail(c: CounterSet) -> tuple[str, tuple[str, ...]]:
    detail = f"issue/arithmetic pipes at IPC {c['ipc']:.2f}"
    hints: list[str] = []
    if c["shared_replay_rate"] > 0:
        detail += (
            f", smem replay rate {c['shared_replay_rate']:.2f} per instruction"
        )
        hints += ["MEM-BANK-CONFLICT", "MEM-DP-BANKS"]
    if c["local_spill_bytes"] > 0:
        detail += ", register spill traffic in the stream"
        hints.append("RES-SPILL")
    return detail, tuple(hints)


def _latency_detail(c: CounterSet) -> tuple[str, tuple[str, ...]]:
    detail = (
        f"exposed DRAM latency from occupancy "
        f"{c['achieved_occupancy']:.2f}, limited by {c.occupancy_limiter}"
    )
    rule = _OCC_RULE.get(c.occupancy_limiter)
    return detail, (rule,) if rule else ()


def attribute(
    report: "SimReport", point: "RooflinePoint | None" = None
) -> AttributionReport:
    """Build the ranked limiter report for one simulated launch.

    ``point`` (from :func:`repro.metrics.roofline.roofline`) upgrades the
    headline from the stall ranking to the roofline verdict; without it
    the primary limiter leads.
    """
    counters = report.counters
    if counters is None:
        raise ValueError(
            "report carries no counters (hand-built SimReport?); "
            "run it through the executor"
        )
    limiters = rank_limiters(counters)
    if point is not None:
        bound = "bandwidth" if point.bandwidth_bound else "compute"
        headline = f"{bound}-bound at {point.efficiency:.0%} of ceiling"
        next_up = next((x for x in limiters if x.name != bound), None)
    else:
        headline = (
            f"{limiters[0].name} claims {limiters[0].share:.0%} of cycles"
        )
        next_up = limiters[1] if len(limiters) > 1 else None
    if next_up is not None and next_up.share > 0:
        headline += f"; next limiter: {next_up.detail}"
    return AttributionReport(
        kernel=report.kernel_name,
        device=report.device_name,
        headline=headline,
        limiters=limiters,
    )
