"""Machine-readable bench telemetry — the ``BENCH_profile.json`` writer.

One :class:`TelemetryRecord` captures the profiler-style counters of a
single simulated launch (device, kernel, MPoint/s, cycles, the frozen
breakdown).  The benchmark suite accumulates records across benches
(``benchmarks/conftest.py``) and writes one consolidated document, which
seeds the repository's performance trajectory: successive PRs append
comparable numbers for the same (device, kernel, order, dtype) cells.

Deliberately timestamp-free: the document content is a pure function of
the code, so diffs show performance movement and nothing else.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.report import SimReport

#: ``BENCH_profile.json`` document version (independent of the Chrome
#: trace's ``repro.obs.schema.SCHEMA_VERSION``).  v1: headline numbers +
#: breakdown.  v2: adds the hardware-counter set and the grid shape.
#: v3: adds the ``faulted`` flag (an injected fault touched the launch, so
#: the record is a corrupted measurement, not a performance statement).
#: :func:`load_profile` still reads v1 and v2 documents.
PROFILE_SCHEMA_VERSION = 3

#: Grid v1 records were (implicitly) produced on — the paper's benchmark
#: volume; v2 records carry their grid explicitly.
_V1_GRID = (512, 512, 256)


@dataclass(frozen=True)
class TelemetryRecord:
    """One launch's headline counters, keyed for trajectory comparison."""

    device: str
    kernel: str
    order: int
    dtype: str
    config: str
    mpoints_per_s: float
    gflops: float
    total_cycles: float
    time_s: float
    load_efficiency: float
    occupancy: float
    breakdown: dict[str, float] = field(default_factory=dict)
    counters: dict[str, Any] = field(default_factory=dict)
    grid: tuple[int, int, int] = _V1_GRID
    source: str = ""
    #: An injected fault (throttle/ECC) touched this launch: the numbers
    #: are a *faulted measurement*, and the regression sentinel must not
    #: treat them as a baseline performance statement.
    faulted: bool = False

    @property
    def key(self) -> tuple[str, str, int, str]:
        """Trajectory cell identity (config may move between PRs)."""
        return (self.device, self.kernel, self.order, self.dtype)


def _round_counters(counters: dict[str, Any]) -> dict[str, Any]:
    return {
        k: round(v, 6) if isinstance(v, float) else v
        for k, v in counters.items()
    }


def record_from_report(
    report: "SimReport", *, order: int, source: str = ""
) -> TelemetryRecord:
    """Build a record from one :class:`~repro.gpusim.report.SimReport`."""
    grid = tuple(report.meta.get("grid_shape", _V1_GRID))
    return TelemetryRecord(
        device=report.device_name,
        kernel=report.kernel_name,
        order=order,
        dtype=str(report.meta.get("dtype", "?")),
        config=str(report.meta.get("block", "?")),
        mpoints_per_s=round(report.mpoints_per_s, 3),
        gflops=round(report.gflops, 3),
        total_cycles=round(report.total_cycles, 3),
        time_s=report.time_s,
        load_efficiency=round(report.load_efficiency, 6),
        occupancy=round(report.occupancy.occupancy, 6),
        breakdown={k: round(v, 3) for k, v in report.breakdown.items()},
        counters=(
            _round_counters(report.counters.as_dict()) if report.counters else {}
        ),
        grid=grid,  # type: ignore[arg-type]
        source=source,
        faulted=bool(report.meta.get("faults")),
    )


def load_profile(path: str | Path) -> list[TelemetryRecord]:
    """Read a ``BENCH_profile.json`` document, v1 through v3.

    v1 records predate the counter set: they load with ``counters={}``
    and the implicit paper grid, so the regression sentinel can still
    diff against them (resimulation recomputes what the record lacks).
    v1/v2 records predate fault injection and load as ``faulted=False``.
    """
    doc = json.loads(Path(path).read_text())
    version = doc.get("schema_version")
    if version not in (1, 2, PROFILE_SCHEMA_VERSION):
        raise ValueError(
            f"{path}: unsupported profile schema_version {version!r} "
            f"(readable: 1, 2, {PROFILE_SCHEMA_VERSION})"
        )
    records = []
    for raw in doc["records"]:
        raw = dict(raw)
        raw.setdefault("counters", {})
        raw.setdefault("faulted", False)
        raw["grid"] = tuple(raw.get("grid", _V1_GRID))
        records.append(TelemetryRecord(**raw))
    return records


class TelemetryCollector:
    """Accumulates records; later writes win a (key, source) cell."""

    def __init__(self) -> None:
        self._records: dict[tuple[Any, ...], TelemetryRecord] = {}

    def add(self, record: TelemetryRecord) -> None:
        self._records[(*record.key, record.source)] = record

    def add_report(
        self, report: "SimReport", *, order: int, source: str = ""
    ) -> TelemetryRecord:
        record = record_from_report(report, order=order, source=source)
        self.add(record)
        return record

    @property
    def records(self) -> list[TelemetryRecord]:
        return [self._records[k] for k in sorted(self._records)]

    def __len__(self) -> int:
        return len(self._records)

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "tool": "repro.obs",
            "records": [self._record_obj(r) for r in self.records],
        }

    @staticmethod
    def _record_obj(record: TelemetryRecord) -> dict[str, Any]:
        obj = asdict(record)
        obj["grid"] = list(record.grid)
        return obj

    def to_json(self) -> str:
        return json.dumps(self.to_json_obj(), indent=1) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the consolidated document (e.g. ``BENCH_profile.json``)."""
        path = Path(path)
        path.write_text(self.to_json())
        return path
