"""repro.obs — profiler for the simulated GPU.

The nvprof/Nsight analogue for :mod:`repro.gpusim`: a near-zero-overhead
span tracer with a metrics registry (:mod:`repro.obs.tracer`,
:mod:`repro.obs.metrics`), device-timeline reconstruction from the
analytic cycle model (:mod:`repro.obs.simtrace`), Chrome trace-event and
bench-telemetry exporters (:mod:`repro.obs.chrome`,
:mod:`repro.obs.telemetry`), a text flame/summary report
(:mod:`repro.obs.summary`), and the trace schema + validator the whole
stack shares (:mod:`repro.obs.schema`).

Tracing is disabled unless a :class:`Tracer` is installed with
:func:`tracing`; instrumentation points cost one contextvar lookup when
off.  See ``docs/OBSERVABILITY.md`` for the event taxonomy and how to
open exported traces in Perfetto.
"""

from repro.obs.chrome import to_chrome_trace, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_metric_name,
)
from repro.obs.schema import (
    CATEGORIES,
    SCHEMA_VERSION,
    TraceSchemaError,
    validate_trace,
)
from repro.obs.summary import summarize, top_planes
from repro.obs.telemetry import (
    TelemetryCollector,
    TelemetryRecord,
    record_from_report,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    current_tracer,
    maybe_span,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "tracing",
    "maybe_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "validate_metric_name",
    "to_chrome_trace",
    "write_chrome_trace",
    "summarize",
    "top_planes",
    "TelemetryCollector",
    "TelemetryRecord",
    "record_from_report",
    "CATEGORIES",
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "validate_trace",
]
