"""repro.obs — profiler for the simulated GPU.

The nvprof/Nsight analogue for :mod:`repro.gpusim`: a near-zero-overhead
span tracer with a metrics registry (:mod:`repro.obs.tracer`,
:mod:`repro.obs.metrics`), device-timeline reconstruction from the
analytic cycle model (:mod:`repro.obs.simtrace`), the hardware-counter
analogue set (:mod:`repro.obs.counters`) with ranked bottleneck
attribution (:mod:`repro.obs.attribution`), Chrome trace-event and
bench-telemetry exporters (:mod:`repro.obs.chrome`,
:mod:`repro.obs.telemetry`), the perf-regression sentinel behind
``repro bench diff`` (:mod:`repro.obs.regress`), a text flame/summary
report (:mod:`repro.obs.summary`), and the trace schema + validator the
whole stack shares (:mod:`repro.obs.schema`).  The *live* telemetry
plane is :mod:`repro.obs.events` (schema-versioned structured event
stream + flight recorder, tailed by ``repro top``) with metrics export
to Prometheus/OTLP in :mod:`repro.obs.export`.

Tracing is disabled unless a :class:`Tracer` is installed with
:func:`tracing`; instrumentation points cost one contextvar lookup when
off.  See ``docs/OBSERVABILITY.md`` for the event taxonomy and how to
open exported traces in Perfetto.
"""

from repro.obs.events import (
    EVENT_CATALOG,
    EVENTS_SCHEMA_VERSION,
    Event,
    EventSchemaError,
    EventSink,
    EventSpec,
    FlightRecorder,
    JsonlEventSink,
    MemoryEventSink,
    TeeEventSink,
    current_sink,
    disable_events_in_process,
    emit,
    event_stream,
    read_events,
    suppress_events,
    validate_event,
    validate_stream,
)
from repro.obs.export import (
    SERVICE_GAUGES,
    ExportFormatError,
    lint_prometheus,
    to_otlp_json,
    to_prometheus,
    write_metrics,
)
from repro.obs.attribution import (
    AttributionReport,
    Limiter,
    attribute,
    limiter_name,
    rank_limiters,
)
from repro.obs.chrome import to_chrome_trace, write_chrome_trace
from repro.obs.counters import (
    COUNTER_KEYS,
    CounterSchemaError,
    CounterSet,
    derive_counters,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_metric_name,
)
from repro.obs.schema import (
    CATEGORIES,
    SCHEMA_VERSION,
    TraceSchemaError,
    validate_trace,
)
from repro.obs.regress import DiffReport, diff_baseline
from repro.obs.summary import reconcile_failures, summarize, top_planes
from repro.obs.telemetry import (
    PROFILE_SCHEMA_VERSION,
    TelemetryCollector,
    TelemetryRecord,
    load_profile,
    record_from_report,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    current_tracer,
    maybe_span,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "tracing",
    "maybe_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "validate_metric_name",
    "to_chrome_trace",
    "write_chrome_trace",
    "summarize",
    "top_planes",
    "reconcile_failures",
    "TelemetryCollector",
    "TelemetryRecord",
    "record_from_report",
    "load_profile",
    "PROFILE_SCHEMA_VERSION",
    "COUNTER_KEYS",
    "CounterSet",
    "CounterSchemaError",
    "derive_counters",
    "AttributionReport",
    "Limiter",
    "attribute",
    "limiter_name",
    "rank_limiters",
    "DiffReport",
    "diff_baseline",
    "CATEGORIES",
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "validate_trace",
    "EVENT_CATALOG",
    "EVENTS_SCHEMA_VERSION",
    "Event",
    "EventSchemaError",
    "EventSink",
    "EventSpec",
    "FlightRecorder",
    "JsonlEventSink",
    "MemoryEventSink",
    "TeeEventSink",
    "current_sink",
    "disable_events_in_process",
    "emit",
    "event_stream",
    "read_events",
    "suppress_events",
    "validate_event",
    "validate_stream",
    "SERVICE_GAUGES",
    "ExportFormatError",
    "lint_prometheus",
    "to_otlp_json",
    "to_prometheus",
    "write_metrics",
]
